// Table II: latency and completeness of the four execution methods.
//
// Paper values:                     latency spec        completeness
//   CloudLog  Impatience(adv/basic) {1s, 1m, 1h}        100%
//             MinLatency            {1s}                98.1%
//             MaxLatency            {1h}                100%
//   AndroidLog Impatience(adv/basic) {10m, 1h, 1d}      92.2%
//             MinLatency            {10m}               20.5%
//             MaxLatency            {1d}                92.2%
//
// Completeness for a latency L is the fraction of events whose lateness
// (high watermark at arrival - event time) is at most L; the framework's
// completeness equals that of its largest latency. The simulated datasets
// reproduce the shape: CloudLog is complete within an hour, AndroidLog
// loses most events at 10 minutes but keeps the vast majority within a
// day.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

struct LatencySpec {
  std::string label;
  Timestamp value;
};

void Report(const std::string& dataset_name,
            const std::vector<Event>& events,
            const std::vector<LatencySpec>& latencies) {
  Section("Table II: " + dataset_name);
  TablePrinter table({"method", "latency_spec", "completeness"});

  std::string all_label = "{";
  for (size_t i = 0; i < latencies.size(); ++i) {
    all_label += latencies[i].label;
    all_label += (i + 1 < latencies.size()) ? ", " : "}";
  }
  const double max_completeness =
      CompletenessAtLatency(events, latencies.back().value);
  const double min_completeness =
      CompletenessAtLatency(events, latencies.front().value);

  table.PrintRow({"Impatience(advanced)", all_label,
                  TablePrinter::Num(max_completeness * 100, 1) + "%"});
  table.PrintRow({"Impatience(basic)", all_label,
                  TablePrinter::Num(max_completeness * 100, 1) + "%"});
  table.PrintRow({"MinLatency", "{" + latencies.front().label + "}",
                  TablePrinter::Num(min_completeness * 100, 1) + "%"});
  table.PrintRow({"MaxLatency", "{" + latencies.back().label + "}",
                  TablePrinter::Num(max_completeness * 100, 1) + "%"});

  // Per-band routing detail (how much each extra latency band recovers).
  TablePrinter bands({"latency", "cumulative_completeness"});
  for (const LatencySpec& spec : latencies) {
    bands.PrintRow({spec.label,
                    TablePrinter::Num(
                        CompletenessAtLatency(events, spec.value) * 100, 1) +
                        "%"});
  }
  std::printf("max lateness observed: %lld ms\n",
              static_cast<long long>(MaxLateness(events)));
}

void Run() {
  const size_t n = EventCount();
  Report("CloudLog (paper: 98.1% at 1s, 100% at 1h)",
         BenchCloudLog(n).events,
         {{"1s", kSecond}, {"1m", kMinute}, {"1h", kHour}});
  Report("AndroidLog (paper: 20.5% at 10m, 92.2% at 1d)",
         BenchAndroidLog(n).events,
         {{"10m", 10 * kMinute}, {"1h", kHour}, {"1d", kDay}});
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
