// Figure 9: speedup of sort-as-needed execution — running an
// order-insensitive operator *before* the sorting operator instead of
// after it.
//
//  (a) selection at selectivity s: early Where lets the sorter skip
//      filtered rows (but it still scans the bitmap, so the speedup is
//      below the ideal 1/s — paper: up to ~7x at s=10%).
//  (b) projection to c of 4 payload columns: the sorter moves physically
//      narrower events; metadata (two 64-bit timestamps, key, hash) caps
//      the speedup well below 4x — paper: up to ~1.5x.
//  (c) tumbling window of size w: aligning timestamps before the sort
//      collapses each window onto one timestamp, slashing the number of
//      runs (Proposition 3.2) — paper: up to ~2.4x; weakest on
//      AndroidLog whose runs are already long.
//
// Reported value = time(sort-first pipeline) / time(operator-first
// pipeline), end to end.

#include <array>
#include <vector>

#include "bench/harness.h"
#include "engine/streamable.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

// Best-of-two timing: pipeline construction noise (allocator state, cache
// warmth) otherwise dominates ratios near 1.0.
template <typename Fn>
double BestTime(Fn&& fn) {
  const double a = TimeSeconds(fn);
  const double b = TimeSeconds(fn);
  return a < b ? a : b;
}

typename Ingress<4>::Options IngressFor(Timestamp reorder_latency) {
  typename Ingress<4>::Options options;
  options.punctuation_period = 10000;
  options.reorder_latency = reorder_latency;
  return options;
}

struct Workload {
  std::string name;
  std::vector<Event> events;
  Timestamp reorder_latency;
};

std::vector<Workload> Workloads(size_t n) {
  std::vector<Workload> w;
  w.push_back({"Synthetic", BenchSynthetic(n, 30, 64).events, 600});
  w.push_back({"CloudLog", BenchCloudLog(n).events, 25 * kMinute});
  w.push_back({"AndroidLog", BenchAndroidLog(n).events, 3 * kDay});
  return w;
}

// --- (a) selection ---------------------------------------------------------

double SelectionSpeedup(const Workload& w, int selectivity_percent) {
  auto keep = [selectivity_percent](const EventBatch<4>& b, size_t i) {
    return b.payload[0][i] % 100 < selectivity_percent;
  };
  const double early = BestTime([&]() {
    QueryPipeline<4> q(IngressFor(w.reorder_latency));
    auto* sink = q.disordered().Where(keep).ToStreamable().ToCounting();
    q.Run(w.events);
    IMPATIENCE_CHECK(sink->flushed());
  });
  const double late = BestTime([&]() {
    QueryPipeline<4> q(IngressFor(w.reorder_latency));
    auto* sink = q.disordered().ToStreamable().Where(keep).ToCounting();
    q.Run(w.events);
    IMPATIENCE_CHECK(sink->flushed());
  });
  return late / early;
}

// --- (b) projection --------------------------------------------------------

template <int V>
double ProjectionSpeedupImpl(const Workload& w, std::array<int, V> cols) {
  const double early = BestTime([&]() {
    QueryPipeline<4> q(IngressFor(w.reorder_latency));
    auto* sink = q.context()->graph.template Make<CountingSink<V>>();
    q.disordered().template Select<V>(cols).ToStreamable().Into(sink);
    q.Run(w.events);
    IMPATIENCE_CHECK(sink->flushed());
  });
  const double late = BestTime([&]() {
    QueryPipeline<4> q(IngressFor(w.reorder_latency));
    auto* sink = q.context()->graph.template Make<CountingSink<V>>();
    q.disordered().ToStreamable().template Select<V>(cols).Into(sink);
    q.Run(w.events);
    IMPATIENCE_CHECK(sink->flushed());
  });
  return late / early;
}

double ProjectionSpeedup(const Workload& w, int columns) {
  switch (columns) {
    case 1:
      return ProjectionSpeedupImpl<1>(w, {0});
    case 2:
      return ProjectionSpeedupImpl<2>(w, {0, 1});
    case 3:
      return ProjectionSpeedupImpl<3>(w, {0, 1, 2});
    case 4:
      return ProjectionSpeedupImpl<4>(w, {0, 1, 2, 3});
  }
  IMPATIENCE_CHECK(false);
  return 0;
}

// --- (c) tumbling window ---------------------------------------------------

double WindowSpeedup(const Workload& w, Timestamp window) {
  const double early = BestTime([&]() {
    QueryPipeline<4> q(IngressFor(w.reorder_latency));
    auto* sink =
        q.disordered().TumblingWindow(window).ToStreamable().ToCounting();
    q.Run(w.events);
    IMPATIENCE_CHECK(sink->flushed());
  });
  const double late = BestTime([&]() {
    QueryPipeline<4> q(IngressFor(w.reorder_latency));
    auto* sink =
        q.disordered().ToStreamable().TumblingWindow(window).ToCounting();
    q.Run(w.events);
    IMPATIENCE_CHECK(sink->flushed());
  });
  return late / early;
}

void Run() {
  const size_t n = EventCount();
  const std::vector<Workload> workloads = Workloads(n);

  Section("Figure 9(a): sort-as-needed speedup from early selection "
          "(paper: up to ~7x at low selectivity)");
  {
    std::vector<std::string> headers = {"selectivity"};
    for (const Workload& w : workloads) headers.push_back(w.name);
    TablePrinter table(headers);
    for (const int s : {10, 30, 50, 70, 100}) {
      std::vector<std::string> row = {TablePrinter::Int(s) + "%"};
      for (const Workload& w : workloads) {
        row.push_back(TablePrinter::Num(SelectionSpeedup(w, s)));
      }
      table.PrintRow(row);
    }
  }

  Section("Figure 9(b): speedup from early projection (paper: up to "
          "~1.5x at 1 of 4 columns; metadata caps the gain)");
  {
    std::vector<std::string> headers = {"columns"};
    for (const Workload& w : workloads) headers.push_back(w.name);
    TablePrinter table(headers);
    for (const int c : {1, 2, 3, 4}) {
      std::vector<std::string> row = {TablePrinter::Int(c)};
      for (const Workload& w : workloads) {
        row.push_back(TablePrinter::Num(ProjectionSpeedup(w, c)));
      }
      table.PrintRow(row);
    }
  }

  Section("Figure 9(c): speedup from early windowing (paper: up to "
          "~2.4x; smallest on AndroidLog)");
  {
    std::vector<std::string> headers = {"window"};
    for (const Workload& w : workloads) headers.push_back(w.name);
    TablePrinter table(headers);
    for (const Timestamp window :
         {Timestamp{1}, Timestamp{10}, Timestamp{100}, Timestamp{1000},
          Timestamp{10000}, Timestamp{100000}, Timestamp{1000000}}) {
      std::vector<std::string> row = {TablePrinter::Int(window)};
      for (const Workload& w : workloads) {
        row.push_back(TablePrinter::Num(WindowSpeedup(w, window)));
      }
      table.PrintRow(row);
    }
  }
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
