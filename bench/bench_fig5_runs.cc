// Figure 5: number of sorted runs maintained by Patience vs Impatience
// sort while consuming the CloudLog dataset.
//
// Paper shape: Patience sort's run count climbs monotonically (failure
// bursts permanently inflate it, toward ~350+ runs at 20M events);
// Impatience sort, punctuating every 10,000 events, repeatedly cleans
// emptied runs and stays an order of magnitude lower.

#include "bench/harness.h"
#include "sort/impatience_sorter.h"
#include "sort/patience_sorter.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

constexpr size_t kPunctuationPeriod = 10000;

void Run() {
  const size_t n = EventCount();
  const Dataset data = BenchCloudLog(n);
  const std::vector<Timestamp> times = SyncTimes(data.events);

  PatienceSorter<Timestamp, IdentityTimeOf> patience;
  ImpatienceSorter<Timestamp, IdentityTimeOf> impatience;

  Section("Figure 5: sorted runs, Patience vs Impatience (CloudLog, "
          "punctuation every 10k events)");
  TablePrinter table({"events", "patience_runs", "impatience_runs"});

  std::vector<Timestamp> sink;
  Timestamp high_watermark = kMinTimestamp;
  size_t max_patience = 0;
  size_t max_impatience = 0;
  const size_t report_every = n / 20 == 0 ? 1 : n / 20;
  for (size_t i = 0; i < times.size(); ++i) {
    patience.Push(times[i]);
    impatience.Push(times[i]);
    if (times[i] > high_watermark) high_watermark = times[i];
    if ((i + 1) % kPunctuationPeriod == 0) {
      // One minute of reorder tolerance: jitter-late events are all kept,
      // and failure-burst runs are cleaned up one minute behind the
      // watermark — the cleanup Figure 5 visualizes. (Events later than
      // this are dropped by the sorter, as a real pipeline would.)
      const Timestamp p = high_watermark - 1 * kMinute;
      if (p > impatience.last_punctuation()) {
        sink.clear();
        impatience.OnPunctuation(p, &sink);
      }
    }
    max_patience = std::max(max_patience, patience.run_count());
    max_impatience = std::max(max_impatience, impatience.run_count());
    if ((i + 1) % report_every == 0 || i + 1 == times.size()) {
      table.PrintRow({TablePrinter::Int(i + 1),
                      TablePrinter::Int(patience.run_count()),
                      TablePrinter::Int(impatience.run_count())});
    }
  }
  std::printf("\npeak runs: Patience %zu, Impatience %zu (%.1fx lower)\n",
              max_patience, max_impatience,
              max_impatience == 0
                  ? 0.0
                  : static_cast<double>(max_patience) /
                        static_cast<double>(max_impatience));
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
