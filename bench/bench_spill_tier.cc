// Spill tier: external-memory acceptance arm. One synthetic online
// session is run three times — pure in-RAM, then under a memory budget
// set to 1/8 of the RAM arm's peak residency with synchronous writes,
// then again at the same budget with a write-behind flusher pool — and
// all outputs are compared byte for byte. The spilled arms must (a) stay
// byte-identical, (b) move more than 8x the budget through the disk
// tier, and (c) keep their peak resident footprint near the budget while
// the RAM arm peaks at the full buffered-window size. The JSON stamp
// records the budget, the peaks, the spill counters, and the async arm's
// flusher/read-ahead stats plus punct-to-emit p99 so the sync-vs-async
// trajectory is visible release over release.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "sort/impatience_sorter.h"
#include "storage/spill_flusher.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

constexpr size_t kPunctFreq = 100000;   // Events between punctuations.
constexpr Timestamp kReorderLatency = 600;

struct SessionResult {
  std::vector<Event> out;
  double throughput_meps = 0;
  size_t peak_bytes = 0;
  ImpatienceCounters counters;
  uint64_t late_drops = 0;
};

// Runs the fig8-style punctuation session, sampling the sorter's resident
// footprint every 256 pushes and after every punctuation (where merge
// scratch peaks).
SessionResult RunSession(const std::vector<Event>& events,
                         const ImpatienceConfig& config) {
  SessionResult result;
  ImpatienceSorter<Event> sorter(config);
  result.out.reserve(events.size());

  const double secs = TimeSeconds([&]() {
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    for (size_t i = 0; i < events.size(); ++i) {
      sorter.Push(events[i]);
      high_watermark = std::max(high_watermark, events[i].sync_time);
      if ((i & 255) == 0) {
        result.peak_bytes = std::max(result.peak_bytes,
                                     sorter.MemoryBytes());
      }
      if ((i + 1) % kPunctFreq == 0) {
        const Timestamp p = high_watermark - kReorderLatency;
        if (p > last_punct) {
          sorter.OnPunctuation(p, &result.out);
          last_punct = p;
          result.peak_bytes = std::max(result.peak_bytes,
                                       sorter.MemoryBytes());
        }
      }
    }
    sorter.Flush(&result.out);
  });
  result.throughput_meps = Throughput(events.size(), secs);
  result.counters = sorter.counters();
  result.late_drops = sorter.late_drops();
  return result;
}

void Run() {
  const size_t n = EventCount();
  const std::vector<Event> events = BenchSynthetic(n, 30, 64).events;

  Section("Spill tier: in-RAM reference vs budget = peak/8, sync vs async");

  ImpatienceConfig ram_config;
  ram_config.spill.use_env_default = false;  // The in-RAM reference arm.
  const SessionResult ram = RunSession(events, ram_config);

  const size_t budget = std::max<size_t>(ram.peak_bytes / 8, 64 << 10);
  ImpatienceConfig spill_config = ram_config;
  spill_config.spill.memory_budget = budget;
  spill_config.spill.check_period = 64;
  const SessionResult spilled = RunSession(events, spill_config);

  // Async arm: same budget, but sealed blocks are handed to a two-thread
  // write-behind pool and the merge cursors prefetch through it. The
  // flusher outlives the session (runs hold channels into it).
  storage::SpillFlusher::Options flusher_options;
  flusher_options.threads = 2;
  storage::SpillFlusher flusher(flusher_options);
  ImpatienceConfig async_config = spill_config;
  async_config.spill.flusher = &flusher;
  const SessionResult async_arm = RunSession(events, async_config);
  const storage::SpillFlusher::Stats flusher_stats = flusher.stats();

  const bool identical = spilled.out == ram.out;
  const bool async_identical = async_arm.out == ram.out;
  // The acceptance ratio: the session's run bytes must exceed 8x the
  // budget for the arm to demonstrate external-memory operation.
  const size_t session_bytes = n * sizeof(Event);
  const double session_over_budget =
      static_cast<double>(session_bytes) / static_cast<double>(budget);
  const double written_over_budget =
      static_cast<double>(spilled.counters.spill_bytes_written) /
      static_cast<double>(budget);

  TablePrinter table({"arm", "throughput_meps", "peak_bytes",
                      "runs_spilled", "spill_written", "p99_punct_us",
                      "identical"});
  table.PrintRow({"ram", TablePrinter::Num(ram.throughput_meps),
                  TablePrinter::Int(ram.peak_bytes), "0", "0",
                  TablePrinter::Int(ram.counters.punct_to_emit.P99() / 1000),
                  "-"});
  table.PrintRow({"sync", TablePrinter::Num(spilled.throughput_meps),
                  TablePrinter::Int(spilled.peak_bytes),
                  TablePrinter::Int(spilled.counters.runs_spilled),
                  TablePrinter::Int(spilled.counters.spill_bytes_written),
                  TablePrinter::Int(
                      spilled.counters.punct_to_emit.P99() / 1000),
                  identical ? "yes" : "NO"});
  table.PrintRow({"async", TablePrinter::Num(async_arm.throughput_meps),
                  TablePrinter::Int(async_arm.peak_bytes),
                  TablePrinter::Int(async_arm.counters.runs_spilled),
                  TablePrinter::Int(
                      async_arm.counters.spill_bytes_written),
                  TablePrinter::Int(
                      async_arm.counters.punct_to_emit.P99() / 1000),
                  async_identical ? "yes" : "NO"});
  std::printf(
      "budget = %zu B (session = %.1fx budget), spilled %.1fx the budget "
      "through disk\n"
      "async: %llu background flushes, %llu read-ahead hits / %llu misses, "
      "%llu backpressure waits\n",
      budget, session_over_budget, written_over_budget,
      static_cast<unsigned long long>(flusher_stats.async_flushes),
      static_cast<unsigned long long>(async_arm.counters.readahead_hits),
      static_cast<unsigned long long>(async_arm.counters.readahead_misses),
      static_cast<unsigned long long>(flusher_stats.backpressure_waits));
  IMPATIENCE_CHECK_MSG(identical,
                       "spilled output diverged from the in-RAM arm");
  IMPATIENCE_CHECK_MSG(async_identical,
                       "async-flushed output diverged from the in-RAM arm");
  IMPATIENCE_CHECK_MSG(session_over_budget > 8.0,
                       "session too small to demonstrate 8x-budget runs");
  IMPATIENCE_CHECK_MSG(async_arm.counters.async_flushes > 0,
                       "async arm never handed a block to the flusher pool");

  std::printf(
      "\nBEGIN_JSON\n{\"kernel_level\": \"%s\", \"bench_seed\": %llu,\n"
      "\"spill_tier\": {\"events\": %zu, \"punct_freq\": %zu,\n"
      "  \"memory_budget\": %zu, \"session_bytes\": %zu,\n"
      "  \"session_over_budget\": %.2f, \"identical\": %s,\n"
      "  \"ram\": {\"throughput_meps\": %.4f, \"peak_bytes\": %zu,\n"
      "    \"punct_to_emit_p99_ns\": %llu},\n"
      "  \"spilled\": {\"throughput_meps\": %.4f, \"peak_bytes\": %zu,\n"
      "    \"runs_spilled\": %llu, \"spill_bytes_written\": %llu,\n"
      "    \"spill_read_bytes\": %llu, \"spill_merge_fanin_count\": %llu,\n"
      "    \"punct_to_emit_p99_ns\": %llu,\n"
      "    \"written_over_budget\": %.2f},\n"
      "  \"async\": {\"throughput_meps\": %.4f, \"peak_bytes\": %zu,\n"
      "    \"identical\": %s, \"flusher_threads\": %zu,\n"
      "    \"runs_spilled\": %llu, \"spill_bytes_written\": %llu,\n"
      "    \"async_flushes\": %llu, \"readahead_hits\": %llu,\n"
      "    \"readahead_misses\": %llu, \"backpressure_waits\": %llu,\n"
      "    \"punct_to_emit_p99_ns\": %llu}}}\nEND_JSON\n",
      BenchKernelLevel(), static_cast<unsigned long long>(BenchSeed()), n,
      kPunctFreq, budget, session_bytes, session_over_budget,
      identical ? "true" : "false",
      ram.throughput_meps, ram.peak_bytes,
      static_cast<unsigned long long>(ram.counters.punct_to_emit.P99()),
      spilled.throughput_meps, spilled.peak_bytes,
      static_cast<unsigned long long>(spilled.counters.runs_spilled),
      static_cast<unsigned long long>(
          spilled.counters.spill_bytes_written),
      static_cast<unsigned long long>(spilled.counters.spill_read_bytes),
      static_cast<unsigned long long>(
          spilled.counters.spill_merge_fanin.count()),
      static_cast<unsigned long long>(
          spilled.counters.punct_to_emit.P99()),
      written_over_budget, async_arm.throughput_meps, async_arm.peak_bytes,
      async_identical ? "true" : "false", flusher_options.threads,
      static_cast<unsigned long long>(async_arm.counters.runs_spilled),
      static_cast<unsigned long long>(
          async_arm.counters.spill_bytes_written),
      static_cast<unsigned long long>(flusher_stats.async_flushes),
      static_cast<unsigned long long>(async_arm.counters.readahead_hits),
      static_cast<unsigned long long>(
          async_arm.counters.readahead_misses),
      static_cast<unsigned long long>(flusher_stats.backpressure_waits),
      static_cast<unsigned long long>(
          async_arm.counters.punct_to_emit.P99()));
  std::fflush(stdout);
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
