// Figure 10 + Table II: end-to-end comparison of four execution methods on
// four queries over the two real-dataset simulations.
//
// Methods:
//   MinLatency            one reorder latency = the smallest (fast, lossy);
//   MaxLatency            one reorder latency = the largest (complete,
//                         slow to answer, memory-hungry);
//   Impatience(basic)     the framework with pass-through stages, full
//                         query per output stream (redundant compute, raw
//                         events buffered in unions);
//   Impatience(advanced)  PIQ + merge embedded per §V-B.
//
// Queries (paper §VI-D):
//   Q1  tumbling-window count;
//   Q2  windowed count over 100 groups;
//   Q3  windowed count over 1000 groups;
//   Q4  windowed top-5 of 100 groups.
//
// Paper shape (CloudLog): advanced ~2.3-2.8x the basic framework's
// throughput and ~29-31x less memory; advanced within 4-22% of
// MaxLatency's throughput while using 27-29x less memory; MinLatency fast
// but incomplete. Punctuation period 10,000 events, as in the paper.

#include <functional>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "engine/streamable.h"
#include "framework/impatience_framework.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

constexpr size_t kPunctuationPeriod = 10000;

// A query in three roles: full query (single-latency and basic framework),
// PIQ stage, and merge stage (advanced framework).
struct Query {
  std::string name;
  std::function<Streamable<4>(Streamable<4>)> full;
  StageFn<4> piq;
  StageFn<4> merge;
};

// Rekeys to `groups` groups using the ad-id payload column.
auto RekeyTo(int32_t groups) {
  return [groups](EventBatch<4>* b, size_t i) {
    b->key[i] = b->payload[0][i] % groups;
    b->hash[i] = HashKey(b->key[i]);
  };
}

std::vector<Query> Queries() {
  std::vector<Query> queries;
  // Q1: total count per window.
  queries.push_back(
      {"Q1",
       [](Streamable<4> s) { return s.Count(); },
       [](Streamable<4> s) { return s.Count(); },
       [](Streamable<4> s) { return s.CombinePartials(); }});
  // Q2: count per 100 groups (generator keys are already 0..99).
  queries.push_back(
      {"Q2",
       [](Streamable<4> s) { return s.GroupCount(); },
       [](Streamable<4> s) { return s.GroupCount(); },
       [](Streamable<4> s) { return s.CombinePartials(); }});
  // Q3: count per 1000 groups (rekey by ad id).
  queries.push_back(
      {"Q3",
       [](Streamable<4> s) { return s.Map(RekeyTo(1000)).GroupCount(); },
       [](Streamable<4> s) { return s.Map(RekeyTo(1000)).GroupCount(); },
       [](Streamable<4> s) { return s.CombinePartials(); }});
  // Q4: top 5 of 100 groups. The PIQ computes full per-group counts
  // (top-k is not decomposable); merge combines them; the subscriber-side
  // TopK runs on the final stream.
  queries.push_back(
      {"Q4",
       [](Streamable<4> s) { return s.GroupCount().TopK(5); },
       [](Streamable<4> s) { return s.GroupCount(); },
       [](Streamable<4> s) { return s.CombinePartials(); }});
  return queries;
}

struct MethodResult {
  double throughput_meps = 0;
  double memory_mb = 0;
  double completeness = 1.0;
};

double Mb(size_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

// Single-latency execution (MinLatency / MaxLatency).
MethodResult RunSingleLatency(const Query& query,
                              const std::vector<Event>& events,
                              Timestamp window, Timestamp latency,
                              bool is_q4) {
  MemoryTracker tracker;
  typename Ingress<4>::Options options;
  options.punctuation_period = kPunctuationPeriod;
  options.reorder_latency = latency;
  QueryPipeline<4> q(options, &tracker);
  auto disordered = q.disordered().TumblingWindow(window);
  auto* sort = q.context()->graph.Make<SortOp<4>>(ImpatienceConfig{},
                                                  &tracker);
  disordered.tail()->SetDownstream(sort);
  Streamable<4> sorted(q.context(), sort);
  auto* sink = query.full(sorted).ToCounting();
  (void)is_q4;

  const double secs = TimeSeconds([&]() { q.Run(events); });
  IMPATIENCE_CHECK(sink->flushed());
  const double completeness =
      1.0 - static_cast<double>(sort->late_drops()) /
                static_cast<double>(events.size());
  return {Throughput(events.size(), secs), Mb(tracker.peak_bytes()),
          completeness};
}

// Basic framework: pass-through stages, the full query per output stream.
MethodResult RunBasic(const Query& query, const std::vector<Event>& events,
                      Timestamp window,
                      const std::vector<Timestamp>& latencies) {
  MemoryTracker tracker;
  typename Ingress<4>::Options ingress;
  ingress.punctuation_period = SIZE_MAX;  // The partition punctuates.
  QueryPipeline<4> q(ingress, &tracker);
  FrameworkOptions options;
  options.reorder_latencies = latencies;
  options.punctuation_period = kPunctuationPeriod;
  Streamables<4> streams =
      ToStreamables<4>(q.disordered().TumblingWindow(window), options);
  for (size_t i = 0; i < streams.size(); ++i) {
    query.full(streams.stream(i)).ToCounting();
  }
  const double secs = TimeSeconds([&]() { q.Run(events); });
  const double completeness =
      1.0 - static_cast<double>(streams.TotalDrops()) /
                static_cast<double>(events.size());
  return {Throughput(events.size(), secs), Mb(tracker.peak_bytes()),
          completeness};
}

// Advanced framework: PIQ per band, merge after each union; Q4's TopK runs
// on each output stream.
MethodResult RunAdvanced(const Query& query,
                         const std::vector<Event>& events,
                         Timestamp window,
                         const std::vector<Timestamp>& latencies,
                         bool is_q4) {
  MemoryTracker tracker;
  typename Ingress<4>::Options ingress;
  ingress.punctuation_period = SIZE_MAX;
  QueryPipeline<4> q(ingress, &tracker);
  FrameworkOptions options;
  options.reorder_latencies = latencies;
  options.punctuation_period = kPunctuationPeriod;
  Streamables<4> streams = ToStreamables<4>(
      q.disordered().TumblingWindow(window), options, query.piq,
      query.merge);
  for (size_t i = 0; i < streams.size(); ++i) {
    Streamable<4> out = streams.stream(i);
    if (is_q4) out = out.TopK(5);
    out.ToCounting();
  }
  const double secs = TimeSeconds([&]() { q.Run(events); });
  const double completeness =
      1.0 - static_cast<double>(streams.TotalDrops()) /
                static_cast<double>(events.size());
  return {Throughput(events.size(), secs), Mb(tracker.peak_bytes()),
          completeness};
}

void RunDataset(const std::string& name, const std::vector<Event>& events,
                Timestamp window, const std::vector<Timestamp>& latencies,
                const std::vector<std::string>& latency_labels) {
  Section("Figure 10 / Table II: " + name + " with reorder latencies {" +
          latency_labels[0] + ", " + latency_labels[1] + ", " +
          latency_labels[2] + "}");
  TablePrinter table({"query", "method", "throughput_Me/s", "memory_MB",
                      "completeness"});
  for (const Query& query : Queries()) {
    const bool is_q4 = query.name == "Q4";
    struct Row {
      const char* method;
      MethodResult result;
    };
    const Row rows[] = {
        {"Impatience(advanced)",
         RunAdvanced(query, events, window, latencies, is_q4)},
        {"Impatience(basic)", RunBasic(query, events, window, latencies)},
        {"MinLatency",
         RunSingleLatency(query, events, window, latencies.front(), is_q4)},
        {"MaxLatency",
         RunSingleLatency(query, events, window, latencies.back(), is_q4)},
    };
    for (const Row& row : rows) {
      table.PrintRow({query.name, row.method,
                      TablePrinter::Num(row.result.throughput_meps),
                      TablePrinter::Num(row.result.memory_mb),
                      TablePrinter::Num(row.result.completeness * 100, 1) +
                          "%"});
    }
  }
}

void Run() {
  const size_t n = EventCount(1000000);
  // Window sizes track each stream's event rate so a window holds many
  // events (otherwise aggregation reduces nothing and the PIQ stage has no
  // data to shrink): ~1000 events/s for CloudLog, ~3 events/s for
  // AndroidLog.
  RunDataset("CloudLog (1s windows)", BenchCloudLog(n).events, 1 * kSecond,
             {1 * kSecond, 1 * kMinute, 1 * kHour}, {"1s", "1m", "1h"});
  RunDataset("AndroidLog (5m windows)", BenchAndroidLog(n).events,
             5 * kMinute, {10 * kMinute, 1 * kHour, 1 * kDay},
             {"10m", "1h", "1d"});
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
