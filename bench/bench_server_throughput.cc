// Beyond the paper: ingestion-service throughput.
//
// Sweeps shard count x backpressure policy, pushing a CloudLog workload
// through the full wire path — client-side frame encoding, CRC, decode,
// session routing, bounded shard queues, per-shard Impatience framework
// pipelines — over the in-process loopback transport (no sockets, so the
// numbers isolate the service stack from the kernel's TCP path).
//
// Events are spread round-robin over 16 sessions; sessions hash to
// shards, so higher shard counts spread the pipeline work across queues.
// Under "reject"/"shed" the bounded queues may drop frames when a shard
// falls behind — the tables report delivered (pipeline-ingested) events
// alongside offered throughput.
//
// Emits one JSON document between BEGIN_JSON/END_JSON markers.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/histogram.h"
#include "common/timestamp.h"
#include "common/trace.h"
#include "server/client.h"
#include "server/ingest_service.h"

namespace impatience::bench {
namespace {

using server::BackpressurePolicy;
using server::IngestClient;
using server::IngestService;
using server::LoopbackChannel;
using server::ServiceOptions;
using server::ShardMetrics;

constexpr size_t kSessions = 16;
constexpr size_t kEventsPerFrame = 512;

struct Sample {
  size_t shards = 0;
  std::string policy;
  double offered_meps = 0;    // Events offered / wall-clock.
  double delivered_meps = 0;  // Events ingested by shard pipelines.
  uint64_t dropped_frames = 0;
  // Punctuation-to-emit latency across all shard pipelines.
  uint64_t punct_to_emit_p50_ns = 0;
  uint64_t punct_to_emit_p99_ns = 0;
};

std::vector<Sample>& Samples() {
  static std::vector<Sample> samples;
  return samples;
}

Sample RunOne(const std::vector<Event>& events, size_t shards,
              BackpressurePolicy policy) {
  ServiceOptions options;
  options.shards.num_shards = shards;
  options.shards.queue_capacity = 128;
  options.shards.backpressure = policy;
  options.shards.framework.reorder_latencies = {1 * kSecond, 1 * kMinute};
  options.shards.framework.punctuation_period = 10000;
  IngestService service(options);
  IngestClient client(std::make_unique<LoopbackChannel>(&service));

  // Pre-slice the dataset into per-session frames so the timed region
  // measures the wire path, not vector shuffling.
  std::vector<std::vector<Event>> frames;
  frames.reserve(events.size() / kEventsPerFrame + 1);
  for (size_t i = 0; i < events.size(); i += kEventsPerFrame) {
    const size_t end = std::min(i + kEventsPerFrame, events.size());
    frames.emplace_back(events.begin() + i, events.begin() + end);
  }

  const double secs = TimeSeconds([&]() {
    for (size_t i = 0; i < frames.size(); ++i) {
      client.SendEvents(/*session_id=*/i % kSessions, frames[i]);
    }
    client.Shutdown();  // Drain-and-flush barrier.
  });

  uint64_t delivered = 0;
  uint64_t dropped_frames = 0;
  HistogramSnapshot punct_to_emit;
  for (const ShardMetrics& m : service.manager().SnapshotShards()) {
    delivered += m.events_in - m.shed_events;
    dropped_frames += m.rejected_frames + m.shed_frames;
    punct_to_emit += m.sorter.punct_to_emit;
  }

  Sample s;
  s.shards = shards;
  s.policy = server::BackpressurePolicyName(policy);
  s.offered_meps = Throughput(events.size(), secs);
  s.delivered_meps = Throughput(delivered, secs);
  s.dropped_frames = dropped_frames;
  if (punct_to_emit.count() > 0) {
    s.punct_to_emit_p50_ns = punct_to_emit.P50();
    s.punct_to_emit_p99_ns = punct_to_emit.P99();
  }
  return s;
}

void Run() {
  const size_t n = EventCount(1000000);
  const Dataset cloudlog = BenchCloudLog(n);

  Section("Server ingestion throughput, CloudLog, " + std::to_string(n) +
          " events, loopback transport, " + std::to_string(kSessions) +
          " sessions");
  TablePrinter table({"shards", "policy", "offered_Me/s", "delivered_Me/s",
                      "dropped_frames"});
  for (const size_t shards : {1u, 2u, 4u}) {
    for (const BackpressurePolicy policy :
         {BackpressurePolicy::kBlock, BackpressurePolicy::kRejectFrame,
          BackpressurePolicy::kShedOldest}) {
      const Sample s = RunOne(cloudlog.events, shards, policy);
      table.PrintRow({TablePrinter::Int(s.shards), s.policy,
                      TablePrinter::Num(s.offered_meps),
                      TablePrinter::Num(s.delivered_meps),
                      TablePrinter::Int(s.dropped_frames)});
      Samples().push_back(s);
    }
  }

  std::printf(
      "\nBEGIN_JSON\n{\"kernel_level\": \"%s\", \"bench_seed\": %llu,\n"
      "\"server_throughput\": [\n",
      BenchKernelLevel(), static_cast<unsigned long long>(BenchSeed()));
  const std::vector<Sample>& samples = Samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    std::printf(
        "  {\"shards\": %zu, \"policy\": \"%s\", \"offered_meps\": %.4f, "
        "\"delivered_meps\": %.4f, \"dropped_frames\": %llu, "
        "\"punct_to_emit_p50_ns\": %llu, \"punct_to_emit_p99_ns\": %llu}%s\n",
        samples[i].shards, samples[i].policy.c_str(),
        samples[i].offered_meps, samples[i].delivered_meps,
        static_cast<unsigned long long>(samples[i].dropped_frames),
        static_cast<unsigned long long>(samples[i].punct_to_emit_p50_ns),
        static_cast<unsigned long long>(samples[i].punct_to_emit_p99_ns),
        i + 1 < samples.size() ? "," : "");
  }
  std::printf("]}\nEND_JSON\n");
  std::fflush(stdout);

  // With IMPATIENCE_TRACE=1 the whole sweep was recorded; dump the spans
  // so the run doubles as a trace demo (load the file in Perfetto).
  if (trace::Enabled()) {
    const char* path = std::getenv("IMPATIENCE_TRACE_OUT");
    if (path == nullptr) path = "bench_server_throughput.trace.json";
    trace::DrainStats stats;
    const std::string json = trace::DrainChromeJson(&stats);
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr,
                   "trace: wrote %llu spans (%llu dropped, %llu threads) "
                   "to %s\n",
                   static_cast<unsigned long long>(stats.spans),
                   static_cast<unsigned long long>(stats.dropped),
                   static_cast<unsigned long long>(stats.threads), path);
    }
  }
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
