// Beyond the paper: ingestion-service throughput.
//
// Sweeps shard count x backpressure policy, pushing a CloudLog workload
// through the full wire path — client-side frame encoding, CRC, decode,
// session routing, bounded shard queues, per-shard Impatience framework
// pipelines — over the in-process loopback transport (no sockets, so the
// numbers isolate the service stack from the kernel's TCP path).
//
// Events are spread round-robin over 16 sessions; sessions hash to
// shards, so higher shard counts spread the pipeline work across queues.
// Under "reject"/"shed" the bounded queues may drop frames when a shard
// falls behind — the tables report delivered (pipeline-ingested) events
// alongside offered throughput.
//
// A second arm sweeps concurrent CONNECTION counts over the real TCP
// epoll front end: the same workload split across up to 1000 live
// loopback sockets, multiplexed by the bounded I/O-thread pool
// (IMPATIENCE_IO_THREADS), with a handful of driver threads fanning the
// frames out. This measures what the thread-per-connection model could
// not offer at all: a thousand concurrent peers on a fixed number of
// server threads. One extra socket holds a live streaming-telemetry
// subscription (spans + metrics deltas) AND a wildcard result-stream
// subscription for the whole sweep; the table reports the chunks each
// received and whether the delivered streams stayed gap-free
// (consecutive per-subscription sequence numbers), and the JSON stamps
// the result-delivery counters (chunks, records, drops, sheds).
//
// Emits one JSON document between BEGIN_JSON/END_JSON markers.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/histogram.h"
#include "common/timestamp.h"
#include "common/trace.h"
#include "server/client.h"
#include "server/ingest_service.h"
#include "server/tcp_transport.h"
#include "storage/spill.h"

namespace impatience::bench {
namespace {

using server::BackpressurePolicy;
using server::IngestClient;
using server::IngestService;
using server::IoLoopMetrics;
using server::LoopbackChannel;
using server::ServiceOptions;
using server::ShardMetrics;
using server::TcpChannel;
using server::TcpServer;
using server::TransportMetrics;

constexpr size_t kSessions = 16;
constexpr size_t kEventsPerFrame = 512;

struct Sample {
  size_t shards = 0;
  std::string policy;
  double offered_meps = 0;    // Events offered / wall-clock.
  double delivered_meps = 0;  // Events ingested by shard pipelines.
  uint64_t dropped_frames = 0;
  // Punctuation-to-emit latency across all shard pipelines.
  uint64_t punct_to_emit_p50_ns = 0;
  uint64_t punct_to_emit_p99_ns = 0;
  // Spill-tier activity summed across shards (nonzero only when a memory
  // budget — typically IMPATIENCE_MEMORY_BUDGET — forces the disk tier).
  uint64_t runs_spilled = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_read_bytes = 0;
};

std::vector<Sample>& Samples() {
  static std::vector<Sample> samples;
  return samples;
}

struct ConnSample {
  size_t connections = 0;  // Requested concurrent client sockets.
  size_t io_threads = 0;   // Bounded epoll pool actually serving them.
  size_t peak_open = 0;    // Live connections observed while all were open.
  double offered_meps = 0;
  double delivered_meps = 0;
  uint64_t epollout_stalls = 0;
  uint64_t closed_slow = 0;
  // A live telemetry subscriber rides the sweep on its own socket: the
  // delivered chunk stream must be gap-free (consecutive seqs), with any
  // shed chunks visible only through the cumulative dropped counter.
  uint64_t telemetry_chunks = 0;
  uint64_t telemetry_dropped = 0;
  bool telemetry_gap_free = true;
  // The same socket also holds a live result-stream subscription
  // (wildcard): chunks/records it received, the cumulative dropped-record
  // count from the exporter, and whether delivered seqs stayed gap-free.
  uint64_t result_chunks = 0;
  uint64_t result_records = 0;
  uint64_t result_dropped_records = 0;
  uint64_t result_subscribers_shed = 0;
  bool result_gap_free = true;
};

std::vector<ConnSample>& ConnSamples() {
  static std::vector<ConnSample> samples;
  return samples;
}

ConnSample RunConnections(const std::vector<Event>& events,
                          size_t connections) {
  ServiceOptions options;
  options.shards.num_shards = 2;
  options.shards.queue_capacity = 256;
  options.shards.backpressure = BackpressurePolicy::kBlock;  // Lossless.
  options.shards.framework.reorder_latencies = {1 * kSecond, 1 * kMinute};
  options.shards.framework.punctuation_period = 10000;
  IngestService service(options);
  TcpServer server(&service, /*port=*/0);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "bench: TcpServer failed to start: %s\n",
                 error.c_str());
    return {};
  }

  std::vector<std::vector<Event>> frames;
  frames.reserve(events.size() / kEventsPerFrame + 1);
  for (size_t i = 0; i < events.size(); i += kEventsPerFrame) {
    const size_t end = std::min(i + kEventsPerFrame, events.size());
    frames.emplace_back(events.begin() + i, events.begin() + end);
  }

  // One extra socket subscribes to the live span + metrics-delta streams
  // for the whole sweep and checks the delivered stream is gap-free.
  std::atomic<bool> sub_stop{false};
  std::atomic<uint64_t> sub_chunks{0};
  std::atomic<uint64_t> sub_dropped{0};
  std::atomic<bool> sub_gap_free{true};
  std::atomic<uint64_t> res_chunks{0};
  std::atomic<uint64_t> res_records{0};
  std::atomic<bool> res_gap_free{true};
  std::thread subscriber([&]() {
    auto channel = TcpChannel::Connect(server.port());
    if (channel == nullptr) return;
    IngestClient sub(std::move(channel));
    if (!sub.Subscribe(/*session_id=*/0,
                       server::kTelemetrySpans | server::kTelemetryMetrics)) {
      return;
    }
    // The same socket also rides a live result-stream subscription, so
    // the sweep doubles as a delivery check under real load: seqs must
    // stay consecutive no matter how many chunks the bounded write
    // budget sheds.
    if (!sub.SubscribeResults(/*session_id=*/0, server::kResultFilterAll)) {
      return;
    }
    uint64_t expect = 1;
    uint64_t res_expect = 1;
    server::Frame chunk;
    while (!sub_stop.load(std::memory_order_relaxed)) {
      bool got = false;
      if (sub.PollTelemetry(&chunk)) {
        got = true;
        if (chunk.telemetry_seq != expect) sub_gap_free.store(false);
        expect = chunk.telemetry_seq + 1;
        sub_chunks.fetch_add(1, std::memory_order_relaxed);
        sub_dropped.store(chunk.telemetry_dropped,
                          std::memory_order_relaxed);
      }
      if (sub.PollResults(&chunk)) {
        got = true;
        if (chunk.result_seq != res_expect) res_gap_free.store(false);
        res_expect = chunk.result_seq + 1;
        res_chunks.fetch_add(1, std::memory_order_relaxed);
        res_records.fetch_add(chunk.events.size(),
                              std::memory_order_relaxed);
      }
      if (!got) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  });

  // A handful of driver threads each own a slice of the connections and
  // spray their share of the frames round-robin across that slice, so
  // every socket carries traffic while all of them are open at once.
  const size_t kDrivers = std::min<size_t>(8, connections);
  std::atomic<size_t> done_sending{0};
  std::atomic<bool> release{false};
  std::atomic<bool> failed{false};
  size_t peak_open = 0;

  const double secs = TimeSeconds([&]() {
    std::vector<std::thread> drivers;
    drivers.reserve(kDrivers);
    for (size_t d = 0; d < kDrivers; ++d) {
      drivers.emplace_back([&, d]() {
        // One session per connection: the per-connection FlushSession
        // below then proves every frame this socket sent was ingested
        // (frames of one session ride one connection, in order).
        std::vector<std::unique_ptr<IngestClient>> clients;
        std::vector<uint64_t> sessions;
        for (size_t c = d; c < connections; c += kDrivers) {
          auto channel = TcpChannel::Connect(server.port());
          if (channel == nullptr) {
            failed.store(true);
            break;
          }
          clients.push_back(
              std::make_unique<IngestClient>(std::move(channel)));
          sessions.push_back(c);
        }
        if (!clients.empty()) {
          std::vector<bool> sent(clients.size(), false);
          size_t k = 0;
          for (size_t f = d; f < frames.size(); f += kDrivers, ++k) {
            const size_t slot = k % clients.size();
            if (!clients[slot]->SendEvents(sessions[slot], frames[f])) {
              failed.store(true);
              break;
            }
            sent[slot] = true;
          }
          // Lossless barrier: don't count a socket done until the shard
          // pipeline acked everything it sent.
          for (size_t slot = 0; slot < clients.size(); ++slot) {
            if (sent[slot] && !clients[slot]->FlushSession(sessions[slot])) {
              failed.store(true);
            }
          }
        }
        done_sending.fetch_add(1);
        // Hold every socket open until the main thread has observed the
        // full concurrent population.
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    }
    while (done_sending.load() < kDrivers) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const TransportMetrics tm = server.SnapshotTransport();
    for (const IoLoopMetrics& l : tm.loops) peak_open += l.connections;
    release.store(true, std::memory_order_release);
    for (std::thread& t : drivers) t.join();
    // Drain-and-flush barrier through the same front end.
    auto channel = TcpChannel::Connect(server.port());
    if (channel != nullptr) {
      IngestClient control(std::move(channel));
      if (!control.Shutdown()) failed.store(true);
    } else {
      failed.store(true);
    }
  });
  if (failed.load()) {
    std::fprintf(stderr,
                 "bench: connection sweep at %zu connections hit a "
                 "transport failure\n",
                 connections);
  }

  ConnSample s;
  s.connections = connections;
  s.io_threads = server.io_threads();
  s.peak_open = peak_open;
  s.offered_meps = Throughput(events.size(), secs);
  uint64_t delivered = 0;
  for (const ShardMetrics& m : service.manager().SnapshotShards()) {
    delivered += m.events_in - m.shed_events;
  }
  s.delivered_meps = Throughput(delivered, secs);
  const TransportMetrics tm = server.SnapshotTransport();
  for (const IoLoopMetrics& l : tm.loops) {
    s.epollout_stalls += l.epollout_stalls;
    s.closed_slow += l.closed_slow;
  }
  sub_stop.store(true, std::memory_order_relaxed);
  subscriber.join();
  s.telemetry_chunks = sub_chunks.load();
  s.telemetry_dropped = sub_dropped.load();
  s.telemetry_gap_free = sub_gap_free.load();
  s.result_chunks = res_chunks.load();
  s.result_records = res_records.load();
  s.result_gap_free = res_gap_free.load();
  // Exporter-side accounting (covers drops after the last delivered
  // chunk, which the in-stream cumulative counter cannot).
  const server::ServerMetrics sm = service.Snapshot();
  s.result_dropped_records = sm.results.records_dropped;
  s.result_subscribers_shed = sm.results.subscribers_shed;
  server.Stop();
  return s;
}

Sample RunOne(const std::vector<Event>& events, size_t shards,
              BackpressurePolicy policy) {
  ServiceOptions options;
  options.shards.num_shards = shards;
  options.shards.queue_capacity = 128;
  options.shards.backpressure = policy;
  options.shards.framework.reorder_latencies = {1 * kSecond, 1 * kMinute};
  options.shards.framework.punctuation_period = 10000;
  IngestService service(options);
  IngestClient client(std::make_unique<LoopbackChannel>(&service));

  // Pre-slice the dataset into per-session frames so the timed region
  // measures the wire path, not vector shuffling.
  std::vector<std::vector<Event>> frames;
  frames.reserve(events.size() / kEventsPerFrame + 1);
  for (size_t i = 0; i < events.size(); i += kEventsPerFrame) {
    const size_t end = std::min(i + kEventsPerFrame, events.size());
    frames.emplace_back(events.begin() + i, events.begin() + end);
  }

  const double secs = TimeSeconds([&]() {
    for (size_t i = 0; i < frames.size(); ++i) {
      client.SendEvents(/*session_id=*/i % kSessions, frames[i]);
    }
    client.Shutdown();  // Drain-and-flush barrier.
  });

  uint64_t delivered = 0;
  uint64_t dropped_frames = 0;
  HistogramSnapshot punct_to_emit;
  uint64_t runs_spilled = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_read_bytes = 0;
  for (const ShardMetrics& m : service.manager().SnapshotShards()) {
    delivered += m.events_in - m.shed_events;
    dropped_frames += m.rejected_frames + m.shed_frames;
    punct_to_emit += m.sorter.punct_to_emit;
    runs_spilled += m.sorter.runs_spilled;
    spill_bytes_written += m.sorter.spill_bytes_written;
    spill_read_bytes += m.sorter.spill_read_bytes;
  }

  Sample s;
  s.shards = shards;
  s.policy = server::BackpressurePolicyName(policy);
  s.offered_meps = Throughput(events.size(), secs);
  s.delivered_meps = Throughput(delivered, secs);
  s.dropped_frames = dropped_frames;
  if (punct_to_emit.count() > 0) {
    s.punct_to_emit_p50_ns = punct_to_emit.P50();
    s.punct_to_emit_p99_ns = punct_to_emit.P99();
  }
  s.runs_spilled = runs_spilled;
  s.spill_bytes_written = spill_bytes_written;
  s.spill_read_bytes = spill_read_bytes;
  return s;
}

void Run() {
  const size_t n = EventCount(1000000);
  const Dataset cloudlog = BenchCloudLog(n);

  Section("Server ingestion throughput, CloudLog, " + std::to_string(n) +
          " events, loopback transport, " + std::to_string(kSessions) +
          " sessions");
  TablePrinter table({"shards", "policy", "offered_Me/s", "delivered_Me/s",
                      "dropped_frames"});
  for (const size_t shards : {1u, 2u, 4u}) {
    for (const BackpressurePolicy policy :
         {BackpressurePolicy::kBlock, BackpressurePolicy::kRejectFrame,
          BackpressurePolicy::kShedOldest}) {
      const Sample s = RunOne(cloudlog.events, shards, policy);
      table.PrintRow({TablePrinter::Int(s.shards), s.policy,
                      TablePrinter::Num(s.offered_meps),
                      TablePrinter::Num(s.delivered_meps),
                      TablePrinter::Int(s.dropped_frames)});
      Samples().push_back(s);
    }
  }

  Section("Concurrent connections over TCP epoll front end, " +
          std::to_string(n) + " events, IMPATIENCE_IO_THREADS pool");
  TablePrinter conn_table({"conns", "io_threads", "peak_open",
                           "offered_Me/s", "delivered_Me/s", "stalls",
                           "shed", "tel_chunks", "tel_gapfree", "res_chunks",
                           "res_gapfree"});
  for (const size_t connections : {64u, 256u, 1000u}) {
    const ConnSample s = RunConnections(cloudlog.events, connections);
    conn_table.PrintRow({TablePrinter::Int(s.connections),
                         TablePrinter::Int(s.io_threads),
                         TablePrinter::Int(s.peak_open),
                         TablePrinter::Num(s.offered_meps),
                         TablePrinter::Num(s.delivered_meps),
                         TablePrinter::Int(s.epollout_stalls),
                         TablePrinter::Int(s.closed_slow),
                         TablePrinter::Int(s.telemetry_chunks),
                         s.telemetry_gap_free ? "yes" : "NO",
                         TablePrinter::Int(s.result_chunks),
                         s.result_gap_free ? "yes" : "NO"});
    ConnSamples().push_back(s);
  }

  std::printf(
      "\nBEGIN_JSON\n{\"kernel_level\": \"%s\", \"bench_seed\": %llu, "
      "\"memory_budget\": %zu,\n\"server_throughput\": [\n",
      BenchKernelLevel(), static_cast<unsigned long long>(BenchSeed()),
      storage::MemoryBudgetFromEnv());
  const std::vector<Sample>& samples = Samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    std::printf(
        "  {\"shards\": %zu, \"policy\": \"%s\", \"offered_meps\": %.4f, "
        "\"delivered_meps\": %.4f, \"dropped_frames\": %llu, "
        "\"punct_to_emit_p50_ns\": %llu, \"punct_to_emit_p99_ns\": %llu, "
        "\"runs_spilled\": %llu, \"spill_bytes_written\": %llu, "
        "\"spill_read_bytes\": %llu}%s\n",
        samples[i].shards, samples[i].policy.c_str(),
        samples[i].offered_meps, samples[i].delivered_meps,
        static_cast<unsigned long long>(samples[i].dropped_frames),
        static_cast<unsigned long long>(samples[i].punct_to_emit_p50_ns),
        static_cast<unsigned long long>(samples[i].punct_to_emit_p99_ns),
        static_cast<unsigned long long>(samples[i].runs_spilled),
        static_cast<unsigned long long>(samples[i].spill_bytes_written),
        static_cast<unsigned long long>(samples[i].spill_read_bytes),
        i + 1 < samples.size() ? "," : "");
  }
  std::printf("],\n\"connection_sweep\": [\n");
  const std::vector<ConnSample>& conns = ConnSamples();
  for (size_t i = 0; i < conns.size(); ++i) {
    std::printf(
        "  {\"connections\": %zu, \"io_threads\": %zu, \"peak_open\": %zu, "
        "\"offered_meps\": %.4f, \"delivered_meps\": %.4f, "
        "\"epollout_stalls\": %llu, \"closed_slow\": %llu, "
        "\"telemetry_chunks\": %llu, \"telemetry_dropped\": %llu, "
        "\"telemetry_gap_free\": %s, "
        "\"result_chunks\": %llu, \"result_records\": %llu, "
        "\"result_dropped_records\": %llu, "
        "\"result_subscribers_shed\": %llu, "
        "\"result_gap_free\": %s}%s\n",
        conns[i].connections, conns[i].io_threads, conns[i].peak_open,
        conns[i].offered_meps, conns[i].delivered_meps,
        static_cast<unsigned long long>(conns[i].epollout_stalls),
        static_cast<unsigned long long>(conns[i].closed_slow),
        static_cast<unsigned long long>(conns[i].telemetry_chunks),
        static_cast<unsigned long long>(conns[i].telemetry_dropped),
        conns[i].telemetry_gap_free ? "true" : "false",
        static_cast<unsigned long long>(conns[i].result_chunks),
        static_cast<unsigned long long>(conns[i].result_records),
        static_cast<unsigned long long>(conns[i].result_dropped_records),
        static_cast<unsigned long long>(conns[i].result_subscribers_shed),
        conns[i].result_gap_free ? "true" : "false",
        i + 1 < conns.size() ? "," : "");
  }
  std::printf("]}\nEND_JSON\n");
  std::fflush(stdout);

  // With IMPATIENCE_TRACE=1 the whole sweep was recorded; dump the spans
  // so the run doubles as a trace demo (load the file in Perfetto).
  if (trace::Enabled()) {
    const char* path = std::getenv("IMPATIENCE_TRACE_OUT");
    if (path == nullptr) path = "bench_server_throughput.trace.json";
    trace::DrainStats stats;
    const std::string json = trace::DrainChromeJson(&stats);
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr,
                   "trace: wrote %llu spans (%llu dropped, %llu threads) "
                   "to %s\n",
                   static_cast<unsigned long long>(stats.spans),
                   static_cast<unsigned long long>(stats.dropped),
                   static_cast<unsigned long long>(stats.threads), path);
    }
  }
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
