// Figure 7: offline sorting throughput (no punctuations; sort after
// receiving all events).
//
//  (a) real datasets — paper: Impatience wins on both, 36.2% (CloudLog) /
//      24.6% (AndroidLog) over the best competitor; Heapsort worst.
//  (b) synthetic, amount of disorder d in {1024..4} at p=30% — paper:
//      Impatience pulls ahead as d shrinks.
//  (c) synthetic, percent of disorder p in {100..1} at d=64 — paper: at
//      p=1% Timsort closes the gap (both scan-dominated); Heapsort flat.
//
// Events are full 44-byte records (two 64-bit timestamps, 32-bit key,
// 64-bit hash, four 32-bit payload columns), as in the paper's setup.

#include <vector>

#include "bench/harness.h"
#include "sort/sort_algorithms.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

double MeasureOffline(OfflineAlgorithm algorithm,
                      const std::vector<Event>& events) {
  // Two runs; report the second (warm caches, warm allocator arena).
  double secs = 0;
  for (int run = 0; run < 2; ++run) {
    std::vector<Event> copy = events;
    secs = TimeSeconds([&copy, algorithm]() {
      OfflineSort<Event>(algorithm, &copy);
    });
    // Guard against the sort being optimized away / failing silently.
    IMPATIENCE_CHECK(copy.size() == events.size());
  }
  return Throughput(events.size(), secs);
}

void ReportDataset(TablePrinter* table, const std::string& label,
                   const std::vector<Event>& events) {
  std::vector<std::string> row = {label};
  for (const OfflineAlgorithm algorithm : kAllOfflineAlgorithms) {
    row.push_back(TablePrinter::Num(MeasureOffline(algorithm, events)));
  }
  table->PrintRow(row);
}

std::vector<std::string> Headers() {
  std::vector<std::string> headers = {"workload"};
  for (const OfflineAlgorithm algorithm : kAllOfflineAlgorithms) {
    headers.push_back(OfflineAlgorithmName(algorithm));
  }
  return headers;
}

void Run() {
  // Offline sorting is cache-regime sensitive: the paper's 20M events were
  // ~90x its machine's LLC. Default to 8M events (~350 MB, beyond this
  // machine's LLC) rather than the suite-wide 2M.
  const size_t n = EventCount(8000000);

  Section("Figure 7(a): offline throughput on real datasets "
          "(M events/s; paper: Impatience best on both)");
  {
    TablePrinter table(Headers());
    ReportDataset(&table, "CloudLog", BenchCloudLog(n).events);
    ReportDataset(&table, "AndroidLog", BenchAndroidLog(n).events);
  }

  Section("Figure 7(b): synthetic, amount of disorder (stddev d, p=30%)");
  {
    TablePrinter table(Headers());
    for (const double d : {1024.0, 256.0, 64.0, 16.0, 4.0}) {
      ReportDataset(&table, "d=" + TablePrinter::Num(d, 0),
                    BenchSynthetic(n, 30, d).events);
    }
  }

  Section("Figure 7(c): synthetic, percent of disorder (p, d=64)");
  {
    TablePrinter table(Headers());
    for (const double p : {100.0, 30.0, 10.0, 3.0, 1.0}) {
      ReportDataset(&table, "p=" + TablePrinter::Num(p, 0) + "%",
                    BenchSynthetic(n, p, 64).events);
    }
  }
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
