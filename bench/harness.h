// Shared benchmark-harness utilities: dataset sizing via environment
// variables, wall-clock throughput measurement, and paper-style table
// printing.
//
// Every bench binary prints the rows/series of one table or figure from the
// paper (see EXPERIMENTS.md for the index and the paper-vs-measured
// comparison). Absolute numbers differ from the paper's 2015-era Xeon; the
// *shapes* are what the harness is expected to reproduce.

#ifndef IMPATIENCE_BENCH_HARNESS_H_
#define IMPATIENCE_BENCH_HARNESS_H_

#include <malloc.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "workload/generators.h"

namespace impatience::bench {

// Process-wide benchmark setup: route large allocations through the brk
// heap so freed pages are reused across measurement runs instead of being
// returned to the kernel and faulted back in (page-fault time would
// otherwise dominate the allocation-heavy sorters and distort comparisons
// with the in-place ones).
inline void InitBenchProcess() {
#ifdef M_MMAP_THRESHOLD
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
#endif
}

// Number of events per dataset: $IMPATIENCE_BENCH_EVENTS, default 2M
// (the paper uses 20M; shapes are scale-invariant, runtime is not).
inline size_t EventCount(size_t default_count = 2000000) {
  const char* env = std::getenv("IMPATIENCE_BENCH_EVENTS");
  if (env != nullptr) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<size_t>(n);
  }
  return default_count;
}

// Wall-clock seconds for `fn()`.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Million events per second.
inline double Throughput(size_t events, double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<double>(events) / seconds / 1e6;
}

// One explicit RNG seed for every bench workload: $IMPATIENCE_BENCH_SEED,
// default 42. The same seed reproduces byte-identical datasets (and thus
// run-to-run comparable numbers); varying it checks that a result is not
// an artifact of one particular input.
inline uint64_t BenchSeed() {
  const char* env = std::getenv("IMPATIENCE_BENCH_SEED");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') return static_cast<uint64_t>(seed);
    std::fprintf(stderr, "ignoring non-numeric IMPATIENCE_BENCH_SEED=%s\n",
                 env);
  }
  return 42;
}

// Name of the kernel dispatch level the process runs at ("scalar", "sse2",
// "avx2"). Every bench stamps this plus BenchSeed() into its JSON so that
// BENCH_*.json trajectories stay comparable across machines — a throughput
// shift that coincides with a level change is dispatch, not regression.
inline const char* BenchKernelLevel() {
  return KernelLevelName(ActiveKernelLevel());
}

// The paper's three workloads at bench scale, deterministic given the seed.
inline Dataset BenchSynthetic(size_t n, double percent = 30,
                              double stddev = 64) {
  SyntheticConfig config;
  config.num_events = n;
  config.percent_disorder = percent;
  config.disorder_stddev = stddev;
  config.seed = BenchSeed();
  return GenerateSynthetic(config);
}

inline Dataset BenchCloudLog(size_t n) {
  CloudLogConfig config;
  config.num_events = n;
  config.seed = BenchSeed();
  return GenerateCloudLog(config);
}

inline Dataset BenchAndroidLog(size_t n) {
  AndroidLogConfig config;
  config.num_events = n;
  config.seed = BenchSeed();
  return GenerateAndroidLog(config);
}

// ---------------------------------------------------------------------------
// Fixed-width table printing.

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const std::string& h : headers_) {
      widths_.push_back(h.size() < 12 ? 12 : h.size() + 2);
    }
    PrintRowStrings(headers_);
    std::string rule;
    for (size_t w : widths_) rule += std::string(w, '-') + "  ";
    std::printf("%s\n", rule.c_str());
  }

  void PrintRow(const std::vector<std::string>& cells) {
    PrintRowStrings(cells);
  }

  static std::string Num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string Int(uint64_t v) { return std::to_string(v); }

 private:
  void PrintRowStrings(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      const size_t w = i < widths_.size() ? widths_[i] : 12;
      std::printf("%-*s  ", static_cast<int>(w), cells[i].c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::fflush(stdout);
}

}  // namespace impatience::bench

#endif  // IMPATIENCE_BENCH_HARNESS_H_
