// Observability overhead: cost of the always-compiled tracing and
// latency instrumentation on the streaming push path.
//
// Four arms over the same CloudLog workload through ImpatienceSorter:
//
//   disabled    IMPATIENCE_TRACE off (the shipping default): every
//               TRACE_SPAN is one relaxed load + predictable branch.
//   enabled     Spans recorded into per-thread rings (two TSC reads plus
//               relaxed stores per span).
//   subscribed  Spans recorded AND streamed: a TelemetryExporter drain
//               thread harvests the rings into bounded chunks and fans
//               them out to a live subscriber while the push loop runs —
//               the cost of `impatience_trace --follow` on a hot server.
//   span_hot    A worst-case microbenchmark that opens a span per *event*
//               (the real code traces per punctuation round, orders of
//               magnitude coarser) — an upper bound, not a shipping path.
//
// Acceptance (ISSUE 4): disabled-arm throughput within 1% of a build
// without the instrumentation. The disabled arm here gives the in-tree
// number; compare against the pre-PR baseline via EXPERIMENTS.md.
//
// Emits one JSON document between BEGIN_JSON/END_JSON markers.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/trace.h"
#include "server/telemetry_exporter.h"
#include "server/wire_format.h"
#include "sort/impatience_sorter.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

constexpr size_t kPunctFrequency = 1000;
constexpr Timestamp kReorderLatency = 60 * kSecond;

// One timed streaming pass: push every event, punctuate every
// kPunctFrequency events at high_watermark - reorder_latency. Identical
// shape to bench_fig8_online's loop so arms are comparable.
double MeasurePush(const std::vector<Event>& events, bool span_per_event) {
  ImpatienceSorter<Event> sorter;
  std::vector<Event> out;
  out.reserve(1 << 20);
  size_t emitted = 0;

  const double secs = TimeSeconds([&]() {
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    for (size_t i = 0; i < events.size(); ++i) {
      if (span_per_event) {
        TRACE_SPAN("bench.push");
        sorter.Push(events[i]);
      } else {
        sorter.Push(events[i]);
      }
      if (events[i].sync_time > high_watermark) {
        high_watermark = events[i].sync_time;
      }
      if ((i + 1) % kPunctFrequency == 0) {
        const Timestamp p = high_watermark - kReorderLatency;
        if (p > last_punct) {
          sorter.OnPunctuation(p, &out);
          last_punct = p;
          emitted += out.size();
          out.clear();
        }
      }
    }
    sorter.Flush(&out);
    emitted += out.size();
    out.clear();
  });
  IMPATIENCE_CHECK(emitted + sorter.late_drops() == events.size());
  return Throughput(events.size(), secs);
}

struct Arm {
  const char* name;
  bool enable_trace;
  bool span_per_event;
  bool subscriber;  // Live streaming-telemetry subscriber while pushing.
};

void Run() {
  const size_t n = EventCount();
  const Dataset cloudlog = BenchCloudLog(n);
  const bool was_enabled = trace::Enabled();

  Section("Tracing overhead on the streaming push path, CloudLog, " +
          std::to_string(n) + " events, punctuation every " +
          std::to_string(kPunctFrequency) + " events");

  const Arm arms[] = {
      {"disabled", false, false, false},
      {"enabled", true, false, false},
      {"subscribed", true, false, true},
      {"span_hot", true, true, false},
  };
  constexpr size_t kArms = 4;
  constexpr int kReps = 3;

  TablePrinter table({"arm", "best_Me/s", "vs_disabled", "chunks"});
  double results[kArms] = {0, 0, 0, 0};
  uint64_t chunk_counts[kArms] = {0, 0, 0, 0};
  uint64_t chunk_bytes[kArms] = {0, 0, 0, 0};
  for (size_t a = 0; a < kArms; ++a) {
    trace::SetEnabled(arms[a].enable_trace);

    // The subscribed arm runs the real exporter drain thread with a live
    // always-accepting subscriber, so the rings are harvested, chunked,
    // and encoded concurrently with the push loop.
    std::unique_ptr<server::TelemetryExporter> exporter;
    std::atomic<uint64_t> chunks{0};
    std::atomic<uint64_t> bytes{0};
    if (arms[a].subscriber) {
      server::TelemetryOptions topts;
      topts.span_interval_ms = 10;
      exporter = std::make_unique<server::TelemetryExporter>(
          topts, [] { return std::vector<server::ShardMetrics>(); });
      exporter->Subscribe(/*session_id=*/0, server::kTelemetrySpans,
                          [&](std::string frame) {
                            chunks.fetch_add(1, std::memory_order_relaxed);
                            bytes.fetch_add(frame.size(),
                                            std::memory_order_relaxed);
                            return true;
                          });
    }

    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      best = std::max(best,
                      MeasurePush(cloudlog.events, arms[a].span_per_event));
      // Keep rings from accumulating across reps when recording (the
      // subscribed arm's exporter drains them continuously instead).
      if (arms[a].enable_trace && !arms[a].subscriber) {
        trace::DrainChromeJson();
      }
    }
    if (exporter != nullptr) {
      exporter->Tick();  // Final harvest so trailing spans are chunked.
      exporter->Stop();
      exporter.reset();
    }
    results[a] = best;
    chunk_counts[a] = chunks.load();
    chunk_bytes[a] = bytes.load();
    table.PrintRow({arms[a].name, TablePrinter::Num(best),
                    TablePrinter::Num(100.0 * best / results[0], 2) + "%",
                    std::to_string(chunk_counts[a])});
  }
  trace::SetEnabled(was_enabled);

  std::printf(
      "\nBEGIN_JSON\n{\"kernel_level\": \"%s\", \"bench_seed\": %llu,\n"
      "\"trace_overhead\": [\n",
      BenchKernelLevel(), static_cast<unsigned long long>(BenchSeed()));
  for (size_t a = 0; a < kArms; ++a) {
    std::printf(
        "  {\"arm\": \"%s\", \"throughput_meps\": %.4f, "
        "\"relative_to_disabled\": %.4f, \"telemetry_chunks\": %llu, "
        "\"telemetry_bytes\": %llu}%s\n",
        arms[a].name, results[a], results[a] / results[0],
        static_cast<unsigned long long>(chunk_counts[a]),
        static_cast<unsigned long long>(chunk_bytes[a]),
        a + 1 < kArms ? "," : "");
  }
  std::printf("]}\nEND_JSON\n");
  std::fflush(stdout);
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
