// Observability overhead: cost of the always-compiled tracing and
// latency instrumentation on the streaming push path.
//
// Three arms over the same CloudLog workload through ImpatienceSorter:
//
//   disabled   IMPATIENCE_TRACE off (the shipping default): every
//              TRACE_SPAN is one relaxed load + predictable branch.
//   enabled    Spans recorded into per-thread rings (two TSC reads plus
//              relaxed stores per span).
//   span_hot   A worst-case microbenchmark that opens a span per *event*
//              (the real code traces per punctuation round, orders of
//              magnitude coarser) — an upper bound, not a shipping path.
//
// Acceptance (ISSUE 4): disabled-arm throughput within 1% of a build
// without the instrumentation. The disabled arm here gives the in-tree
// number; compare against the pre-PR baseline via EXPERIMENTS.md.
//
// Emits one JSON document between BEGIN_JSON/END_JSON markers.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/trace.h"
#include "sort/impatience_sorter.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

constexpr size_t kPunctFrequency = 1000;
constexpr Timestamp kReorderLatency = 60 * kSecond;

// One timed streaming pass: push every event, punctuate every
// kPunctFrequency events at high_watermark - reorder_latency. Identical
// shape to bench_fig8_online's loop so arms are comparable.
double MeasurePush(const std::vector<Event>& events, bool span_per_event) {
  ImpatienceSorter<Event> sorter;
  std::vector<Event> out;
  out.reserve(1 << 20);
  size_t emitted = 0;

  const double secs = TimeSeconds([&]() {
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    for (size_t i = 0; i < events.size(); ++i) {
      if (span_per_event) {
        TRACE_SPAN("bench.push");
        sorter.Push(events[i]);
      } else {
        sorter.Push(events[i]);
      }
      if (events[i].sync_time > high_watermark) {
        high_watermark = events[i].sync_time;
      }
      if ((i + 1) % kPunctFrequency == 0) {
        const Timestamp p = high_watermark - kReorderLatency;
        if (p > last_punct) {
          sorter.OnPunctuation(p, &out);
          last_punct = p;
          emitted += out.size();
          out.clear();
        }
      }
    }
    sorter.Flush(&out);
    emitted += out.size();
    out.clear();
  });
  IMPATIENCE_CHECK(emitted + sorter.late_drops() == events.size());
  return Throughput(events.size(), secs);
}

struct Arm {
  const char* name;
  bool enable_trace;
  bool span_per_event;
};

void Run() {
  const size_t n = EventCount();
  const Dataset cloudlog = BenchCloudLog(n);
  const bool was_enabled = trace::Enabled();

  Section("Tracing overhead on the streaming push path, CloudLog, " +
          std::to_string(n) + " events, punctuation every " +
          std::to_string(kPunctFrequency) + " events");

  const Arm arms[] = {
      {"disabled", false, false},
      {"enabled", true, false},
      {"span_hot", true, true},
  };
  constexpr int kReps = 3;

  TablePrinter table({"arm", "best_Me/s", "vs_disabled"});
  double results[3] = {0, 0, 0};
  for (size_t a = 0; a < 3; ++a) {
    trace::SetEnabled(arms[a].enable_trace);
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      best = std::max(best,
                      MeasurePush(cloudlog.events, arms[a].span_per_event));
      // Keep rings from accumulating across reps when recording.
      if (arms[a].enable_trace) trace::DrainChromeJson();
    }
    results[a] = best;
    table.PrintRow({arms[a].name, TablePrinter::Num(best),
                    TablePrinter::Num(100.0 * best / results[0], 2) + "%"});
  }
  trace::SetEnabled(was_enabled);

  std::printf(
      "\nBEGIN_JSON\n{\"kernel_level\": \"%s\", \"bench_seed\": %llu,\n"
      "\"trace_overhead\": [\n",
      BenchKernelLevel(), static_cast<unsigned long long>(BenchSeed()));
  for (size_t a = 0; a < 3; ++a) {
    std::printf(
        "  {\"arm\": \"%s\", \"throughput_meps\": %.4f, "
        "\"relative_to_disabled\": %.4f}%s\n",
        arms[a].name, results[a], results[a] / results[0],
        a + 1 < 3 ? "," : "");
  }
  std::printf("]}\nEND_JSON\n");
  std::fflush(stdout);
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
