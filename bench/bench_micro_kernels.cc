// Google-benchmark microbenchmarks for the kernels underlying the paper's
// results: binary vs heap k-way merges (reference [9]'s observation),
// partition-phase insertion with and without speculative run selection,
// the offline sorts on canonical distributions, and the dispatched
// hot-path kernels (sort/kernels.h) at every level this CPU supports,
// each against the pre-kernel scalar baseline kept here as legacy_*.
//
// The report context carries kernel_level (process dispatch level) and
// bench_seed, so JSON output (--benchmark_format=json) stays comparable
// across machines and runs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/cpu_features.h"
#include "common/random.h"
#include "sort/impatience_sorter.h"
#include "sort/kernels.h"
#include "sort/merge.h"
#include "sort/sort_algorithms.h"
#include "tests/testing/sequences.h"

namespace impatience {
namespace {

using bench::BenchSeed;

std::vector<std::vector<int64_t>> MakeRuns(size_t k, size_t run_len,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> runs(k);
  for (auto& run : runs) {
    int64_t v = static_cast<int64_t>(rng.NextBelow(100));
    run.reserve(run_len);
    for (size_t i = 0; i < run_len; ++i) {
      v += static_cast<int64_t>(rng.NextBelow(8));
      run.push_back(v);
    }
  }
  return runs;
}

void BM_MergePolicy(benchmark::State& state, MergePolicy policy) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t run_len = 100000 / k;
  const auto source = MakeRuns(k, run_len, /*seed=*/1);
  for (auto _ : state) {
    auto runs = source;
    std::vector<int64_t> out;
    MergeRunsInto(policy, &runs, std::less<int64_t>(), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k * run_len));
}
// Fan-in sweep k in {2,4,8,16,64} (+256 for the tail): the crossover
// between the pairwise cascades and the single-pass loser tree.
#define MERGE_FANIN_ARGS \
  ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64)->Arg(256)
BENCHMARK_CAPTURE(BM_MergePolicy, huffman, MergePolicy::kHuffman)
    MERGE_FANIN_ARGS;
BENCHMARK_CAPTURE(BM_MergePolicy, balanced, MergePolicy::kBalanced)
    MERGE_FANIN_ARGS;
BENCHMARK_CAPTURE(BM_MergePolicy, heap, MergePolicy::kHeap)
    MERGE_FANIN_ARGS;
BENCHMARK_CAPTURE(BM_MergePolicy, loser_tree, MergePolicy::kLoserTree)
    MERGE_FANIN_ARGS;
#undef MERGE_FANIN_ARGS

void BM_PartitionPhase(benchmark::State& state, bool srs) {
  const auto input = testing::BatchUploadSequence(
      100000, /*batch=*/1000, /*seed=*/3);  // Long runs: SRS's best case.
  for (auto _ : state) {
    ImpatienceConfig config;
    config.speculative_run_selection = srs;
    ImpatienceSorter<Timestamp, IdentityTimeOf> sorter(config);
    for (const Timestamp t : input) sorter.Push(t);
    benchmark::DoNotOptimize(sorter.run_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK_CAPTURE(BM_PartitionPhase, with_srs, true);
BENCHMARK_CAPTURE(BM_PartitionPhase, without_srs, false);

void BM_OfflineSort(benchmark::State& state, OfflineAlgorithm algorithm) {
  const auto input =
      testing::NearlySortedSequence(100000, 30, 64, /*seed=*/5);
  for (auto _ : state) {
    std::vector<Timestamp> copy = input;
    OfflineSort<Timestamp, IdentityTimeOf>(algorithm, &copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK_CAPTURE(BM_OfflineSort, impatience, OfflineAlgorithm::kImpatience);
BENCHMARK_CAPTURE(BM_OfflineSort, quicksort, OfflineAlgorithm::kQuicksort);
BENCHMARK_CAPTURE(BM_OfflineSort, timsort, OfflineAlgorithm::kTimsort);
BENCHMARK_CAPTURE(BM_OfflineSort, heapsort, OfflineAlgorithm::kHeapsort);

void BM_HeapSorterOnline(benchmark::State& state) {
  const auto input =
      testing::NearlySortedSequence(100000, 30, 64, /*seed=*/7);
  for (auto _ : state) {
    HeapSorter<Timestamp, IdentityTimeOf> sorter;
    std::vector<Timestamp> out;
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    for (size_t i = 0; i < input.size(); ++i) {
      sorter.Push(input[i]);
      if (input[i] > high_watermark) high_watermark = input[i];
      if ((i + 1) % 1000 == 0 && high_watermark - 600 > last_punct) {
        out.clear();
        last_punct = high_watermark - 600;
        sorter.OnPunctuation(last_punct, &out);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_HeapSorterOnline);

// ---------------------------------------------------------------------------
// Dispatched kernel benchmarks (sort/kernels.h), per level, against the
// pre-kernel scalar baselines below.

// The partition search as it was before the kernel layer: 8-element
// linear probe, then a branchless binary search.
size_t LegacyFindRunIndex(const std::vector<Timestamp>& tails,
                          Timestamp t) {
  constexpr size_t kLinearProbe = 8;
  const size_t k = tails.size();
  const size_t linear_end = k < kLinearProbe ? k : kLinearProbe;
  for (size_t i = 0; i < linear_end; ++i) {
    if (tails[i] <= t) return i;
  }
  if (linear_end == k) return k;
  const Timestamp* data = tails.data();
  size_t lo = kLinearProbe;
  size_t len = k - kLinearProbe;
  while (len > 0) {
    const size_t half = len >> 1;
    const bool gt = data[lo + half] > t;
    lo = gt ? lo + half + 1 : lo;
    len = gt ? len - half - 1 : half;
  }
  return lo;
}

// The two-way merge as it was before the kernel layer: branchless select
// loop with galloping, but no disjoint-concat classification.
template <typename T, typename Less>
void LegacyMergeInto(const T* pa, const T* ea, const T* pb, const T* eb,
                     Less less, std::vector<T>* out) {
  out->reserve(out->size() + static_cast<size_t>(ea - pa) +
               static_cast<size_t>(eb - pb));
  int streak_a = 0;
  int streak_b = 0;
  while (pa != ea && pb != eb) {
    const bool take_b = less(*pb, *pa);
    const T* src = take_b ? pb : pa;
    out->push_back(*src);
    pb += take_b ? 1 : 0;
    pa += take_b ? 0 : 1;
    streak_b = take_b ? streak_b + 1 : 0;
    streak_a = take_b ? 0 : streak_a + 1;
    if (streak_b >= kernels::kGallopThreshold && pb != eb) {
      const T* end = kernels::GallopLowerBound(pb, eb, *pa, less);
      out->insert(out->end(), pb, end);
      pb = end;
      streak_b = 0;
    } else if (streak_a >= kernels::kGallopThreshold && pa != ea) {
      const T* end = kernels::GallopUpperBound(pa, ea, *pb, less);
      out->insert(out->end(), pa, end);
      pa = end;
      streak_a = 0;
    }
  }
  out->insert(out->end(), pa, ea);
  out->insert(out->end(), pb, eb);
}

// A tails array and query stream shaped like a real partition phase:
// strictly-descending tails, queries mostly answered in the skewed front
// with a tail of deep probes.
struct SearchWorkload {
  std::vector<Timestamp> tails;
  std::vector<Timestamp> queries;
};

SearchWorkload MakeSearchWorkload(size_t k, size_t num_queries,
                                  uint64_t seed) {
  Rng rng(seed);
  SearchWorkload w;
  w.tails.resize(k);
  Timestamp v = static_cast<Timestamp>(100 * k);
  for (size_t i = 0; i < k; ++i) {
    v -= static_cast<Timestamp>(1 + rng.NextBelow(50));
    w.tails[i] = v;
  }
  w.queries.resize(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    // 80% of queries land in the front quarter of the tails range (the
    // run-size skew the linear probe exploits), the rest anywhere.
    const bool front = rng.NextBool(0.8);
    const size_t r = front ? rng.NextBelow((k + 3) / 4) : rng.NextBelow(k);
    w.queries[i] = w.tails[r] + static_cast<Timestamp>(rng.NextBelow(3));
  }
  return w;
}

void BM_SearchKernel(benchmark::State& state, KernelLevel level,
                     bool legacy) {
  const size_t k = static_cast<size_t>(state.range(0));
  const auto w = MakeSearchWorkload(k, /*num_queries=*/1 << 14, BenchSeed());
  for (auto _ : state) {
    size_t acc = 0;
    for (const Timestamp t : w.queries) {
      acc += legacy
                 ? LegacyFindRunIndex(w.tails, t)
                 : kernels::FindFirstLEDesc(w.tails.data(), k, t, level);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.queries.size()));
}

// An ascending run of `len` timestamps starting at `start`.
std::vector<Timestamp> MakeAscRun(size_t len, Timestamp start, Rng* rng) {
  std::vector<Timestamp> run;
  run.reserve(len);
  Timestamp v = start;
  for (size_t i = 0; i < len; ++i) {
    v += static_cast<Timestamp>(rng->NextBelow(4));
    run.push_back(v);
  }
  return run;
}

// The two-way merge kernel in isolation: one pair of runs, either
// time-disjoint (A entirely before B — the concat fast path) or fully
// overlapping (the branchless select loop). The disjoint gap at small
// lengths is the per-merge overhead the classification removes; at large
// lengths both arms converge to memcpy speed.
void BM_TwoWayMerge(benchmark::State& state, bool disjoint, bool legacy) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(BenchSeed());
  const std::vector<Timestamp> a = MakeAscRun(len, 0, &rng);
  const std::vector<Timestamp> b =
      MakeAscRun(len, disjoint ? a.back() + 1 : 0, &rng);
  auto less = [](Timestamp x, Timestamp y) { return x < y; };
  std::vector<Timestamp> out;
  out.reserve(2 * len);
  for (auto _ : state) {
    out.clear();
    if (legacy) {
      LegacyMergeInto(a.data(), a.data() + len, b.data(), b.data() + len,
                      less, &out);
    } else {
      kernels::MergeIntoVector(a.data(), a.data() + len, b.data(),
                               b.data() + len, less, &out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * len));
}

// The low-disorder punctuation shape: one old head run that dominates and
// progressively smaller fresh cut runs, all disjoint in time. Doubling
// sizes are superincreasing, so the Huffman heap degenerates to a chain
// that always merges time-adjacent blocks — every merge is a pure
// concatenation for the kernel arm.
std::vector<std::vector<Timestamp>> MakePunctuationRuns(size_t k,
                                                        size_t smallest,
                                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Timestamp>> runs;
  runs.reserve(k);
  Timestamp start = 0;
  size_t len = smallest << (k - 1);  // Oldest head run is the biggest.
  for (size_t r = 0; r < k; ++r) {
    runs.push_back(MakeAscRun(len, start, &rng));
    start = runs.back().back() + 1;
    len /= 2;  // Sizes S, S/2, ..., 2s, s: the heap walks a chain.
  }
  return runs;
}

// HuffmanMergeInto as it was before the kernel layer: same heap, same
// buffer pool, but the pre-kernel two-way merge with no disjoint
// classification.
void LegacyHuffmanMergeInto(std::vector<std::vector<Timestamp>>* runs,
                            std::vector<Timestamp>* out) {
  std::vector<std::vector<Timestamp>>& rs = *runs;
  auto less = [](Timestamp x, Timestamp y) { return x < y; };
  MergeBufferPool<Timestamp> pool;
  auto size_greater = [&rs](size_t a, size_t b) {
    return rs[a].size() > rs[b].size();
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(size_greater)>
      heap(size_greater);
  for (size_t i = 0; i < rs.size(); ++i) heap.push(i);
  while (true) {
    const size_t a = heap.top();
    heap.pop();
    const size_t b = heap.top();
    heap.pop();
    if (heap.empty()) {
      LegacyMergeInto(rs[a].data(), rs[a].data() + rs[a].size(),
                      rs[b].data(), rs[b].data() + rs[b].size(), less, out);
      break;
    }
    std::vector<Timestamp> merged =
        pool.Acquire(rs[a].size() + rs[b].size());
    LegacyMergeInto(rs[a].data(), rs[a].data() + rs[a].size(), rs[b].data(),
                    rs[b].data() + rs[b].size(), less, &merged);
    pool.Release(std::move(rs[a]));
    pool.Release(std::move(rs[b]));
    rs[a] = std::move(merged);
    heap.push(a);
  }
  rs.clear();
}

void BM_PunctuationMerge(benchmark::State& state, bool legacy) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t smallest = static_cast<size_t>(state.range(1));
  const auto source = MakePunctuationRuns(k, smallest, BenchSeed());
  size_t total = 0;
  for (const auto& r : source) total += r.size();
  auto less = [](Timestamp x, Timestamp y) { return x < y; };
  for (auto _ : state) {
    auto runs = source;
    std::vector<Timestamp> out;
    out.reserve(total);
    if (legacy) {
      LegacyHuffmanMergeInto(&runs, &out);
    } else {
      HuffmanMergeInto(&runs, less, &out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total));
}

void BM_RunBoundaryScan(benchmark::State& state, KernelLevel level) {
  // The punctuation-time cut: an upper bound over a long ascending run.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(BenchSeed());
  std::vector<Timestamp> run(n);
  Timestamp v = 0;
  for (size_t i = 0; i < n; ++i) {
    v += static_cast<Timestamp>(rng.NextBelow(4));
    run[i] = v;
  }
  std::vector<Timestamp> cuts(1024);
  for (auto& t : cuts) {
    t = static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(v) + 1));
  }
  for (auto _ : state) {
    size_t acc = 0;
    for (const Timestamp t : cuts) {
      acc += kernels::UpperBoundAscGT(run.data(), 0, n, t, level);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cuts.size()));
}

void BM_HeadTimesScan(benchmark::State& state, KernelLevel level) {
  // The punctuation-time skip scan over per-run head times: most runs
  // release nothing, so the scan is usually a full pass with no hit.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(BenchSeed());
  std::vector<Timestamp> head_times(n);
  for (auto& t : head_times) {
    t = static_cast<Timestamp>(1000 + rng.NextBelow(1000000));
  }
  for (auto _ : state) {
    size_t hits = 0;
    for (size_t r = kernels::NextIndexLE(head_times.data(), 0, n, 999,
                                         level);
         r < n;
         r = kernels::NextIndexLE(head_times.data(), r + 1, n, 999,
                                  level)) {
      ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

// The offline permutation gather: 8-byte records gathered through the
// (time, index) key column, near-sequential like a nearly sorted input.
void BM_GatherByIndex(benchmark::State& state, KernelLevel level) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(BenchSeed());
  std::vector<int64_t> in(n);
  for (auto& v : in) v = static_cast<int64_t>(rng.NextBelow(1u << 30));
  std::vector<kernels::SortKey> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = kernels::SortKey{0, static_cast<uint32_t>(i)};
  }
  // Light disorder: ~10% of positions swapped, like a p=30 d=64 stream
  // after the partition phase.
  for (size_t s = 0; s < n / 10; ++s) {
    std::swap(keys[rng.NextBelow(n)].index, keys[rng.NextBelow(n)].index);
  }
  std::vector<int64_t> out(n);
  for (auto _ : state) {
    kernels::GatherByIndex(in.data(), keys.data(), n, out.data(), level);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void RegisterKernelBenchmarks() {
  std::vector<KernelLevel> levels = {KernelLevel::kScalar};
  const KernelLevel best = DetectKernelLevel();
  if (best >= KernelLevel::kSSE2) levels.push_back(KernelLevel::kSSE2);
  if (best >= KernelLevel::kAVX2) levels.push_back(KernelLevel::kAVX2);
  if (best >= KernelLevel::kAVX512) levels.push_back(KernelLevel::kAVX512);

  for (const size_t k : {size_t{8}, size_t{64}, size_t{1024}}) {
    benchmark::RegisterBenchmark(
        ("BM_SearchKernel/legacy/k:" + std::to_string(k)).c_str(),
        [](benchmark::State& s) {
          BM_SearchKernel(s, KernelLevel::kScalar, /*legacy=*/true);
        })
        ->Arg(static_cast<int64_t>(k));
    for (const KernelLevel level : levels) {
      benchmark::RegisterBenchmark(
          (std::string("BM_SearchKernel/") + KernelLevelName(level) +
           "/k:" + std::to_string(k))
              .c_str(),
          [level](benchmark::State& s) {
            BM_SearchKernel(s, level, /*legacy=*/false);
          })
          ->Arg(static_cast<int64_t>(k));
    }
  }

  for (const bool disjoint : {false, true}) {
    const char* shape = disjoint ? "disjoint" : "overlap";
    for (const size_t len :
         {size_t{128}, size_t{1024}, size_t{16384}}) {
      for (const bool legacy : {true, false}) {
        benchmark::RegisterBenchmark(
            (std::string("BM_TwoWayMerge/") +
             (legacy ? "legacy/" : "kernel/") + shape +
             "/len:" + std::to_string(len))
                .c_str(),
            [disjoint, legacy](benchmark::State& s) {
              BM_TwoWayMerge(s, disjoint, legacy);
            })
            ->Arg(static_cast<int64_t>(len));
      }
    }
  }

  for (const size_t smallest : {size_t{64}, size_t{512}}) {
    for (const bool legacy : {true, false}) {
      benchmark::RegisterBenchmark(
          (std::string("BM_PunctuationMerge/") +
           (legacy ? "legacy" : "kernel") +
           "/smallest:" + std::to_string(smallest))
              .c_str(),
          [legacy](benchmark::State& s) { BM_PunctuationMerge(s, legacy); })
          ->Args({8, static_cast<int64_t>(smallest)});
    }
  }

  for (const KernelLevel level : levels) {
    benchmark::RegisterBenchmark(
        (std::string("BM_RunBoundaryScan/") + KernelLevelName(level))
            .c_str(),
        [level](benchmark::State& s) { BM_RunBoundaryScan(s, level); })
        ->Arg(1 << 20);
    benchmark::RegisterBenchmark(
        (std::string("BM_HeadTimesScan/") + KernelLevelName(level)).c_str(),
        [level](benchmark::State& s) { BM_HeadTimesScan(s, level); })
        ->Arg(4096);
    benchmark::RegisterBenchmark(
        (std::string("BM_GatherByIndex/") + KernelLevelName(level)).c_str(),
        [level](benchmark::State& s) { BM_GatherByIndex(s, level); })
        ->Arg(1 << 20);
  }
}

}  // namespace
}  // namespace impatience

int main(int argc, char** argv) {
  impatience::bench::InitBenchProcess();
  benchmark::AddCustomContext("kernel_level",
                              impatience::bench::BenchKernelLevel());
  benchmark::AddCustomContext(
      "bench_seed", std::to_string(impatience::bench::BenchSeed()));
  impatience::RegisterKernelBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
