// Google-benchmark microbenchmarks for the kernels underlying the paper's
// results: binary vs heap k-way merges (reference [9]'s observation),
// partition-phase insertion with and without speculative run selection,
// and the offline sorts on canonical distributions.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "sort/impatience_sorter.h"
#include "sort/merge.h"
#include "sort/sort_algorithms.h"
#include "tests/testing/sequences.h"

namespace impatience {
namespace {

std::vector<std::vector<int64_t>> MakeRuns(size_t k, size_t run_len,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> runs(k);
  for (auto& run : runs) {
    int64_t v = static_cast<int64_t>(rng.NextBelow(100));
    run.reserve(run_len);
    for (size_t i = 0; i < run_len; ++i) {
      v += static_cast<int64_t>(rng.NextBelow(8));
      run.push_back(v);
    }
  }
  return runs;
}

void BM_MergePolicy(benchmark::State& state, MergePolicy policy) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t run_len = 100000 / k;
  const auto source = MakeRuns(k, run_len, /*seed=*/1);
  for (auto _ : state) {
    auto runs = source;
    std::vector<int64_t> out;
    MergeRunsInto(policy, &runs, std::less<int64_t>(), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k * run_len));
}
BENCHMARK_CAPTURE(BM_MergePolicy, huffman, MergePolicy::kHuffman)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_CAPTURE(BM_MergePolicy, balanced, MergePolicy::kBalanced)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_CAPTURE(BM_MergePolicy, heap, MergePolicy::kHeap)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

void BM_PartitionPhase(benchmark::State& state, bool srs) {
  const auto input = testing::BatchUploadSequence(
      100000, /*batch=*/1000, /*seed=*/3);  // Long runs: SRS's best case.
  for (auto _ : state) {
    ImpatienceConfig config;
    config.speculative_run_selection = srs;
    ImpatienceSorter<Timestamp, IdentityTimeOf> sorter(config);
    for (const Timestamp t : input) sorter.Push(t);
    benchmark::DoNotOptimize(sorter.run_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK_CAPTURE(BM_PartitionPhase, with_srs, true);
BENCHMARK_CAPTURE(BM_PartitionPhase, without_srs, false);

void BM_OfflineSort(benchmark::State& state, OfflineAlgorithm algorithm) {
  const auto input =
      testing::NearlySortedSequence(100000, 30, 64, /*seed=*/5);
  for (auto _ : state) {
    std::vector<Timestamp> copy = input;
    OfflineSort<Timestamp, IdentityTimeOf>(algorithm, &copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK_CAPTURE(BM_OfflineSort, impatience, OfflineAlgorithm::kImpatience);
BENCHMARK_CAPTURE(BM_OfflineSort, quicksort, OfflineAlgorithm::kQuicksort);
BENCHMARK_CAPTURE(BM_OfflineSort, timsort, OfflineAlgorithm::kTimsort);
BENCHMARK_CAPTURE(BM_OfflineSort, heapsort, OfflineAlgorithm::kHeapsort);

void BM_HeapSorterOnline(benchmark::State& state) {
  const auto input =
      testing::NearlySortedSequence(100000, 30, 64, /*seed=*/7);
  for (auto _ : state) {
    HeapSorter<Timestamp, IdentityTimeOf> sorter;
    std::vector<Timestamp> out;
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    for (size_t i = 0; i < input.size(); ++i) {
      sorter.Push(input[i]);
      if (input[i] > high_watermark) high_watermark = input[i];
      if ((i + 1) % 1000 == 0 && high_watermark - 600 > last_punct) {
        out.clear();
        last_punct = high_watermark - 600;
        sorter.OnPunctuation(last_punct, &out);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_HeapSorterOnline);

}  // namespace
}  // namespace impatience

BENCHMARK_MAIN();
