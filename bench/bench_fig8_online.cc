// Figure 8: online (incremental) sorting throughput vs punctuation
// frequency, for Impatience sort, adapter-wrapped Patience / Quicksort /
// Timsort, and the natively incremental Heapsort.
//
// Paper shape: on the synthetic dataset (small reorder buffer) the adapter
// baselines stay competitive; on the real datasets (large reorder buffers
// to tolerate severely late events) they collapse as punctuations become
// frequent, because every punctuation rewrites the whole sorted buffer,
// while Impatience sort's cost depends only on the events a punctuation
// releases — its curve stays nearly flat (1.3x-7.9x over the best
// competitor in the paper).
//
// The "punctuation frequency" x-axis is the number of events between two
// punctuations (10 means a punctuation every 10 events).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/histogram.h"
#include "sort/impatience_sorter.h"
#include "sort/sort_algorithms.h"
#include "storage/spill.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

struct OnlineRun {
  double throughput_meps = 0;
  uint64_t late_drops = 0;
  // Punctuation-to-emit latency quantiles, when the sorter instruments
  // them (Impatience sort and the adapter baselines); 0 otherwise.
  bool has_latency = false;
  uint64_t punct_to_emit_p50_ns = 0;
  uint64_t punct_to_emit_p99_ns = 0;
  // Spill-tier activity (Impatience arms only; nonzero only when a memory
  // budget — typically IMPATIENCE_MEMORY_BUDGET — forces the disk tier).
  bool has_spill = false;
  uint64_t runs_spilled = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_read_bytes = 0;
};

struct JsonSample {
  std::string dataset;
  size_t punct_freq = 0;
  std::string algorithm;
  std::string merge_policy;  // "-" for the non-Impatience arms.
  OnlineRun run;
};

std::vector<JsonSample>& Samples() {
  static std::vector<JsonSample> samples;
  return samples;
}

// One column of the sweep. Impatience runs twice — the pairwise Huffman
// cascade and the k-way loser tree — since the punctuation merge is its
// hot path; the adapter baselines have no policy to vary.
struct SweepArm {
  OnlineAlgorithm algorithm;
  const char* label;
  const char* merge_policy;
  ImpatienceConfig config;
};

std::vector<SweepArm> SweepArms() {
  std::vector<SweepArm> arms;
  for (const OnlineAlgorithm algorithm : kAllOnlineAlgorithms) {
    SweepArm arm;
    arm.algorithm = algorithm;
    arm.label = OnlineAlgorithmName(algorithm);
    arm.merge_policy =
        algorithm == OnlineAlgorithm::kImpatience ? "huffman" : "-";
    arms.push_back(arm);
    if (algorithm == OnlineAlgorithm::kImpatience) {
      SweepArm lt = arm;
      lt.label = "Impatience-LT";
      lt.merge_policy = "loser_tree";
      lt.config.merge_policy = MergePolicy::kLoserTree;
      arms.push_back(lt);
    }
  }
  return arms;
}

OnlineRun MeasureOnline(OnlineAlgorithm algorithm,
                        const std::vector<Event>& events, size_t frequency,
                        Timestamp reorder_latency,
                        const ImpatienceConfig& config = {}) {
  auto sorter = MakeOnlineSorter<Event>(algorithm, config);
  std::vector<Event> out;
  out.reserve(std::min<size_t>(events.size(), 1 << 20));
  size_t emitted = 0;

  const double secs = TimeSeconds([&]() {
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    for (size_t i = 0; i < events.size(); ++i) {
      sorter->Push(events[i]);
      if (events[i].sync_time > high_watermark) {
        high_watermark = events[i].sync_time;
      }
      if ((i + 1) % frequency == 0) {
        const Timestamp p = high_watermark - reorder_latency;
        if (p > last_punct) {
          sorter->OnPunctuation(p, &out);
          last_punct = p;
          emitted += out.size();
          out.clear();  // Keep the output buffer from growing unbounded.
        }
      }
    }
    sorter->Flush(&out);
    emitted += out.size();
    out.clear();
  });
  IMPATIENCE_CHECK(emitted + sorter->late_drops() == events.size());
  OnlineRun run;
  run.throughput_meps = Throughput(events.size(), secs);
  run.late_drops = sorter->late_drops();
  if (const HistogramSnapshot* h = sorter->punctuation_latency();
      h != nullptr && h->count() > 0) {
    run.has_latency = true;
    run.punct_to_emit_p50_ns = h->P50();
    run.punct_to_emit_p99_ns = h->P99();
  }
  if (const auto* impatience =
          dynamic_cast<const ImpatienceSorter<Event>*>(sorter.get())) {
    run.has_spill = true;
    run.runs_spilled = impatience->counters().runs_spilled;
    run.spill_bytes_written = impatience->counters().spill_bytes_written;
    run.spill_read_bytes = impatience->counters().spill_read_bytes;
  }
  return run;
}

void Sweep(const std::string& title, const std::string& dataset,
           const std::vector<Event>& events, Timestamp reorder_latency) {
  Section(title);
  const std::vector<SweepArm> arms = SweepArms();
  std::vector<std::string> headers = {"punct_freq"};
  for (const SweepArm& arm : arms) headers.push_back(arm.label);
  headers.push_back("drop_rate");
  TablePrinter table(headers);

  for (const size_t freq : {10u, 100u, 1000u, 10000u, 100000u, 1000000u}) {
    std::vector<std::string> row = {TablePrinter::Int(freq)};
    uint64_t drops = 0;
    for (const SweepArm& arm : arms) {
      const OnlineRun result = MeasureOnline(arm.algorithm, events, freq,
                                             reorder_latency, arm.config);
      row.push_back(TablePrinter::Num(result.throughput_meps));
      drops = result.late_drops;  // Identical across algorithms.
      Samples().push_back(
          {dataset, freq, arm.label, arm.merge_policy, result});
    }
    row.push_back(TablePrinter::Num(
        100.0 * static_cast<double>(drops) /
            static_cast<double>(events.size()),
        2) + "%");
    table.PrintRow(row);
  }
}

void Run() {
  const size_t n = EventCount();

  // Reorder latencies tuned per dataset (paper §VI-B2): tolerate the
  // majority of late events, drop only the noticeably late tail.
  Sweep("Figure 8(a): online throughput (M events/s), synthetic p=30% "
        "d=64, reorder latency 600ms",
        "synthetic", BenchSynthetic(n, 30, 64).events, 600);
  Sweep("Figure 8(b): online throughput (M events/s), CloudLog, reorder "
        "latency 60s (jitter fully covered, failure bursts dropped)",
        "cloudlog", BenchCloudLog(n).events, 60 * kSecond);
  Sweep("Figure 8(c): online throughput (M events/s), AndroidLog, reorder "
        "latency 12h (majority of batch uploads covered)",
        "androidlog", BenchAndroidLog(n).events, 12 * kHour);

  std::printf(
      "\nBEGIN_JSON\n{\"kernel_level\": \"%s\", \"bench_seed\": %llu, "
      "\"memory_budget\": %zu,\n\"fig8_online\": [\n",
      BenchKernelLevel(), static_cast<unsigned long long>(BenchSeed()),
      storage::MemoryBudgetFromEnv());
  const std::vector<JsonSample>& samples = Samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    const JsonSample& s = samples[i];
    std::printf(
        "  {\"dataset\": \"%s\", \"punct_freq\": %zu, \"algorithm\": "
        "\"%s\", \"merge_policy\": \"%s\", \"throughput_meps\": %.4f, "
        "\"late_drops\": %llu",
        s.dataset.c_str(), s.punct_freq, s.algorithm.c_str(),
        s.merge_policy.c_str(), s.run.throughput_meps,
        static_cast<unsigned long long>(s.run.late_drops));
    if (s.run.has_latency) {
      std::printf(
          ", \"punct_to_emit_p50_ns\": %llu, \"punct_to_emit_p99_ns\": %llu",
          static_cast<unsigned long long>(s.run.punct_to_emit_p50_ns),
          static_cast<unsigned long long>(s.run.punct_to_emit_p99_ns));
    }
    if (s.run.has_spill) {
      std::printf(
          ", \"runs_spilled\": %llu, \"spill_bytes_written\": %llu, "
          "\"spill_read_bytes\": %llu",
          static_cast<unsigned long long>(s.run.runs_spilled),
          static_cast<unsigned long long>(s.run.spill_bytes_written),
          static_cast<unsigned long long>(s.run.spill_read_bytes));
    }
    std::printf("}%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::printf("]}\nEND_JSON\n");
  std::fflush(stdout);
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
