// Table I (and Figure 2 data): disorder statistics for the two simulated
// real-world datasets plus the synthetic default.
//
// Paper values (20M events):          CloudLog        AndroidLog
//   Inversions                        5.35e10         7.30e13
//   Distance                          13,635,714      19,990,056
//   Runs                              7,382,495       5,560
//   Interleaved                       387             227
// The simulations reproduce the *shape*: CloudLog has millions of tiny
// runs but few interleaved runs; AndroidLog has few, huge runs and an
// astronomically larger inversion count. Set IMPATIENCE_EXPORT_FIG2=dir to
// dump seq/sync_time CSVs for Figure 2-style scatter plots.

#include <cstdlib>
#include <string>

#include "bench/harness.h"
#include "sort/disorder_stats.h"
#include "workload/generators.h"
#include "workload/io.h"

namespace impatience::bench {
namespace {

void Report(TablePrinter* table, const Dataset& dataset) {
  const std::vector<Timestamp> times = SyncTimes(dataset.events);
  const DisorderStats stats = ComputeDisorderStats(times);
  const double avg_run =
      stats.runs == 0
          ? 0
          : static_cast<double>(times.size()) /
                static_cast<double>(stats.runs);
  table->PrintRow({dataset.name, TablePrinter::Int(times.size()),
                   TablePrinter::Int(stats.inversions),
                   TablePrinter::Int(stats.distance),
                   TablePrinter::Int(stats.runs),
                   TablePrinter::Int(stats.interleaved),
                   TablePrinter::Num(avg_run, 1)});

  const char* dir = std::getenv("IMPATIENCE_EXPORT_FIG2");
  if (dir != nullptr) {
    const std::string path =
        std::string(dir) + "/fig2_" + dataset.name + ".csv";
    if (ExportDatasetCsv(dataset, path)) {
      std::printf("  (Figure 2 series written to %s)\n", path.c_str());
    }
  }
}

void Run() {
  const size_t n = EventCount();
  Section("Table I: measures of disorder (paper: CloudLog 5.4e10 "
          "inversions / 7.4M runs / 387 interleaved; AndroidLog 7.3e13 "
          "inversions / 5,560 runs / 227 interleaved at 20M events)");
  TablePrinter table({"dataset", "events", "inversions", "distance", "runs",
                      "interleaved", "avg_run_len"});
  Report(&table, BenchCloudLog(n));
  Report(&table, BenchAndroidLog(n));
  Report(&table, BenchSynthetic(n));
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
