// Ablation: the design choices inside Impatience sort, beyond the
// Figure 7 toggles.
//
//  (1) Merge policy for head runs — Huffman (smallest-two-first) vs
//      balanced pairwise vs k-way heap merge: element moves and
//      throughput. The paper's §III-E1 claims up to 30% from the Huffman
//      order; reference [9] motivates binary merges over a heap.
//  (2) Speculative run selection — hit rate per workload (§III-E2 is most
//      valuable on AndroidLog's long natural runs).
//  (3) Run-compaction — memory with and without the consumed-prefix
//      compaction that keeps buffered bytes proportional to live events.
//  (4) Merge fan-in sweep — the pairwise Huffman cascade vs the k-way
//      loser tree on k equal runs, k in {2, 4, 8, 16, 64}, in two
//      shapes: "bursty" (runs carved from one timeline in ~64-element
//      bursts — the temporal-locality shape punctuation merges actually
//      see, where the tree's single output pass beats the cascade's
//      level-by-level memory traffic) and "interleaved" (every element
//      individually compared — the tree's worst case, where the
//      cascade's branchless two-way kernel wins per pass).
//
// Emits one JSON document between BEGIN_JSON/END_JSON markers with the
// kernel level, seed, and merge policy stamped per sample.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/random.h"
#include "sort/impatience_sorter.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

struct DatasetRef {
  std::string name;
  std::vector<Event> events;
  Timestamp reorder_latency;
};

std::vector<DatasetRef> Datasets(size_t n) {
  std::vector<DatasetRef> d;
  d.push_back({"Synthetic", BenchSynthetic(n, 30, 64).events, 600});
  d.push_back({"CloudLog", BenchCloudLog(n).events, 25 * kMinute});
  d.push_back({"AndroidLog", BenchAndroidLog(n).events, 3 * kDay});
  return d;
}

struct SortOutcome {
  double throughput_meps = 0;
  uint64_t elements_moved = 0;
  uint64_t srs_hits = 0;
  uint64_t pushes = 0;
  size_t peak_memory = 0;
};

// One measurement for the JSON dump: either a dataset/policy ablation row
// or a fan-in sweep row (dataset "fanin_sweep", fanin > 0).
struct JsonSample {
  std::string dataset;
  std::string merge_policy;
  size_t fanin = 0;
  double throughput_meps = 0;
  uint64_t elements_moved = 0;
};

std::vector<JsonSample>& Samples() {
  static std::vector<JsonSample> samples;
  return samples;
}

const char* MergePolicyLabel(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kHuffman: return "huffman";
    case MergePolicy::kBalanced: return "balanced";
    case MergePolicy::kHeap: return "heap";
    case MergePolicy::kLoserTree: return "loser_tree";
  }
  return "?";
}

// k equal-size runs of non-decreasing timestamps, fully interleaved in
// time — the shape where every element is compared, not bulk-copied.
std::vector<std::vector<Timestamp>> MakeEqualRuns(size_t k, size_t total,
                                                  uint64_t seed) {
  Rng rng(seed);
  const size_t len = total / k;
  std::vector<std::vector<Timestamp>> runs(k);
  for (auto& run : runs) {
    Timestamp v = static_cast<Timestamp>(rng.NextBelow(16));
    run.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      v += static_cast<Timestamp>(rng.NextBelow(8));
      run.push_back(v);
    }
  }
  return runs;
}

// k runs carved from one non-decreasing timeline in bursts of mean ~64
// elements: the shape punctuation merges actually see — each head run
// holds mostly-contiguous slices of event-time with bursty overlap at
// the seams — so the merged output moves in chunks, not single elements.
std::vector<std::vector<Timestamp>> MakeBurstyRuns(size_t k, size_t total,
                                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Timestamp>> runs(k);
  for (auto& run : runs) run.reserve(2 * total / k);
  Timestamp v = 0;
  size_t produced = 0;
  while (produced < total) {
    auto& run = runs[rng.NextBelow(k)];
    const size_t burst =
        std::min<size_t>(1 + rng.NextBelow(127), total - produced);
    for (size_t i = 0; i < burst; ++i) {
      v += static_cast<Timestamp>(rng.NextBelow(4));
      run.push_back(v);
    }
    produced += burst;
  }
  return runs;
}

// Best-of-reps merge throughput for one policy at one fan-in, pool and
// scratch kept warm across reps the way a sorter keeps them across
// punctuations.
SortOutcome RunFanInMerge(MergePolicy policy, size_t k, size_t total,
                          bool bursty) {
  const auto source = bursty ? MakeBurstyRuns(k, total, BenchSeed())
                             : MakeEqualRuns(k, total, BenchSeed());
  size_t n = 0;
  for (const auto& r : source) n += r.size();
  auto less = [](Timestamp x, Timestamp y) { return x < y; };
  MergeBufferPool<Timestamp> pool;
  LoserTreeScratch<Timestamp> scratch;
  MergeStats stats;
  double best = 1e100;
  for (int rep = 0; rep < 5; ++rep) {
    auto runs = source;
    std::vector<Timestamp> out;
    out.reserve(n);
    stats = MergeStats{};
    const double secs = TimeSeconds([&]() {
      MergeRunsInto(policy, &runs, less, &out, &stats, &pool, &scratch);
    });
    best = std::min(best, secs);
  }
  SortOutcome r;
  r.throughput_meps = Throughput(n, best);
  r.elements_moved = stats.elements_moved;
  return r;
}

SortOutcome RunSorter(const DatasetRef& d, ImpatienceConfig config,
                      size_t punctuation_period) {
  ImpatienceSorter<Event> sorter(config);
  std::vector<Event> out;
  size_t peak_memory = 0;
  const double secs = TimeSeconds([&]() {
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    for (size_t i = 0; i < d.events.size(); ++i) {
      sorter.Push(d.events[i]);
      if (d.events[i].sync_time > high_watermark) {
        high_watermark = d.events[i].sync_time;
      }
      if ((i + 1) % punctuation_period == 0) {
        const Timestamp p = high_watermark - d.reorder_latency;
        if (p > last_punct) {
          out.clear();
          sorter.OnPunctuation(p, &out);
          last_punct = p;
          peak_memory = std::max(peak_memory, sorter.MemoryBytes());
        }
      }
    }
    out.clear();
    sorter.Flush(&out);
  });
  return {Throughput(d.events.size(), secs),
          sorter.counters().merge.elements_moved, sorter.counters().srs_hits,
          sorter.counters().pushes, peak_memory};
}

void Run() {
  const size_t n = EventCount();
  const std::vector<DatasetRef> datasets = Datasets(n);
  constexpr size_t kPeriod = 10000;

  Section("Ablation 1: head-run merge policy (punctuation every 10k)");
  {
    TablePrinter table({"dataset", "policy", "throughput_Me/s",
                        "elements_moved"});
    for (const DatasetRef& d : datasets) {
      for (const auto& [policy, label] :
           {std::pair{MergePolicy::kHuffman, "Huffman"},
            std::pair{MergePolicy::kBalanced, "Balanced"},
            std::pair{MergePolicy::kHeap, "HeapMerge"},
            std::pair{MergePolicy::kLoserTree, "LoserTree"}}) {
        ImpatienceConfig config;
        config.merge_policy = policy;
        const SortOutcome r = RunSorter(d, config, kPeriod);
        table.PrintRow({d.name, label,
                        TablePrinter::Num(r.throughput_meps),
                        TablePrinter::Int(r.elements_moved)});
        Samples().push_back({d.name, MergePolicyLabel(policy), 0,
                             r.throughput_meps, r.elements_moved});
      }
    }
  }

  Section("Ablation 2: speculative run selection hit rate");
  {
    TablePrinter table({"dataset", "srs_hits", "pushes", "hit_rate"});
    for (const DatasetRef& d : datasets) {
      const SortOutcome r = RunSorter(d, ImpatienceConfig{}, kPeriod);
      const double rate = r.pushes == 0
                              ? 0
                              : 100.0 * static_cast<double>(r.srs_hits) /
                                    static_cast<double>(r.pushes);
      table.PrintRow({d.name, TablePrinter::Int(r.srs_hits),
                      TablePrinter::Int(r.pushes),
                      TablePrinter::Num(rate, 1) + "%"});
    }
  }

  Section("Ablation 3: run compaction (peak sorter bytes, punctuation "
          "every 10k)");
  {
    TablePrinter table({"dataset", "with_compaction_MB",
                        "without_compaction_MB"});
    for (const DatasetRef& d : datasets) {
      ImpatienceConfig with;
      ImpatienceConfig without;
      without.compact_fraction = 2.0;  // Never triggers.
      const SortOutcome a = RunSorter(d, with, kPeriod);
      const SortOutcome b = RunSorter(d, without, kPeriod);
      table.PrintRow(
          {d.name,
           TablePrinter::Num(static_cast<double>(a.peak_memory) / (1 << 20)),
           TablePrinter::Num(static_cast<double>(b.peak_memory) /
                             (1 << 20))});
    }
  }

  Section("Ablation 4: merge fan-in sweep, k equal runs "
          "(pairwise cascade vs k-way loser tree)");
  {
    const size_t total = std::min<size_t>(n, 4 << 20);
    TablePrinter table({"shape", "fanin", "policy", "throughput_Me/s",
                        "elements_moved"});
    for (const bool bursty : {true, false}) {
      const std::string shape = bursty ? "bursty" : "interleaved";
      for (const size_t k : {size_t{2}, size_t{4}, size_t{8}, size_t{16},
                             size_t{64}}) {
        for (const MergePolicy policy :
             {MergePolicy::kHuffman, MergePolicy::kBalanced,
              MergePolicy::kLoserTree}) {
          const SortOutcome r = RunFanInMerge(policy, k, total, bursty);
          table.PrintRow({shape, TablePrinter::Int(k),
                          MergePolicyLabel(policy),
                          TablePrinter::Num(r.throughput_meps),
                          TablePrinter::Int(r.elements_moved)});
          Samples().push_back({"fanin_sweep_" + shape,
                               MergePolicyLabel(policy), k,
                               r.throughput_meps, r.elements_moved});
        }
      }
    }
  }

  std::printf(
      "\nBEGIN_JSON\n{\"kernel_level\": \"%s\", \"bench_seed\": %llu,\n"
      "\"ablation_merge\": [\n",
      BenchKernelLevel(), static_cast<unsigned long long>(BenchSeed()));
  const std::vector<JsonSample>& samples = Samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    const JsonSample& s = samples[i];
    std::printf(
        "  {\"dataset\": \"%s\", \"merge_policy\": \"%s\", \"fanin\": %zu, "
        "\"throughput_meps\": %.4f, \"elements_moved\": %llu}%s\n",
        s.dataset.c_str(), s.merge_policy.c_str(), s.fanin,
        s.throughput_meps,
        static_cast<unsigned long long>(s.elements_moved),
        i + 1 < samples.size() ? "," : "");
  }
  std::printf("]}\nEND_JSON\n");
  std::fflush(stdout);
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
