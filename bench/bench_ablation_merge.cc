// Ablation: the design choices inside Impatience sort, beyond the
// Figure 7 toggles.
//
//  (1) Merge policy for head runs — Huffman (smallest-two-first) vs
//      balanced pairwise vs k-way heap merge: element moves and
//      throughput. The paper's §III-E1 claims up to 30% from the Huffman
//      order; reference [9] motivates binary merges over a heap.
//  (2) Speculative run selection — hit rate per workload (§III-E2 is most
//      valuable on AndroidLog's long natural runs).
//  (3) Run-compaction — memory with and without the consumed-prefix
//      compaction that keeps buffered bytes proportional to live events.

#include <vector>

#include "bench/harness.h"
#include "sort/impatience_sorter.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

struct DatasetRef {
  std::string name;
  std::vector<Event> events;
  Timestamp reorder_latency;
};

std::vector<DatasetRef> Datasets(size_t n) {
  std::vector<DatasetRef> d;
  d.push_back({"Synthetic", BenchSynthetic(n, 30, 64).events, 600});
  d.push_back({"CloudLog", BenchCloudLog(n).events, 25 * kMinute});
  d.push_back({"AndroidLog", BenchAndroidLog(n).events, 3 * kDay});
  return d;
}

struct SortOutcome {
  double throughput_meps = 0;
  uint64_t elements_moved = 0;
  uint64_t srs_hits = 0;
  uint64_t pushes = 0;
  size_t peak_memory = 0;
};

SortOutcome RunSorter(const DatasetRef& d, ImpatienceConfig config,
                      size_t punctuation_period) {
  ImpatienceSorter<Event> sorter(config);
  std::vector<Event> out;
  size_t peak_memory = 0;
  const double secs = TimeSeconds([&]() {
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    for (size_t i = 0; i < d.events.size(); ++i) {
      sorter.Push(d.events[i]);
      if (d.events[i].sync_time > high_watermark) {
        high_watermark = d.events[i].sync_time;
      }
      if ((i + 1) % punctuation_period == 0) {
        const Timestamp p = high_watermark - d.reorder_latency;
        if (p > last_punct) {
          out.clear();
          sorter.OnPunctuation(p, &out);
          last_punct = p;
          peak_memory = std::max(peak_memory, sorter.MemoryBytes());
        }
      }
    }
    out.clear();
    sorter.Flush(&out);
  });
  return {Throughput(d.events.size(), secs),
          sorter.counters().merge.elements_moved, sorter.counters().srs_hits,
          sorter.counters().pushes, peak_memory};
}

void Run() {
  const size_t n = EventCount();
  const std::vector<DatasetRef> datasets = Datasets(n);
  constexpr size_t kPeriod = 10000;

  Section("Ablation 1: head-run merge policy (punctuation every 10k)");
  {
    TablePrinter table({"dataset", "policy", "throughput_Me/s",
                        "elements_moved"});
    for (const DatasetRef& d : datasets) {
      for (const auto& [policy, label] :
           {std::pair{MergePolicy::kHuffman, "Huffman"},
            std::pair{MergePolicy::kBalanced, "Balanced"},
            std::pair{MergePolicy::kHeap, "HeapMerge"}}) {
        ImpatienceConfig config;
        config.merge_policy = policy;
        const SortOutcome r = RunSorter(d, config, kPeriod);
        table.PrintRow({d.name, label,
                        TablePrinter::Num(r.throughput_meps),
                        TablePrinter::Int(r.elements_moved)});
      }
    }
  }

  Section("Ablation 2: speculative run selection hit rate");
  {
    TablePrinter table({"dataset", "srs_hits", "pushes", "hit_rate"});
    for (const DatasetRef& d : datasets) {
      const SortOutcome r = RunSorter(d, ImpatienceConfig{}, kPeriod);
      const double rate = r.pushes == 0
                              ? 0
                              : 100.0 * static_cast<double>(r.srs_hits) /
                                    static_cast<double>(r.pushes);
      table.PrintRow({d.name, TablePrinter::Int(r.srs_hits),
                      TablePrinter::Int(r.pushes),
                      TablePrinter::Num(rate, 1) + "%"});
    }
  }

  Section("Ablation 3: run compaction (peak sorter bytes, punctuation "
          "every 10k)");
  {
    TablePrinter table({"dataset", "with_compaction_MB",
                        "without_compaction_MB"});
    for (const DatasetRef& d : datasets) {
      ImpatienceConfig with;
      ImpatienceConfig without;
      without.compact_fraction = 2.0;  // Never triggers.
      const SortOutcome a = RunSorter(d, with, kPeriod);
      const SortOutcome b = RunSorter(d, without, kPeriod);
      table.PrintRow(
          {d.name,
           TablePrinter::Num(static_cast<double>(a.peak_memory) / (1 << 20)),
           TablePrinter::Num(static_cast<double>(b.peak_memory) /
                             (1 << 20))});
    }
  }
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
