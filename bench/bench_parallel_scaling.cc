// Beyond the paper: multi-core scaling of the execution layer.
//
// The paper evaluates everything single-threaded; this bench sweeps the
// thread-pool size over {1, 2, 4, 8, #cores} and reports throughput for
// three workloads that exercise the three parallel code paths:
//   (a) offline Impatience sort of CloudLog events (parallel Huffman key
//       merge + parallel record gather);
//   (b) online Impatience sort at the Figure-8 punctuation frequencies
//       (parallel punctuation merge);
//   (c) the Figure-10 advanced framework query Q2 (band-parallel
//       execution).
// IMPATIENCE_THREADS=1 (or the threads=1 row) reproduces the sequential
// engine exactly; outputs are identical at every thread count, only the
// wall clock moves.
//
// Alongside the tables the bench emits one JSON document on stdout
// (between BEGIN_JSON/END_JSON markers) for machine consumption.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/thread_pool.h"
#include "engine/streamable.h"
#include "framework/impatience_framework.h"
#include "sort/sort_algorithms.h"
#include "workload/generators.h"

namespace impatience::bench {
namespace {

std::vector<size_t> ThreadCounts() {
  const unsigned hc = std::thread::hardware_concurrency();
  std::vector<size_t> counts = {1, 2, 4, 8};
  if (hc > 0) counts.push_back(hc);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// One measurement for the JSON dump.
struct Sample {
  std::string experiment;
  std::string config;
  size_t threads = 0;
  double throughput_meps = 0;
};

std::vector<Sample>& Samples() {
  static std::vector<Sample> samples;
  return samples;
}

void Record(const std::string& experiment, const std::string& config,
            size_t threads, double meps) {
  Samples().push_back(Sample{experiment, config, threads, meps});
}

// (a) Offline sort. The parallel paths (key-run merge, gather) read the
// global pool, so the sweep swaps the global pool between runs.
void RunOffline(const std::vector<Event>& events) {
  Section("Parallel scaling (a): offline Impatience sort, CloudLog, " +
          std::to_string(events.size()) + " events");
  TablePrinter table({"threads", "throughput_Me/s", "speedup"});
  double base = 0;
  for (const size_t threads : ThreadCounts()) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<Event> copy = events;
    const double secs = TimeSeconds(
        [&copy]() { OfflineSort<Event>(OfflineAlgorithm::kImpatience, &copy); });
    const double meps = Throughput(events.size(), secs);
    if (base == 0) base = meps;
    table.PrintRow({TablePrinter::Int(threads), TablePrinter::Num(meps),
                    TablePrinter::Num(meps / base) + "x"});
    Record("offline_impatience", "cloudlog", threads, meps);
  }
}

// (b) Online sort under punctuation, Figure-8 style.
void RunOnline(const std::vector<Event>& events) {
  Section("Parallel scaling (b): online Impatience sort, CloudLog, "
          "reorder latency 60s");
  std::vector<std::string> headers = {"threads"};
  const std::vector<size_t> frequencies = {10000, 100000, 1000000};
  for (const size_t freq : frequencies) {
    headers.push_back("freq=" + std::to_string(freq));
  }
  TablePrinter table(headers);
  for (const size_t threads : ThreadCounts()) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<std::string> row = {TablePrinter::Int(threads)};
    for (const size_t freq : frequencies) {
      ImpatienceSorter<Event> sorter;
      std::vector<Event> out;
      size_t emitted = 0;
      const double secs = TimeSeconds([&]() {
        Timestamp high_watermark = kMinTimestamp;
        Timestamp last_punct = kMinTimestamp;
        for (size_t i = 0; i < events.size(); ++i) {
          sorter.Push(events[i]);
          if (events[i].sync_time > high_watermark) {
            high_watermark = events[i].sync_time;
          }
          if ((i + 1) % freq == 0) {
            const Timestamp p = high_watermark - 60 * kSecond;
            if (p > last_punct) {
              sorter.OnPunctuation(p, &out);
              last_punct = p;
              emitted += out.size();
              out.clear();
            }
          }
        }
        sorter.Flush(&out);
        emitted += out.size();
        out.clear();
      });
      IMPATIENCE_CHECK(emitted + sorter.late_drops() == events.size());
      const double meps = Throughput(events.size(), secs);
      row.push_back(TablePrinter::Num(meps));
      Record("online_impatience", "freq=" + std::to_string(freq), threads,
             meps);
    }
    table.PrintRow(row);
  }
}

// (c) The Figure-10 advanced framework, Q2 (windowed group count), with
// band-parallel execution.
void RunFramework(const std::vector<Event>& events) {
  Section("Parallel scaling (c): advanced framework Q2, CloudLog, "
          "latencies {1s, 1m, 1h}");
  TablePrinter table({"threads", "throughput_Me/s", "speedup"});
  double base = 0;
  for (const size_t threads : ThreadCounts()) {
    ThreadPool::SetGlobalThreads(threads);
    MemoryTracker tracker;
    typename Ingress<4>::Options ingress;
    ingress.punctuation_period = SIZE_MAX;  // The partition punctuates.
    QueryPipeline<4> q(ingress, &tracker);
    FrameworkOptions options;
    options.reorder_latencies = {kSecond, kMinute, kHour};
    options.punctuation_period = 10000;
    options.parallel_bands = threads > 1;
    StageFn<4> piq = [](Streamable<4> s) { return s.GroupCount(); };
    StageFn<4> merge = [](Streamable<4> s) { return s.CombinePartials(); };
    Streamables<4> streams = ToStreamables<4>(
        q.disordered().TumblingWindow(kSecond), options, piq, merge);
    for (size_t i = 0; i < streams.size(); ++i) {
      streams.stream(i).ToCounting();
    }
    const double secs = TimeSeconds([&]() { q.Run(events); });
    const double meps = Throughput(events.size(), secs);
    if (base == 0) base = meps;
    table.PrintRow({TablePrinter::Int(threads), TablePrinter::Num(meps),
                    TablePrinter::Num(meps / base) + "x"});
    Record("framework_q2_advanced", "cloudlog", threads, meps);
  }
}

void PrintJson() {
  std::printf(
      "\nBEGIN_JSON\n{\"kernel_level\": \"%s\", \"bench_seed\": %llu,\n"
      "\"parallel_scaling\": [\n",
      BenchKernelLevel(), static_cast<unsigned long long>(BenchSeed()));
  const std::vector<Sample>& samples = Samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    std::printf(
        "  {\"experiment\": \"%s\", \"config\": \"%s\", \"threads\": %zu, "
        "\"throughput_meps\": %.4f}%s\n",
        samples[i].experiment.c_str(), samples[i].config.c_str(),
        samples[i].threads, samples[i].throughput_meps,
        i + 1 < samples.size() ? "," : "");
  }
  std::printf("]}\nEND_JSON\n");
  std::fflush(stdout);
}

void Run() {
  // The paper's Figure 7/8 scale is 20M; default to 8M here (the sweep
  // runs every workload once per thread count).
  const size_t n = EventCount(8000000);
  const Dataset cloudlog = BenchCloudLog(n);

  RunOffline(cloudlog.events);
  RunOnline(cloudlog.events);

  const size_t framework_n = EventCount(1000000);
  if (framework_n == n) {
    RunFramework(cloudlog.events);
  } else {
    RunFramework(BenchCloudLog(framework_n).events);
  }
  PrintJson();
}

}  // namespace
}  // namespace impatience::bench

int main() {
  impatience::bench::InitBenchProcess();
  impatience::bench::Run();
  return 0;
}
