file(REMOVE_RECURSE
  "CMakeFiles/sort_test.dir/sort/disorder_stats_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/disorder_stats_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/impatience_punctuation_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/impatience_punctuation_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/impatience_sorter_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/impatience_sorter_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/merge_pool_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/merge_pool_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/merge_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/merge_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/offline_sort_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/offline_sort_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/online_contract_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/online_contract_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/quicksort_heapsort_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/quicksort_heapsort_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/timsort_stress_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/timsort_stress_test.cc.o.d"
  "CMakeFiles/sort_test.dir/sort/timsort_test.cc.o"
  "CMakeFiles/sort_test.dir/sort/timsort_test.cc.o.d"
  "sort_test"
  "sort_test.pdb"
  "sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
