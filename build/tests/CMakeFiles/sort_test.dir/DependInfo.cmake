
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sort/disorder_stats_test.cc" "tests/CMakeFiles/sort_test.dir/sort/disorder_stats_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/disorder_stats_test.cc.o.d"
  "/root/repo/tests/sort/impatience_punctuation_test.cc" "tests/CMakeFiles/sort_test.dir/sort/impatience_punctuation_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/impatience_punctuation_test.cc.o.d"
  "/root/repo/tests/sort/impatience_sorter_test.cc" "tests/CMakeFiles/sort_test.dir/sort/impatience_sorter_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/impatience_sorter_test.cc.o.d"
  "/root/repo/tests/sort/merge_pool_test.cc" "tests/CMakeFiles/sort_test.dir/sort/merge_pool_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/merge_pool_test.cc.o.d"
  "/root/repo/tests/sort/merge_test.cc" "tests/CMakeFiles/sort_test.dir/sort/merge_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/merge_test.cc.o.d"
  "/root/repo/tests/sort/offline_sort_test.cc" "tests/CMakeFiles/sort_test.dir/sort/offline_sort_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/offline_sort_test.cc.o.d"
  "/root/repo/tests/sort/online_contract_test.cc" "tests/CMakeFiles/sort_test.dir/sort/online_contract_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/online_contract_test.cc.o.d"
  "/root/repo/tests/sort/quicksort_heapsort_test.cc" "tests/CMakeFiles/sort_test.dir/sort/quicksort_heapsort_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/quicksort_heapsort_test.cc.o.d"
  "/root/repo/tests/sort/timsort_stress_test.cc" "tests/CMakeFiles/sort_test.dir/sort/timsort_stress_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/timsort_stress_test.cc.o.d"
  "/root/repo/tests/sort/timsort_test.cc" "tests/CMakeFiles/sort_test.dir/sort/timsort_test.cc.o" "gcc" "tests/CMakeFiles/sort_test.dir/sort/timsort_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
