
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/aggregates_latency_test.cc" "tests/CMakeFiles/engine_test.dir/engine/aggregates_latency_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/aggregates_latency_test.cc.o.d"
  "/root/repo/tests/engine/batch_test.cc" "tests/CMakeFiles/engine_test.dir/engine/batch_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/batch_test.cc.o.d"
  "/root/repo/tests/engine/node_test.cc" "tests/CMakeFiles/engine_test.dir/engine/node_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/node_test.cc.o.d"
  "/root/repo/tests/engine/ops_aggregate_test.cc" "tests/CMakeFiles/engine_test.dir/engine/ops_aggregate_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/ops_aggregate_test.cc.o.d"
  "/root/repo/tests/engine/ops_basic_test.cc" "tests/CMakeFiles/engine_test.dir/engine/ops_basic_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/ops_basic_test.cc.o.d"
  "/root/repo/tests/engine/ops_join_session_test.cc" "tests/CMakeFiles/engine_test.dir/engine/ops_join_session_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/ops_join_session_test.cc.o.d"
  "/root/repo/tests/engine/ops_pattern_test.cc" "tests/CMakeFiles/engine_test.dir/engine/ops_pattern_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/ops_pattern_test.cc.o.d"
  "/root/repo/tests/engine/ops_snapshot_test.cc" "tests/CMakeFiles/engine_test.dir/engine/ops_snapshot_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/ops_snapshot_test.cc.o.d"
  "/root/repo/tests/engine/ops_union_test.cc" "tests/CMakeFiles/engine_test.dir/engine/ops_union_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/ops_union_test.cc.o.d"
  "/root/repo/tests/engine/pipeline_test.cc" "tests/CMakeFiles/engine_test.dir/engine/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/pipeline_test.cc.o.d"
  "/root/repo/tests/engine/streamable_api_test.cc" "tests/CMakeFiles/engine_test.dir/engine/streamable_api_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/streamable_api_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
