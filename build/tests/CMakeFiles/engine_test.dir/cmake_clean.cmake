file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/engine/aggregates_latency_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/aggregates_latency_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/batch_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/batch_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/node_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/node_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/ops_aggregate_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/ops_aggregate_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/ops_basic_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/ops_basic_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/ops_join_session_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/ops_join_session_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/ops_pattern_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/ops_pattern_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/ops_snapshot_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/ops_snapshot_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/ops_union_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/ops_union_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/pipeline_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/pipeline_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/streamable_api_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/streamable_api_test.cc.o.d"
  "engine_test"
  "engine_test.pdb"
  "engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
