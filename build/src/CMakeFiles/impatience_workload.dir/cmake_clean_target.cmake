file(REMOVE_RECURSE
  "libimpatience_workload.a"
)
