file(REMOVE_RECURSE
  "CMakeFiles/impatience_workload.dir/workload/csv_reader.cc.o"
  "CMakeFiles/impatience_workload.dir/workload/csv_reader.cc.o.d"
  "CMakeFiles/impatience_workload.dir/workload/generators.cc.o"
  "CMakeFiles/impatience_workload.dir/workload/generators.cc.o.d"
  "CMakeFiles/impatience_workload.dir/workload/io.cc.o"
  "CMakeFiles/impatience_workload.dir/workload/io.cc.o.d"
  "libimpatience_workload.a"
  "libimpatience_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
