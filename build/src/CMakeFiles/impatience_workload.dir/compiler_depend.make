# Empty compiler generated dependencies file for impatience_workload.
# This may be replaced when dependencies are built.
