file(REMOVE_RECURSE
  "libimpatience_common.a"
)
