file(REMOVE_RECURSE
  "CMakeFiles/impatience_common.dir/common/random.cc.o"
  "CMakeFiles/impatience_common.dir/common/random.cc.o.d"
  "libimpatience_common.a"
  "libimpatience_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
