# Empty dependencies file for impatience_common.
# This may be replaced when dependencies are built.
