# Empty compiler generated dependencies file for impatience_sort.
# This may be replaced when dependencies are built.
