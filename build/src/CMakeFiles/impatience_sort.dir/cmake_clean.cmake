file(REMOVE_RECURSE
  "CMakeFiles/impatience_sort.dir/sort/disorder_stats.cc.o"
  "CMakeFiles/impatience_sort.dir/sort/disorder_stats.cc.o.d"
  "libimpatience_sort.a"
  "libimpatience_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
