file(REMOVE_RECURSE
  "libimpatience_sort.a"
)
