file(REMOVE_RECURSE
  "CMakeFiles/ad_dashboard.dir/ad_dashboard.cpp.o"
  "CMakeFiles/ad_dashboard.dir/ad_dashboard.cpp.o.d"
  "ad_dashboard"
  "ad_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
