# Empty compiler generated dependencies file for ad_dashboard.
# This may be replaced when dependencies are built.
