file(REMOVE_RECURSE
  "CMakeFiles/pattern_alert.dir/pattern_alert.cpp.o"
  "CMakeFiles/pattern_alert.dir/pattern_alert.cpp.o.d"
  "pattern_alert"
  "pattern_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
