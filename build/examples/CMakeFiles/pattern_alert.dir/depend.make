# Empty dependencies file for pattern_alert.
# This may be replaced when dependencies are built.
