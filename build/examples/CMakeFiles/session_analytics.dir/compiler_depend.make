# Empty compiler generated dependencies file for session_analytics.
# This may be replaced when dependencies are built.
