file(REMOVE_RECURSE
  "CMakeFiles/session_analytics.dir/session_analytics.cpp.o"
  "CMakeFiles/session_analytics.dir/session_analytics.cpp.o.d"
  "session_analytics"
  "session_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
