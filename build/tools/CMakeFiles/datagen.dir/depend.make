# Empty dependencies file for datagen.
# This may be replaced when dependencies are built.
