# Empty dependencies file for disorder_stats.
# This may be replaced when dependencies are built.
