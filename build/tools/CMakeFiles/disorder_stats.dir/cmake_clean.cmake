file(REMOVE_RECURSE
  "CMakeFiles/disorder_stats.dir/disorder_stats_cli.cc.o"
  "CMakeFiles/disorder_stats.dir/disorder_stats_cli.cc.o.d"
  "disorder_stats"
  "disorder_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disorder_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
