
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/disorder_stats_cli.cc" "tools/CMakeFiles/disorder_stats.dir/disorder_stats_cli.cc.o" "gcc" "tools/CMakeFiles/disorder_stats.dir/disorder_stats_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
