# Empty dependencies file for bench_fig9_sort_as_needed.
# This may be replaced when dependencies are built.
