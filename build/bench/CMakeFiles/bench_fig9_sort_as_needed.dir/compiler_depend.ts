# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig9_sort_as_needed.
