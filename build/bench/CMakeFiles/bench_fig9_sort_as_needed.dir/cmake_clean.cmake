file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sort_as_needed.dir/bench_fig9_sort_as_needed.cc.o"
  "CMakeFiles/bench_fig9_sort_as_needed.dir/bench_fig9_sort_as_needed.cc.o.d"
  "bench_fig9_sort_as_needed"
  "bench_fig9_sort_as_needed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sort_as_needed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
