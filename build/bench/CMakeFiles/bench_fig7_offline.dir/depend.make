# Empty dependencies file for bench_fig7_offline.
# This may be replaced when dependencies are built.
