file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_online.dir/bench_fig8_online.cc.o"
  "CMakeFiles/bench_fig8_online.dir/bench_fig8_online.cc.o.d"
  "bench_fig8_online"
  "bench_fig8_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
