file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_runs.dir/bench_fig5_runs.cc.o"
  "CMakeFiles/bench_fig5_runs.dir/bench_fig5_runs.cc.o.d"
  "bench_fig5_runs"
  "bench_fig5_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
