# Empty dependencies file for bench_fig10_framework.
# This may be replaced when dependencies are built.
