file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_completeness.dir/bench_table2_completeness.cc.o"
  "CMakeFiles/bench_table2_completeness.dir/bench_table2_completeness.cc.o.d"
  "bench_table2_completeness"
  "bench_table2_completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
