file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_disorder.dir/bench_table1_disorder.cc.o"
  "CMakeFiles/bench_table1_disorder.dir/bench_table1_disorder.cc.o.d"
  "bench_table1_disorder"
  "bench_table1_disorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_disorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
