// Log triage: profile a log's disorder, pick a reorder latency from the
// data, and demonstrate the sort-as-needed win on a real query.
//
// This is the workflow a new user of the library follows when onboarding
// an unfamiliar log source: measure the four disorder statistics (§II),
// read off the lateness distribution, and let those numbers choose the
// punctuation settings instead of guessing.

#include <chrono>
#include <cstdio>
#include <vector>

#include "engine/streamable.h"
#include "sort/disorder_stats.h"
#include "workload/generators.h"

using namespace impatience;  // Example code; library code never does this.

int main() {
  CloudLogConfig config;
  config.num_events = 500000;
  const Dataset data = GenerateCloudLog(config);

  // Step 1: profile the disorder.
  const DisorderStats stats = ComputeDisorderStats(SyncTimes(data.events));
  std::printf("disorder profile of %s (%zu events):\n", data.name.c_str(),
              data.events.size());
  std::printf("  inversions:   %llu\n",
              static_cast<unsigned long long>(stats.inversions));
  std::printf("  max distance: %llu positions\n",
              static_cast<unsigned long long>(stats.distance));
  std::printf("  natural runs: %llu (avg %.1f events/run)\n",
              static_cast<unsigned long long>(stats.runs),
              static_cast<double>(data.events.size()) /
                  static_cast<double>(stats.runs));
  std::printf("  interleaved:  %llu\n",
              static_cast<unsigned long long>(stats.interleaved));

  // Step 2: pick a reorder latency from the lateness distribution.
  for (const Timestamp latency :
       {kSecond, 10 * kSecond, kMinute, 10 * kMinute, kHour}) {
    std::printf("  completeness at %7lld ms latency: %.2f%%\n",
                static_cast<long long>(latency),
                100 * CompletenessAtLatency(data.events, latency));
  }
  const Timestamp chosen = 25 * kMinute;
  std::printf("chosen reorder latency: %lld ms (covers failure bursts)\n\n",
              static_cast<long long>(chosen));

  // Step 3: run "per-minute event count for server group 7" both ways and
  // show the sort-as-needed speedup.
  auto group7 = [](const EventBatch<4>& b, size_t i) {
    return b.key[i] == 7;
  };
  Ingress<4>::Options options;
  options.punctuation_period = 10000;
  options.reorder_latency = chosen;

  auto run = [&](bool push_down) {
    const auto start = std::chrono::steady_clock::now();
    QueryPipeline<4> q(options);
    CountingSink<4>* sink = nullptr;
    if (push_down) {
      sink = q.disordered()
                 .Where(group7)
                 .TumblingWindow(kMinute)
                 .ToStreamable()
                 .Count()
                 .ToCounting();
    } else {
      sink = q.disordered()
                 .ToStreamable()
                 .Where(group7)
                 .TumblingWindow(kMinute)
                 .Count()
                 .ToCounting();
    }
    q.Run(data.events);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    std::printf("  %-28s %.3f s (%llu result windows)\n",
                push_down ? "filter+window before sort:" :
                            "sort first:",
                secs, static_cast<unsigned long long>(sink->count()));
    return secs;
  };

  std::printf("per-minute count of group-7 events, two query plans:\n");
  const double slow = run(false);
  const double fast = run(true);
  std::printf("sort-as-needed speedup: %.2fx\n", slow / fast);
  return 0;
}
