// Session analytics over a disordered click log: sessionize each user's
// activity, then join sessions against a per-user "campaign exposure"
// stream to attribute sessions to campaigns.
//
// Demonstrates the operators a log-analytics user reaches for right after
// windowed counts — session windows and temporal joins — and why they sit
// downstream of the sorting operator: both are order-sensitive.

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "engine/streamable.h"
#include "workload/generators.h"

using namespace impatience;  // Example code; library code never does this.

namespace {

// Browsing model: each user produces bursts of 5-20 clicks a few hundred
// ms apart, separated by long idle gaps; events arrive with network jitter
// (the source of disorder).
std::vector<Event> GenerateClickLog(size_t num_users, size_t num_bursts,
                                    uint64_t seed) {
  Rng rng(seed);
  struct Pending {
    Timestamp arrival;
    Event event;
  };
  std::vector<Pending> pending;
  for (size_t user = 0; user < num_users; ++user) {
    Timestamp t = static_cast<Timestamp>(rng.NextBelow(10 * kSecond));
    for (size_t burst = 0; burst < num_bursts; ++burst) {
      const size_t clicks = 5 + rng.NextBelow(16);
      for (size_t c = 0; c < clicks; ++c) {
        Event e;
        e.sync_time = t;
        e.other_time = t;
        e.key = static_cast<int32_t>(user);
        e.hash = HashKey(e.key);
        e.payload[0] = static_cast<int32_t>(rng.NextBelow(40));  // Ad id.
        const Timestamp jitter =
            static_cast<Timestamp>(rng.NextExponential(150.0));
        pending.push_back({t + jitter, e});
        t += 100 + static_cast<Timestamp>(rng.NextBelow(900));
      }
      t += 30 * kSecond +
           static_cast<Timestamp>(rng.NextBelow(4 * kMinute));
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              return a.arrival < b.arrival;
            });
  std::vector<Event> events;
  events.reserve(pending.size());
  for (const Pending& p : pending) events.push_back(p.event);
  return events;
}

}  // namespace

int main() {
  const std::vector<Event> events =
      GenerateClickLog(/*num_users=*/200, /*num_bursts=*/40, /*seed=*/7);
  std::printf("click log: %zu events from 200 users\n", events.size());

  Ingress<4>::Options options;
  options.punctuation_period = 5000;
  options.reorder_latency = 2 * kSecond;  // Covers the network jitter.
  QueryPipeline<4> query(options);

  // One sorted stream, forked: session summaries and campaign exposures.
  auto [sessions_in, exposures_in] = query.disordered().ToStreamable().Fork();

  // Sessions: a user's clicks group while gaps stay under 5 seconds.
  auto sessions = sessions_in.SessionWindows(5 * kSecond);

  // Campaign exposures: clicks on ad 7 open a 30-second exposure window.
  auto exposures =
      exposures_in
          .Where([](const EventBatch<4>& b, size_t i) {
            return b.payload[0][i] == 7;
          })
          .Map([](EventBatch<4>* b, size_t i) {
            b->other_time[i] = b->sync_time[i] + 30 * kSecond;
          });

  // Attribution: session summaries overlapping an exposure of the same
  // user. A session with several ad-7 clicks matches several exposures, so
  // unique sessions are counted by (user, session start).
  std::set<std::pair<int32_t, int32_t>> attributed;
  sessions
      .Join(exposures,
            [](const Event& session, const Event& exposure) {
              Event out = session;
              // The join rewrites sync/other to the overlap; stash the
              // session's identity (its start) in the payload.
              out.payload[2] = static_cast<int32_t>(session.sync_time);
              out.payload[3] = exposure.payload[0];
              return out;
            })
      .Subscribe([&attributed](const Event& e) {
        attributed.insert({e.key, e.payload[2]});
      });

  uint64_t total_sessions = 0;
  int64_t total_clicks = 0;
  int64_t total_duration_ms = 0;
  // The session stream feeds the join; count totals with a second query.
  QueryPipeline<4> stats(options);
  stats.disordered()
      .ToStreamable()
      .SessionWindows(5 * kSecond)
      .Subscribe([&total_sessions, &total_clicks,
                  &total_duration_ms](const Event& e) {
        ++total_sessions;
        total_clicks += e.payload[0];
        total_duration_ms += e.payload[1];
      });

  query.Run(events);
  stats.Run(events);

  const double denom =
      total_sessions == 0 ? 1.0 : static_cast<double>(total_sessions);
  std::printf("sessions:            %llu (avg %.1f clicks, %.1f s)\n",
              static_cast<unsigned long long>(total_sessions),
              static_cast<double>(total_clicks) / denom,
              static_cast<double>(total_duration_ms) / denom / 1000.0);
  std::printf("campaign-attributed: %zu sessions (%.1f%%)\n",
              attributed.size(),
              total_sessions == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(attributed.size()) /
                        static_cast<double>(total_sessions));
  return 0;
}
