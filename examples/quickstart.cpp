// Quickstart: ingest an out-of-order stream, sort it with Impatience sort,
// and compute a per-second event count.
//
//   $ ./examples/quickstart
//
// Walks through the three core ideas:
//   1. events arrive out of order (network delays, failures);
//   2. a DisorderedStreamable only allows order-insensitive operators until
//      ToStreamable() inserts the sorting operator (sort-as-needed);
//   3. punctuations drive incremental, low-latency output.

#include <cstdio>

#include "engine/streamable.h"
#include "workload/generators.h"

using namespace impatience;  // Example code; library code never does this.

int main() {
  // A synthetic log: 200k events, one per millisecond, 30% of them delayed
  // by |N(0, 64)| ms — the paper's synthetic workload.
  SyntheticConfig config;
  config.num_events = 200000;
  config.percent_disorder = 30;
  config.disorder_stddev = 64;
  const Dataset data = GenerateSynthetic(config);

  std::printf("Generated %zu events; max lateness %lld ms\n",
              data.events.size(),
              static_cast<long long>(MaxLateness(data.events)));

  // Ingress: punctuate every 10k events, tolerating 1 second of disorder.
  Ingress<4>::Options options;
  options.punctuation_period = 10000;
  options.reorder_latency = 1 * kSecond;

  QueryPipeline<4> query(options);
  int printed = 0;
  query.disordered()
      .TumblingWindow(10 * kSecond)
      .ToStreamable()  // <- the Impatience sort operator lives here
      .Count()
      .Subscribe([&printed](const Event& e) {
        if (printed < 10) {
          std::printf("window [%8lld, %8lld): %d events\n",
                      static_cast<long long>(e.sync_time),
                      static_cast<long long>(e.other_time), e.payload[0]);
          ++printed;
        }
      });

  query.Run(data.events);
  std::printf("... (first 10 windows shown)\n");
  return 0;
}
