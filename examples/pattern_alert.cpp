// The paper's second example query (§V-C): find users who click ad X and
// then ad Y within one minute — a pattern that has no obvious PIQ/merge
// decomposition, so it runs on the *basic* Impatience framework: the same
// pattern matcher is subscribed to each output stream, trading some
// redundant computation for progressive completeness.

#include <cstdio>

#include "engine/streamable.h"
#include "framework/impatience_framework.h"
#include "workload/generators.h"

using namespace impatience;  // Example code; library code never does this.

constexpr int32_t kAdX = 17;
constexpr int32_t kAdY = 42;

int main() {
  AndroidLogConfig config;  // Click logs uploaded in delayed batches.
  config.num_events = 400000;
  config.num_devices = 12;
  config.num_ad_ids = 50;  // Dense enough for X-then-Y sequences to occur.
  const Dataset data = GenerateAndroidLog(config);

  Ingress<4>::Options ingress;
  ingress.punctuation_period = SIZE_MAX;
  QueryPipeline<4> query(ingress);

  FrameworkOptions options;
  options.reorder_latencies = {5 * kMinute, 1 * kHour, 3 * kDay};
  options.punctuation_period = 10000;

  // Sort-as-needed: filter for X/Y clicks *before* partition and sort.
  auto relevant = [](const EventBatch<4>& b, size_t i) {
    return b.payload[0][i] == kAdX || b.payload[0][i] == kAdY;
  };
  Streamables<4> streams =
      ToStreamables<4>(query.disordered().Where(relevant), options);

  auto is_x = [](const EventBatch<4>& b, size_t i) {
    return b.payload[0][i] == kAdX;
  };
  auto is_y = [](const EventBatch<4>& b, size_t i) {
    return b.payload[0][i] == kAdY;
  };

  // The basic framework: the full pattern query per output stream.
  uint64_t alerts[3] = {0, 0, 0};
  for (size_t i = 0; i < streams.size(); ++i) {
    streams.stream(i)
        .PatternMatch(is_x, is_y, 1 * kMinute)
        .Subscribe([&alerts, i](const Event&) { ++alerts[i]; });
  }

  query.Run(data.events);

  std::printf("X-then-Y alerts by output stream:\n");
  std::printf("  within 5 minutes of real time: %llu\n",
              static_cast<unsigned long long>(alerts[0]));
  std::printf("  within 1 hour:                 %llu\n",
              static_cast<unsigned long long>(alerts[1]));
  std::printf("  within 3 days (near-complete): %llu\n",
              static_cast<unsigned long long>(alerts[2]));
  std::printf("events beyond 3 days (dropped):  %llu\n",
              static_cast<unsigned long long>(streams.TotalDrops()));
  return 0;
}
