// The paper's running example (§I, §V-C query 1): an online dashboard
// showing per-ad click counts per second, refined as late events arrive.
//
// The advanced Impatience framework runs with reorder latencies
// {1 s, 1 min, 1 h}: the dashboard paints quick numbers from the 1-second
// stream and patches them when the 1-minute and 1-hour streams deliver the
// stragglers — no completeness/latency compromise, and the unions buffer
// only per-(window, ad) partial counts.

#include <cstdio>
#include <map>

#include "engine/streamable.h"
#include "framework/impatience_framework.h"
#include "workload/generators.h"

using namespace impatience;  // Example code; library code never does this.

int main() {
  // CloudLog-style traffic: mostly fresh, a few failure bursts minutes
  // late.
  CloudLogConfig config;
  config.num_events = 500000;
  const Dataset data = GenerateCloudLog(config);

  MemoryTracker tracker;
  Ingress<4>::Options ingress;
  ingress.punctuation_period = SIZE_MAX;  // The framework punctuates.
  QueryPipeline<4> query(ingress, &tracker);

  FrameworkOptions options;
  options.reorder_latencies = {1 * kSecond, 1 * kMinute, 1 * kHour};
  options.punctuation_period = 10000;

  // PIQ: per-band per-second count per ad (key := ad id).
  StageFn<4> piq = [](Streamable<4> s) {
    return s
        .Map([](EventBatch<4>* b, size_t i) {
          b->key[i] = b->payload[0][i] % 100;  // 100 dashboard tiles.
          b->hash[i] = HashKey(b->key[i]);
        })
        .GroupCount();
  };
  StageFn<4> merge = [](Streamable<4> s) { return s.CombinePartials(); };

  Streamables<4> streams =
      ToStreamables<4>(query.disordered().TumblingWindow(1 * kSecond),
                       options, piq, merge);

  // The dashboard model: latest count per (window, ad), overwritten as more
  // complete streams deliver.
  std::map<std::pair<Timestamp, int32_t>, int32_t> dashboard;
  uint64_t refinements = 0;
  for (size_t i = 0; i < streams.size(); ++i) {
    streams.stream(i).Subscribe(
        [&dashboard, &refinements, i](const Event& e) {
          auto [it, inserted] =
              dashboard.insert({{e.sync_time, e.key}, e.payload[0]});
          if (!inserted && it->second != e.payload[0]) {
            it->second = e.payload[0];
            ++refinements;  // A late refinement from stream i (> 0).
          }
          (void)i;
        });
  }

  query.Run(data.events);

  std::printf("dashboard tiles (window x ad): %zu\n", dashboard.size());
  std::printf("late refinements applied:      %llu\n",
              static_cast<unsigned long long>(refinements));
  std::printf("events beyond 1h (discarded):  %llu\n",
              static_cast<unsigned long long>(streams.TotalDrops()));
  std::printf("peak buffered memory:          %.2f MB\n",
              static_cast<double>(tracker.peak_bytes()) / (1 << 20));

  // Show one tile's refinement story: the first window with a refinement.
  std::printf("\nSample tiles (first 5):\n");
  int shown = 0;
  for (const auto& [key, count] : dashboard) {
    if (shown++ >= 5) break;
    std::printf("  window %lld, ad %d -> %d clicks\n",
                static_cast<long long>(key.first), key.second, count);
  }
  return 0;
}
