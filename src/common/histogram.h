// Log-bucketed latency histograms (HdrHistogram-style).
//
// Values (nanoseconds, but any non-negative 64-bit quantity works) map to
// buckets as follows: values below 32 get exact unit buckets; above that,
// every power-of-two range [2^k, 2^(k+1)) splits into 32 equal sub-buckets.
// Bucket width is therefore at most 1/32 ≈ 3.1% of the value, and quoting
// the bucket midpoint bounds the relative quantile error at ~1.6% (≤2.5%
// including the rounding at range edges). The full 64-bit range needs 1920
// buckets — 15 KiB per histogram, fixed.
//
// Two flavors share the layout:
//   * HistogramSnapshot — plain counters. Cheap single-threaded recording
//     (sorters are single-threaded by contract), copyable, mergeable with
//     operator+= (bucket-wise sum, so merging is associative and
//     commutative), and the type metrics snapshots carry across threads.
//   * LatencyHistogram — std::atomic buckets for concurrent recorders
//     (shard queue/drain instrumentation, traced pool tasks). Record is a
//     relaxed fetch_add; Snapshot() optionally exchanges the buckets to
//     zero so snapshot-and-reset never loses a concurrent increment.
//
// Quantile queries (p50/p90/p99/p999/max) walk the bucket array — O(1920),
// scrape-time only, never on the record path.

#ifndef IMPATIENCE_COMMON_HISTOGRAM_H_
#define IMPATIENCE_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/clock.h"

namespace impatience {

namespace histogram_internal {

inline constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave.
inline constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
// Highest index produced by BucketIndex over the uint64 domain, plus one.
inline constexpr size_t kNumBuckets = 32 * (64 - kSubBucketBits) + 64;

// Index of the bucket containing `v`. Monotonic in `v`.
inline size_t BucketIndex(uint64_t v) {
  const int msb = 63 - __builtin_clzll(v | 1);
  if (msb < kSubBucketBits) return static_cast<size_t>(v);
  const int shift = msb - kSubBucketBits;
  return static_cast<size_t>(32 * shift + (v >> shift));
}

// Smallest value mapping to bucket `i` (inverse of BucketIndex).
inline uint64_t BucketLow(size_t i) {
  if (i < kSubBuckets) return i;
  const size_t octave = i >> kSubBucketBits;  // >= 1
  return (kSubBuckets + (i & (kSubBuckets - 1))) << (octave - 1);
}

// Representative (midpoint) value for bucket `i`.
inline uint64_t BucketMid(size_t i) {
  if (i < kSubBuckets) return i;
  const size_t octave = i >> kSubBucketBits;
  const uint64_t width = uint64_t{1} << (octave - 1);
  return BucketLow(i) + width / 2;
}

}  // namespace histogram_internal

// Copyable, mergeable histogram with a non-atomic (single-writer) record
// path. See the file comment.
class HistogramSnapshot {
 public:
  void Record(uint64_t value) {
    ++buckets_[histogram_internal::BucketIndex(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  // Mean of recorded values (0 when empty).
  uint64_t mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  // Value at quantile q in [0, 1]: the bucket midpoint where the
  // cumulative count first reaches ceil(q * count), clamped to max().
  // Returns 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  // Number of recorded values <= bound — the Prometheus histogram
  // _bucket{le="bound"} convention. Exact whenever `bound` is the largest
  // value of its bucket (any value below 32, or any 2^k - 1); otherwise
  // the whole bucket containing `bound` is included, an overcount bounded
  // by one bucket width (~3.1% of the value).
  uint64_t CountLessOrEqual(uint64_t bound) const;

  uint64_t P50() const { return ValueAtQuantile(0.50); }
  uint64_t P90() const { return ValueAtQuantile(0.90); }
  uint64_t P99() const { return ValueAtQuantile(0.99); }
  uint64_t P999() const { return ValueAtQuantile(0.999); }

  // Bucket-wise sum; count/sum add, max takes the larger.
  HistogramSnapshot& operator+=(const HistogramSnapshot& other);

  void Reset() { *this = HistogramSnapshot{}; }

 private:
  friend class LatencyHistogram;

  std::array<uint64_t, histogram_internal::kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// Thread-safe recorder: atomic buckets, relaxed increments. Readers take
// a Snapshot() (optionally draining the counts) and query quantiles on
// the snapshot.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value) {
    buckets_[histogram_internal::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // Point-in-time copy. With `reset`, buckets are exchanged to zero so
  // every recorded value lands in exactly one snapshot even while other
  // threads keep recording (no read-then-reset window).
  HistogramSnapshot Snapshot(bool reset = false);

  // Accumulates another recorder's counts (metrics aggregation).
  LatencyHistogram& operator+=(const LatencyHistogram& other);

 private:
  std::array<std::atomic<uint64_t>, histogram_internal::kNumBuckets>
      buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// RAII timer: records Clock::Nanos() elapsed between construction and
// destruction into a histogram (either flavor).
template <typename Histogram>
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist)
      : hist_(hist), start_(Clock::Nanos()) {}
  ~ScopedLatencyTimer() { hist_->Record(Clock::Nanos() - start_); }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_HISTOGRAM_H_
