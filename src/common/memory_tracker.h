// Byte-accurate accounting of operator buffer usage.
//
// The paper's Figure 10(b)/(d) compares the memory footprint of query
// execution strategies. Instead of sampling process RSS (noisy, allocator-
// dependent), every buffering site in this library — sorter runs, adapter
// buffers, union synchronization buffers, ingress reorder buffers — reports
// its current byte count to a MemoryTracker, which maintains the running
// total and the high-watermark.

#ifndef IMPATIENCE_COMMON_MEMORY_TRACKER_H_
#define IMPATIENCE_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace impatience {

// Aggregates buffer sizes across many reporting sites.
//
// Usage: a buffering component holds a MemoryReservation tied to a tracker
// and calls Update(bytes) whenever its footprint changes; the reservation
// releases its bytes on destruction. Components without a tracker pass
// nullptr and all calls become no-ops.
//
// Add/Sub are lock-free so reservations may be updated from concurrent
// band tasks (partition-parallel execution). The peak is a CAS-max over
// the post-Add total; with concurrent updates it is exact with respect to
// the interleaving the atomics observed, which is the same guarantee a
// sequential tracker gives for any one interleaving.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  // Current total across all live reservations, in bytes.
  size_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }

  // Largest value current_bytes() has reached since construction/Reset.
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  // Clears both the running total contribution baseline and the peak.
  // Live reservations keep their bytes; the peak restarts from the current
  // total.
  void ResetPeak() {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  friend class MemoryReservation;

  void Add(size_t bytes) {
    const size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t seen = peak_.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  void Sub(size_t bytes) { current_.fetch_sub(bytes, std::memory_order_relaxed); }

  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

// One reporting site's stake in a MemoryTracker. Movable, not copyable.
class MemoryReservation {
 public:
  // A reservation with a null tracker is valid and ignores all updates.
  explicit MemoryReservation(MemoryTracker* tracker = nullptr)
      : tracker_(tracker) {}

  MemoryReservation(MemoryReservation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  ~MemoryReservation() { Release(); }

  // Sets this site's current footprint to `bytes` (absolute, not delta).
  void Update(size_t bytes) {
    if (tracker_ == nullptr) {
      bytes_ = bytes;
      return;
    }
    if (bytes > bytes_) {
      tracker_->Add(bytes - bytes_);
    } else {
      tracker_->Sub(bytes_ - bytes);
    }
    bytes_ = bytes;
  }

  // This site's last reported footprint.
  size_t bytes() const { return bytes_; }

 private:
  void Release() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Sub(bytes_);
    bytes_ = 0;
  }

  MemoryTracker* tracker_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_MEMORY_TRACKER_H_
