// Byte-accurate accounting of operator buffer usage.
//
// The paper's Figure 10(b)/(d) compares the memory footprint of query
// execution strategies. Instead of sampling process RSS (noisy, allocator-
// dependent), every buffering site in this library — sorter runs, adapter
// buffers, union synchronization buffers, ingress reorder buffers — reports
// its current byte count to a MemoryTracker, which maintains the running
// total and the high-watermark.

#ifndef IMPATIENCE_COMMON_MEMORY_TRACKER_H_
#define IMPATIENCE_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace impatience {

// Aggregates buffer sizes across many reporting sites.
//
// Usage: a buffering component holds a MemoryReservation tied to a tracker
// and calls Update(bytes) whenever its footprint changes; the reservation
// releases its bytes on destruction. Components without a tracker pass
// nullptr and all calls become no-ops.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  // Current total across all live reservations, in bytes.
  size_t current_bytes() const { return current_; }

  // Largest value current_bytes() has reached since construction/Reset.
  size_t peak_bytes() const { return peak_; }

  // Clears both the running total contribution baseline and the peak.
  // Live reservations keep their bytes; the peak restarts from the current
  // total.
  void ResetPeak() { peak_ = current_; }

 private:
  friend class MemoryReservation;

  void Add(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }
  void Sub(size_t bytes) { current_ -= bytes; }

  size_t current_ = 0;
  size_t peak_ = 0;
};

// One reporting site's stake in a MemoryTracker. Movable, not copyable.
class MemoryReservation {
 public:
  // A reservation with a null tracker is valid and ignores all updates.
  explicit MemoryReservation(MemoryTracker* tracker = nullptr)
      : tracker_(tracker) {}

  MemoryReservation(MemoryReservation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  ~MemoryReservation() { Release(); }

  // Sets this site's current footprint to `bytes` (absolute, not delta).
  void Update(size_t bytes) {
    if (tracker_ == nullptr) {
      bytes_ = bytes;
      return;
    }
    if (bytes > bytes_) {
      tracker_->Add(bytes - bytes_);
    } else {
      tracker_->Sub(bytes_ - bytes);
    }
    bytes_ = bytes;
  }

  // This site's last reported footprint.
  size_t bytes() const { return bytes_; }

 private:
  void Release() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Sub(bytes_);
    bytes_ = 0;
  }

  MemoryTracker* tracker_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_MEMORY_TRACKER_H_
