// Logical time used throughout the library.
//
// Timestamps are 64-bit signed integers in application-defined units
// (the benchmarks use milliseconds). Two distinguished values bound the
// domain: kMinTimestamp is "before everything" and kMaxTimestamp acts as
// the infinite punctuation that flushes all buffered state (paper §III-A).

#ifndef IMPATIENCE_COMMON_TIMESTAMP_H_
#define IMPATIENCE_COMMON_TIMESTAMP_H_

#include <cstdint>
#include <limits>

namespace impatience {

// Event (application) time. Processing time is represented implicitly by
// arrival order; see DESIGN.md §4.
using Timestamp = int64_t;

// Sentinel meaning "no timestamp yet" / before all events.
inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();

// The infinite punctuation: every buffered event is <= kMaxTimestamp, so a
// punctuation carrying it flushes everything.
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

// Common duration constants (milliseconds), used by examples and benches.
inline constexpr Timestamp kMillisecond = 1;
inline constexpr Timestamp kSecond = 1000;
inline constexpr Timestamp kMinute = 60 * kSecond;
inline constexpr Timestamp kHour = 60 * kMinute;
inline constexpr Timestamp kDay = 24 * kHour;

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_TIMESTAMP_H_
