#include "common/crc32.h"

#include <array>

namespace impatience {

namespace {

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace impatience
