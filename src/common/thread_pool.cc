#include "common/thread_pool.h"

#include <cstdlib>

#include "common/check.h"

namespace impatience {

namespace {

// Identifies the worker (and owning pool) the current thread belongs to,
// so Submit can push to the thread's own deque.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

// A misconfigured value (non-numeric, <= 0, or absurdly large) falls back
// to a sane count instead of aborting in the pool constructor.
constexpr size_t kMaxThreads = 1024;

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("IMPATIENCE_THREADS")) {
    const long long n = std::atoll(env);
    if (n > 0) {
      return n > static_cast<long long>(kMaxThreads) ? kMaxThreads
                                                     : static_cast<size_t>(n);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

std::mutex g_global_mu;
ThreadPool* g_global_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  IMPATIENCE_CHECK(threads >= 1);
  const size_t workers = threads - 1;
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Every TaskGroup waits before destruction, so nothing may be queued.
  IMPATIENCE_CHECK(pending_.load(std::memory_order_relaxed) == 0);
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool == nullptr) {
    // Leaked intentionally: outlives static-destruction order.
    g_global_pool = new ThreadPool(DefaultThreadCount());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  delete g_global_pool;
  g_global_pool = new ThreadPool(threads);
}

void ThreadPool::Submit(Task task) {
  WorkerQueue& q = (tls_pool == this && tls_worker_index < queues_.size())
                       ? *queues_[tls_worker_index]
                       : injector_;
  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // The empty critical section pairs with the sleep predicate check: a
  // worker is either before its check (and will see pending_ > 0) or
  // already waiting (and receives this notify).
  { std::lock_guard<std::mutex> lock(sleep_mu_); }
  sleep_cv_.notify_one();
}

bool ThreadPool::PopFrom(WorkerQueue& q, bool back, Task* out) {
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  if (back) {
    *out = std::move(q.tasks.back());
    q.tasks.pop_back();
  } else {
    *out = std::move(q.tasks.front());
    q.tasks.pop_front();
  }
  return true;
}

void ThreadPool::Execute(Task& task) {
  task.fn();
  task.group->OnTaskDone();
}

bool ThreadPool::RunOneTask(size_t home) {
  Task task;
  // Own deque from the back (LIFO), then the injector, then steal from the
  // other workers' fronts (FIFO).
  if (home < queues_.size() && PopFrom(*queues_[home], /*back=*/true, &task)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    Execute(task);
    return true;
  }
  if (PopFrom(injector_, /*back=*/false, &task)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    Execute(task);
    return true;
  }
  for (size_t i = 1; i <= queues_.size() && !queues_.empty(); ++i) {
    const size_t victim = (home + i) % queues_.size();
    if (victim == home) continue;
    if (PopFrom(*queues_[victim], /*back=*/false, &task)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      Execute(task);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    if (RunOneTask(index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void TaskGroup::Wait() {
  // Non-workers help from the injector/steal side; workers from their own
  // deque first. queues_.size() is "not a worker" for non-worker threads.
  const size_t home = (tls_pool == pool_) ? tls_worker_index
                                          : pool_->queues_.size();
  for (;;) {
    if (outstanding_.load(std::memory_order_acquire) == 0) break;
    if (pool_->RunOneTask(home)) continue;
    // Nothing runnable anywhere: the remaining tasks are being executed by
    // other threads. Block until this group drains; a task finishing may
    // also have enqueued new work, so re-poll after every wake.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0 ||
             pool_->pending_.load(std::memory_order_acquire) > 0;
    });
  }
  // The final OnTaskDone may still be inside its mu_ critical section
  // (decrements happen under mu_); take the lock once so it has fully
  // left before the caller is allowed to destroy this group.
  { std::lock_guard<std::mutex> lock(mu_); }
}

}  // namespace impatience
