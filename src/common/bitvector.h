// A compact bit vector used by the engine's selection operator.
//
// Trill filters events by marking bits in a per-batch bitmap rather than
// compacting the batch (paper §VI-C); downstream operators skip marked rows.
// This class provides exactly that: a fixed-size bitmap with fast set /
// test / count operations.

#ifndef IMPATIENCE_COMMON_BITVECTOR_H_
#define IMPATIENCE_COMMON_BITVECTOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace impatience {

// Dynamic bitset; all bits start cleared.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t size) { Resize(size); }

  // Number of addressable bits.
  size_t size() const { return size_; }

  // Grows or shrinks to `size` bits; newly exposed bits are cleared.
  void Resize(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  // Clears all bits, keeping the size.
  void ClearAll() {
    for (uint64_t& w : words_) w = 0;
  }

  void Set(size_t i) {
    IMPATIENCE_DCHECK(i < size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Clear(size_t i) {
    IMPATIENCE_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    IMPATIENCE_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // Number of set bits.
  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  // Approximate heap footprint, for memory accounting.
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_BITVECTOR_H_
