// Runtime CPU-feature dispatch for the hot-path kernels.
//
// The kernels in sort/kernels.h come in up to four implementations —
// portable scalar, SSE2, AVX2, and AVX-512 — selected once per process.
// Every level computes byte-identical results; the dispatch only picks how
// fast. The active level is min(what the CPU supports,
// IMPATIENCE_KERNEL_LEVEL if set), so tests and sanitizer builds can force
// the portable path and CI can exercise every level on one machine.

#ifndef IMPATIENCE_COMMON_CPU_FEATURES_H_
#define IMPATIENCE_COMMON_CPU_FEATURES_H_

namespace impatience {

// Kernel implementation tiers, ordered: a CPU that supports level L
// supports every level below it.
enum class KernelLevel : int {
  kScalar = 0,  // Portable C++; the reference implementation.
  kSSE2 = 1,    // 128-bit vectors (baseline on x86-64).
  kAVX2 = 2,    // 256-bit vectors.
  kAVX512 = 3,  // 512-bit vectors + mask registers (needs avx512f).
};

// Best level this CPU supports (kScalar on non-x86 builds).
KernelLevel DetectKernelLevel();

// The level the process runs at: DetectKernelLevel() clamped by the
// IMPATIENCE_KERNEL_LEVEL environment variable ("scalar", "sse2", "avx2",
// "avx512") if present. Computed once on first call, then cached; unknown
// values are ignored with a warning to stderr.
KernelLevel ActiveKernelLevel();

// The pure resolution rule behind ActiveKernelLevel(), exposed so the
// clamp-don't-crash behavior is unit-testable without a process restart:
// given the env override string (nullptr/empty = unset) and the detected
// CPU level, returns the level the process must dispatch at. Requesting a
// level above `detected` degrades to `detected` (never dispatch an ISA the
// CPU lacks — the AVX-512 → AVX2 fallback seam); unknown names are
// ignored. When `warn` is true the degradation paths log to stderr.
KernelLevel ResolveKernelLevel(const char* env, KernelLevel detected,
                               bool warn = false);

// "scalar" / "sse2" / "avx2" / "avx512".
const char* KernelLevelName(KernelLevel level);

// Parses a level name as accepted by IMPATIENCE_KERNEL_LEVEL. Returns
// false (leaving `out` untouched) on unknown names.
bool ParseKernelLevel(const char* name, KernelLevel* out);

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_CPU_FEATURES_H_
