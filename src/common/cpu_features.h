// Runtime CPU-feature dispatch for the hot-path kernels.
//
// The kernels in sort/kernels.h come in up to three implementations —
// portable scalar, SSE2, and AVX2 — selected once per process. Every level
// computes byte-identical results; the dispatch only picks how fast. The
// active level is min(what the CPU supports, IMPATIENCE_KERNEL_LEVEL if
// set), so tests and sanitizer builds can force the portable path and CI
// can exercise every level on one machine.

#ifndef IMPATIENCE_COMMON_CPU_FEATURES_H_
#define IMPATIENCE_COMMON_CPU_FEATURES_H_

namespace impatience {

// Kernel implementation tiers, ordered: a CPU that supports level L
// supports every level below it.
enum class KernelLevel : int {
  kScalar = 0,  // Portable C++; the reference implementation.
  kSSE2 = 1,    // 128-bit vectors (baseline on x86-64).
  kAVX2 = 2,    // 256-bit vectors.
};

// Best level this CPU supports (kScalar on non-x86 builds).
KernelLevel DetectKernelLevel();

// The level the process runs at: DetectKernelLevel() clamped by the
// IMPATIENCE_KERNEL_LEVEL environment variable ("scalar", "sse2", "avx2")
// if present. Computed once on first call, then cached; unknown values are
// ignored with a warning to stderr.
KernelLevel ActiveKernelLevel();

// "scalar" / "sse2" / "avx2".
const char* KernelLevelName(KernelLevel level);

// Parses a level name as accepted by IMPATIENCE_KERNEL_LEVEL. Returns
// false (leaving `out` untouched) on unknown names.
bool ParseKernelLevel(const char* name, KernelLevel* out);

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_CPU_FEATURES_H_
