// The event model, mirroring Trill's record layout.
//
// Per the paper (§IV-A2, §VI-C), every event carries two 64-bit timestamps
// (sync time = event/application time, other time = the end of its validity
// interval), a 32-bit grouping key, a 64-bit hash of that key, and a fixed
// number of 32-bit payload fields (the paper's experiments use four).
//
// The payload width is a template parameter so that the projection
// experiment (Figure 9(b)) measures a genuine event-size effect: projecting
// columns yields a physically narrower event type.

#ifndef IMPATIENCE_COMMON_EVENT_H_
#define IMPATIENCE_COMMON_EVENT_H_

#include <array>
#include <cstdint>

#include "common/timestamp.h"

namespace impatience {

// A single event with `W` 32-bit payload columns.
template <int W>
struct BasicEvent {
  static constexpr int kPayloadWidth = W;

  Timestamp sync_time = 0;   // Event (application) time.
  Timestamp other_time = 0;  // End of the validity interval.
  int32_t key = 0;           // Grouping key.
  uint64_t hash = 0;         // Hash of the grouping key.
  std::array<int32_t, W> payload = {};

  friend bool operator==(const BasicEvent&, const BasicEvent&) = default;
};

// The default event shape used by the engine and benchmarks: four payload
// fields, as in the paper's evaluation (§VI-A).
using Event = BasicEvent<4>;

// Mixes a 32-bit key into a well-distributed 64-bit hash (SplitMix64
// finalizer). Used when constructing events and by grouping operators.
inline uint64_t HashKey(int32_t key) {
  uint64_t z = static_cast<uint64_t>(static_cast<uint32_t>(key)) +
               0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Extracts the ordering timestamp from sortable element types. Sorters are
// templated on an extractor so they can sort raw timestamps in unit tests
// and full events in the engine with the same code.
struct SyncTimeOf {
  template <int W>
  Timestamp operator()(const BasicEvent<W>& e) const {
    return e.sync_time;
  }
};

// Identity extractor for sorting bare timestamps.
struct IdentityTimeOf {
  Timestamp operator()(Timestamp t) const { return t; }
};

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_EVENT_H_
