// A bounded multi-producer queue with pluggable full-queue behavior — the
// ingress buffer each server shard owns (see src/server).
//
// The three push flavors correspond to the server's backpressure policies:
//   * PushBlock      — wait for space (lossless, applies backpressure to
//                      the producing connection thread);
//   * TryPush        — fail fast when full (the caller rejects the frame);
//   * PushShedOldest — evict the oldest queued item to make room (bounded
//                      staleness: fresh data wins, the evicted item is
//                      returned to the caller for accounting).
//
// Implementation is a mutex + two condition variables over a deque: the
// queue holds whole ingest frames (hundreds of events each), so queue ops
// are far off the hot path and simplicity beats lock-free cleverness —
// and every interleaving stays obvious under TSan.

#ifndef IMPATIENCE_COMMON_BOUNDED_QUEUE_H_
#define IMPATIENCE_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.h"

namespace impatience {

// Outcome of a push attempt.
enum class QueuePush {
  kOk,        // Item enqueued; nothing displaced.
  kBlocked,   // Item enqueued after waiting for space (PushBlock only).
  kRejected,  // Queue full; item NOT enqueued (TryPush only).
  kShed,      // Item enqueued; the oldest item was evicted (PushShedOldest).
  kClosed,    // Queue closed; item NOT enqueued.
};

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity) : capacity_(capacity) {
    IMPATIENCE_CHECK(capacity_ > 0);
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  // Blocks until there is space (or the queue closes).
  QueuePush PushBlock(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    bool waited = false;
    while (items_.size() >= capacity_ && !closed_) {
      waited = true;
      not_full_.wait(lock);
    }
    if (closed_) return QueuePush::kClosed;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return waited ? QueuePush::kBlocked : QueuePush::kOk;
  }

  // Never blocks; the caller owns the rejected item.
  QueuePush TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return QueuePush::kClosed;
    if (items_.size() >= capacity_) return QueuePush::kRejected;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return QueuePush::kOk;
  }

  // Never blocks; evicts the oldest queued item when full. The evicted
  // item (if any) is returned through `shed` so the caller can account for
  // the lost work.
  QueuePush PushShedOldest(T item, std::optional<T>* shed) {
    shed->reset();
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return QueuePush::kClosed;
    QueuePush result = QueuePush::kOk;
    if (items_.size() >= capacity_) {
      shed->emplace(std::move(items_.front()));
      items_.pop_front();
      result = QueuePush::kShed;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return result;
  }

  // Blocks until an item is available or the queue is closed AND drained.
  // Returns false only in the latter case — Close() never discards queued
  // items, so a consumer loop `while (q.Pop(&item))` is a full drain.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    while (items_.empty() && !closed_) {
      not_empty_.wait(lock);
    }
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop; false when nothing is queued right now.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  // Rejects all future pushes and wakes every waiter; queued items remain
  // poppable (drain-then-stop shutdown).
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_BOUNDED_QUEUE_H_
