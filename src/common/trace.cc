#include "common/trace.h"

#include <sys/syscall.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace impatience {
namespace trace {

namespace {

// One recorded span. Payload fields are relaxed atomics so the drainer's
// speculative read is race-free; `seq` (the 1-based global record index)
// is release-stored last and re-checked after the payload read.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> start{0};
  std::atomic<uint64_t> end{0};  // Span end ticks, or counter value.
  std::atomic<uint8_t> kind{0};  // 0 = span ("X"), 1 = counter ("C").
};

class Ring {
 public:
  Ring(size_t capacity, uint64_t tid) : slots_(capacity), tid_(tid) {}

  // Single writer: the owning thread.
  void Emit(const char* name, uint64_t start, uint64_t end,
            uint8_t kind = 0) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & (slots_.size() - 1)];
    s.name.store(name, std::memory_order_relaxed);
    s.start.store(start, std::memory_order_relaxed);
    s.end.store(end, std::memory_order_relaxed);
    s.kind.store(kind, std::memory_order_relaxed);
    s.seq.store(h + 1, std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  struct DrainedSpan {
    const char* name;
    uint64_t start;
    uint64_t end;
    uint8_t kind;
  };

  // Collects records in (cursor_, head] that are still intact, advances
  // the cursor, and accounts overwritten/torn records as dropped. Called
  // under the registry lock — one drainer at a time; the writer keeps
  // recording concurrently.
  void Drain(std::vector<DrainedSpan>* out, uint64_t* dropped) {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const size_t cap = slots_.size();
    uint64_t begin = cursor_;
    if (head > cap && head - cap > begin) {
      *dropped += (head - cap) - begin;  // Overwritten before this drain.
      begin = head - cap;
    }
    for (uint64_t i = begin; i < head; ++i) {
      Slot& s = slots_[i & (cap - 1)];
      if (s.seq.load(std::memory_order_acquire) != i + 1) {
        ++*dropped;  // Already overwritten by a newer record.
        continue;
      }
      DrainedSpan span;
      span.name = s.name.load(std::memory_order_relaxed);
      span.start = s.start.load(std::memory_order_relaxed);
      span.end = s.end.load(std::memory_order_relaxed);
      span.kind = s.kind.load(std::memory_order_relaxed);
      if (s.seq.load(std::memory_order_acquire) != i + 1) {
        ++*dropped;  // Overwritten while being read; discard the torn copy.
        continue;
      }
      out->push_back(span);
    }
    cursor_ = head;
  }

  uint64_t tid() const { return tid_; }

 private:
  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};  // Total records ever emitted.
  uint64_t cursor_ = 0;            // Drained prefix (drainer-owned).
  const uint64_t tid_;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  size_t default_capacity = 0;  // 0 = uninitialized (env or 8192).
  TickConverter converter;      // Anchored at first trace-system use.
};

// Leaked intentionally: rings of still-live threads may be touched during
// process teardown after static destructors run.
Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

size_t DefaultCapacityLocked(Registry& r) {
  if (r.default_capacity == 0) {
    size_t cap = 8192;
    const char* env = std::getenv("IMPATIENCE_TRACE_BUFFER");
    if (env != nullptr && *env != '\0') {
      const long long n = std::atoll(env);
      if (n > 0) cap = static_cast<size_t>(n);
    }
    r.default_capacity = RoundUpPow2(cap);
  }
  return r.default_capacity;
}

uint64_t CurrentTid() {
#if defined(__linux__)
  return static_cast<uint64_t>(::syscall(SYS_gettid));
#else
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t tid = next.fetch_add(1);
  return tid;
#endif
}

Ring* ThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto created =
        std::make_shared<Ring>(DefaultCapacityLocked(r), CurrentTid());
    r.rings.push_back(created);
    return created;
  }();
  return ring.get();
}

bool EnvEnabled() {
  const char* env = std::getenv("IMPATIENCE_TRACE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

// Escapes a span name for embedding in a JSON string literal.
void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

// Formats one drained record as a Chrome trace-event object and appends
// it to `out` (no separators — the caller owns comma placement).
void AppendEventJson(const Ring::DrainedSpan& s, uint64_t tid,
                     const TickConverter& converter, std::string* out) {
  char buf[160];
  const uint64_t start_ns = converter.Nanos(s.start);
  *out += "{\"name\":\"";
  AppendJsonEscaped(s.name != nullptr ? s.name : "(null)", out);
  if (s.kind == 1) {
    // Counter sample: `end` carries the value, not a timestamp.
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"impatience\",\"ph\":\"C\",\"pid\":1,"
                  "\"tid\":%" PRIu64 ",\"ts\":%" PRIu64 ".%03u,"
                  "\"args\":{\"value\":%" PRIu64 "}}",
                  tid, start_ns / 1000,
                  static_cast<unsigned>(start_ns % 1000), s.end);
  } else {
    const uint64_t end_ns = converter.Nanos(s.end);
    const uint64_t dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"impatience\",\"ph\":\"X\",\"pid\":1,"
                  "\"tid\":%" PRIu64 ",\"ts\":%" PRIu64 ".%03u,"
                  "\"dur\":%" PRIu64 ".%03u}",
                  tid, start_ns / 1000,
                  static_cast<unsigned>(start_ns % 1000), dur_ns / 1000,
                  static_cast<unsigned>(dur_ns % 1000));
  }
  *out += buf;
}

}  // namespace

namespace internal {

std::atomic<bool> g_enabled{EnvEnabled()};

void Emit(const char* name, uint64_t start_ticks, uint64_t end_ticks) {
  ThreadRing()->Emit(name, start_ticks, end_ticks);
}

void EmitCounter(const char* name, uint64_t ticks, uint64_t value) {
  ThreadRing()->Emit(name, ticks, value, /*kind=*/1);
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void SetDefaultBufferCapacity(size_t spans) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.default_capacity = RoundUpPow2(spans < 8 ? 8 : spans);
}

void ResetForTest() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.rings.clear();
}

std::string DrainChromeJson(DrainStats* stats) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.converter.Refine();

  std::string out = "{\"traceEvents\":[";
  DrainStats local;
  local.threads = r.rings.size();
  std::vector<Ring::DrainedSpan> spans;
  bool first = true;
  for (const std::shared_ptr<Ring>& ring : r.rings) {
    spans.clear();
    ring->Drain(&spans, &local.dropped);
    for (const Ring::DrainedSpan& s : spans) {
      if (!first) out += ",";
      first = false;
      AppendEventJson(s, ring->tid(), r.converter, &out);
      ++local.spans;
    }
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"dropped\":%" PRIu64 "}}",
                local.dropped);
  out += tail;
  if (stats != nullptr) *stats = local;
  return out;
}

void HarvestChunks(size_t max_chunk_bytes, std::vector<std::string>* chunks,
                   DrainStats* stats) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.converter.Refine();

  DrainStats local;
  local.threads = r.rings.size();
  std::vector<Ring::DrainedSpan> spans;
  std::string chunk;
  std::string event;
  for (const std::shared_ptr<Ring>& ring : r.rings) {
    spans.clear();
    ring->Drain(&spans, &local.dropped);
    for (const Ring::DrainedSpan& s : spans) {
      event.clear();
      AppendEventJson(s, ring->tid(), r.converter, &event);
      if (!chunk.empty() &&
          chunk.size() + 1 + event.size() > max_chunk_bytes) {
        chunks->push_back(std::move(chunk));
        chunk.clear();
      }
      if (!chunk.empty()) chunk += ",";
      chunk += event;
      ++local.spans;
    }
  }
  if (!chunk.empty()) chunks->push_back(std::move(chunk));
  if (stats != nullptr) *stats = local;
}

}  // namespace trace
}  // namespace impatience
