// A fixed-size work-stealing thread pool for the engine's hot paths.
//
// Design: each worker owns a deque; the owner pushes and pops at the back
// (LIFO keeps the working set of a fork/join tree cache-hot) while idle
// workers steal from the front (FIFO takes the oldest — typically largest —
// subtree). Tasks submitted from non-worker threads land in a shared
// injector queue. Fork/join is expressed with TaskGroup, whose Wait() helps
// execute queued tasks instead of blocking, so nested joins (a parallel
// merge inside a parallel band task) cannot starve the pool.
//
// Sizing: the process-wide pool is sized by $IMPATIENCE_THREADS (default
// hardware_concurrency()). A pool of size 1 spawns no workers and runs
// every task inline at submission, which makes all parallel code paths
// byte-for-byte identical to the sequential ones — the paper's
// single-thread evaluation and all existing bench numbers are reproduced
// by IMPATIENCE_THREADS=1.

#ifndef IMPATIENCE_COMMON_THREAD_POOL_H_
#define IMPATIENCE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace impatience {

class TaskGroup;

class ThreadPool {
 public:
  // A pool with `threads` degrees of parallelism: threads-1 workers plus
  // the submitting thread, which participates in TaskGroup::Wait().
  // threads == 1 spawns no workers and runs everything inline.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Degrees of parallelism (callers size their task fan-out by this).
  size_t thread_count() const { return workers_.size() + 1; }

  // The process-wide pool, created on first use and sized by
  // $IMPATIENCE_THREADS (default hardware_concurrency(), minimum 1).
  static ThreadPool& Global();

  // Replaces the global pool with one of `threads` threads. The global
  // pool must be idle (no in-flight TaskGroup). Benchmarks use this to
  // sweep thread counts within one process.
  static void SetGlobalThreads(size_t threads);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  // One worker's deque. A mutex per deque is cheap at this pool's task
  // granularity (punctuation rounds, multi-hundred-KB merges).
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  // Enqueues a task: the back of the current worker's deque when called
  // from a worker of this pool, the injector queue otherwise.
  void Submit(Task task);

  // Pops or steals one task and runs it. Returns false if every queue was
  // empty. Used by workers and by TaskGroup::Wait() helpers.
  bool RunOneTask(size_t home);

  static void Execute(Task& task);
  void WorkerLoop(size_t index);
  bool PopFrom(WorkerQueue& q, bool back, Task* out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  WorkerQueue injector_;                              // external submissions
  std::vector<std::thread> workers_;

  std::atomic<size_t> pending_{0};  // queued (not yet running) tasks
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  bool stop_ = false;
};

// A fork/join scope: Run() schedules tasks on the pool, Wait() blocks until
// every task scheduled through this group — including tasks the tasks
// themselves add — has finished. With a 1-thread pool Run() executes the
// task inline, in submission order.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool = nullptr)
      : pool_(pool != nullptr ? pool : &ThreadPool::Global()) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  ~TaskGroup() { Wait(); }

  void Run(std::function<void()> fn) {
    if (pool_->thread_count() == 1) {
      fn();
      return;
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit(ThreadPool::Task{std::move(fn), this});
  }

  // Helps execute queued tasks while waiting; safe to call from inside a
  // task running on the same pool (nested fork/join).
  void Wait();

 private:
  friend class ThreadPool;

  // The decrement happens under mu_ so that a waiter that has observed
  // outstanding_ == 0 can synchronize with the final notifier by taking
  // mu_ once before returning from Wait() — otherwise the group could be
  // destroyed while the last task is still inside this critical section.
  void OnTaskDone() {
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cv_.notify_all();
    }
  }

  ThreadPool* pool_;
  std::atomic<size_t> outstanding_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

// Runs fn(chunk_begin, chunk_end) over [begin, end) in parallel chunks of
// at least `grain` indices (the whole range inline when the pool is serial
// or the range is a single grain). Chunks are disjoint and cover the range
// exactly once; no ordering is guaranteed between chunks.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, size_t grain, Fn&& fn,
                 ThreadPool* pool = nullptr) {
  if (begin >= end) return;
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::Global();
  const size_t n = end - begin;
  if (grain == 0) grain = 1;
  if (tp.thread_count() == 1 || n <= grain) {
    fn(begin, end);
    return;
  }
  // Oversplit ~4x relative to the thread count so stealing can rebalance
  // uneven chunks, but never below the grain.
  size_t chunk = (n + tp.thread_count() * 4 - 1) / (tp.thread_count() * 4);
  if (chunk < grain) chunk = grain;
  TaskGroup group(&tp);
  for (size_t lo = begin; lo < end; lo += chunk) {
    const size_t hi = lo + chunk < end ? lo + chunk : end;
    group.Run([&fn, lo, hi] { fn(lo, hi); });
  }
  group.Wait();
}

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_THREAD_POOL_H_
