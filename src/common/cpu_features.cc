#include "common/cpu_features.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace impatience {

KernelLevel DetectKernelLevel() {
#if defined(__x86_64__) || defined(__i386__)
  // The AVX-512 kernels use foundation ops only (cmp_epi64_mask, i32gather)
  // so avx512f is the single gate; every avx512f machine to date also has
  // the subsets we'd otherwise probe.
  if (__builtin_cpu_supports("avx512f")) return KernelLevel::kAVX512;
  if (__builtin_cpu_supports("avx2")) return KernelLevel::kAVX2;
  if (__builtin_cpu_supports("sse2")) return KernelLevel::kSSE2;
#endif
  return KernelLevel::kScalar;
}

KernelLevel ResolveKernelLevel(const char* env, KernelLevel detected,
                               bool warn) {
  if (env == nullptr || *env == '\0') return detected;
  KernelLevel requested;
  if (!ParseKernelLevel(env, &requested)) {
    if (warn) {
      std::fprintf(stderr, "ignoring unknown IMPATIENCE_KERNEL_LEVEL=%s\n",
                   env);
    }
    return detected;
  }
  if (requested > detected) {
    // Never dispatch above what the CPU can execute: a binary deployed
    // with IMPATIENCE_KERNEL_LEVEL=avx512 on an AVX2-only machine must
    // degrade, not trap.
    if (warn) {
      std::fprintf(stderr,
                   "IMPATIENCE_KERNEL_LEVEL=%s unsupported on this CPU; "
                   "using %s\n",
                   env, KernelLevelName(detected));
    }
    return detected;
  }
  return requested;
}

KernelLevel ActiveKernelLevel() {
  static const KernelLevel active =
      ResolveKernelLevel(std::getenv("IMPATIENCE_KERNEL_LEVEL"),
                         DetectKernelLevel(), /*warn=*/true);
  return active;
}

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kSSE2:
      return "sse2";
    case KernelLevel::kAVX2:
      return "avx2";
    case KernelLevel::kAVX512:
      return "avx512";
  }
  return "unknown";
}

bool ParseKernelLevel(const char* name, KernelLevel* out) {
  if (std::strcmp(name, "scalar") == 0) {
    *out = KernelLevel::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse2") == 0) {
    *out = KernelLevel::kSSE2;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = KernelLevel::kAVX2;
    return true;
  }
  if (std::strcmp(name, "avx512") == 0) {
    *out = KernelLevel::kAVX512;
    return true;
  }
  return false;
}

}  // namespace impatience
