#include "common/cpu_features.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace impatience {

KernelLevel DetectKernelLevel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return KernelLevel::kAVX2;
  if (__builtin_cpu_supports("sse2")) return KernelLevel::kSSE2;
#endif
  return KernelLevel::kScalar;
}

KernelLevel ActiveKernelLevel() {
  static const KernelLevel active = [] {
    KernelLevel level = DetectKernelLevel();
    const char* env = std::getenv("IMPATIENCE_KERNEL_LEVEL");
    if (env != nullptr && *env != '\0') {
      KernelLevel requested;
      if (!ParseKernelLevel(env, &requested)) {
        std::fprintf(stderr, "ignoring unknown IMPATIENCE_KERNEL_LEVEL=%s\n",
                     env);
      } else if (requested > level) {
        // Never dispatch above what the CPU can execute.
        std::fprintf(stderr,
                     "IMPATIENCE_KERNEL_LEVEL=%s unsupported on this CPU; "
                     "using %s\n",
                     env, KernelLevelName(level));
      } else {
        level = requested;
      }
    }
    return level;
  }();
  return active;
}

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kSSE2:
      return "sse2";
    case KernelLevel::kAVX2:
      return "avx2";
  }
  return "unknown";
}

bool ParseKernelLevel(const char* name, KernelLevel* out) {
  if (std::strcmp(name, "scalar") == 0) {
    *out = KernelLevel::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse2") == 0) {
    *out = KernelLevel::kSSE2;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = KernelLevel::kAVX2;
    return true;
  }
  return false;
}

}  // namespace impatience
