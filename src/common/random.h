// Deterministic pseudo-random number generation.
//
// All randomness in the library (workload generators, property tests,
// benchmark inputs) flows through Rng so that every run is reproducible
// from a seed. The generator is xoshiro256**, seeded via SplitMix64.

#ifndef IMPATIENCE_COMMON_RANDOM_H_
#define IMPATIENCE_COMMON_RANDOM_H_

#include <cstdint>

namespace impatience {

// A small, fast, seedable PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  // Seeds the generator deterministically; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  // sampling, so the result is unbiased.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Sample from a normal distribution with the given mean and standard
  // deviation (Box-Muller; one spare value is cached between calls).
  double NextGaussian(double mean, double stddev);

  // Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Sample from an exponential distribution with the given mean (> 0).
  double NextExponential(double mean);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_RANDOM_H_
