// Monotonic timing shim for the observability layer.
//
// Two sources with different cost/precision trade-offs:
//   * Clock::Nanos()  — CLOCK_MONOTONIC via the vDSO (~20 ns per read).
//     The unit is defined (nanoseconds), so histograms record it directly.
//   * Clock::Ticks()  — the TSC on x86-64 (~7 ns per read), an opaque
//     monotonic counter. Span tracing records ticks on the hot path and
//     converts to nanoseconds only at drain time, using a rate estimated
//     from two (ticks, nanos) observations taken far apart (process start
//     and drain) — no startup calibration spin.
//
// Tests can substitute a deterministic source with SetNanosSourceForTest;
// while an override is installed Ticks() returns the override's value too,
// so tick↔nanos conversion is the identity and traces are reproducible.

#ifndef IMPATIENCE_COMMON_CLOCK_H_
#define IMPATIENCE_COMMON_CLOCK_H_

#include <ctime>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace impatience {

class Clock {
 public:
  using NanosFn = uint64_t (*)();

  // Monotonic nanoseconds since an arbitrary epoch.
  static uint64_t Nanos() {
    const NanosFn fn = override_;
    if (__builtin_expect(fn != nullptr, 0)) return fn();
    return RealNanos();
  }

  // Fast opaque monotonic counter (TSC where available). Convert with a
  // TickConverter; never mix ticks from processes or compare to Nanos().
  static uint64_t Ticks() {
    const NanosFn fn = override_;
    if (__builtin_expect(fn != nullptr, 0)) return fn();
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#else
    return RealNanos();
#endif
  }

  // True while a test override is installed (ticks are already nanos).
  static bool IsMocked() { return override_ != nullptr; }

  // Installs/removes a deterministic source. Not thread-safe against
  // concurrent readers by design — install before spawning threads.
  static void SetNanosSourceForTest(NanosFn fn) { override_ = fn; }
  static void ResetForTest() { override_ = nullptr; }

 private:
  static uint64_t RealNanos() {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
  }

  inline static NanosFn override_ = nullptr;
};

// Maps Clock::Ticks() values to nanoseconds. Construct one anchor early
// (cheap: one read of each clock), call Refine() later, then Nanos(t).
// The longer the window between the two observations, the better the rate
// estimate; a few milliseconds already gives <0.1% error.
class TickConverter {
 public:
  TickConverter() : t0_(Clock::Ticks()), n0_(Clock::Nanos()) {}

  // Re-observes both clocks and fits the rate over the elapsed window.
  void Refine() {
    const uint64_t t1 = Clock::Ticks();
    const uint64_t n1 = Clock::Nanos();
    if (Clock::IsMocked() || t1 <= t0_) {
      rate_ = 1.0;
      return;
    }
    rate_ = static_cast<double>(n1 - n0_) / static_cast<double>(t1 - t0_);
  }

  // Nanoseconds (same epoch as Clock::Nanos()) for a tick reading.
  uint64_t Nanos(uint64_t ticks) const {
    if (Clock::IsMocked()) return ticks;
    const double delta =
        (static_cast<double>(ticks) - static_cast<double>(t0_)) * rate_;
    return n0_ + static_cast<uint64_t>(delta < 0 ? 0 : delta);
  }

  double nanos_per_tick() const { return rate_; }

 private:
  uint64_t t0_;
  uint64_t n0_;
  double rate_ = 1.0;
};

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_CLOCK_H_
