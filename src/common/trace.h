// Always-compiled, runtime-toggled span tracing.
//
//   void MergePhase() {
//     TRACE_SPAN("merge.huffman");
//     ...
//   }
//
// Cost model: when tracing is disabled (the default) a span is one relaxed
// atomic load and one predictable branch at scope entry, and one branch at
// exit — cheap enough to leave on hot paths permanently. When enabled, a
// span is two Clock::Ticks() reads (TSC on x86-64) plus a handful of
// relaxed stores into a per-thread ring buffer; no locks, no allocation.
//
// Each thread owns a fixed-capacity ring of span records. The writer never
// blocks and never waits for the drainer: when the ring wraps, the oldest
// undrained records are overwritten and counted as dropped. Records are
// published with a per-slot sequence number (write payload with relaxed
// atomics, then release-store the sequence); the drainer validates the
// sequence after reading, so a record overwritten mid-read is discarded,
// never torn — the scheme is exact under TSan.
//
// Drain produces Chrome trace-event JSON ("X" complete events, ts/dur in
// microseconds) loadable in chrome://tracing or Perfetto. Span names must
// be string literals (or otherwise outlive the process) — the ring stores
// the pointer, not a copy.
//
// Toggling: IMPATIENCE_TRACE=1 in the environment enables tracing from
// process start; trace::SetEnabled flips it at runtime (the server exposes
// this via the kTraceRequest wire frame).

#ifndef IMPATIENCE_COMMON_TRACE_H_
#define IMPATIENCE_COMMON_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace impatience {
namespace trace {

namespace internal {
// Defined in trace.cc; initialized from IMPATIENCE_TRACE before main().
extern std::atomic<bool> g_enabled;

// Appends one completed span to the calling thread's ring buffer.
void Emit(const char* name, uint64_t start_ticks, uint64_t end_ticks);

// Appends one counter sample (Chrome "C" event) to the ring.
void EmitCounter(const char* name, uint64_t ticks, uint64_t value);
}  // namespace internal

// True when spans are being recorded. Relaxed load + branch — the entire
// disabled-path cost.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Runtime toggle. Existing buffered spans are kept until drained.
void SetEnabled(bool enabled);

// Drain accounting across all thread buffers.
struct DrainStats {
  uint64_t spans = 0;    // Records returned by this drain.
  uint64_t dropped = 0;  // Records lost to ring wraparound, cumulative
                         // since the previous drain.
  uint64_t threads = 0;  // Thread rings that have ever recorded.
};

// Drains every thread's undrained spans into a Chrome trace-event JSON
// document ({"traceEvents":[...]}). Safe to call while writers are
// recording; spans overwritten mid-read count as dropped. Serialized
// internally — one drainer at a time.
std::string DrainChromeJson(DrainStats* stats = nullptr);

// Incremental harvest for streaming export: drains the spans recorded
// since the previous drain/harvest (the per-ring cursors are shared with
// DrainChromeJson — whichever drainer runs first consumes the records)
// and packs them into chunk bodies. Each body is a comma-separated
// sequence of Chrome trace-event objects with NO enclosing brackets, at
// most `max_chunk_bytes` long (a single event longer than the bound gets
// a chunk of its own), so consumers can join bodies with "," and wrap
// the result in {"traceEvents":[...]} to form a valid document. Appends
// to `chunks`; produces nothing when no new spans exist. Serialized
// internally like DrainChromeJson.
void HarvestChunks(size_t max_chunk_bytes, std::vector<std::string>* chunks,
                   DrainStats* stats = nullptr);

// Ring capacity (span records per thread) for buffers created after this
// call; rounded up to a power of two, minimum 8. Default 8192 (256 KiB
// per thread), or $IMPATIENCE_TRACE_BUFFER. Existing rings keep their
// size — set before spawning the threads you want affected.
void SetDefaultBufferCapacity(size_t spans);

// Test hook: forgets all registered thread buffers (rings owned by live
// threads keep recording into orphaned rings; call only between tests).
void ResetForTest();

// RAII span. Prefer the TRACE_SPAN macro.
class Span {
 public:
  explicit Span(const char* name) {
    if (__builtin_expect(Enabled(), 0)) {
      name_ = name;
      start_ = Clock::Ticks();
    }
  }

  ~Span() {
    if (__builtin_expect(name_ != nullptr, 0)) {
      internal::Emit(name_, start_, Clock::Ticks());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ = 0;
};

// Records one sample of a named counter series (a Chrome "C" counter
// event). Same cost model as spans: disabled cost is one relaxed load and
// a branch. `name` must be a string literal (the pointer is stored).
inline void Counter(const char* name, uint64_t value) {
  if (__builtin_expect(Enabled(), 0)) {
    internal::EmitCounter(name, Clock::Ticks(), value);
  }
}

}  // namespace trace
}  // namespace impatience

#define IMPATIENCE_TRACE_CONCAT2(a, b) a##b
#define IMPATIENCE_TRACE_CONCAT(a, b) IMPATIENCE_TRACE_CONCAT2(a, b)

// Traces the enclosing scope as a span named `name` (a string literal).
#define TRACE_SPAN(name)                                        \
  ::impatience::trace::Span IMPATIENCE_TRACE_CONCAT(            \
      impatience_trace_span_, __LINE__)(name)

// Samples a counter series; renders as a "C" event over time in the
// Chrome trace export.
#define TRACE_COUNTER(name, value) \
  ::impatience::trace::Counter(name, (value))

#endif  // IMPATIENCE_COMMON_TRACE_H_
