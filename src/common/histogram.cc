#include "common/histogram.h"

namespace impatience {

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based; q=0 means the first.
  const double scaled = q * static_cast<double>(count_);
  uint64_t target = static_cast<uint64_t>(scaled);
  if (static_cast<double>(target) < scaled) ++target;
  if (target == 0) target = 1;

  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      const uint64_t mid = histogram_internal::BucketMid(i);
      // The true maximum is tracked exactly; never report past it.
      return mid < max_ ? mid : max_;
    }
  }
  return max_;
}

uint64_t HistogramSnapshot::CountLessOrEqual(uint64_t bound) const {
  const size_t last = histogram_internal::BucketIndex(bound);
  uint64_t cum = 0;
  for (size_t i = 0; i <= last; ++i) cum += buckets_[i];
  return cum;
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
  return *this;
}

HistogramSnapshot LatencyHistogram::Snapshot(bool reset) {
  HistogramSnapshot snap;
  uint64_t count = 0;
  uint64_t sum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t n = reset
                           ? buckets_[i].exchange(0, std::memory_order_relaxed)
                           : buckets_[i].load(std::memory_order_relaxed);
    snap.buckets_[i] = n;
    count += n;
    sum += histogram_internal::BucketMid(i) * n;
  }
  // count/sum/max are tracked separately for exactness on the no-reset
  // path; under reset the bucket drain is the source of truth so a value
  // recorded concurrently is never counted twice.
  if (reset) {
    snap.count_ = count;
    snap.sum_ = sum;  // Midpoint approximation; exact sum may be mid-drain.
    snap.max_ = max_.load(std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  } else {
    snap.count_ = count;
    snap.sum_ = sum_.load(std::memory_order_relaxed);
    snap.max_ = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

LatencyHistogram& LatencyHistogram::operator+=(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const uint64_t omax = other.max_.load(std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < omax && !max_.compare_exchange_weak(
                            prev, omax, std::memory_order_relaxed)) {
  }
  return *this;
}

}  // namespace impatience
