// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
// discipline shared by the wire protocol and the on-disk run-file format.
// One implementation so a frame checked on the wire and a block checked on
// replay disagree about nothing.

#ifndef IMPATIENCE_COMMON_CRC32_H_
#define IMPATIENCE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace impatience {

// CRC32 over `n` bytes.
uint32_t Crc32(const uint8_t* data, size_t n);

}  // namespace impatience

#endif  // IMPATIENCE_COMMON_CRC32_H_
