// Lightweight runtime assertion macros.
//
// The library is built without exceptions (see DESIGN.md); programming errors
// and violated invariants terminate the process with a diagnostic instead.
// IMPATIENCE_CHECK is always on (benchmark-hot paths use
// IMPATIENCE_DCHECK, which compiles away in release builds).

#ifndef IMPATIENCE_COMMON_CHECK_H_
#define IMPATIENCE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `condition` is false. Usable in any build mode.
#define IMPATIENCE_CHECK(condition)                                         \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// CHECK with a printf-style explanation appended to the diagnostic.
#define IMPATIENCE_CHECK_MSG(condition, ...)                                \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s: ", __FILE__,         \
                   __LINE__, #condition);                                   \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-only check for hot paths; disappears when NDEBUG is defined.
#ifdef NDEBUG
#define IMPATIENCE_DCHECK(condition) \
  do {                               \
  } while (0)
#else
#define IMPATIENCE_DCHECK(condition) IMPATIENCE_CHECK(condition)
#endif

#endif  // IMPATIENCE_COMMON_CHECK_H_
