// POSIX TCP front end for the ingestion protocol.
//
// TcpServer listens on a port (0 = ephemeral, for tests) and multiplexes
// every accepted connection across a small pool of epoll event loops
// (event_loop.h) — a bounded number of I/O threads no matter how many
// clients connect, instead of the former thread-per-connection reader
// model. One dedicated thread blocks in accept(); sockets are switched
// to non-blocking and handed to the least-recently-fed loop round-robin.
// The pool size comes from TcpServerOptions::io_threads, defaulting to
// the IMPATIENCE_IO_THREADS environment variable (and to 2 when unset).
//
// TcpChannel is the client half: a ByteChannel over a connected socket,
// usable with IngestClient. Its writes survive EINTR and short/EAGAIN
// writes on non-blocking sockets — a partial send() mid-frame would
// otherwise corrupt the framing for every later frame on the stream.

#ifndef IMPATIENCE_SERVER_TCP_TRANSPORT_H_
#define IMPATIENCE_SERVER_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/event_loop.h"
#include "server/ingest_service.h"
#include "server/metrics.h"

namespace impatience {
namespace server {

struct TcpServerOptions {
  // Number of epoll I/O threads. 0 = IMPATIENCE_IO_THREADS, else 2.
  size_t io_threads = 0;
  // Per-connection reply-queue bound before the connection is shed.
  size_t max_write_queue_bytes = 4u << 20;
  // Per-connection budget for best-effort telemetry chunks; chunks past
  // it are dropped (counted), never shed (event_loop.h).
  size_t telemetry_write_queue_bytes = 1u << 20;
};

// Resolves the I/O thread count: `requested` if nonzero, else the
// IMPATIENCE_IO_THREADS environment variable, else 2; never 0.
size_t ResolveIoThreads(size_t requested);

class TcpServer {
 public:
  // Does not start listening; call Start().
  TcpServer(IngestService* service, uint16_t port,
            TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds, listens (loopback interface), starts the I/O loops and the
  // accept thread, and registers the front-end metrics with the service.
  // False (with the OS error in *error) if the port cannot be bound.
  bool Start(std::string* error = nullptr);

  // Stops accepting, severs every live connection, joins all threads.
  // Idempotent. Does NOT shut the service down — drain policy is the
  // owner's call.
  void Stop();

  // The bound port (resolves ephemeral port 0 after Start).
  uint16_t port() const { return port_; }

  size_t io_threads() const { return loops_.size(); }

  // Acceptor totals plus every loop's gauges/counters.
  TransportMetrics SnapshotTransport() const;

 private:
  void AcceptLoop();

  IngestService* const service_;
  uint16_t port_;
  const TcpServerOptions options_;
  // Written by Start()/Stop(), read concurrently by the accept loop.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  size_t next_loop_ = 0;  // Accept-thread-only round-robin cursor.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> accept_errors_{0};
};

// Client-side channel over a connected TCP socket.
class TcpChannel : public ByteChannel {
 public:
  // Connects to 127.0.0.1:port; null on failure. With `nonblocking` the
  // socket is put in non-blocking mode — Write still delivers every byte
  // (it polls for writability on EAGAIN), exercising the short-write
  // path a congested peer produces.
  static std::unique_ptr<TcpChannel> Connect(uint16_t port,
                                             std::string* error = nullptr,
                                             bool nonblocking = false);
  ~TcpChannel() override;

  bool Write(const uint8_t* data, size_t n) override;
  int64_t Read(uint8_t* out, size_t n, bool blocking) override;

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_TCP_TRANSPORT_H_
