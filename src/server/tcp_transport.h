// POSIX TCP transport for the ingestion protocol.
//
// TcpServer listens on a port (0 = ephemeral, for tests), accepts
// connections on a dedicated thread, and runs one reader thread per
// connection: read() → Connection::OnData() until EOF or poison.
// Replies are write()n back under a per-connection mutex (the service may
// send from shard worker threads concurrently with the reader's own
// replies). TcpChannel is the client half: a ByteChannel over a connected
// socket, usable with IngestClient.

#ifndef IMPATIENCE_SERVER_TCP_TRANSPORT_H_
#define IMPATIENCE_SERVER_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/ingest_service.h"

namespace impatience {
namespace server {

class TcpServer {
 public:
  // Does not start listening; call Start().
  TcpServer(IngestService* service, uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds, listens (loopback interface), and starts the accept thread.
  // False (with the OS error in *error) if the port cannot be bound.
  bool Start(std::string* error = nullptr);

  // Stops accepting, severs every live connection, joins all threads.
  // Idempotent. Does NOT shut the service down — drain policy is the
  // owner's call.
  void Stop();

  // The bound port (resolves ephemeral port 0 after Start).
  uint16_t port() const { return port_; }

 private:
  struct Conn;

  void AcceptLoop();
  void ReaderLoop(Conn* conn);

  IngestService* const service_;
  uint16_t port_;
  // Written by Start()/Stop(), read concurrently by the accept loop.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

// Client-side channel over a connected TCP socket.
class TcpChannel : public ByteChannel {
 public:
  // Connects to 127.0.0.1:port; null on failure.
  static std::unique_ptr<TcpChannel> Connect(uint16_t port,
                                             std::string* error = nullptr);
  ~TcpChannel() override;

  bool Write(const uint8_t* data, size_t n) override;
  int64_t Read(uint8_t* out, size_t n, bool blocking) override;

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_TCP_TRANSPORT_H_
