// POSIX implementations of the transport seam: FdTransport wraps a
// non-blocking socket descriptor, EpollPoller multiplexes registered
// descriptors through a level-triggered epoll instance (with an eventfd
// for cross-thread wakeups). Linux-only, like the TCP listener that
// feeds them; everything above this file is portable and runs under the
// scripted in-memory transport in the tests.

#ifndef IMPATIENCE_SERVER_EPOLL_TRANSPORT_H_
#define IMPATIENCE_SERVER_EPOLL_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "server/transport.h"

namespace impatience {
namespace server {

// Puts `fd` into non-blocking mode. False on fcntl failure.
bool SetNonBlocking(int fd);

// Transport over a connected, non-blocking socket. Owns the fd.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  IoResult Read(uint8_t* out, size_t n) override;
  IoResult Write(const uint8_t* data, size_t n) override;
  void Shutdown() override;
  bool WaitReadable(int timeout_ms) override;
  bool WaitWritable(int timeout_ms) override;
  int fd() const override { return fd_; }

 private:
  const int fd_;
  std::atomic<bool> shut_down_{false};
};

// Level-triggered epoll poller. Registered transports must expose a real
// descriptor. Add/SetWantWrite/SetWantRead/Remove/Wakeup are thread-safe
// (epoll_ctl and the eventfd write are kernel-serialized against
// epoll_wait; the per-id interest map, which lets read and write
// interest be flipped independently from different threads, has its own
// lock).
class EpollPoller : public Poller {
 public:
  EpollPoller();
  ~EpollPoller() override;

  // False if epoll or the wakeup eventfd could not be created; Wait
  // then returns immediately with nothing.
  bool valid() const { return epoll_fd_ >= 0; }

  bool Add(uint64_t id, Transport* t, bool want_write) override;
  void SetWantWrite(uint64_t id, Transport* t, bool want_write) override;
  void SetWantRead(uint64_t id, Transport* t, bool want_read) override;
  void Remove(uint64_t id, Transport* t) override;
  size_t Wait(std::vector<ReadyEvent>* out, int timeout_ms) override;
  void Wakeup() override;

 private:
  struct Interest {
    bool read = true;
    bool write = false;
  };

  // Updates one side of the registered interest (-1 = leave as is) and
  // issues the epoll_ctl MOD with the combined mask.
  void Modify(uint64_t id, Transport* t, int want_read, int want_write);

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;

  std::mutex interest_mu_;
  std::unordered_map<uint64_t, Interest> interest_;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_EPOLL_TRANSPORT_H_
