// Session-sharded ingestion: hash-partitions client sessions across N
// shards, each shard owning a bounded ingress queue and a dedicated
// Impatience framework pipeline.
//
// Sharding model (after Prasaad et al., "Scaling Ordered Stream
// Processing on Shared-Memory Multicores"): all state is per-shard, so
// shards never synchronize with each other — a session's frames always
// land on the same shard, and cross-shard coordination is limited to the
// metrics snapshot and shutdown barrier. Each shard's drain loop runs on
// its own dedicated thread (it blocks on the queue, which a task on the
// fork/join ThreadPool must never do); the pipeline *inside* the shard —
// parallel punctuation merges, band-parallel execution — runs on the
// existing process-wide ThreadPool, shared by all shards.
//
// Backpressure: the queue holds whole decoded frames, and the policy
// decides what happens when a shard falls behind:
//   kBlock       — the connection thread waits (lossless; TCP pushback
//                  propagates to the client);
//   kRejectFrame — the frame is refused and the client told (kReject);
//   kShedOldest  — the oldest queued frame is evicted (freshest data
//                  wins; eviction counted per frame and per event).
//
// Shutdown is drain-and-flush: queues close (no new frames), workers
// drain what is queued, every pipeline is flushed (all buffered events
// released in order), and only then do the workers exit.

#ifndef IMPATIENCE_SERVER_SESSION_SHARD_MANAGER_H_
#define IMPATIENCE_SERVER_SESSION_SHARD_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bounded_queue.h"
#include "common/event.h"
#include "framework/impatience_framework.h"
#include "server/metrics.h"
#include "server/wire_format.h"

namespace impatience {
namespace storage {
class SpillFlusher;
class SpillGovernor;
}  // namespace storage
namespace server {

enum class BackpressurePolicy : uint8_t {
  kBlock = 0,
  kRejectFrame = 1,
  kShedOldest = 2,
};

const char* BackpressurePolicyName(BackpressurePolicy policy);
// Parses "block" / "reject" / "shed". Returns false on anything else.
bool ParseBackpressurePolicy(const std::string& name,
                             BackpressurePolicy* policy);

struct ShardManagerOptions {
  size_t num_shards = 1;
  // Frames (not events) per shard ingress queue.
  size_t queue_capacity = 256;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  // Per-shard pipeline configuration. Empty reorder_latencies defaults to
  // {1 s, 1 min}.
  FrameworkOptions framework;
  // When true, every framework output stream is delivered to the result
  // callback; default is the final (most complete) stream only.
  bool subscribe_all_streams = false;
  // Test hook: no worker threads are started; tests drain queues
  // explicitly with DrainShardForTest(). Incompatible with kBlock (a
  // blocked producer would never be released).
  bool manual_drain = false;
  // Durable spill directory. When set, each shard opens a RunStore at
  // <spill_dir>/shard-<i>: sorter runs evicted under the memory budget are
  // written there (fsync'd, CRC-framed), and construction replays any runs
  // a previous process left behind — crash-recoverable ingest. Empty means
  // spilling (if enabled by the budget) uses throwaway temp-dir stores.
  std::string spill_dir;
  // Total buffering budget in bytes, divided evenly across shards and
  // enforced by each shard's MemoryTracker: when a shard's pipeline
  // exceeds its slice, the coldest sorter runs spill to disk. 0 defers to
  // IMPATIENCE_MEMORY_BUDGET (then enforced per sorter, not per shard).
  // With a nonzero budget a SpillGovernor also watches the *total* across
  // all shards and assigns spill targets to the globally coldest
  // sorters, drives idle tail flushes, and nudges run-file compaction.
  size_t memory_budget = 0;
  // Write-behind spill pipeline: >0 starts a SpillFlusher pool with this
  // many threads; sealed spill blocks are written (and merge read-ahead
  // served) off the shard threads. 0 keeps spill writes synchronous
  // (unless $IMPATIENCE_SPILL_FLUSHER_THREADS supplies a process pool).
  size_t spill_flusher_threads = 0;
  // Cap on bytes queued in the flusher pool before enqueues block (the
  // backpressure that keeps a slow disk from buffering unbounded RAM).
  size_t spill_flusher_inflight_bytes = 8u << 20;
};

// Outcome of routing one frame to a shard.
struct SubmitResult {
  QueuePush push = QueuePush::kOk;
  // Events refused (kRejected) or evicted (kShed) by this submission.
  uint64_t affected_events = 0;
};

// Called on the shard's worker thread for every row the shard pipeline
// emits on a subscribed output stream. One call at a time per shard;
// different shards call concurrently.
using ResultFn =
    std::function<void(size_t shard, size_t stream, const Event& e)>;

// Called on the shard's worker thread once a kFlushSession frame has been
// applied — every earlier frame of that session is in the pipeline.
using SessionFlushFn = std::function<void(uint64_t session_id)>;

// Called at shard burst boundaries (ingress queue drained, explicit test
// drain, pipeline flush) with the shard's band-0 punctuation frontier.
// Invoked outside pipeline_mu, after every on_result call the burst
// produced — a result exporter can treat it as "seal what you have".
using ShardProgressFn =
    std::function<void(size_t shard, Timestamp watermark)>;

class SessionShardManager {
 public:
  explicit SessionShardManager(ShardManagerOptions options,
                               ResultFn on_result = {},
                               SessionFlushFn on_session_flush = {},
                               ShardProgressFn on_shard_progress = {});
  ~SessionShardManager();

  SessionShardManager(const SessionShardManager&) = delete;
  SessionShardManager& operator=(const SessionShardManager&) = delete;

  size_t num_shards() const { return shards_.size(); }

  // The shard a session's frames are routed to (stable hash partition).
  size_t ShardOf(uint64_t session_id) const;

  // Routes a data frame (kEvents / kPunctuation / kFlushSession) to its
  // session's shard under the configured backpressure policy. Returns
  // kClosed after shutdown has begun.
  SubmitResult Submit(Frame frame);

  // Drain-and-flush shutdown; idempotent, returns when every shard has
  // flushed its pipeline and its worker has exited.
  void Shutdown();

  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

  // Point-in-time metrics for every shard. With `reset_sorter_counters`,
  // each pipeline's Impatience counters and the shard latency histograms
  // restart from zero after the snapshot — read and reset as one operation
  // per band, so no sample can land between the read and the reset and be
  // lost (queue/backpressure totals are cumulative and never reset).
  std::vector<ShardMetrics> SnapshotShards(bool reset_sorter_counters = false);

  // Test hook (requires options.manual_drain): synchronously processes
  // everything queued on `shard`.
  void DrainShardForTest(size_t shard);

  // Crash simulation for recovery tests: closes the queues and stops the
  // workers WITHOUT flushing the pipelines, exactly as a kill would —
  // buffered RAM state is lost, spilled run files and manifests survive
  // for the next manager opened on the same spill_dir to recover.
  // Idempotent; the destructor becomes a no-op afterwards.
  void AbandonForTest();

 private:
  struct Shard;

  void WorkerLoop(Shard* shard);
  void Process(Shard* shard, Frame& frame);
  void FlushPipeline(Shard* shard);
  // Replays runs a crashed predecessor spilled into this shard's store
  // back through the pipeline ingress (at-least-once), then drops them.
  void RecoverShard(Shard* shard);

  ShardManagerOptions options_;
  ResultFn on_result_;
  SessionFlushFn on_session_flush_;
  ShardProgressFn on_shard_progress_;
  // Write-behind pool and spill governor. Declared before shards_ so they
  // outlive the shards: sorters hold flusher channels and governor client
  // registrations until their pipelines are destroyed.
  std::unique_ptr<storage::SpillFlusher> flusher_;
  std::unique_ptr<storage::SpillGovernor> governor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<bool> abandoned_{false};  // AbandonForTest: skip the flush.
  std::mutex shutdown_mu_;  // Serializes concurrent Shutdown() calls.
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_SESSION_SHARD_MANAGER_H_
