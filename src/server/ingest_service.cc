#include "server/ingest_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/trace.h"

namespace impatience {
namespace server {

Connection::Connection(IngestService* service, SendFn send,
                       TrySendFn try_send)
    : service_(service),
      send_(std::move(send)),
      try_send_(std::move(try_send)) {}

Connection::~Connection() {
  // Unsubscribe before anything else: Unsubscribe blocks until any
  // in-flight exporter delivery to this connection's sink completes, so
  // after this line no exporter thread can touch the send path again.
  if (subscription_id_ != 0) {
    service_->exporter_->Unsubscribe(subscription_id_);
  }
  if (result_subscription_id_ != 0) {
    service_->result_exporter_->Unsubscribe(result_subscription_id_);
  }
  {
    // Unregister any pending flush acks so shard workers cannot route an
    // ack to a dead connection. Taking the lock also waits out an ack
    // send that is in flight right now.
    std::lock_guard<std::mutex> lock(service_->flush_mu_);
    for (auto it = service_->pending_flush_.begin();
         it != service_->pending_flush_.end();) {
      if (it->second == this) {
        it = service_->pending_flush_.erase(it);
      } else {
        ++it;
      }
    }
  }
  service_->connections_closed_.fetch_add(1, std::memory_order_relaxed);
}

bool Connection::OnData(const uint8_t* data, size_t size) {
  if (poisoned_) return false;
  service_->bytes_in_.fetch_add(size, std::memory_order_relaxed);
  decoder_.Feed(data, size);
  Frame frame;
  for (;;) {
    TRACE_SPAN("wire.decode");
    const DecodeStatus status = decoder_.Next(&frame);
    if (status == DecodeStatus::kNeedMore) return true;
    if (IsDecodeError(status)) {
      poisoned_ = true;
      service_->decode_errors_.fetch_add(1, std::memory_order_relaxed);
      Frame reject;
      reject.type = FrameType::kReject;
      reject.reject_reason = RejectReason::kDecodeError;
      Send(reject);
      return false;
    }
    service_->frames_in_.fetch_add(1, std::memory_order_relaxed);
    Dispatch(frame);
    frame = Frame{};
  }
}

void Connection::Dispatch(Frame& frame) {
  TRACE_SPAN("server.dispatch");
  switch (frame.type) {
    case FrameType::kEvents:
    case FrameType::kPunctuation:
      break;  // Data path below.
    case FrameType::kFlushSession: {
      // Register for the ack first: the shard worker may apply the flush
      // before Submit even returns.
      {
        std::lock_guard<std::mutex> lock(service_->flush_mu_);
        service_->pending_flush_[frame.session_id] = this;
      }
      break;
    }
    case FrameType::kMetricsRequest: {
      Frame response;
      response.type = FrameType::kMetricsResponse;
      response.session_id = frame.session_id;
      response.metrics_format = frame.metrics_format;
      const ServerMetrics snapshot = service_->Snapshot();
      switch (frame.metrics_format) {
        case MetricsFormat::kJson:
          response.text = RenderMetricsJson(snapshot);
          break;
        case MetricsFormat::kPrometheus:
          response.text = RenderMetricsPrometheus(snapshot);
          break;
        case MetricsFormat::kText:
          response.text = RenderMetricsText(snapshot);
          break;
      }
      Send(response);
      return;
    }
    case FrameType::kTraceRequest: {
      Frame response;
      response.type = FrameType::kTraceResponse;
      response.session_id = frame.session_id;
      response.trace_action = frame.trace_action;
      switch (frame.trace_action) {
        case TraceAction::kDump: {
          // The dump streams as kTelemetryChunk(kTelemetryDump) frames —
          // each bounded well under kMaxPayloadBytes — terminated by this
          // kTraceResponse carrying a JSON footer, so a full ring drain
          // is never silently cut at the 16 MiB frame bound. Chunks the
          // connection's bounded write budget cannot take are dropped
          // and counted in the footer (and in dump_truncated), never
          // buffered unboundedly.
          std::vector<std::string> bodies;
          trace::DrainStats stats;
          trace::HarvestChunks(
              service_->exporter_->options().max_chunk_bytes, &bodies,
              &stats);
          uint64_t sent = 0;
          uint64_t chunks_dropped = 0;
          for (std::string& body : bodies) {
            Frame chunk;
            chunk.type = FrameType::kTelemetryChunk;
            chunk.session_id = frame.session_id;
            chunk.telemetry_streams = kTelemetryDump;
            chunk.telemetry_seq = sent + 1;
            chunk.telemetry_dropped = chunks_dropped;
            chunk.text = std::move(body);
            if (TrySend(chunk)) {
              ++sent;
            } else {
              ++chunks_dropped;
            }
          }
          service_->exporter_->NoteDump(sent, chunks_dropped);
          char footer[128];
          std::snprintf(footer, sizeof(footer),
                        "{\"dropped\":%llu,\"chunks\":%llu,"
                        "\"chunks_dropped\":%llu}",
                        static_cast<unsigned long long>(stats.dropped),
                        static_cast<unsigned long long>(sent),
                        static_cast<unsigned long long>(chunks_dropped));
          response.text = footer;
          break;
        }
        case TraceAction::kEnable:
          trace::SetEnabled(true);
          break;
        case TraceAction::kDisable:
          trace::SetEnabled(false);
          break;
      }
      Send(response);
      return;
    }
    case FrameType::kSubscribeRequest: {
      // A second subscribe replaces the first (mask changes included).
      if (subscription_id_ != 0) {
        service_->exporter_->Unsubscribe(subscription_id_);
        subscription_id_ = 0;
      }
      TelemetryExporter::TrySink sink;
      if (try_send_) {
        sink = try_send_;
      } else {
        // Loopback transports have no bounded telemetry path; their
        // inbox is consumed synchronously by the test/bench client.
        const SendFn send = send_;
        sink = [send](std::string bytes) {
          send(std::move(bytes));
          return true;
        };
      }
      subscription_id_ = service_->exporter_->Subscribe(
          frame.session_id, frame.telemetry_streams, std::move(sink));
      Frame ack;
      ack.type = FrameType::kSubscribeAck;
      ack.session_id = frame.session_id;
      ack.telemetry_streams = frame.telemetry_streams;
      ack.subscription_id = subscription_id_;
      Send(ack);
      return;
    }
    case FrameType::kResultSubscribeRequest: {
      // A second subscribe replaces the first (filter changes included).
      if (result_subscription_id_ != 0) {
        service_->result_exporter_->Unsubscribe(result_subscription_id_);
        result_subscription_id_ = 0;
      }
      ResultExporter::TrySink sink;
      if (try_send_) {
        sink = try_send_;
      } else {
        // Loopback transports have no bounded write path; their inbox is
        // consumed synchronously by the test/bench client.
        const SendFn send = send_;
        sink = [send](std::string bytes) {
          send(std::move(bytes));
          return true;
        };
      }
      // Pipeline output carries no session ids (sessions blend inside a
      // shard pipeline), so the per-session filter resolves to the shard
      // this session's frames route to.
      const size_t shard_filter =
          frame.result_filter == kResultFilterSession
              ? service_->manager_.ShardOf(frame.session_id)
              : ResultExporter::kAllShards;
      result_subscription_id_ = service_->result_exporter_->Subscribe(
          frame.session_id, frame.result_filter, shard_filter,
          std::move(sink));
      Frame ack;
      ack.type = FrameType::kResultSubscribeAck;
      ack.session_id = frame.session_id;
      ack.result_filter = frame.result_filter;
      ack.subscription_id = result_subscription_id_;
      Send(ack);
      return;
    }
    case FrameType::kShutdown: {
      service_->Shutdown();
      Frame ack;
      ack.type = FrameType::kShutdownAck;
      ack.session_id = frame.session_id;
      Send(ack);
      return;
    }
    default:
      // Server→client frame types arriving at the server are protocol
      // misuse; drop them rather than poisoning an otherwise-valid
      // stream.
      return;
  }

  const uint64_t session_id = frame.session_id;
  const bool was_flush = frame.type == FrameType::kFlushSession;
  const SubmitResult result = service_->manager_.Submit(std::move(frame));
  if (result.push == QueuePush::kClosed) {
    if (was_flush) {
      // The flush never reached a shard; no ack will come.
      std::lock_guard<std::mutex> lock(service_->flush_mu_);
      auto it = service_->pending_flush_.find(session_id);
      if (it != service_->pending_flush_.end() && it->second == this) {
        service_->pending_flush_.erase(it);
      }
    }
    Frame reject;
    reject.type = FrameType::kReject;
    reject.session_id = session_id;
    reject.reject_reason = RejectReason::kShuttingDown;
    reject.reject_count = result.affected_events;
    Send(reject);
  } else if (result.push == QueuePush::kRejected) {
    if (was_flush) {
      std::lock_guard<std::mutex> lock(service_->flush_mu_);
      auto it = service_->pending_flush_.find(session_id);
      if (it != service_->pending_flush_.end() && it->second == this) {
        service_->pending_flush_.erase(it);
      }
    }
    Frame reject;
    reject.type = FrameType::kReject;
    reject.session_id = session_id;
    reject.reject_reason = RejectReason::kQueueFull;
    reject.reject_count = result.affected_events;
    Send(reject);
  }
}

void Connection::Send(const Frame& frame) { service_->SendOn(send_, frame); }

bool Connection::TrySend(const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  std::string wire(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  if (try_send_) {
    if (!try_send_(std::move(wire))) return false;
  } else {
    send_(std::move(wire));
  }
  service_->frames_out_.fetch_add(1, std::memory_order_relaxed);
  service_->bytes_out_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return true;
}

IngestService::IngestService(ServiceOptions options)
    : options_(std::move(options)),
      result_exporter_(std::make_unique<ResultExporter>(
          options_.results, std::max<size_t>(1, options_.shards.num_shards))),
      manager_(
          options_.shards,
          [this](size_t shard, size_t stream, const Event& e) {
            result_exporter_->OnResult(shard, stream, e);
            if (options_.on_result) options_.on_result(shard, stream, e);
          },
          [this](uint64_t session_id) { OnSessionFlushed(session_id); },
          [this](size_t shard, Timestamp watermark) {
            result_exporter_->OnShardProgress(shard, watermark);
          }) {
  exporter_ = std::make_unique<TelemetryExporter>(
      options_.telemetry, [this] { return manager_.SnapshotShards(); });
}

IngestService::~IngestService() { Shutdown(); }

std::unique_ptr<Connection> IngestService::OpenConnection(
    std::function<void(std::string)> send,
    std::function<bool(std::string)> try_send) {
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Connection>(
      new Connection(this, std::move(send), std::move(try_send)));
}

void IngestService::Shutdown() { manager_.Shutdown(); }

void IngestService::SendOn(const Connection::SendFn& send,
                           const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  bytes_out_.fetch_add(bytes.size(), std::memory_order_relaxed);
  send(std::string(reinterpret_cast<const char*>(bytes.data()),
                   bytes.size()));
}

void IngestService::OnSessionFlushed(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(flush_mu_);
  auto it = pending_flush_.find(session_id);
  if (it == pending_flush_.end()) return;
  Connection* conn = it->second;
  pending_flush_.erase(it);
  Frame ack;
  ack.type = FrameType::kFlushAck;
  ack.session_id = session_id;
  // Sent under flush_mu_: Connection's destructor takes the same lock
  // before the object goes away, so `conn` is alive for this call.
  SendOn(conn->send_, ack);
}

void IngestService::SetTransportMetricsFn(
    std::function<TransportMetrics()> fn) {
  std::lock_guard<std::mutex> lock(transport_metrics_mu_);
  transport_metrics_fn_ = std::move(fn);
}

ServerMetrics IngestService::Snapshot() {
  ServerMetrics m;
  {
    // Called under the lock so Stop()'s unregistration is a barrier: once
    // SetTransportMetricsFn(nullptr) returns, no snapshot can still be
    // inside a front end that is being torn down.
    std::lock_guard<std::mutex> lock(transport_metrics_mu_);
    if (transport_metrics_fn_) m.transport = transport_metrics_fn_();
  }
  m.connections_opened = connections_opened_.load(std::memory_order_relaxed);
  m.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  m.frames_in = frames_in_.load(std::memory_order_relaxed);
  m.frames_out = frames_out_.load(std::memory_order_relaxed);
  m.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  m.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  m.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  m.shutting_down = manager_.shutting_down();
  m.telemetry = exporter_->Counters();
  m.results = result_exporter_->Counters();
  m.shards = manager_.SnapshotShards();
  return m;
}

}  // namespace server
}  // namespace impatience
