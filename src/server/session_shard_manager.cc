#include "server/session_shard_manager.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/bounded_queue.h"
#include "common/check.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/memory_tracker.h"
#include "common/timestamp.h"
#include "common/trace.h"
#include "engine/streamable.h"
#include "storage/run_store.h"
#include "storage/spill.h"
#include "storage/spill_flusher.h"
#include "storage/spill_governor.h"

namespace impatience {
namespace server {

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kRejectFrame:
      return "reject";
    case BackpressurePolicy::kShedOldest:
      return "shed";
  }
  return "unknown";
}

bool ParseBackpressurePolicy(const std::string& name,
                             BackpressurePolicy* policy) {
  if (name == "block") {
    *policy = BackpressurePolicy::kBlock;
  } else if (name == "reject") {
    *policy = BackpressurePolicy::kRejectFrame;
  } else if (name == "shed") {
    *policy = BackpressurePolicy::kShedOldest;
  } else {
    return false;
  }
  return true;
}

namespace {

// SplitMix64 finalizer: session ids are often sequential, so mix before
// taking the modulus or all sessions land on adjacent shards.
uint64_t MixSession(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

struct SessionShardManager::Shard {
  Shard(size_t index, const ShardManagerOptions& options)
      : index(index),
        queue(options.queue_capacity),
        // The partition absorbs ingress punctuations, so the ingress never
        // needs to punctuate on its own; SIZE_MAX disables its cadence.
        pipeline({.punctuation_period = static_cast<size_t>(-1),
                  .reorder_latency = 0},
                 &memory) {}

  const size_t index;
  BoundedMpscQueue<Frame> queue;

  // Byte-accurate buffering footprint of everything behind this shard's
  // pipeline; the spill policy reads it against the shard's budget slice.
  // Declared before the pipeline, which registers reservations against it.
  MemoryTracker memory;
  // Durable run store under <spill_dir>/shard-<index> (nullptr without a
  // spill dir): sorter spill target and the WAL recovery replays.
  std::unique_ptr<storage::RunStore> store;
  uint64_t runs_recovered = 0;    // Stamped once during construction.
  uint64_t events_recovered = 0;

  // Guards the pipeline, `streams`, and `sessions` — held by the worker
  // while processing and by SnapshotShards while reading.
  std::mutex pipeline_mu;
  QueryPipeline<4> pipeline;
  std::optional<Streamables<4>> streams;
  // Session id -> largest event sync_time the session has sent (the
  // session's event-time watermark; kMinTimestamp until it sends events).
  std::unordered_map<uint64_t, Timestamp> sessions;

  std::thread worker;

  // True while a kMaintenance frame sits in the queue — the governor's
  // wakeup enqueues at most one at a time, so a stalled (or manually
  // drained) shard never fills its queue with maintenance frames.
  std::atomic<bool> maintenance_queued{false};

  // Backpressure and traffic counters; written by connection threads
  // (Submit) and the worker, read by SnapshotShards.
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> events_in{0};
  std::atomic<uint64_t> punctuations_in{0};
  std::atomic<uint64_t> blocked_pushes{0};
  std::atomic<uint64_t> rejected_frames{0};
  std::atomic<uint64_t> rejected_events{0};
  std::atomic<uint64_t> shed_frames{0};
  std::atomic<uint64_t> shed_events{0};
  std::atomic<uint64_t> events_out{0};

  // Latency distributions (atomic buckets): recorded by the drain loop,
  // snapshotted concurrently by SnapshotShards without pipeline_mu.
  LatencyHistogram queue_wait;   // Submit-to-pop wait per frame.
  LatencyHistogram drain_stall;  // Pipeline-apply time per frame.
};

SessionShardManager::SessionShardManager(ShardManagerOptions options,
                                         ResultFn on_result,
                                         SessionFlushFn on_session_flush,
                                         ShardProgressFn on_shard_progress)
    : options_(std::move(options)),
      on_result_(std::move(on_result)),
      on_session_flush_(std::move(on_session_flush)),
      on_shard_progress_(std::move(on_shard_progress)) {
  IMPATIENCE_CHECK(options_.num_shards > 0);
  if (options_.framework.reorder_latencies.empty()) {
    options_.framework.reorder_latencies = {1 * kSecond, 1 * kMinute};
  }
  // Each shard gets an equal slice of the total buffering budget; its
  // sorters spill against the shard's MemoryTracker (the whole-pipeline
  // residency signal), not just their own bytes.
  const size_t shard_budget =
      options_.memory_budget == 0
          ? 0
          : std::max<size_t>(1, options_.memory_budget / options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, options_));
  }
  if (options_.spill_flusher_threads > 0) {
    storage::SpillFlusher::Options fo;
    fo.threads = options_.spill_flusher_threads;
    fo.max_inflight_bytes = options_.spill_flusher_inflight_bytes;
    flusher_ = std::make_unique<storage::SpillFlusher>(fo);
  }
  if (options_.memory_budget > 0) {
    // The governor watches the sum of every shard's tracker against the
    // *total* budget and assigns spill targets to the globally coldest
    // sorters; each sorter keeps its per-shard slice as a local fallback.
    storage::SpillGovernor::Options go;
    go.memory_budget = options_.memory_budget;
    for (auto& shard : shards_) go.trackers.push_back(&shard->memory);
    governor_ = std::make_unique<storage::SpillGovernor>(go);
  }
  for (size_t i = 0; i < options_.num_shards; ++i) {
    Shard* s = shards_[i].get();
    FrameworkOptions fw = options_.framework;
    if (!options_.spill_dir.empty()) {
      storage::RunStoreOptions store_options;
      store_options.dir =
          options_.spill_dir + "/shard-" + std::to_string(i);
      std::string error;
      s->store = storage::RunStore::Open(store_options, &error);
      IMPATIENCE_CHECK_MSG(s->store != nullptr, "%s", error.c_str());
      fw.sorter_config.spill.store = s->store.get();
      // Make punctuation boundaries durable: every live spilled byte is
      // fsync'd once the punctuation that could emit it has run, so a
      // crash loses at most the events still in RAM.
      fw.sorter_config.spill.sync_on_punctuation = true;
    }
    fw.sorter_config.spill.memory_budget = shard_budget;
    fw.sorter_config.spill.tracker = &s->memory;
    fw.sorter_config.spill.flusher = flusher_.get();
    if (governor_ != nullptr) {
      fw.sorter_config.spill.governor = governor_.get();
      // Governor requests are consumed on the shard thread: the wakeup
      // posts one maintenance frame (deduplicated) onto the ingress
      // queue. Non-blocking by contract — it runs inside the tick.
      fw.sorter_config.spill.governor_wakeup = [s]() {
        if (s->maintenance_queued.exchange(true,
                                           std::memory_order_acq_rel)) {
          return;
        }
        Frame frame;
        frame.type = FrameType::kMaintenance;
        if (s->queue.TryPush(std::move(frame)) != QueuePush::kOk) {
          s->maintenance_queued.store(false, std::memory_order_release);
        }
      };
    }
    s->streams.emplace(ToStreamables(s->pipeline.disordered(), fw));
    const size_t first_stream =
        options_.subscribe_all_streams ? 0 : s->streams->size() - 1;
    for (size_t j = first_stream; j < s->streams->size(); ++j) {
      s->streams->stream(j).Subscribe([this, s, j](const Event& e) {
        s->events_out.fetch_add(1, std::memory_order_relaxed);
        if (on_result_) on_result_(s->index, j, e);
      });
    }
    if (s->store != nullptr) RecoverShard(s);
  }
  if (!options_.manual_drain) {
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->worker = std::thread([this, s] { WorkerLoop(s); });
    }
  }
}

SessionShardManager::~SessionShardManager() { Shutdown(); }

void SessionShardManager::RecoverShard(Shard* s) {
  std::vector<storage::RecoveredRun> runs;
  storage::RecoveryStats stats;
  std::string error;
  IMPATIENCE_CHECK_MSG(s->store->Recover(&runs, &stats, &error), "%s",
                       error.c_str());
  // Replay each intact run (ascending within a run, run-id order across
  // runs) through the normal ingress path: the partition re-routes, the
  // sorters re-sort, and the data re-spills if the budget demands —
  // recovery needs no special-case emit path. At-least-once: a suffix the
  // crashed process already emitted but whose head advance was not yet
  // durable is emitted again.
  for (const storage::RecoveredRun& run : runs) {
    uint64_t read_bytes = 0;
    uint64_t replayed = 0;
    const bool ok = storage::ReplayRecoveredRun<Event>(
        run,
        [&](const Event& e) {
          s->pipeline.ingress().Push(e);
          ++replayed;
        },
        &read_bytes, &error);
    IMPATIENCE_CHECK_MSG(ok, "%s", error.c_str());
    s->events_recovered += replayed;
    ++s->runs_recovered;
    // The events live in the pipeline again (RAM or re-spilled under new
    // run ids); the old file is dead weight.
    s->store->DeleteRun(run.id, nullptr);
  }
  s->pipeline.ingress().FlushPending();
}

size_t SessionShardManager::ShardOf(uint64_t session_id) const {
  return static_cast<size_t>(MixSession(session_id) % shards_.size());
}

SubmitResult SessionShardManager::Submit(Frame frame) {
  SubmitResult result;
  if (shutting_down_.load(std::memory_order_acquire)) {
    result.push = QueuePush::kClosed;
    result.affected_events = frame.events.size();
    return result;
  }
  Shard* s = shards_[ShardOf(frame.session_id)].get();
  const uint64_t n_events = frame.events.size();
  const bool is_punctuation = frame.type == FrameType::kPunctuation;
  frame.enqueue_ns = Clock::Nanos();

  switch (options_.backpressure) {
    case BackpressurePolicy::kBlock:
      result.push = s->queue.PushBlock(std::move(frame));
      if (result.push == QueuePush::kBlocked) {
        s->blocked_pushes.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case BackpressurePolicy::kRejectFrame:
      result.push = s->queue.TryPush(std::move(frame));
      if (result.push == QueuePush::kRejected) {
        s->rejected_frames.fetch_add(1, std::memory_order_relaxed);
        s->rejected_events.fetch_add(n_events, std::memory_order_relaxed);
        result.affected_events = n_events;
        return result;
      }
      break;
    case BackpressurePolicy::kShedOldest: {
      std::optional<Frame> shed;
      result.push = s->queue.PushShedOldest(std::move(frame), &shed);
      if (shed.has_value()) {
        s->shed_frames.fetch_add(1, std::memory_order_relaxed);
        s->shed_events.fetch_add(shed->events.size(),
                                 std::memory_order_relaxed);
        result.affected_events = shed->events.size();
      }
      break;
    }
  }
  if (result.push == QueuePush::kClosed) {
    // Shutdown raced this submission; the frame was not enqueued.
    result.affected_events = n_events;
    return result;
  }
  s->frames_in.fetch_add(1, std::memory_order_relaxed);
  s->events_in.fetch_add(n_events, std::memory_order_relaxed);
  if (is_punctuation) {
    s->punctuations_in.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

void SessionShardManager::WorkerLoop(Shard* s) {
  Frame frame;
  while (s->queue.Pop(&frame)) {
    bool burst_end = false;
    Timestamp frontier = kMinTimestamp;
    {
      std::lock_guard<std::mutex> lock(s->pipeline_mu);
      Process(s, frame);
      // Burst boundary: nothing else queued right now, so push any
      // half-filled batch into the pipeline instead of letting it sit
      // until the next frame arrives.
      if (s->queue.size() == 0) {
        s->pipeline.ingress().FlushPending();
        burst_end = true;
        frontier = s->streams->partition().band_punctuation(0);
      }
    }
    // Progress is reported outside pipeline_mu: the callback fans chunks
    // out to subscribers and must not hold up metrics snapshots.
    if (burst_end && on_shard_progress_) {
      on_shard_progress_(s->index, frontier);
    }
    frame = Frame{};
  }
  // Queue closed and drained: flush the pipeline so every buffered event
  // is released in order before the thread exits. An abandoned manager
  // (crash simulation) skips this — buffered state is deliberately lost.
  if (!abandoned_.load(std::memory_order_acquire)) FlushPipeline(s);
}

void SessionShardManager::Process(Shard* s, Frame& frame) {
  TRACE_SPAN("shard.process_frame");
  const uint64_t start_ns = Clock::Nanos();
  if (frame.enqueue_ns != 0 && start_ns >= frame.enqueue_ns) {
    s->queue_wait.Record(start_ns - frame.enqueue_ns);
  }
  if (frame.type == FrameType::kMaintenance) {
    // Governor-requested spill maintenance; carries no session or events,
    // so it must not touch the watermark map. Clear the dedup flag first:
    // a wakeup firing during the work re-queues, which is correct.
    s->maintenance_queued.store(false, std::memory_order_release);
    s->streams->PerformSpillMaintenance();
    s->drain_stall.Record(Clock::Nanos() - start_ns);
    return;
  }
  Timestamp& session_watermark =
      s->sessions.emplace(frame.session_id, kMinTimestamp).first->second;
  switch (frame.type) {
    case FrameType::kEvents:
      for (const Event& e : frame.events) {
        if (e.sync_time > session_watermark) session_watermark = e.sync_time;
        s->pipeline.ingress().Push(e);
      }
      break;
    case FrameType::kPunctuation:
      // A client punctuation promises no events ≤ t will follow on this
      // session. Sessions share the shard pipeline, so the promise alone
      // cannot advance band punctuations — but it is a natural point to
      // run a partition round so idle periods still produce output.
      s->pipeline.ingress().FlushPending();
      s->streams->mutable_partition()->ForcePunctuation();
      break;
    case FrameType::kFlushSession:
      // Everything this session sent earlier is now in the pipeline (the
      // queue is FIFO); surface what can be surfaced and ack.
      s->pipeline.ingress().FlushPending();
      s->streams->mutable_partition()->ForcePunctuation();
      if (on_session_flush_) on_session_flush_(frame.session_id);
      break;
    default:
      // Control frames that do not reach shards (metrics, shutdown, acks)
      // are handled by the service layer; ignore defensively.
      break;
  }
  s->drain_stall.Record(Clock::Nanos() - start_ns);
}

void SessionShardManager::FlushPipeline(Shard* s) {
  Timestamp frontier = kMinTimestamp;
  {
    std::lock_guard<std::mutex> lock(s->pipeline_mu);
    s->pipeline.ingress().Finish();
    frontier = s->streams->partition().band_punctuation(0);
  }
  if (on_shard_progress_) on_shard_progress_(s->index, frontier);
}

void SessionShardManager::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_.load(std::memory_order_acquire)) return;
  shutting_down_.store(true, std::memory_order_release);
  // The governor's tick thread reads the shards' MemoryTrackers and
  // pushes onto their queues; it must be quiesced before any of that
  // dies. The object itself stays alive for the sorters' Unregister.
  if (governor_ != nullptr) governor_->StopTicking();
  for (auto& shard : shards_) shard->queue.Close();
  if (options_.manual_drain) {
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      Frame frame;
      while (s->queue.TryPop(&frame)) {
        std::lock_guard<std::mutex> lock(s->pipeline_mu);
        Process(s, frame);
      }
      FlushPipeline(s);
    }
  } else {
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }
  shut_down_.store(true, std::memory_order_release);
}

void SessionShardManager::AbandonForTest() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_.load(std::memory_order_acquire)) return;
  abandoned_.store(true, std::memory_order_release);
  shutting_down_.store(true, std::memory_order_release);
  if (governor_ != nullptr) governor_->StopTicking();
  for (auto& shard : shards_) shard->queue.Close();
  if (!options_.manual_drain) {
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }
  // No FlushPipeline: everything still buffered in RAM is lost, exactly
  // as in a crash. Spilled run files and manifests stay on disk.
  shut_down_.store(true, std::memory_order_release);
}

std::vector<ShardMetrics> SessionShardManager::SnapshotShards(
    bool reset_sorter_counters) {
  std::vector<ShardMetrics> out;
  out.reserve(shards_.size());
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    ShardMetrics m;
    m.shard = s->index;
    m.queue_depth = s->queue.size();
    m.queue_capacity = s->queue.capacity();
    m.frames_in = s->frames_in.load(std::memory_order_relaxed);
    m.events_in = s->events_in.load(std::memory_order_relaxed);
    m.punctuations_in = s->punctuations_in.load(std::memory_order_relaxed);
    m.blocked_pushes = s->blocked_pushes.load(std::memory_order_relaxed);
    m.rejected_frames = s->rejected_frames.load(std::memory_order_relaxed);
    m.rejected_events = s->rejected_events.load(std::memory_order_relaxed);
    m.shed_frames = s->shed_frames.load(std::memory_order_relaxed);
    m.shed_events = s->shed_events.load(std::memory_order_relaxed);
    m.events_out = s->events_out.load(std::memory_order_relaxed);
    m.memory_current_bytes = s->memory.current_bytes();
    m.memory_peak_bytes = s->memory.peak_bytes();
    // The peak shares the statistics window with the sorter counters: a
    // reset scrape restarts it from the current footprint.
    if (reset_sorter_counters) s->memory.ResetPeak();
    m.runs_recovered = s->runs_recovered;
    m.events_recovered = s->events_recovered;
    // Latency histograms share the statistics window with the sorter
    // counters: a reset scrape drains both.
    m.queue_wait = s->queue_wait.Snapshot(reset_sorter_counters);
    m.drain_stall = s->drain_stall.Snapshot(reset_sorter_counters);
    {
      std::lock_guard<std::mutex> lock(s->pipeline_mu);
      m.sessions = s->sessions.size();
      m.dropped_late = s->streams->TotalDrops();
      // Single-op snapshot-and-reset: each band's counters are read and
      // zeroed in one touch, so samples recorded by the worker between a
      // scrape's read and reset can never be dropped.
      m.sorter = s->streams->AggregatedCounters(reset_sorter_counters);

      const Timestamp frontier = s->streams->partition().band_punctuation(0);
      m.watermarks.reserve(s->sessions.size());
      for (const auto& [session_id, max_sync] : s->sessions) {
        SessionWatermark w;
        w.session_id = session_id;
        w.label = std::to_string(session_id);
        w.max_sync_time = max_sync;
        w.last_punctuation = frontier;
        // Before the first punctuation round (or before the session sends
        // events) there is no meaningful frontier to lag behind.
        w.lag = (frontier != kMinTimestamp && max_sync > frontier)
                    ? max_sync - frontier
                    : 0;
        if (w.lag > m.max_watermark_lag) m.max_watermark_lag = w.lag;
        m.watermarks.push_back(std::move(w));
      }
    }
    // Worst session first; ties by id so the rendering is deterministic.
    std::sort(m.watermarks.begin(), m.watermarks.end(),
              [](const SessionWatermark& a, const SessionWatermark& b) {
                if (a.lag != b.lag) return a.lag > b.lag;
                return a.session_id < b.session_id;
              });
    out.push_back(std::move(m));
  }
  return out;
}

void SessionShardManager::DrainShardForTest(size_t shard) {
  IMPATIENCE_CHECK(options_.manual_drain);
  IMPATIENCE_CHECK(shard < shards_.size());
  Shard* s = shards_[shard].get();
  Frame frame;
  while (s->queue.TryPop(&frame)) {
    std::lock_guard<std::mutex> lock(s->pipeline_mu);
    Process(s, frame);
  }
  Timestamp frontier = kMinTimestamp;
  {
    std::lock_guard<std::mutex> lock(s->pipeline_mu);
    s->pipeline.ingress().FlushPending();
    frontier = s->streams->partition().band_punctuation(0);
  }
  if (on_shard_progress_) on_shard_progress_(s->index, frontier);
}

}  // namespace server
}  // namespace impatience
