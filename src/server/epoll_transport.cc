#include "server/epoll_transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace impatience {
namespace server {

namespace {

// The epoll user-data value reserved for the wakeup eventfd; connection
// ids start at 1 and count up, so the top value cannot collide.
constexpr uint64_t kWakeupId = ~0ull;

}  // namespace

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

IoResult FdTransport::Read(uint8_t* out, size_t n) {
  const ssize_t r = ::recv(fd_, out, n, 0);
  if (r < 0) return {-static_cast<int64_t>(errno)};
  return {static_cast<int64_t>(r)};
}

IoResult FdTransport::Write(const uint8_t* data, size_t n) {
  const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
  if (w < 0) return {-static_cast<int64_t>(errno)};
  return {static_cast<int64_t>(w)};
}

void FdTransport::Shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  ::shutdown(fd_, SHUT_RDWR);
}

namespace {

bool PollFor(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    return r > 0;
  }
}

}  // namespace

bool FdTransport::WaitReadable(int timeout_ms) {
  return PollFor(fd_, POLLIN, timeout_ms);
}

bool FdTransport::WaitWritable(int timeout_ms) {
  return PollFor(fd_, POLLOUT, timeout_ms);
}

EpollPoller::EpollPoller() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return;
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeupId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev);
}

EpollPoller::~EpollPoller() {
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

namespace {

uint32_t MaskFor(bool read, bool write) {
  // EPOLLERR/EPOLLHUP are always reported regardless of the mask, so a
  // dead peer still surfaces even with both sides disarmed.
  uint32_t mask = 0;
  if (read) mask |= EPOLLIN | EPOLLRDHUP;
  if (write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

bool EpollPoller::Add(uint64_t id, Transport* t, bool want_write) {
  if (epoll_fd_ < 0 || t->fd() < 0) return false;
  std::lock_guard<std::mutex> lock(interest_mu_);
  epoll_event ev{};
  ev.events = MaskFor(/*read=*/true, want_write);
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, t->fd(), &ev) != 0) return false;
  interest_[id] = Interest{true, want_write};
  return true;
}

void EpollPoller::Modify(uint64_t id, Transport* t, int want_read,
                         int want_write) {
  if (epoll_fd_ < 0 || t->fd() < 0) return;
  std::lock_guard<std::mutex> lock(interest_mu_);
  auto it = interest_.find(id);
  if (it == interest_.end()) return;  // Raced a Remove; harmless by design.
  if (want_read >= 0) it->second.read = want_read != 0;
  if (want_write >= 0) it->second.write = want_write != 0;
  epoll_event ev{};
  ev.events = MaskFor(it->second.read, it->second.write);
  ev.data.u64 = id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, t->fd(), &ev);
}

void EpollPoller::SetWantWrite(uint64_t id, Transport* t, bool want_write) {
  Modify(id, t, /*want_read=*/-1, want_write ? 1 : 0);
}

void EpollPoller::SetWantRead(uint64_t id, Transport* t, bool want_read) {
  Modify(id, t, want_read ? 1 : 0, /*want_write=*/-1);
}

void EpollPoller::Remove(uint64_t id, Transport* t) {
  if (epoll_fd_ < 0 || t->fd() < 0) return;
  std::lock_guard<std::mutex> lock(interest_mu_);
  interest_.erase(id);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, t->fd(), nullptr);
}

size_t EpollPoller::Wait(std::vector<ReadyEvent>* out, int timeout_ms) {
  if (epoll_fd_ < 0) return 0;
  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  size_t produced = 0;
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == kWakeupId) {
      uint64_t drain;
      while (::read(wakeup_fd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    ReadyEvent ev;
    ev.id = events[i].data.u64;
    ev.readable = (events[i].events & EPOLLIN) != 0;
    ev.writable = (events[i].events & EPOLLOUT) != 0;
    ev.error =
        (events[i].events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP)) != 0;
    out->push_back(ev);
    ++produced;
  }
  return produced;
}

void EpollPoller::Wakeup() {
  if (wakeup_fd_ < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t w =
      ::write(wakeup_fd_, &one, sizeof(one));
}

}  // namespace server
}  // namespace impatience
