#include "server/event_loop.h"

#include <utility>

#include "common/trace.h"

namespace impatience {
namespace server {

EventLoop::EventLoop(IngestService* service, std::unique_ptr<Poller> poller,
                     EventLoopOptions options, size_t loop_index)
    : service_(service),
      poller_(std::move(poller)),
      options_(options),
      loop_index_(loop_index) {
  read_buf_.resize(options_.read_chunk_bytes);
}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Start() {
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    PollOnce(/*timeout_ms=*/-1);
  }
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  poller_->Wakeup();
  if (thread_.joinable()) thread_.join();
  // The loop thread is gone (or never existed): this thread now plays
  // its role for the final teardown.
  std::vector<Conn*> victims;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    victims.reserve(conns_.size());
    for (auto& [id, conn] : conns_) victims.push_back(conn.get());
  }
  for (Conn* c : victims) CloseConn(c, CloseCause::kStop);
}

uint64_t EventLoop::AddConnection(std::unique_ptr<Transport> transport) {
  if (stopping_.load(std::memory_order_acquire)) {
    transport->Shutdown();
    return 0;
  }
  auto conn = std::make_unique<Conn>();
  Conn* c = conn.get();
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Transport* raw = transport.get();
  c->id = id;
  c->transport = std::move(transport);
  c->connection = service_->OpenConnection(
      [this, c](std::string bytes) { QueueWrite(c, std::move(bytes)); },
      [this, c](std::string bytes) {
        return TryQueueWrite(c, std::move(bytes));
      });
  bool registered = false;
  {
    // Registration shares conns_mu_ with Stop()'s victim snapshot, and
    // stopping_ is re-checked under the lock: either this connection
    // lands in the snapshot (Stop closes it) or stopping_ is already
    // visible here and we back out. It can never be registered with the
    // poller after the loop thread has exited.
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (!stopping_.load(std::memory_order_acquire) &&
        poller_->Add(id, raw, /*want_write=*/false)) {
      conns_.emplace(id, std::move(conn));
      registered = true;
    }
  }
  if (!registered) {
    // Never visible to the loop or the poller: dismantle locally.
    c->connection.reset();
    c->transport->Shutdown();
    return 0;
  }
  connection_count_.fetch_add(1, std::memory_order_relaxed);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  // The loop thread may read, poison, and destroy the connection at any
  // moment now — `c` must not be touched after a successful Add.
  return id;
}

size_t EventLoop::PollOnce(int timeout_ms) {
  // Reap connections shed by QueueWrite overflow (flagged from worker
  // threads; only this thread may destroy a connection).
  auto reap_shed = [this] {
    std::vector<uint64_t> shed;
    {
      std::lock_guard<std::mutex> lock(shed_mu_);
      shed.swap(pending_shed_);
    }
    for (const uint64_t id : shed) {
      Conn* c = nullptr;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(id);
        if (it != conns_.end()) c = it->second.get();
      }
      if (c != nullptr) CloseConn(c, CloseCause::kSlow);
    }
  };

  reap_shed();
  ready_.clear();
  poller_->Wait(&ready_, timeout_ms);
  const size_t handled = ready_.size();
  for (const ReadyEvent& ev : ready_) {
    if (stopping_.load(std::memory_order_acquire)) break;
    HandleReady(ev);
  }
  reap_shed();
  return handled;
}

void EventLoop::HandleReady(const ReadyEvent& ev) {
  auto lookup = [this](uint64_t id) -> Conn* {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
  };
  // The pointer stays valid without the lock: this thread is the only
  // one that erases connections.
  Conn* c = lookup(ev.id);
  if (c == nullptr) return;  // Closed earlier in this batch.

  if ((ev.readable || ev.error) && !c->stop_reading) HandleReadable(c);

  c = lookup(ev.id);
  if (c == nullptr) return;  // HandleReadable closed it.

  bool drained = true;
  if (ev.writable || ev.error || c->draining) drained = HandleWritable(c);

  // HandleWritable closes the connection itself on a fatal write error
  // (a peer resetting mid-flush): re-look-up before touching c again.
  c = lookup(ev.id);
  if (c == nullptr) return;
  if (c->draining && drained) CloseConn(c, CloseCause::kEof);
}

void EventLoop::StartDraining(Conn* c) {
  c->stop_reading = true;
  c->draining = true;
  // Drop read interest while the queue flushes: the poller is level-
  // triggered, so a half-closed peer (persistent EPOLLRDHUP) or one
  // still sending into a poisoned stream would otherwise wake the loop
  // in a busy spin for the whole drain window. EPOLLOUT alone drives
  // the drain; fatal conditions still surface through the write path
  // (and epoll reports EPOLLERR/EPOLLHUP unconditionally).
  poller_->SetWantRead(c->id, c->transport.get(), false);
}

void EventLoop::HandleReadable(Conn* c) {
  TRACE_SPAN("loop.readable");
  for (size_t budget = options_.read_budget_chunks; budget > 0; --budget) {
    const IoResult r =
        c->transport->Read(read_buf_.data(), read_buf_.size());
    if (r.ok()) {
      if (!c->connection->OnData(read_buf_.data(),
                                 static_cast<size_t>(r.n))) {
        // Poisoned (the kReject is already queued): stop reading, flush
        // what is queued, then close.
        StartDraining(c);
        return;
      }
      if (static_cast<size_t>(r.n) < read_buf_.size()) return;  // Drained.
      continue;  // Full chunk: more may be buffered, spend budget.
    }
    if (r.eof()) {
      // Half-close: the peer is done sending but may still read. Flush
      // queued replies (flush acks in flight), then close.
      bool empty;
      {
        std::lock_guard<std::mutex> lock(c->mu);
        empty = c->writeq.empty();
      }
      if (empty) {
        CloseConn(c, CloseCause::kEof);
      } else {
        StartDraining(c);
      }
      return;
    }
    if (r.again()) return;
    if (r.interrupted()) continue;  // Retry; budget bounds the loop.
    CloseConn(c, CloseCause::kError);
    return;
  }
  // Budget exhausted with data likely remaining: the level-triggered
  // poller re-reports this connection on the next Wait, after its peers
  // have had their turn.
}

bool EventLoop::HandleWritable(Conn* c) {
  TRACE_SPAN("loop.writable");
  bool fatal = false;
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    while (!c->writeq.empty()) {
      const std::string& head = c->writeq.front();
      const uint8_t* data =
          reinterpret_cast<const uint8_t*>(head.data()) + c->head_offset;
      const size_t len = head.size() - c->head_offset;
      const IoResult r = c->transport->Write(data, len);
      if (r.ok()) {
        c->head_offset += static_cast<size_t>(r.n);
        if (c->head_offset == head.size()) {
          c->writeq_bytes -= head.size();
          c->head_offset = 0;
          c->writeq.pop_front();
          continue;
        }
        // Short write: the peer's window is full; wait for writability.
        epollout_stalls_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (r.again()) {
        epollout_stalls_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (r.interrupted()) continue;
      fatal = true;  // EOF on write or a hard error: peer is gone.
      break;
    }
    drained = c->writeq.empty();
    if (!fatal) {
      const bool need_write = !drained;
      if (c->want_write != need_write) {
        c->want_write = need_write;
        if (need_write) {
          epollout_waiting_.fetch_add(1, std::memory_order_relaxed);
        } else {
          epollout_waiting_.fetch_sub(1, std::memory_order_relaxed);
        }
        poller_->SetWantWrite(c->id, c->transport.get(), need_write);
      }
    }
  }
  if (fatal) {
    CloseConn(c, CloseCause::kError);
    return false;
  }
  return drained;
}

void EventLoop::QueueWrite(Conn* c, std::string bytes) {
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    if (c->overflowed) return;  // Already being shed; drop the bytes.
    if (c->writeq_bytes + bytes.size() > options_.max_write_queue_bytes) {
      // Slow client: it is not draining its socket and the queue hit its
      // bound. Shed the connection — keeping half a reply stream has no
      // value, so drop the queue wholesale.
      c->overflowed = true;
      c->writeq.clear();
      c->writeq_bytes = 0;
      c->head_offset = 0;
      overflow = true;
    } else {
      c->writeq_bytes += bytes.size();
      c->writeq.push_back(std::move(bytes));
      if (!c->want_write) {
        c->want_write = true;
        epollout_waiting_.fetch_add(1, std::memory_order_relaxed);
        poller_->SetWantWrite(c->id, c->transport.get(), true);
      }
    }
  }
  if (overflow) {
    // Only the loop thread may destroy the connection; hand it over.
    {
      std::lock_guard<std::mutex> lock(shed_mu_);
      pending_shed_.push_back(c->id);
    }
    poller_->Wakeup();
  }
}

bool EventLoop::TryQueueWrite(Conn* c, std::string bytes) {
  std::lock_guard<std::mutex> lock(c->mu);
  if (c->overflowed) return false;  // Being shed; nothing more fits.
  const size_t budget = std::min(options_.telemetry_write_queue_bytes,
                                 options_.max_write_queue_bytes);
  if (c->writeq_bytes + bytes.size() > budget) return false;
  c->writeq_bytes += bytes.size();
  c->writeq.push_back(std::move(bytes));
  if (!c->want_write) {
    c->want_write = true;
    epollout_waiting_.fetch_add(1, std::memory_order_relaxed);
    poller_->SetWantWrite(c->id, c->transport.get(), true);
  }
  return true;
}

void EventLoop::CloseConn(Conn* c, CloseCause cause) {
  closed_.fetch_add(1, std::memory_order_relaxed);
  switch (cause) {
    case CloseCause::kSlow:
      closed_slow_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseCause::kError:
      closed_error_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseCause::kEof:
    case CloseCause::kStop:
      break;
  }
  poller_->Remove(c->id, c->transport.get());
  c->transport->Shutdown();
  // Destroying the Connection unregisters pending flush acks under the
  // service's flush lock — after this returns, no worker thread can call
  // QueueWrite on this Conn again, so it is safe to fix the write-
  // interest gauge and free the Conn. (A QueueWrite racing the lines
  // above may still call SetWantWrite on the removed id; pollers
  // tolerate unknown ids.)
  c->connection.reset();
  {
    std::lock_guard<std::mutex> lock(c->mu);
    if (c->want_write) {
      c->want_write = false;
      epollout_waiting_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  connection_count_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(c->id);
}

IoLoopMetrics EventLoop::SnapshotMetrics() const {
  IoLoopMetrics m;
  m.loop = loop_index_;
  m.connections = connection_count_.load(std::memory_order_relaxed);
  m.epollout_waiting = epollout_waiting_.load(std::memory_order_relaxed);
  m.accepted = accepted_.load(std::memory_order_relaxed);
  m.closed = closed_.load(std::memory_order_relaxed);
  m.closed_slow = closed_slow_.load(std::memory_order_relaxed);
  m.closed_error = closed_error_.load(std::memory_order_relaxed);
  m.epollout_stalls = epollout_stalls_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace server
}  // namespace impatience
