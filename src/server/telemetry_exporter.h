// Streaming telemetry: fans live span batches and periodic metrics-delta
// snapshots out to subscribed connections as kTelemetryChunk frames.
//
// Subscriptions are per connection (kSubscribeRequest, aux = a bitmask of
// kTelemetrySpans | kTelemetryMetrics). The exporter's drain thread wakes
// on a fixed cadence, harvests the span rings incrementally (per-ring
// cursors — only events recorded since the previous harvest are consumed,
// shared with the one-shot dump path), packs them into bodies of at most
// `max_chunk_bytes`, and offers each body to every span subscriber
// through its try-sink. A metrics round snapshots the shards and emits
// one JSON delta object (counters as differences since the previous
// round, gauges as current values, latency histograms merged across
// shards with HistogramSnapshot::operator+= and diffed on count/sum).
//
// Backpressure contract: a sink returning false means the connection's
// bounded telemetry write budget is full — the chunk is dropped for that
// subscriber (its cumulative `dropped` count rises, so the gap is
// explicit in its own stream) and its sequence number does not advance,
// keeping delivered sequence numbers gap-free. `shed_after_drops`
// consecutive failures unsubscribe the subscriber entirely (counted in
// subscribers_shed). The exporter never blocks on a subscriber and never
// buffers beyond the per-connection budget, so a stalled subscriber
// cannot stall ingest or other sessions.
//
// Lifetime: Subscribe/Unsubscribe and the fan-out run under one mutex.
// A connection's destructor calls Unsubscribe, which therefore waits out
// any in-flight delivery to that sink — after Unsubscribe returns no
// thread can call the sink again (the same discipline as the service's
// pending-flush table).

#ifndef IMPATIENCE_SERVER_TELEMETRY_EXPORTER_H_
#define IMPATIENCE_SERVER_TELEMETRY_EXPORTER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/metrics.h"
#include "server/wire_format.h"

namespace impatience {
namespace server {

struct TelemetryOptions {
  // Upper bound on one chunk body; kept well under kMaxPayloadBytes so a
  // chunk always frames. Values are clamped to [1 KiB, 4 MiB].
  size_t max_chunk_bytes = 256u * 1024;
  // Drain-thread cadence for span harvests.
  int span_interval_ms = 50;
  // Cadence for metrics-delta chunks (rounded to span ticks).
  int metrics_interval_ms = 500;
  // Consecutive undeliverable chunks before a subscriber is dropped.
  size_t shed_after_drops = 40;
  // Spawn the drain thread. Tests leave it off and call Tick() directly.
  bool start_thread = true;
};

class TelemetryExporter {
 public:
  // Delivers one encoded frame toward the subscriber. Returns false to
  // refuse (bounded queue full): the chunk is dropped, never retried.
  // Must not block and must be callable from the drain thread.
  using TrySink = std::function<bool(std::string bytes)>;
  using SnapshotFn = std::function<std::vector<ShardMetrics>()>;

  TelemetryExporter(TelemetryOptions options, SnapshotFn snapshot);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  // Joins the drain thread. Idempotent; implied by the destructor.
  void Stop();

  // Registers a subscriber; returns its subscription id. `streams` is a
  // bitmask of kTelemetrySpans | kTelemetryMetrics (validated by the
  // wire decoder). Chunks sent to this subscriber carry `session_id`.
  uint64_t Subscribe(uint64_t session_id, uint8_t streams, TrySink sink);

  // Removes a subscription and waits out any in-flight delivery to its
  // sink. Unknown ids are ignored (the subscriber may have been shed).
  void Unsubscribe(uint64_t id);

  // One harvest + fan-out round. The drain thread calls this on its
  // cadence; tests call it directly for deterministic schedules.
  // `force_metrics` emits the metrics delta regardless of cadence.
  void Tick(bool force_metrics = false);

  // Dump-path accounting (the one-shot kDump is chunked by the service
  // through the same trace harvest; see ingest_service.cc).
  void NoteDump(uint64_t chunks_sent, uint64_t chunks_dropped);

  TelemetryMetrics Counters() const;

  const TelemetryOptions& options() const { return options_; }

 private:
  struct Subscription {
    uint64_t id = 0;
    uint64_t session_id = 0;
    uint8_t streams = 0;
    TrySink sink;
    uint64_t seq = 0;      // Last delivered sequence number.
    uint64_t dropped = 0;  // Cumulative chunks dropped for this sink.
    size_t consecutive_drops = 0;
  };

  void ThreadMain();
  // Offers `body` to every subscriber of `stream`; sheds stalled ones.
  // Caller holds mu_.
  void FanOutLocked(uint8_t stream, const std::string& body);
  std::string BuildMetricsDeltaLocked();

  const TelemetryOptions options_;
  const SnapshotFn snapshot_;

  mutable std::mutex mu_;
  std::vector<Subscription> subs_;
  uint64_t next_id_ = 1;
  uint64_t ticks_ = 0;
  size_t metrics_every_ = 1;
  TelemetryMetrics counters_;
  // Previous metrics round, for delta computation.
  bool have_prev_ = false;
  uint64_t prev_frames_in_ = 0;
  uint64_t prev_events_in_ = 0;
  uint64_t prev_events_out_ = 0;
  uint64_t prev_punctuations_in_ = 0;
  uint64_t prev_queue_wait_count_ = 0;
  uint64_t prev_queue_wait_sum_ = 0;
  std::vector<uint64_t> prev_shard_events_in_;

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_TELEMETRY_EXPORTER_H_
