#include "server/wire_format.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace impatience {
namespace server {

namespace {

// Little-endian primitive append/read. Byte-by-byte shifts, not memcpy of
// host representations, so the encoding is identical on any endianness.
void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI32(int32_t v, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

int32_t GetI32(const uint8_t* p) { return static_cast<int32_t>(GetU32(p)); }
int64_t GetI64(const uint8_t* p) { return static_cast<int64_t>(GetU64(p)); }

// One packed wire event (kWireEventBytes); shared by kEvents and
// kResultChunk so a result record round-trips bit-identically to the
// ingress encoding.
void PutEvent(const Event& e, std::vector<uint8_t>* out) {
  PutI64(e.sync_time, out);
  PutI64(e.other_time, out);
  PutI32(e.key, out);
  PutU64(e.hash, out);
  for (int c = 0; c < 4; ++c) PutI32(e.payload[c], out);
}

void GetEvent(const uint8_t* q, Event* e) {
  e->sync_time = GetI64(q);
  e->other_time = GetI64(q + 8);
  e->key = GetI32(q + 16);
  e->hash = GetU64(q + 20);
  for (int c = 0; c < 4; ++c) e->payload[c] = GetI32(q + 28 + 4 * c);
}

// The type-specific small header field (byte 5).
uint8_t AuxOf(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kMetricsRequest:
    case FrameType::kMetricsResponse:
      return static_cast<uint8_t>(frame.metrics_format);
    case FrameType::kReject:
      return static_cast<uint8_t>(frame.reject_reason);
    case FrameType::kTraceRequest:
    case FrameType::kTraceResponse:
      return static_cast<uint8_t>(frame.trace_action);
    case FrameType::kSubscribeRequest:
    case FrameType::kSubscribeAck:
    case FrameType::kTelemetryChunk:
      return frame.telemetry_streams;
    case FrameType::kResultSubscribeRequest:
    case FrameType::kResultSubscribeAck:
      return frame.result_filter;
    default:
      return 0;
  }
}

void AppendPayload(const Frame& frame, std::vector<uint8_t>* out) {
  switch (frame.type) {
    case FrameType::kEvents: {
      PutU32(static_cast<uint32_t>(frame.events.size()), out);
      for (const Event& e : frame.events) PutEvent(e, out);
      return;
    }
    case FrameType::kPunctuation:
      PutI64(frame.punctuation, out);
      return;
    case FrameType::kMetricsResponse:
    case FrameType::kTraceResponse:
      out->insert(out->end(), frame.text.begin(), frame.text.end());
      return;
    case FrameType::kReject:
      PutU64(frame.reject_count, out);
      return;
    case FrameType::kSubscribeAck:
      PutU64(frame.subscription_id, out);
      return;
    case FrameType::kTelemetryChunk:
      PutU64(frame.telemetry_seq, out);
      PutU64(frame.telemetry_dropped, out);
      out->insert(out->end(), frame.text.begin(), frame.text.end());
      return;
    case FrameType::kResultSubscribeAck:
      PutU64(frame.subscription_id, out);
      return;
    case FrameType::kResultChunk: {
      PutU64(frame.result_seq, out);
      PutU64(frame.result_dropped, out);
      PutI64(frame.result_watermark, out);
      PutU32(frame.result_shard, out);
      PutU32(frame.result_stream, out);
      PutU32(static_cast<uint32_t>(frame.events.size()), out);
      for (const Event& e : frame.events) PutEvent(e, out);
      return;
    }
    case FrameType::kFlushSession:
    case FrameType::kFlushAck:
    case FrameType::kShutdown:
    case FrameType::kShutdownAck:
    case FrameType::kMetricsRequest:
    case FrameType::kTraceRequest:
    case FrameType::kSubscribeRequest:
    case FrameType::kResultSubscribeRequest:
      return;  // Empty payloads.
    case FrameType::kMaintenance:
      break;  // Internal only — falls through to the CHECK below.
  }
  IMPATIENCE_CHECK_MSG(false, "unencodable frame type");
}

// Decodes a payload already verified against its CRC. Returns kOk or
// kBadPayload.
DecodeStatus ParsePayload(FrameType type, uint8_t aux, const uint8_t* p,
                          size_t n, Frame* frame) {
  switch (type) {
    case FrameType::kEvents: {
      if (n < 4 || aux != 0) return DecodeStatus::kBadPayload;
      const uint32_t count = GetU32(p);
      if (n != 4 + static_cast<size_t>(count) * kWireEventBytes) {
        return DecodeStatus::kBadPayload;
      }
      frame->events.resize(count);
      const uint8_t* q = p + 4;
      for (uint32_t i = 0; i < count; ++i) {
        GetEvent(q, &frame->events[i]);
        q += kWireEventBytes;
      }
      return DecodeStatus::kOk;
    }
    case FrameType::kPunctuation:
      if (n != 8 || aux != 0) return DecodeStatus::kBadPayload;
      frame->punctuation = GetI64(p);
      return DecodeStatus::kOk;
    case FrameType::kMetricsRequest:
      if (n != 0 || aux > 2) return DecodeStatus::kBadPayload;
      frame->metrics_format = static_cast<MetricsFormat>(aux);
      return DecodeStatus::kOk;
    case FrameType::kMetricsResponse:
      if (aux > 2) return DecodeStatus::kBadPayload;
      frame->metrics_format = static_cast<MetricsFormat>(aux);
      frame->text.assign(reinterpret_cast<const char*>(p), n);
      return DecodeStatus::kOk;
    case FrameType::kTraceRequest:
      if (n != 0 || aux > 2) return DecodeStatus::kBadPayload;
      frame->trace_action = static_cast<TraceAction>(aux);
      return DecodeStatus::kOk;
    case FrameType::kTraceResponse:
      if (aux > 2) return DecodeStatus::kBadPayload;
      frame->trace_action = static_cast<TraceAction>(aux);
      frame->text.assign(reinterpret_cast<const char*>(p), n);
      return DecodeStatus::kOk;
    case FrameType::kReject:
      if (n != 8 || aux < 1 || aux > 3) return DecodeStatus::kBadPayload;
      frame->reject_reason = static_cast<RejectReason>(aux);
      frame->reject_count = GetU64(p);
      return DecodeStatus::kOk;
    case FrameType::kSubscribeRequest:
      // aux is a bitmask of the subscribable streams (spans | metrics);
      // an empty mask subscribes to nothing and is rejected.
      if (n != 0 || aux < 1 ||
          aux > (kTelemetrySpans | kTelemetryMetrics)) {
        return DecodeStatus::kBadPayload;
      }
      frame->telemetry_streams = aux;
      return DecodeStatus::kOk;
    case FrameType::kSubscribeAck:
      if (n != 8 || aux < 1 ||
          aux > (kTelemetrySpans | kTelemetryMetrics)) {
        return DecodeStatus::kBadPayload;
      }
      frame->telemetry_streams = aux;
      frame->subscription_id = GetU64(p);
      return DecodeStatus::kOk;
    case FrameType::kTelemetryChunk:
      // aux names exactly one stream: spans, metrics, or dump.
      if (n < 16 || (aux != kTelemetrySpans && aux != kTelemetryMetrics &&
                     aux != kTelemetryDump)) {
        return DecodeStatus::kBadPayload;
      }
      frame->telemetry_streams = aux;
      frame->telemetry_seq = GetU64(p);
      frame->telemetry_dropped = GetU64(p + 8);
      frame->text.assign(reinterpret_cast<const char*>(p) + 16, n - 16);
      return DecodeStatus::kOk;
    case FrameType::kResultSubscribeRequest:
      if (n != 0 ||
          (aux != kResultFilterSession && aux != kResultFilterAll)) {
        return DecodeStatus::kBadPayload;
      }
      frame->result_filter = aux;
      return DecodeStatus::kOk;
    case FrameType::kResultSubscribeAck:
      if (n != 8 ||
          (aux != kResultFilterSession && aux != kResultFilterAll)) {
        return DecodeStatus::kBadPayload;
      }
      frame->result_filter = aux;
      frame->subscription_id = GetU64(p);
      return DecodeStatus::kOk;
    case FrameType::kResultChunk: {
      if (n < kResultChunkHeaderBytes || aux != 0) {
        return DecodeStatus::kBadPayload;
      }
      frame->result_seq = GetU64(p);
      frame->result_dropped = GetU64(p + 8);
      frame->result_watermark = GetI64(p + 16);
      frame->result_shard = GetU32(p + 24);
      frame->result_stream = GetU32(p + 28);
      const uint32_t count = GetU32(p + 32);
      if (n != kResultChunkHeaderBytes +
                   static_cast<size_t>(count) * kWireEventBytes) {
        return DecodeStatus::kBadPayload;
      }
      frame->events.resize(count);
      const uint8_t* q = p + kResultChunkHeaderBytes;
      for (uint32_t i = 0; i < count; ++i) {
        GetEvent(q, &frame->events[i]);
        q += kWireEventBytes;
      }
      return DecodeStatus::kOk;
    }
    case FrameType::kFlushSession:
    case FrameType::kFlushAck:
    case FrameType::kShutdown:
    case FrameType::kShutdownAck:
      return n == 0 && aux == 0 ? DecodeStatus::kOk
                                : DecodeStatus::kBadPayload;
    case FrameType::kMaintenance:
      return DecodeStatus::kBadPayload;  // Internal only, never on the wire.
  }
  return DecodeStatus::kBadPayload;  // Unknown type byte.
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  // One table, one polynomial: the shared common/crc32 implementation also
  // frames the on-disk run files (storage tier).
  return impatience::Crc32(data, n);
}

void AppendFrame(const Frame& frame, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  AppendPayload(frame, &payload);
  IMPATIENCE_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                       "frame payload exceeds kMaxPayloadBytes");
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  PutU32(kWireMagic, out);
  PutU8(static_cast<uint8_t>(frame.type), out);
  PutU8(AuxOf(frame), out);
  PutU16(0, out);  // reserved
  PutU64(frame.session_id, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(Crc32(payload.data(), payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (failed_) return;
  // Drop the consumed prefix before growing, so long-lived connections do
  // not accumulate history.
  if (pos_ > 0 && (pos_ == buffer_.size() || pos_ >= (size_t{1} << 16))) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

DecodeStatus FrameDecoder::Next(Frame* frame) {
  if (failed_) return error_;
  const size_t avail = buffer_.size() - pos_;
  if (avail < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  const uint8_t* h = buffer_.data() + pos_;

  auto fail = [this](DecodeStatus status) {
    failed_ = true;
    error_ = status;
    return status;
  };

  if (GetU32(h) != kWireMagic) return fail(DecodeStatus::kBadMagic);
  const uint8_t type = h[4];
  const uint8_t aux = h[5];
  if (GetU16(h + 6) != 0) return fail(DecodeStatus::kBadLength);
  const uint64_t session_id = GetU64(h + 8);
  const uint32_t payload_len = GetU32(h + 16);
  const uint32_t expect_crc = GetU32(h + 20);
  if (payload_len > kMaxPayloadBytes) return fail(DecodeStatus::kBadLength);
  if (avail < kFrameHeaderBytes + payload_len) return DecodeStatus::kNeedMore;

  const uint8_t* payload = h + kFrameHeaderBytes;
  if (Crc32(payload, payload_len) != expect_crc) {
    return fail(DecodeStatus::kBadCrc);
  }

  *frame = Frame{};
  frame->type = static_cast<FrameType>(type);
  frame->session_id = session_id;
  const DecodeStatus status =
      ParsePayload(frame->type, aux, payload, payload_len, frame);
  if (status != DecodeStatus::kOk) return fail(status);
  pos_ += kFrameHeaderBytes + payload_len;
  return DecodeStatus::kOk;
}

}  // namespace server
}  // namespace impatience
