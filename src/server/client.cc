#include "server/client.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace impatience {
namespace server {

LoopbackChannel::LoopbackChannel(IngestService* service) {
  conn_ = service->OpenConnection([this](std::string bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    inbox_.append(bytes);
    cv_.notify_all();
  });
}

LoopbackChannel::~LoopbackChannel() {
  // Members are destroyed in reverse declaration order, which would tear
  // down mu_/cv_/inbox_ while the connection can still deliver a reply or
  // telemetry chunk into them. Destroy the connection first: ~Connection
  // blocks until any in-flight exporter delivery to this sink completes.
  conn_.reset();
}

bool LoopbackChannel::Write(const uint8_t* data, size_t n) {
  return conn_->OnData(data, n);
}

int64_t LoopbackChannel::Read(uint8_t* out, size_t n, bool blocking) {
  std::unique_lock<std::mutex> lock(mu_);
  if (blocking) {
    cv_.wait(lock, [this] { return !inbox_.empty(); });
  } else if (inbox_.empty()) {
    return 0;
  }
  const size_t take = std::min(n, inbox_.size());
  std::memcpy(out, inbox_.data(), take);
  inbox_.erase(0, take);
  return static_cast<int64_t>(take);
}

bool TransportChannel::Write(const uint8_t* data, size_t n) {
  while (n > 0) {
    const IoResult r = transport_->Write(data, n);
    if (r.ok()) {
      // A short write is not failure: continue from the accepted prefix.
      data += r.n;
      n -= static_cast<size_t>(r.n);
      continue;
    }
    if (r.interrupted()) continue;
    if (r.again()) {
      if (!transport_->WaitWritable(/*timeout_ms=*/-1)) return false;
      continue;
    }
    return false;  // EOF-on-write or a hard error: the peer is gone.
  }
  return true;
}

int64_t TransportChannel::Read(uint8_t* out, size_t n, bool blocking) {
  for (;;) {
    const IoResult r = transport_->Read(out, n);
    if (r.ok()) return r.n;
    if (r.eof()) return -1;
    if (r.interrupted()) continue;
    if (r.again()) {
      if (!blocking) return 0;
      if (!transport_->WaitReadable(/*timeout_ms=*/-1)) return -1;
      continue;
    }
    return -1;
  }
}

IngestClient::IngestClient(std::unique_ptr<ByteChannel> channel)
    : channel_(std::move(channel)) {}

bool IngestClient::SendFrame(const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  if (!channel_->Write(bytes.data(), bytes.size())) return false;
  ++frames_sent_;
  bytes_sent_ += bytes.size();
  return true;
}

bool IngestClient::SendEvents(uint64_t session_id,
                              const std::vector<Event>& events) {
  Frame frame;
  frame.type = FrameType::kEvents;
  frame.session_id = session_id;
  frame.events = events;
  return SendFrame(frame);
}

bool IngestClient::SendPunctuation(uint64_t session_id, Timestamp t) {
  Frame frame;
  frame.type = FrameType::kPunctuation;
  frame.session_id = session_id;
  frame.punctuation = t;
  return SendFrame(frame);
}

bool IngestClient::FlushSession(uint64_t session_id) {
  Frame frame;
  frame.type = FrameType::kFlushSession;
  frame.session_id = session_id;
  if (!SendFrame(frame)) return false;
  Frame ack;
  return WaitFor(FrameType::kFlushAck, &ack);
}

bool IngestClient::Shutdown() {
  Frame frame;
  frame.type = FrameType::kShutdown;
  if (!SendFrame(frame)) return false;
  Frame ack;
  return WaitFor(FrameType::kShutdownAck, &ack);
}

bool IngestClient::GetMetrics(MetricsFormat format, std::string* out) {
  Frame frame;
  frame.type = FrameType::kMetricsRequest;
  frame.metrics_format = format;
  if (!SendFrame(frame)) return false;
  Frame response;
  if (!WaitFor(FrameType::kMetricsResponse, &response)) return false;
  *out = std::move(response.text);
  return true;
}

bool IngestClient::GetTrace(std::string* out) {
  Frame request;
  request.type = FrameType::kTraceRequest;
  request.trace_action = TraceAction::kDump;
  if (!SendFrame(request)) return false;
  // The dump streams as kTelemetryChunk(kTelemetryDump) frames followed
  // by a kTraceResponse footer. Reassemble the same document shape
  // trace::DrainChromeJson produces; live span/metrics chunks that
  // interleave are left pending for PollTelemetry.
  std::string events;
  Frame footer;
  bool have_footer = false;
  while (!have_footer) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->type == FrameType::kTelemetryChunk &&
          it->telemetry_streams == kTelemetryDump) {
        if (!events.empty()) events += ",";
        events += it->text;
        it = pending_.erase(it);
      } else if (it->type == FrameType::kTraceResponse) {
        footer = std::move(*it);
        pending_.erase(it);
        have_footer = true;
        break;
      } else {
        ++it;
      }
    }
    if (!have_footer && !Pump(/*blocking=*/true)) return false;
  }
  unsigned long long dropped = 0;
  unsigned long long chunks = 0;
  unsigned long long chunks_dropped = 0;
  std::sscanf(footer.text.c_str(),
              "{\"dropped\":%llu,\"chunks\":%llu,\"chunks_dropped\":%llu}",
              &dropped, &chunks, &chunks_dropped);
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"dropped\":%llu,\"chunks\":%llu,\"chunks_dropped\":%llu}}",
                dropped, chunks, chunks_dropped);
  out->clear();
  out->reserve(events.size() + 64 + sizeof(tail));
  *out += "{\"traceEvents\":[";
  *out += events;
  *out += tail;
  return true;
}

bool IngestClient::SetTraceEnabled(bool enabled) {
  Frame frame;
  frame.type = FrameType::kTraceRequest;
  frame.trace_action = enabled ? TraceAction::kEnable : TraceAction::kDisable;
  if (!SendFrame(frame)) return false;
  Frame response;
  return WaitFor(FrameType::kTraceResponse, &response);
}

bool IngestClient::Subscribe(uint64_t session_id, uint8_t streams,
                             uint64_t* subscription_id) {
  Frame frame;
  frame.type = FrameType::kSubscribeRequest;
  frame.session_id = session_id;
  frame.telemetry_streams = streams;
  if (!SendFrame(frame)) return false;
  Frame ack;
  if (!WaitFor(FrameType::kSubscribeAck, &ack)) return false;
  if (subscription_id != nullptr) *subscription_id = ack.subscription_id;
  return true;
}

bool IngestClient::SubscribeResults(uint64_t session_id, uint8_t filter,
                                    uint64_t* subscription_id) {
  Frame frame;
  frame.type = FrameType::kResultSubscribeRequest;
  frame.session_id = session_id;
  frame.result_filter = filter;
  if (!SendFrame(frame)) return false;
  Frame ack;
  if (!WaitFor(FrameType::kResultSubscribeAck, &ack)) return false;
  if (subscription_id != nullptr) *subscription_id = ack.subscription_id;
  return true;
}

bool IngestClient::PollResults(Frame* out) {
  Pump(/*blocking=*/false);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->type == FrameType::kResultChunk) {
      *out = std::move(*it);
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

bool IngestClient::NextResults(Frame* out) {
  return WaitFor(FrameType::kResultChunk, out);
}

bool IngestClient::PollTelemetry(Frame* out) {
  Pump(/*blocking=*/false);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->type == FrameType::kTelemetryChunk) {
      *out = std::move(*it);
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

bool IngestClient::NextTelemetry(Frame* out) {
  return WaitFor(FrameType::kTelemetryChunk, out);
}

bool IngestClient::PollReject(Frame* out) {
  Pump(/*blocking=*/false);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->type == FrameType::kReject) {
      *out = std::move(*it);
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

bool IngestClient::Pump(bool blocking) {
  // Drain everything the channel has ready: a telemetry chunk can span
  // many reads, and a single fixed-size read would leave the decoder
  // mid-frame with data still buffered in the channel.
  uint8_t buf[4096];
  int64_t n = channel_->Read(buf, sizeof(buf), blocking);
  if (n < 0) return false;
  while (n > 0) {
    decoder_.Feed(buf, static_cast<size_t>(n));
    n = channel_->Read(buf, sizeof(buf), /*blocking=*/false);
    if (n < 0) return false;
  }
  Frame frame;
  for (;;) {
    const DecodeStatus status = decoder_.Next(&frame);
    if (status == DecodeStatus::kNeedMore) return true;
    if (IsDecodeError(status)) return false;
    pending_.push_back(std::move(frame));
    frame = Frame{};
  }
}

bool IngestClient::WaitFor(FrameType type, Frame* out) {
  for (;;) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->type == type) {
        *out = std::move(*it);
        pending_.erase(it);
        return true;
      }
    }
    if (!Pump(/*blocking=*/true)) return false;
  }
}

}  // namespace server
}  // namespace impatience
