#include "server/client.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace impatience {
namespace server {

LoopbackChannel::LoopbackChannel(IngestService* service) {
  conn_ = service->OpenConnection([this](std::string bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    inbox_.append(bytes);
    cv_.notify_all();
  });
}

LoopbackChannel::~LoopbackChannel() = default;

bool LoopbackChannel::Write(const uint8_t* data, size_t n) {
  return conn_->OnData(data, n);
}

int64_t LoopbackChannel::Read(uint8_t* out, size_t n, bool blocking) {
  std::unique_lock<std::mutex> lock(mu_);
  if (blocking) {
    cv_.wait(lock, [this] { return !inbox_.empty(); });
  } else if (inbox_.empty()) {
    return 0;
  }
  const size_t take = std::min(n, inbox_.size());
  std::memcpy(out, inbox_.data(), take);
  inbox_.erase(0, take);
  return static_cast<int64_t>(take);
}

bool TransportChannel::Write(const uint8_t* data, size_t n) {
  while (n > 0) {
    const IoResult r = transport_->Write(data, n);
    if (r.ok()) {
      // A short write is not failure: continue from the accepted prefix.
      data += r.n;
      n -= static_cast<size_t>(r.n);
      continue;
    }
    if (r.interrupted()) continue;
    if (r.again()) {
      if (!transport_->WaitWritable(/*timeout_ms=*/-1)) return false;
      continue;
    }
    return false;  // EOF-on-write or a hard error: the peer is gone.
  }
  return true;
}

int64_t TransportChannel::Read(uint8_t* out, size_t n, bool blocking) {
  for (;;) {
    const IoResult r = transport_->Read(out, n);
    if (r.ok()) return r.n;
    if (r.eof()) return -1;
    if (r.interrupted()) continue;
    if (r.again()) {
      if (!blocking) return 0;
      if (!transport_->WaitReadable(/*timeout_ms=*/-1)) return -1;
      continue;
    }
    return -1;
  }
}

IngestClient::IngestClient(std::unique_ptr<ByteChannel> channel)
    : channel_(std::move(channel)) {}

bool IngestClient::SendFrame(const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  if (!channel_->Write(bytes.data(), bytes.size())) return false;
  ++frames_sent_;
  bytes_sent_ += bytes.size();
  return true;
}

bool IngestClient::SendEvents(uint64_t session_id,
                              const std::vector<Event>& events) {
  Frame frame;
  frame.type = FrameType::kEvents;
  frame.session_id = session_id;
  frame.events = events;
  return SendFrame(frame);
}

bool IngestClient::SendPunctuation(uint64_t session_id, Timestamp t) {
  Frame frame;
  frame.type = FrameType::kPunctuation;
  frame.session_id = session_id;
  frame.punctuation = t;
  return SendFrame(frame);
}

bool IngestClient::FlushSession(uint64_t session_id) {
  Frame frame;
  frame.type = FrameType::kFlushSession;
  frame.session_id = session_id;
  if (!SendFrame(frame)) return false;
  Frame ack;
  return WaitFor(FrameType::kFlushAck, &ack);
}

bool IngestClient::Shutdown() {
  Frame frame;
  frame.type = FrameType::kShutdown;
  if (!SendFrame(frame)) return false;
  Frame ack;
  return WaitFor(FrameType::kShutdownAck, &ack);
}

bool IngestClient::GetMetrics(MetricsFormat format, std::string* out) {
  Frame frame;
  frame.type = FrameType::kMetricsRequest;
  frame.metrics_format = format;
  if (!SendFrame(frame)) return false;
  Frame response;
  if (!WaitFor(FrameType::kMetricsResponse, &response)) return false;
  *out = std::move(response.text);
  return true;
}

bool IngestClient::GetTrace(std::string* out) {
  Frame frame;
  frame.type = FrameType::kTraceRequest;
  frame.trace_action = TraceAction::kDump;
  if (!SendFrame(frame)) return false;
  Frame response;
  if (!WaitFor(FrameType::kTraceResponse, &response)) return false;
  *out = std::move(response.text);
  return true;
}

bool IngestClient::SetTraceEnabled(bool enabled) {
  Frame frame;
  frame.type = FrameType::kTraceRequest;
  frame.trace_action = enabled ? TraceAction::kEnable : TraceAction::kDisable;
  if (!SendFrame(frame)) return false;
  Frame response;
  return WaitFor(FrameType::kTraceResponse, &response);
}

bool IngestClient::PollReject(Frame* out) {
  Pump(/*blocking=*/false);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->type == FrameType::kReject) {
      *out = std::move(*it);
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

bool IngestClient::Pump(bool blocking) {
  uint8_t buf[4096];
  const int64_t n = channel_->Read(buf, sizeof(buf), blocking);
  if (n < 0) return false;
  if (n > 0) decoder_.Feed(buf, static_cast<size_t>(n));
  Frame frame;
  for (;;) {
    const DecodeStatus status = decoder_.Next(&frame);
    if (status == DecodeStatus::kNeedMore) return true;
    if (IsDecodeError(status)) return false;
    pending_.push_back(std::move(frame));
    frame = Frame{};
  }
}

bool IngestClient::WaitFor(FrameType type, Frame* out) {
  for (;;) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->type == type) {
        *out = std::move(*it);
        pending_.erase(it);
        return true;
      }
    }
    if (!Pump(/*blocking=*/true)) return false;
  }
}

}  // namespace server
}  // namespace impatience
