// Streaming query results: fans the per-shard pipeline output out to
// subscribed connections as kResultChunk frames.
//
// The shard workers call OnResult for every record the pipeline emits
// (the same emission point as ServiceOptions::on_result). Records
// accumulate in a per-shard slot and are sealed into one chunk when the
// emitting stream changes, when the chunk would exceed `max_chunk_bytes`,
// or at a burst boundary (OnShardProgress — the shard's ingress queue
// went empty or a drain finished), which also stamps the shard's band-0
// punctuation frontier into the slot as the chunk watermark. Sealed
// chunks are offered to every matching subscriber through its try-sink;
// a subscription filters either on one shard (kResultFilterSession — the
// shard the subscribing session routes to) or takes every shard's output
// (kResultFilterAll).
//
// Backpressure contract — identical to the telemetry exporter's: a sink
// returning false means the connection's bounded write budget is full.
// The chunk is dropped for that subscriber only; its cumulative dropped
// RECORD count rises (made explicit in the next delivered chunk) while
// its delivered sequence numbers stay gap-free. `shed_after_drops`
// consecutive refusals unsubscribe the subscriber entirely (counted in
// subscribers_shed; the connection stays up and can resubscribe). The
// exporter never blocks on a subscriber and never buffers beyond one
// unsealed chunk per shard, so a stalled subscriber cannot stall ingest
// or other sessions.
//
// Delivery starts at the first chunk sealed after Subscribe; chunks
// sealed while no subscriber matches are discarded, not queued.
//
// Locking: Subscribe/Unsubscribe and the fan-out share mu_ (so a
// connection destructor's Unsubscribe waits out any in-flight delivery
// to its sink). Each shard slot has its own mutex, held only while
// appending or extracting pending records — never across the fan-out —
// so the slot and exporter mutexes never nest.

#ifndef IMPATIENCE_SERVER_RESULT_EXPORTER_H_
#define IMPATIENCE_SERVER_RESULT_EXPORTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/timestamp.h"
#include "server/metrics.h"
#include "server/wire_format.h"

namespace impatience {
namespace server {

struct ResultStreamOptions {
  // Upper bound on one kResultChunk frame payload; kept well under
  // kMaxPayloadBytes so a chunk always frames. Clamped to [1 KiB, 4 MiB].
  size_t max_chunk_bytes = 256u * 1024;
  // Consecutive undeliverable chunks before a subscriber is shed.
  size_t shed_after_drops = 40;
};

class ResultExporter {
 public:
  // Delivers one encoded frame toward the subscriber. Returns false to
  // refuse (bounded queue full): the chunk is dropped, never retried.
  // Must not block; called from shard worker threads.
  using TrySink = std::function<bool(std::string bytes)>;

  // Matches any shard in a subscription's filter.
  static constexpr size_t kAllShards = static_cast<size_t>(-1);

  ResultExporter(ResultStreamOptions options, size_t num_shards);

  ResultExporter(const ResultExporter&) = delete;
  ResultExporter& operator=(const ResultExporter&) = delete;

  // Pipeline emission hook: one record out of `shard`'s pipeline for
  // logical stream `stream`. Called on the shard's worker thread (one
  // call at a time per shard; concurrent across shards).
  void OnResult(size_t shard, size_t stream, const Event& e);

  // Burst-boundary hook: `watermark` is the shard's band-0 punctuation
  // frontier. Advances the slot watermark (monotone) and seals any
  // pending records so subscribers see complete bursts promptly.
  void OnShardProgress(size_t shard, Timestamp watermark);

  // Registers a subscriber; returns its subscription id. `filter` is the
  // wire filter (kResultFilterSession / kResultFilterAll) echoed in
  // acks; `shard_filter` is the shard it resolves to, or kAllShards.
  // Chunks sent to this subscriber carry `session_id`.
  uint64_t Subscribe(uint64_t session_id, uint8_t filter,
                     size_t shard_filter, TrySink sink);

  // Removes a subscription and waits out any in-flight delivery to its
  // sink. Unknown ids are ignored (the subscriber may have been shed).
  void Unsubscribe(uint64_t id);

  ResultStreamMetrics Counters() const;

  const ResultStreamOptions& options() const { return options_; }

 private:
  struct ShardSlot {
    std::mutex mu;
    std::vector<Event> pending;
    uint32_t stream = 0;  // Stream of the pending records.
    Timestamp watermark = kMinTimestamp;
  };

  struct Subscription {
    uint64_t id = 0;
    uint64_t session_id = 0;
    uint8_t filter = 0;
    size_t shard_filter = kAllShards;
    TrySink sink;
    uint64_t seq = 0;      // Last delivered sequence number.
    uint64_t dropped = 0;  // Cumulative records dropped for this sink.
    size_t consecutive_drops = 0;
  };

  // Extracts the slot's pending records (caller must NOT hold slot->mu)
  // and fans them out under mu_.
  void Seal(size_t shard, ShardSlot* slot);
  void FanOut(size_t shard, uint32_t stream, Timestamp watermark,
              const std::vector<Event>& records);

  const ResultStreamOptions options_;
  const size_t records_per_chunk_;
  std::vector<std::unique_ptr<ShardSlot>> slots_;

  // Cheap early-out for the hot OnResult path while nobody subscribes.
  std::atomic<bool> active_{false};

  mutable std::mutex mu_;
  std::vector<Subscription> subs_;
  uint64_t next_id_ = 1;
  ResultStreamMetrics counters_;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_RESULT_EXPORTER_H_
