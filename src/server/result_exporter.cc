#include "server/result_exporter.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace impatience {
namespace server {

namespace {

size_t ClampChunkBytes(size_t v) {
  return std::min<size_t>(std::max<size_t>(v, 1024), 4u << 20);
}

}  // namespace

ResultExporter::ResultExporter(ResultStreamOptions options, size_t num_shards)
    : options_([&options] {
        options.max_chunk_bytes = ClampChunkBytes(options.max_chunk_bytes);
        return options;
      }()),
      records_per_chunk_(std::max<size_t>(
          1, (options_.max_chunk_bytes - kResultChunkHeaderBytes) /
                 kWireEventBytes)) {
  slots_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    slots_.push_back(std::make_unique<ShardSlot>());
  }
}

void ResultExporter::OnResult(size_t shard, size_t stream, const Event& e) {
  // Relaxed is fine: a subscriber racing in simply starts at the next
  // sealed chunk, per the delivery-start contract.
  if (!active_.load(std::memory_order_relaxed)) return;
  IMPATIENCE_CHECK(shard < slots_.size());
  ShardSlot* slot = slots_[shard].get();
  // A call can seal twice: the pending records of a previous stream, then
  // (when a chunk holds a single record) the new record itself.
  std::vector<Event> sealed_prev;
  std::vector<Event> sealed_full;
  uint32_t prev_stream = 0;
  Timestamp watermark = kMinTimestamp;
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    watermark = slot->watermark;
    if (!slot->pending.empty() &&
        slot->stream != static_cast<uint32_t>(stream)) {
      prev_stream = slot->stream;
      sealed_prev.swap(slot->pending);
    }
    slot->stream = static_cast<uint32_t>(stream);
    slot->pending.push_back(e);
    if (slot->pending.size() >= records_per_chunk_) {
      sealed_full.swap(slot->pending);
    }
  }
  if (!sealed_prev.empty()) {
    FanOut(shard, prev_stream, watermark, sealed_prev);
  }
  if (!sealed_full.empty()) {
    FanOut(shard, static_cast<uint32_t>(stream), watermark, sealed_full);
  }
}

void ResultExporter::OnShardProgress(size_t shard, Timestamp watermark) {
  IMPATIENCE_CHECK(shard < slots_.size());
  ShardSlot* slot = slots_[shard].get();
  // Advance the watermark even with no subscribers: the first chunk after
  // a future Subscribe should carry the current frontier, not a stale one.
  std::vector<Event> sealed;
  uint32_t stream = 0;
  Timestamp frontier = kMinTimestamp;
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (watermark > slot->watermark) slot->watermark = watermark;
    frontier = slot->watermark;
    if (!slot->pending.empty()) {
      stream = slot->stream;
      sealed.swap(slot->pending);
    }
  }
  if (!sealed.empty()) FanOut(shard, stream, frontier, sealed);
}

uint64_t ResultExporter::Subscribe(uint64_t session_id, uint8_t filter,
                                   size_t shard_filter, TrySink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  Subscription sub;
  sub.id = next_id_++;
  sub.session_id = session_id;
  sub.filter = filter;
  sub.shard_filter = shard_filter;
  sub.sink = std::move(sink);
  subs_.push_back(std::move(sub));
  active_.store(true, std::memory_order_relaxed);
  return subs_.back().id;
}

void ResultExporter::Unsubscribe(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = subs_.begin(); it != subs_.end(); ++it) {
    if (it->id == id) {
      subs_.erase(it);
      break;
    }
  }
  active_.store(!subs_.empty(), std::memory_order_relaxed);
}

void ResultExporter::FanOut(size_t shard, uint32_t stream,
                            Timestamp watermark,
                            const std::vector<Event>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.chunks_built;
  for (size_t i = 0; i < subs_.size();) {
    Subscription& sub = subs_[i];
    if (sub.shard_filter != kAllShards && sub.shard_filter != shard) {
      ++i;
      continue;
    }
    Frame chunk;
    chunk.type = FrameType::kResultChunk;
    chunk.session_id = sub.session_id;
    chunk.result_seq = sub.seq + 1;
    chunk.result_dropped = sub.dropped;
    chunk.result_watermark = watermark;
    chunk.result_shard = static_cast<uint32_t>(shard);
    chunk.result_stream = stream;
    chunk.events = records;
    const std::vector<uint8_t> bytes = EncodeFrame(chunk);
    if (sub.sink(std::string(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size()))) {
      ++sub.seq;
      sub.consecutive_drops = 0;
      ++counters_.chunks_sent;
      counters_.records_streamed += records.size();
      ++i;
      continue;
    }
    sub.dropped += records.size();
    ++counters_.chunks_dropped;
    counters_.records_dropped += records.size();
    if (++sub.consecutive_drops >= options_.shed_after_drops) {
      // Persistently stalled: stop offering it chunks at all. The
      // connection itself stays up — it can resubscribe once it drains.
      ++counters_.subscribers_shed;
      subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
  active_.store(!subs_.empty(), std::memory_order_relaxed);
}

ResultStreamMetrics ResultExporter::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultStreamMetrics c = counters_;
  c.subscribers = subs_.size();
  return c;
}

}  // namespace server
}  // namespace impatience
