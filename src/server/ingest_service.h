// Transport-independent ingestion service: the glue between a byte
// transport (loopback or TCP) and the SessionShardManager.
//
// Each client connection owns a FrameDecoder and a thread-safe send
// function supplied by the transport. Bytes arrive via OnData(), decoded
// frames are dispatched — data frames to the shard manager under the
// configured backpressure policy, control frames (metrics, flush,
// shutdown) handled here — and replies (acks, rejects, metrics) are
// encoded and pushed back through the send function. A decode error
// poisons the connection: the client receives one kReject(kDecodeError)
// and the transport is told to close.
//
// FlushSession acks are asymmetric: the request is applied on the shard
// worker thread (after everything the session sent earlier), so the ack
// is sent from that thread via a session→connection routing table.

#ifndef IMPATIENCE_SERVER_INGEST_SERVICE_H_
#define IMPATIENCE_SERVER_INGEST_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "server/metrics.h"
#include "server/result_exporter.h"
#include "server/session_shard_manager.h"
#include "server/telemetry_exporter.h"
#include "server/wire_format.h"

namespace impatience {
namespace server {

struct ServiceOptions {
  ShardManagerOptions shards;
  // Optional tap on every row the shard pipelines emit (tests, benches).
  // Called on shard worker threads.
  ResultFn on_result;
  // Streaming telemetry (kSubscribeRequest / kTelemetryChunk). Tests set
  // telemetry.start_thread = false and drive the exporter's Tick()
  // directly for deterministic schedules.
  TelemetryOptions telemetry;
  // Streaming query results (kResultSubscribeRequest / kResultChunk).
  ResultStreamOptions results;
};

class IngestService;

// One client connection. Created by the transport via
// IngestService::OpenConnection; destroyed when the transport closes.
// OnData must be called from one thread at a time (the connection's
// reader); the send function may be invoked from the reader thread and
// from shard worker threads concurrently, so it must be thread-safe.
class Connection {
 public:
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Feeds received bytes. Returns false when the connection is poisoned
  // (decode error) or the service has shut down — the transport should
  // stop reading and close.
  bool OnData(const uint8_t* data, size_t size);

  bool poisoned() const { return poisoned_; }

 private:
  friend class IngestService;
  using SendFn = std::function<void(std::string bytes)>;
  // Best-effort bounded send for telemetry chunks: false refuses the
  // bytes (budget full) instead of queueing them. Optional — transports
  // without one (loopback) fall back to the unbounded send.
  using TrySendFn = std::function<bool(std::string bytes)>;

  Connection(IngestService* service, SendFn send, TrySendFn try_send);

  void Dispatch(Frame& frame);
  void Send(const Frame& frame);
  // Routes the frame through try_send_ when available; true if it was
  // accepted (counted as sent), false if the telemetry budget refused it.
  bool TrySend(const Frame& frame);

  IngestService* const service_;
  const SendFn send_;
  const TrySendFn try_send_;
  FrameDecoder decoder_;
  bool poisoned_ = false;
  uint64_t subscription_id_ = 0;  // Live telemetry subscription, or 0.
  uint64_t result_subscription_id_ = 0;  // Live result subscription, or 0.
};

class IngestService {
 public:
  explicit IngestService(ServiceOptions options);
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  // Registers a new client connection; `send` delivers encoded reply
  // frames to that client and must be thread-safe. `try_send`, when
  // provided, is a bounded best-effort variant for telemetry chunks
  // (returns false to refuse rather than buffer; event_loop.h supplies
  // one backed by its per-connection telemetry write budget).
  std::unique_ptr<Connection> OpenConnection(
      std::function<void(std::string)> send,
      std::function<bool(std::string)> try_send = nullptr);

  // Drain-and-flush shutdown of all shards; idempotent. Called by the
  // kShutdown control frame and by the destructor.
  void Shutdown();
  bool shutting_down() const { return manager_.shutting_down(); }

  // Whole-service snapshot (transport totals + all shards).
  ServerMetrics Snapshot();

  // Hooks the socket front end's gauges/counters into Snapshot(). The
  // front end registers on Start and unregisters (nullptr) on Stop so a
  // snapshot never touches dead loops. Thread-safe.
  void SetTransportMetricsFn(std::function<TransportMetrics()> fn);

  SessionShardManager& manager() { return manager_; }

  // The streaming telemetry exporter (always present; its drain thread
  // only runs when options.telemetry.start_thread is set).
  TelemetryExporter& telemetry() { return *exporter_; }

  // The result-stream exporter (always present; passive — it only does
  // work while at least one connection holds a result subscription).
  ResultExporter& results() { return *result_exporter_; }

 private:
  friend class Connection;

  void SendOn(const Connection::SendFn& send, const Frame& frame);
  void OnSessionFlushed(uint64_t session_id);

  ServiceOptions options_;
  // Declared before manager_ (and built in the member-init list): the
  // manager's constructor replays spill recovery and starts workers, both
  // of which can emit results into the exporter before the constructor
  // body runs. Destroyed after manager_, whose Shutdown joins the worker
  // threads that call into it.
  std::unique_ptr<ResultExporter> result_exporter_;
  SessionShardManager manager_;

  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> decode_errors_{0};

  std::mutex transport_metrics_mu_;
  std::function<TransportMetrics()> transport_metrics_fn_;

  // session id → connection awaiting a FlushAck. Guarded by flush_mu_;
  // the ack is sent under the lock so a closing connection (which erases
  // its entries under the same lock) cannot be destroyed mid-send.
  std::mutex flush_mu_;
  std::unordered_map<uint64_t, Connection*> pending_flush_;

  // Declared last: destroyed first, which joins the drain thread before
  // the shard manager (whose SnapshotShards the exporter calls) goes
  // away.
  std::unique_ptr<TelemetryExporter> exporter_;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_INGEST_SERVICE_H_
