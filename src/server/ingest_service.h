// Transport-independent ingestion service: the glue between a byte
// transport (loopback or TCP) and the SessionShardManager.
//
// Each client connection owns a FrameDecoder and a thread-safe send
// function supplied by the transport. Bytes arrive via OnData(), decoded
// frames are dispatched — data frames to the shard manager under the
// configured backpressure policy, control frames (metrics, flush,
// shutdown) handled here — and replies (acks, rejects, metrics) are
// encoded and pushed back through the send function. A decode error
// poisons the connection: the client receives one kReject(kDecodeError)
// and the transport is told to close.
//
// FlushSession acks are asymmetric: the request is applied on the shard
// worker thread (after everything the session sent earlier), so the ack
// is sent from that thread via a session→connection routing table.

#ifndef IMPATIENCE_SERVER_INGEST_SERVICE_H_
#define IMPATIENCE_SERVER_INGEST_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "server/metrics.h"
#include "server/session_shard_manager.h"
#include "server/wire_format.h"

namespace impatience {
namespace server {

struct ServiceOptions {
  ShardManagerOptions shards;
  // Optional tap on every row the shard pipelines emit (tests, benches).
  // Called on shard worker threads.
  ResultFn on_result;
};

class IngestService;

// One client connection. Created by the transport via
// IngestService::OpenConnection; destroyed when the transport closes.
// OnData must be called from one thread at a time (the connection's
// reader); the send function may be invoked from the reader thread and
// from shard worker threads concurrently, so it must be thread-safe.
class Connection {
 public:
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Feeds received bytes. Returns false when the connection is poisoned
  // (decode error) or the service has shut down — the transport should
  // stop reading and close.
  bool OnData(const uint8_t* data, size_t size);

  bool poisoned() const { return poisoned_; }

 private:
  friend class IngestService;
  using SendFn = std::function<void(std::string bytes)>;

  Connection(IngestService* service, SendFn send);

  void Dispatch(Frame& frame);
  void Send(const Frame& frame);

  IngestService* const service_;
  const SendFn send_;
  FrameDecoder decoder_;
  bool poisoned_ = false;
};

class IngestService {
 public:
  explicit IngestService(ServiceOptions options);
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  // Registers a new client connection; `send` delivers encoded reply
  // frames to that client and must be thread-safe.
  std::unique_ptr<Connection> OpenConnection(
      std::function<void(std::string)> send);

  // Drain-and-flush shutdown of all shards; idempotent. Called by the
  // kShutdown control frame and by the destructor.
  void Shutdown();
  bool shutting_down() const { return manager_.shutting_down(); }

  // Whole-service snapshot (transport totals + all shards).
  ServerMetrics Snapshot();

  // Hooks the socket front end's gauges/counters into Snapshot(). The
  // front end registers on Start and unregisters (nullptr) on Stop so a
  // snapshot never touches dead loops. Thread-safe.
  void SetTransportMetricsFn(std::function<TransportMetrics()> fn);

  SessionShardManager& manager() { return manager_; }

 private:
  friend class Connection;

  void SendOn(const Connection::SendFn& send, const Frame& frame);
  void OnSessionFlushed(uint64_t session_id);

  ServiceOptions options_;
  SessionShardManager manager_;

  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> decode_errors_{0};

  std::mutex transport_metrics_mu_;
  std::function<TransportMetrics()> transport_metrics_fn_;

  // session id → connection awaiting a FlushAck. Guarded by flush_mu_;
  // the ack is sent under the lock so a closing connection (which erases
  // its entries under the same lock) cannot be destroyed mid-send.
  std::mutex flush_mu_;
  std::unordered_map<uint64_t, Connection*> pending_flush_;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_INGEST_SERVICE_H_
