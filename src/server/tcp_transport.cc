#include "server/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace impatience {
namespace server {

namespace {

// Full write with EINTR handling; false once the peer is gone.
bool WriteAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

struct TcpServer::Conn {
  int fd = -1;
  std::mutex write_mu;
  std::unique_ptr<Connection> connection;
  std::thread reader;
};

TcpServer::TcpServer(IngestService* service, uint16_t port)
    : service_(service), port_(port) {}

TcpServer::~TcpServer() { Stop(); }

bool TcpServer::Start(std::string* error) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 64) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd);
    return false;
  }
  if (port_ == 0) {
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(listen_fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void TcpServer::AcceptLoop() {
  for (;;) {
    // Stop() swaps the fd to -1 before closing it; accept(-1) then fails
    // immediately instead of racing on a recycled descriptor.
    const int fd =
        ::accept(listen_fd_.load(std::memory_order_acquire), nullptr,
                 nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener closed by Stop().
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    Conn* c = conn.get();
    c->fd = fd;
    c->connection = service_->OpenConnection([c](std::string bytes) {
      std::lock_guard<std::mutex> lock(c->write_mu);
      WriteAll(c->fd, reinterpret_cast<const uint8_t*>(bytes.data()),
               bytes.size());
    });
    c->reader = std::thread([this, c] { ReaderLoop(c); });

    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void TcpServer::ReaderLoop(Conn* conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (Stop() shuts the socket down).
    if (!conn->connection->OnData(buf, static_cast<size_t>(n))) break;
  }
  // Let any in-flight server-side send finish before the fd dies with the
  // connection object at Stop()/destruction time; here we only stop
  // reading. The fd stays open (flush acks may still be in flight) until
  // the Conn is destroyed.
}

void TcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);  // Unblocks the reader's recv().
    if (conn->reader.joinable()) conn->reader.join();
    conn->connection.reset();  // Deregisters pending flush acks.
    ::close(conn->fd);
  }
}

std::unique_ptr<TcpChannel> TcpChannel::Connect(uint16_t port,
                                                std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpChannel::Write(const uint8_t* data, size_t n) {
  return WriteAll(fd_, data, n);
}

int64_t TcpChannel::Read(uint8_t* out, size_t n, bool blocking) {
  for (;;) {
    const ssize_t r = ::recv(fd_, out, n, blocking ? 0 : MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
      return -1;
    }
    if (r == 0) return -1;  // EOF.
    return static_cast<int64_t>(r);
  }
}

}  // namespace server
}  // namespace impatience
