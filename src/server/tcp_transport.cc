#include "server/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "server/epoll_transport.h"

namespace impatience {
namespace server {

namespace {

// Full write with EINTR retry, short-write continuation, and an EAGAIN
// poll for non-blocking sockets; false once the peer is gone. A frame
// must reach the wire whole — giving up after a partial send() would
// leave the stream mid-frame and poison the server's decoder on the
// next frame's bytes.
bool WriteAllFd(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{};
        p.fd = fd;
        p.events = POLLOUT;
        const int r = ::poll(&p, 1, /*timeout=*/-1);
        if (r < 0 && errno != EINTR) return false;
        continue;
      }
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

size_t ResolveIoThreads(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("IMPATIENCE_IO_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  return 2;
}

TcpServer::TcpServer(IngestService* service, uint16_t port,
                     TcpServerOptions options)
    : service_(service), port_(port), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

bool TcpServer::Start(std::string* error) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 1024) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd);
    return false;
  }
  if (port_ == 0) {
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }

  const size_t io_threads = ResolveIoThreads(options_.io_threads);
  EventLoopOptions loop_options;
  loop_options.max_write_queue_bytes = options_.max_write_queue_bytes;
  loop_options.telemetry_write_queue_bytes =
      options_.telemetry_write_queue_bytes;
  for (size_t i = 0; i < io_threads; ++i) {
    auto poller = std::make_unique<EpollPoller>();
    if (!poller->valid()) {
      if (error != nullptr) *error = "epoll_create1 failed";
      loops_.clear();
      ::close(listen_fd);
      return false;
    }
    loops_.push_back(std::make_unique<EventLoop>(
        service_, std::move(poller), loop_options, i));
  }
  for (auto& loop : loops_) loop->Start();

  service_->SetTransportMetricsFn([this] { return SnapshotTransport(); });
  listen_fd_.store(listen_fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void TcpServer::AcceptLoop() {
  for (;;) {
    // Stop() swaps the fd to -1 before closing it; accept(-1) then fails
    // immediately instead of racing on a recycled descriptor.
    const int fd =
        ::accept(listen_fd_.load(std::memory_order_acquire), nullptr,
                 nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
          errno == ENOBUFS || errno == ENOMEM) {
        // Transient: the listener is still good, count and keep going.
        accept_errors_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return;  // Listener closed by Stop().
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!SetNonBlocking(fd)) {
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    loops_[next_loop_]->AddConnection(std::make_unique<FdTransport>(fd));
    next_loop_ = (next_loop_ + 1) % loops_.size();
  }
}

void TcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Unhook the metrics provider first: the service may be snapshotted
  // after the loops below are gone.
  service_->SetTransportMetricsFn(nullptr);
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& loop : loops_) loop->Stop();
}

TransportMetrics TcpServer::SnapshotTransport() const {
  TransportMetrics m;
  m.accepted = accepted_.load(std::memory_order_relaxed);
  m.accept_errors = accept_errors_.load(std::memory_order_relaxed);
  m.loops.reserve(loops_.size());
  for (const auto& loop : loops_) m.loops.push_back(loop->SnapshotMetrics());
  return m;
}

std::unique_ptr<TcpChannel> TcpChannel::Connect(uint16_t port,
                                                std::string* error,
                                                bool nonblocking) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (nonblocking && !SetNonBlocking(fd)) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpChannel::Write(const uint8_t* data, size_t n) {
  return WriteAllFd(fd_, data, n);
}

int64_t TcpChannel::Read(uint8_t* out, size_t n, bool blocking) {
  for (;;) {
    const ssize_t r = ::recv(fd_, out, n, blocking ? 0 : MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!blocking) return 0;
        // Non-blocking socket, blocking caller: wait for readability.
        pollfd p{};
        p.fd = fd_;
        p.events = POLLIN;
        const int pr = ::poll(&p, 1, /*timeout=*/-1);
        if (pr < 0 && errno != EINTR) return -1;
        continue;
      }
      return -1;
    }
    if (r == 0) return -1;  // EOF.
    return static_cast<int64_t>(r);
  }
}

}  // namespace server
}  // namespace impatience
