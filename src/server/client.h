// Client side of the ingestion protocol.
//
// IngestClient speaks frames over a ByteChannel — an abstract duplex byte
// pipe. Two channels ship: LoopbackChannel pairs the client directly with
// an in-process IngestService (no sockets, deterministic, used by the
// tests and the bench), and TcpChannel (tcp_transport.h) carries the same
// bytes over a socket. The client itself cannot tell them apart, which is
// the point: the loopback tests exercise the exact encode/decode path the
// TCP deployment uses.

#ifndef IMPATIENCE_SERVER_CLIENT_H_
#define IMPATIENCE_SERVER_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/event.h"
#include "server/ingest_service.h"
#include "server/transport.h"
#include "server/wire_format.h"

namespace impatience {
namespace server {

// A duplex byte pipe between a client and the service. Write delivers
// bytes toward the server; Read yields reply bytes. Implementations must
// tolerate Read being called from the client thread while replies arrive
// from server-side threads.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  // Sends all `n` bytes; false means the connection is dead (the server
  // poisoned it or the transport failed).
  virtual bool Write(const uint8_t* data, size_t n) = 0;

  // Reads up to `n` reply bytes into `out`. Blocking mode waits for data;
  // non-blocking returns 0 immediately when none is buffered. Returns -1
  // on EOF/error.
  virtual int64_t Read(uint8_t* out, size_t n, bool blocking) = 0;
};

// In-process channel: Write feeds the service's connection directly on
// the caller's thread; replies (which the service may emit from shard
// worker threads) queue into an inbox that Read drains.
class LoopbackChannel : public ByteChannel {
 public:
  explicit LoopbackChannel(IngestService* service);
  ~LoopbackChannel() override;

  bool Write(const uint8_t* data, size_t n) override;
  int64_t Read(uint8_t* out, size_t n, bool blocking) override;

 private:
  std::unique_ptr<Connection> conn_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::string inbox_;
};

// ByteChannel over any non-blocking Transport (transport.h). Write
// delivers every byte no matter how the transport slices it: short
// writes continue from the accepted prefix, EINTR retries, EAGAIN waits
// for writability — the failure mode this guards against is a partial
// send mid-frame, which would corrupt the framing for the rest of the
// stream. The fault-injection tests drive IngestClient through this
// adapter over the scripted transport.
class TransportChannel : public ByteChannel {
 public:
  explicit TransportChannel(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)) {}

  bool Write(const uint8_t* data, size_t n) override;
  int64_t Read(uint8_t* out, size_t n, bool blocking) override;

  Transport* transport() { return transport_.get(); }

 private:
  std::unique_ptr<Transport> transport_;
};

// Frame-level client over any ByteChannel. Not thread-safe; one client
// per thread (multiple clients may share a service).
class IngestClient {
 public:
  explicit IngestClient(std::unique_ptr<ByteChannel> channel);

  // Data path. Returns false when the channel is dead.
  bool SendEvents(uint64_t session_id, const std::vector<Event>& events);
  bool SendPunctuation(uint64_t session_id, Timestamp t);

  // Sends kFlushSession and blocks until the matching kFlushAck: on
  // return, everything this session sent earlier has been applied to its
  // shard pipeline.
  bool FlushSession(uint64_t session_id);

  // Sends kShutdown and blocks for kShutdownAck: on return every shard
  // has drained and flushed.
  bool Shutdown();

  // Fetches the metrics rendering in `format`.
  bool GetMetrics(MetricsFormat format, std::string* out);

  // Drains the server's span buffers into a Chrome trace-event JSON
  // document (loadable in chrome://tracing or Perfetto). The dump arrives
  // as a stream of bounded kTelemetryChunk frames terminated by a footer,
  // so it is never silently truncated at the frame-size limit; this call
  // reassembles the full document.
  bool GetTrace(std::string* out);

  // Toggles span recording on the server at runtime.
  bool SetTraceEnabled(bool enabled);

  // Opens a live telemetry subscription. `streams` is a bitmask of
  // kTelemetrySpans | kTelemetryMetrics; chunks then arrive interleaved
  // with other replies and surface through PollTelemetry/NextTelemetry.
  // Subscribing again replaces the previous subscription.
  bool Subscribe(uint64_t session_id, uint8_t streams,
                 uint64_t* subscription_id = nullptr);

  // Pops the next buffered kTelemetryChunk, if any; checks the channel
  // (non-blocking) first. Inspect telemetry_streams / telemetry_seq /
  // telemetry_dropped / text on the popped frame.
  bool PollTelemetry(Frame* out);

  // Blocks until the next kTelemetryChunk arrives; false on channel
  // death or decode error.
  bool NextTelemetry(Frame* out);

  // Opens a live result-stream subscription. `filter` is
  // kResultFilterSession (only the shard serving `session_id`) or
  // kResultFilterAll (every shard); kResultChunk frames then arrive
  // interleaved with other replies and surface through
  // PollResults/NextResults. Subscribing again replaces the previous
  // subscription.
  bool SubscribeResults(uint64_t session_id, uint8_t filter,
                        uint64_t* subscription_id = nullptr);

  // Pops the next buffered kResultChunk, if any; checks the channel
  // (non-blocking) first. Inspect result_seq / result_dropped /
  // result_watermark / result_shard / result_stream / events on the
  // popped frame.
  bool PollResults(Frame* out);

  // Blocks until the next kResultChunk arrives; false on channel death
  // or decode error.
  bool NextResults(Frame* out);

  // Pops the next asynchronously received kReject frame, if any; checks
  // the channel (non-blocking) first. Rejects that arrive while waiting
  // for an ack are stashed and surface here.
  bool PollReject(Frame* out);

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  bool SendFrame(const Frame& frame);
  // Reads until a frame of `type` arrives (stashing rejects); false on
  // channel death or decode error.
  bool WaitFor(FrameType type, Frame* out);
  // Decodes buffered/readable bytes into pending_; false on error.
  bool Pump(bool blocking);

  std::unique_ptr<ByteChannel> channel_;
  FrameDecoder decoder_;
  std::deque<Frame> pending_;
  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_CLIENT_H_
