// The ingestion wire protocol: length-prefixed, CRC32-checked frames.
//
// Every message between a client and the server is one frame:
//
//   offset  size  field
//   0       4     magic        0x31465049 ("IPF1", little-endian)
//   4       1     type         FrameType
//   5       1     aux          type-specific small field (reason/format)
//   6       2     reserved     must be 0
//   8       8     session_id   client session the frame belongs to
//   16      4     payload_len  bytes following the header
//   20      4     payload_crc  CRC32 (IEEE) of the payload bytes
//   24      ...   payload
//
// All multi-byte fields are little-endian, encoded and decoded byte by
// byte — a frame produced on any host round-trips on any other. The CRC
// covers the payload only; header corruption is caught by the magic check
// and the length bound. Payloads:
//
//   kEvents          u32 count, then per event: i64 sync_time,
//                    i64 other_time, i32 key, u64 hash, 4 x i32 payload
//                    (the engine's W=4 Event — 44 bytes/event)
//   kPunctuation     i64 timestamp
//   kFlushSession    (empty)   client: "session done, ack when ingested"
//   kFlushAck        (empty)   server: all prior frames of the session
//                              are in its shard pipeline
//   kShutdown        (empty)   client: drain every shard and flush
//   kShutdownAck     (empty)   server: drain complete
//   kMetricsRequest  (empty; aux = MetricsFormat)
//   kMetricsResponse rendered metrics bytes (aux = MetricsFormat)
//   kReject          u64 count of events affected (aux = RejectReason)
//   kTraceRequest    (empty; aux = TraceAction) — kDump drains the
//                    server's span buffers; kEnable/kDisable toggle
//                    recording at runtime
//   kTraceResponse   For kDump: a JSON footer terminating the chunked
//                    dump ({"dropped":N,"chunks":M,"chunks_dropped":K});
//                    the span payload itself arrives beforehand as
//                    kTelemetryChunk(kTelemetryDump) frames. Empty for
//                    the toggles (aux echoes the TraceAction).
//   kSubscribeRequest (empty; aux = TelemetryStream bitmask, 1..3) —
//                    subscribe this connection to the live telemetry
//                    feed; a second request replaces the subscription
//   kSubscribeAck    u64 subscription id (aux echoes the granted mask)
//   kTelemetryChunk  u64 sequence number, u64 cumulative dropped-chunk
//                    count, then the chunk body (aux = the single
//                    TelemetryStream the body belongs to). Sequence
//                    numbers count delivered chunks per subscription
//                    (1, 2, 3, ...): a subscriber sees a gap-free
//                    sequence, and `dropped` rising makes shed chunks
//                    explicit. For dump chunks both counters are scoped
//                    to the one dump request.
//   kResultSubscribeRequest (empty; aux = ResultFilter) — subscribe this
//                    connection to the pipeline's query-result stream.
//                    kResultFilterSession limits delivery to the shard
//                    serving the frame's session_id; kResultFilterAll
//                    delivers every shard's output. A second request
//                    replaces the subscription.
//   kResultSubscribeAck u64 subscription id (aux echoes the filter).
//   kResultChunk     u64 delivered-sequence number, u64 cumulative
//                    dropped-record count, i64 watermark (the emitting
//                    shard's band-0 punctuation frontier at seal time),
//                    u32 shard, u32 stream, u32 record count, then
//                    `count` packed 44-byte events (the same layout as
//                    kEvents records, already in pipeline emission
//                    order). Sequence numbers count delivered chunks per
//                    subscription; `dropped` rising makes shed records
//                    explicit while delivered seqs stay gap-free.
//                    Watermarks are non-decreasing per (subscription,
//                    shard).
//
// Decoding is incremental: feed arbitrary byte chunks, get frames out.
// A corrupted stream (bad magic, bad CRC, oversized length, malformed
// payload) poisons the decoder — framing is unrecoverable on a byte
// stream, so the transport must drop the connection.

#ifndef IMPATIENCE_SERVER_WIRE_FORMAT_H_
#define IMPATIENCE_SERVER_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/timestamp.h"

namespace impatience {
namespace server {

inline constexpr uint32_t kWireMagic = 0x31465049u;  // "IPF1"
inline constexpr size_t kFrameHeaderBytes = 24;
inline constexpr size_t kWireEventBytes = 44;
// Upper bound on a frame payload; larger lengths are treated as corruption
// (they would otherwise make the decoder buffer unbounded garbage).
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

enum class FrameType : uint8_t {
  kEvents = 1,
  kPunctuation = 2,
  kFlushSession = 3,
  kFlushAck = 4,
  kShutdown = 5,
  kShutdownAck = 6,
  kMetricsRequest = 7,
  kMetricsResponse = 8,
  kReject = 9,
  kTraceRequest = 10,
  kTraceResponse = 11,
  // Internal only — never encoded on the wire. The spill governor's
  // wakeup enqueues one on a shard's ingress queue to run spill
  // maintenance on the shard thread; the decoder rejects it as unknown.
  kMaintenance = 12,
  kSubscribeRequest = 13,
  kSubscribeAck = 14,
  kTelemetryChunk = 15,
  kResultSubscribeRequest = 16,
  kResultSubscribeAck = 17,
  kResultChunk = 18,
};

enum class RejectReason : uint8_t {
  kQueueFull = 1,     // Bounded shard queue full under kRejectFrame policy.
  kDecodeError = 2,   // The server could not decode the connection's bytes.
  kShuttingDown = 3,  // Data frame received after shutdown began.
};

enum class MetricsFormat : uint8_t {
  kText = 0,  // Bare "name{labels} value" lines (no HELP/TYPE headers).
  kJson = 1,
  kPrometheus = 2,  // Full exposition format: # HELP / # TYPE + quantiles.
};

enum class TraceAction : uint8_t {
  kDump = 0,     // Drain span buffers; response carries Chrome trace JSON.
  kEnable = 1,   // Start recording spans.
  kDisable = 2,  // Stop recording (buffered spans kept until dumped).
};

// Telemetry stream selector. kSubscribeRequest carries a bitmask of the
// first two; each kTelemetryChunk carries exactly one value naming the
// stream its body belongs to. Span chunk bodies are comma-separated
// Chrome trace-event objects (no enclosing brackets — join with "," and
// wrap in {"traceEvents":[...]}); metrics chunk bodies are one JSON
// delta object; dump chunks are span bodies scoped to one kDump request.
inline constexpr uint8_t kTelemetrySpans = 1;
inline constexpr uint8_t kTelemetryMetrics = 2;
inline constexpr uint8_t kTelemetryDump = 4;

// Result-stream subscription filter (kResultSubscribeRequest aux).
// kResultFilterSession scopes delivery to the shard the request's
// session_id routes to; kResultFilterAll is the wildcard.
inline constexpr uint8_t kResultFilterSession = 1;
inline constexpr uint8_t kResultFilterAll = 2;

// Fixed prefix of a kResultChunk payload before the packed records:
// seq (8) + dropped (8) + watermark (8) + shard (4) + stream (4) +
// count (4).
inline constexpr size_t kResultChunkHeaderBytes = 36;

// One decoded frame. Only the fields relevant to `type` are meaningful.
struct Frame {
  FrameType type = FrameType::kEvents;
  uint64_t session_id = 0;
  std::vector<Event> events;          // kEvents
  Timestamp punctuation = 0;          // kPunctuation
  MetricsFormat metrics_format = MetricsFormat::kText;  // kMetrics*
  std::string text;  // kMetricsResponse / kTraceResponse / kTelemetryChunk
  RejectReason reject_reason = RejectReason::kQueueFull;  // kReject
  uint64_t reject_count = 0;          // kReject
  TraceAction trace_action = TraceAction::kDump;  // kTrace*
  uint8_t telemetry_streams = 0;      // kSubscribeRequest/Ack (bitmask)
                                      // and kTelemetryChunk (one stream).
  uint64_t subscription_id = 0;       // kSubscribeAck
  uint64_t telemetry_seq = 0;         // kTelemetryChunk (1-based)
  uint64_t telemetry_dropped = 0;     // kTelemetryChunk (cumulative)
                                      // — the chunk body rides in `text`.
  uint8_t result_filter = 0;          // kResultSubscribeRequest/Ack.
  uint64_t result_seq = 0;            // kResultChunk (1-based, gap-free).
  uint64_t result_dropped = 0;        // kResultChunk (cumulative records
                                      // dropped for this subscriber).
  Timestamp result_watermark = 0;     // kResultChunk (shard frontier).
  uint32_t result_shard = 0;          // kResultChunk.
  uint32_t result_stream = 0;         // kResultChunk — the packed records
                                      // ride in `events`.

  // Server-side only, never serialized: Clock::Nanos() when the frame was
  // accepted into a shard queue, for queue-wait accounting.
  uint64_t enqueue_ns = 0;
};

// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `n` bytes.
uint32_t Crc32(const uint8_t* data, size_t n);

// Serializes `frame` and appends the bytes to `out`.
void AppendFrame(const Frame& frame, std::vector<uint8_t>* out);

inline std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  AppendFrame(frame, &out);
  return out;
}

enum class DecodeStatus : uint8_t {
  kOk = 0,        // A frame was produced.
  kNeedMore = 1,  // Not enough bytes buffered for the next frame.
  kBadMagic = 2,
  kBadLength = 3,  // payload_len > kMaxPayloadBytes or reserved != 0.
  kBadCrc = 4,
  kBadPayload = 5,  // Type-specific payload malformed (size mismatch,
                    // unknown type, trailing bytes).
};

inline bool IsDecodeError(DecodeStatus s) {
  return s != DecodeStatus::kOk && s != DecodeStatus::kNeedMore;
}

// Incremental frame decoder over a byte stream.
class FrameDecoder {
 public:
  // Appends raw bytes from the transport.
  void Feed(const uint8_t* data, size_t n);

  // Attempts to decode the next frame from the buffered bytes. On kOk the
  // frame's bytes are consumed. Any error status poisons the decoder:
  // every later call returns the same error.
  DecodeStatus Next(Frame* frame);

  // True if undecoded bytes remain — at connection close this means the
  // peer sent a truncated frame.
  bool HasPartialFrame() const { return !failed_ && pos_ < buffer_.size(); }

  size_t buffered_bytes() const { return buffer_.size() - pos_; }
  bool failed() const { return failed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;  // Consumed prefix of buffer_.
  bool failed_ = false;
  DecodeStatus error_ = DecodeStatus::kNeedMore;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_WIRE_FORMAT_H_
