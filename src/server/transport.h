// The transport seam the event loop is built on: a non-blocking duplex
// byte pipe (Transport) plus a readiness multiplexer (Poller).
//
// The production implementation wraps POSIX sockets and epoll
// (epoll_transport.h); the test implementation is a scripted in-memory
// pair (tests/testing/faulty_transport.h) that splits reads and writes at
// arbitrary byte boundaries, injects EAGAIN/EINTR/ECONNRESET at chosen
// points, reorders readiness, and drops connections mid-frame — all
// seeded and reproducible. The event loop cannot tell them apart, which
// is the point: every loop state transition (partial read, partial
// write, EAGAIN, mid-frame disconnect, shutdown) is drivable from a
// deterministic test without a socket in sight.

#ifndef IMPATIENCE_SERVER_TRANSPORT_H_
#define IMPATIENCE_SERVER_TRANSPORT_H_

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace impatience {
namespace server {

// Result of one non-blocking I/O attempt. Mirrors POSIX semantics so the
// fd-backed implementation is a thin shim: n > 0 is a byte count, n == 0
// on a read is EOF, and n < 0 is a negated errno (-EAGAIN, -EINTR,
// -ECONNRESET, ...). A short count on a write is not an error — the
// caller keeps the rest queued and waits for writability.
struct IoResult {
  int64_t n = 0;

  bool ok() const { return n > 0; }
  bool eof() const { return n == 0; }
  bool again() const { return n == -EAGAIN || n == -EWOULDBLOCK; }
  bool interrupted() const { return n == -EINTR; }
};

// One established connection's byte I/O, non-blocking on both sides.
// Read/Write/Shutdown are called by the event-loop thread that owns the
// connection; Shutdown may additionally be called by Stop() paths and
// must be idempotent.
class Transport {
 public:
  virtual ~Transport() = default;

  // Reads up to `n` bytes. 0 = orderly EOF; -EAGAIN = nothing buffered.
  virtual IoResult Read(uint8_t* out, size_t n) = 0;

  // Writes up to `n` bytes; may accept fewer (short write).
  virtual IoResult Write(const uint8_t* data, size_t n) = 0;

  // Severs both directions; later Read/Write fail. Idempotent.
  virtual void Shutdown() = 0;

  // Blocks until a Read would make progress (data, EOF, or error), up to
  // `timeout_ms` (< 0 = forever). False on timeout. Only client-side
  // channels use this; the event loop waits through its Poller instead.
  virtual bool WaitReadable(int timeout_ms) = 0;

  // Blocks until a Write would make progress. The default returns true
  // immediately (retry now) — right for scripted transports whose EAGAIN
  // is consumed by the retry; fd transports poll for writability.
  virtual bool WaitWritable(int timeout_ms) {
    (void)timeout_ms;
    return true;
  }

  // The pollable descriptor, or -1 for in-memory transports. Pollers
  // that multiplex on fds (epoll) require a real descriptor; the
  // scripted poller ignores it.
  virtual int fd() const { return -1; }
};

// One readiness notification from a Poller::Wait call.
struct ReadyEvent {
  uint64_t id = 0;       // The id the transport was registered under.
  bool readable = false;
  bool writable = false;
  bool error = false;    // Peer hung up or the transport failed.
};

// Readiness multiplexer over registered transports. Add/Update/Remove
// and Wakeup are thread-safe (write interest is armed from shard worker
// threads while the loop thread sits in Wait); Wait is called by the
// owning event-loop thread only.
class Poller {
 public:
  virtual ~Poller() = default;

  // Registers `t` under `id`. Read interest is always on; `want_write`
  // arms write interest. False if the transport cannot be registered.
  virtual bool Add(uint64_t id, Transport* t, bool want_write) = 0;

  // Re-arms or disarms write interest for a registered transport.
  virtual void SetWantWrite(uint64_t id, Transport* t, bool want_write) = 0;

  // Re-arms or disarms read interest (armed by Add). The event loop
  // disarms it while a closing connection drains its write queue: the
  // poller is level-triggered, so a peer that stays readable (half-
  // closed, or still sending into a poisoned stream) would otherwise
  // re-report readiness forever while the queue flushes.
  virtual void SetWantRead(uint64_t id, Transport* t, bool want_read) = 0;

  virtual void Remove(uint64_t id, Transport* t) = 0;

  // Blocks up to `timeout_ms` (< 0 = forever) for readiness; appends the
  // ready transports to `out`. Returns immediately (possibly empty) after
  // a Wakeup. Level-triggered: a transport that stays readable keeps
  // reporting readable.
  virtual size_t Wait(std::vector<ReadyEvent>* out, int timeout_ms) = 0;

  // Interrupts a concurrent (or the next) Wait.
  virtual void Wakeup() = 0;
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_TRANSPORT_H_
