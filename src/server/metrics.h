// The server's metrics surface: a point-in-time snapshot of service and
// per-shard state, renderable as Prometheus-style text or JSON. Clients
// fetch either rendering over the wire protocol itself (kMetricsRequest
// with the format in the aux byte) — no separate HTTP endpoint to secure
// or keep alive.

#ifndef IMPATIENCE_SERVER_METRICS_H_
#define IMPATIENCE_SERVER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/timestamp.h"
#include "sort/impatience_sorter.h"

namespace impatience {
namespace server {

// Event-time progress of one client session on its shard: how far the
// session's data has advanced versus how far the shard pipeline has
// punctuated. `lag` is max_sync_time - last_punctuation clamped to >= 0 —
// the event-time span still buffered (unreleasable) for this session.
struct SessionWatermark {
  std::string label;  // Session id rendered for metric labels.
  uint64_t session_id = 0;
  Timestamp max_sync_time = 0;    // Largest event time the session sent.
  Timestamp last_punctuation = 0; // Shard output frontier (band 0).
  int64_t lag = 0;
};

// One shard's view. Queue/backpressure counters are maintained by the
// shard itself; sorter counters are aggregated across the shard
// pipeline's bands.
struct ShardMetrics {
  size_t shard = 0;
  size_t queue_depth = 0;        // Frames waiting in the ingress queue.
  size_t queue_capacity = 0;
  uint64_t frames_in = 0;        // Data frames accepted into the queue.
  uint64_t events_in = 0;        // Events inside those frames.
  uint64_t punctuations_in = 0;  // Client punctuation frames.
  uint64_t sessions = 0;         // Distinct sessions seen.
  uint64_t blocked_pushes = 0;   // kBlock: enqueues that had to wait.
  uint64_t rejected_frames = 0;  // kRejectFrame: frames turned away.
  uint64_t rejected_events = 0;
  uint64_t shed_frames = 0;      // kShedOldest: frames evicted.
  uint64_t shed_events = 0;
  uint64_t events_out = 0;       // Rows emitted on the final stream.
  uint64_t dropped_late = 0;     // Partition + sorter late drops.
  // Byte-accurate buffering footprint of the shard pipeline (sorter runs,
  // union buffers, ingress) from the shard's MemoryTracker. The peak is
  // the high-water mark since the last resetting snapshot.
  uint64_t memory_current_bytes = 0;
  uint64_t memory_peak_bytes = 0;
  // Crash recovery (spill-dir restart): spilled runs replayed into the
  // pipeline and the events they carried. Stamped once at startup.
  uint64_t runs_recovered = 0;
  uint64_t events_recovered = 0;
  ImpatienceCounters sorter;     // Aggregated across the shard's bands.
  // Wall-clock nanoseconds a frame waited in the ingress queue before the
  // drain loop popped it.
  HistogramSnapshot queue_wait;
  // Wall-clock nanoseconds the drain loop spent applying one frame to the
  // pipeline (time the queue could not drain — the stall the frame caused).
  HistogramSnapshot drain_stall;
  // Event-time lag per session, worst session first.
  std::vector<SessionWatermark> watermarks;
  int64_t max_watermark_lag = 0;  // Largest per-session lag (0 if none).
};

// One event loop's view of its connections (epoll front end). Gauges are
// point-in-time; counters are cumulative since the loop started.
struct IoLoopMetrics {
  size_t loop = 0;
  size_t connections = 0;       // Connections currently owned by the loop.
  size_t epollout_waiting = 0;  // Connections with write interest armed
                                // (queued bytes a slow peer has not taken).
  uint64_t accepted = 0;        // Connections ever assigned to the loop.
  uint64_t closed = 0;          // All closes, any cause.
  uint64_t closed_slow = 0;     // Shed: write queue exceeded its bound.
  uint64_t closed_error = 0;    // Read/write error or peer reset.
  uint64_t epollout_stalls = 0; // Writes that could not complete and had
                                // to arm EPOLLOUT.
};

// Streaming telemetry exporter counters (telemetry_exporter.h).
// `subscribers` is a point-in-time gauge; the rest are cumulative.
struct TelemetryMetrics {
  uint64_t subscribers = 0;       // Live subscriptions.
  uint64_t chunks_sent = 0;       // Chunks accepted toward a subscriber.
  uint64_t chunks_dropped = 0;    // Chunks dropped at a full write budget.
  uint64_t subscribers_shed = 0;  // Subscriptions removed for stalling.
  uint64_t spans_exported = 0;    // Span records put into live chunks.
  uint64_t span_ring_drops = 0;   // Ring overwrites seen while harvesting.
  uint64_t metrics_deltas = 0;    // Metrics-delta chunks built.
  uint64_t dump_chunks = 0;       // One-shot dump chunks delivered.
  uint64_t dump_truncated = 0;    // Dumps that could not queue every chunk.
};

// Result-stream exporter counters (result_exporter.h). `subscribers` is
// a point-in-time gauge; the rest are cumulative. Drops are counted in
// both chunks (delivery attempts refused) and records (rows inside those
// chunks), mirroring the per-subscriber wire accounting.
struct ResultStreamMetrics {
  uint64_t subscribers = 0;       // Live subscriptions.
  uint64_t chunks_built = 0;      // Chunks sealed from pipeline output.
  uint64_t chunks_sent = 0;       // Chunks accepted toward a subscriber.
  uint64_t chunks_dropped = 0;    // Chunks dropped at a full write budget.
  uint64_t records_streamed = 0;  // Records inside accepted chunks.
  uint64_t records_dropped = 0;   // Records inside dropped chunks.
  uint64_t subscribers_shed = 0;  // Subscriptions removed for stalling.
};

// Front-end totals: the acceptor plus every I/O loop. Empty when the
// service runs without a socket front end (loopback tests).
struct TransportMetrics {
  uint64_t accepted = 0;       // accept() successes.
  uint64_t accept_errors = 0;  // accept() failures (EMFILE, ...).
  std::vector<IoLoopMetrics> loops;
};

// Whole-service view: transport totals plus every shard.
struct ServerMetrics {
  uint64_t connections_opened = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_in = 0;   // All decoded frames, any type.
  uint64_t frames_out = 0;  // All frames sent (acks, rejects, metrics).
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t decode_errors = 0;  // Poisoned connections (bad CRC/magic/...).
  bool shutting_down = false;
  TransportMetrics transport;
  TelemetryMetrics telemetry;
  ResultStreamMetrics results;
  std::vector<ShardMetrics> shards;
};

// Prometheus-style exposition: "# HELP"-less "name{shard=\"i\"} value"
// lines, one block per counter family. Includes latency quantiles and
// watermark lag.
std::string RenderMetricsText(const ServerMetrics& m);

// Single JSON object with a "shards" array. Stable key order; no
// dependency on a JSON library. All string values (session labels,
// kernel level) are JSON-escaped.
std::string RenderMetricsJson(const ServerMetrics& m);

// Full Prometheus exposition format: # HELP / # TYPE headers, summary
// families with quantile labels for the latency histograms, per-session
// watermark-lag gauges. Label values are escaped per the Prometheus text
// format (backslash, double quote, newline).
std::string RenderMetricsPrometheus(const ServerMetrics& m);

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_METRICS_H_
