// Level-triggered event loop for the ingestion service: a small pool of
// I/O threads, each owning one Poller and a set of non-blocking
// connections, multiplexing thousands of sockets without a thread per
// connection.
//
// Per connection the loop keeps incremental decode state (the strict
// FrameDecoder inside the service's Connection already accepts partial
// input) and a bounded write queue. Replies — flush acks from shard
// worker threads, rejects and metrics responses from the loop thread
// itself — are appended to the queue; the loop flushes opportunistically
// and arms write interest (EPOLLOUT) only while bytes remain, so a slow
// client stalls nothing but its own queue. A queue that exceeds its
// bound sheds the connection (counted in IoLoopMetrics::closed_slow): a
// peer that will not read its acks cannot pin server memory.
//
// Close discipline: EOF and decode poison flush the queued replies first
// (the kReject must reach a half-closed peer); reset/error and shed
// close immediately. While a connection drains, its read interest is
// disarmed — the poller is level-triggered, so a half-closed peer or one
// still sending into a poisoned stream would otherwise busy-spin the
// loop for the whole drain window. The loop thread is the only one that
// reads, decodes, or destroys a connection; worker threads only touch
// its write queue.
//
// Built entirely on the Transport/Poller seam (transport.h), so the
// whole state machine runs under the scripted fault-injection transport
// in the tests as well as under epoll in production.

#ifndef IMPATIENCE_SERVER_EVENT_LOOP_H_
#define IMPATIENCE_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/ingest_service.h"
#include "server/metrics.h"
#include "server/transport.h"

namespace impatience {
namespace server {

struct EventLoopOptions {
  // Ceiling on bytes queued toward one connection; exceeding it sheds
  // the connection (slow-client policy).
  size_t max_write_queue_bytes = 4u << 20;
  // Ceiling for best-effort telemetry writes (TryQueueWrite): a chunk
  // that would push the queue past this bound is refused — dropped by
  // the telemetry exporter, not buffered — so telemetry can never shed
  // a connection nor crowd out the reply path (keep it well under
  // max_write_queue_bytes).
  size_t telemetry_write_queue_bytes = 1u << 20;
  // Read buffer size per Read call.
  size_t read_chunk_bytes = 64u * 1024;
  // Consecutive full reads served to one connection per readiness event
  // before the loop moves on (fairness under a firehose peer).
  size_t read_budget_chunks = 4;
};

// One I/O thread: a Poller plus the connections registered with it.
// Start() runs the loop on its own thread; tests instead drive PollOnce()
// from the test thread for fully deterministic interleavings.
class EventLoop {
 public:
  EventLoop(IngestService* service, std::unique_ptr<Poller> poller,
            EventLoopOptions options, size_t loop_index = 0);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Spawns the loop thread. Alternative: drive PollOnce() manually.
  void Start();

  // Stops the loop thread (if any) and severs + destroys every
  // connection. Idempotent.
  void Stop();

  // Hands a connection to this loop. Thread-safe, including against a
  // concurrent Stop(): the connection is either adopted (and then closed
  // by Stop) or refused and severed — never registered after the loop
  // thread has exited. Returns the connection id, or 0 if refused.
  uint64_t AddConnection(std::unique_ptr<Transport> transport);

  // Waits up to timeout_ms for readiness and processes one batch.
  // Returns the number of ready events handled. Must not race Start().
  size_t PollOnce(int timeout_ms);

  size_t connection_count() const {
    return connection_count_.load(std::memory_order_relaxed);
  }

  IoLoopMetrics SnapshotMetrics() const;

  Poller* poller() { return poller_.get(); }

 private:
  struct Conn {
    uint64_t id = 0;
    std::unique_ptr<Transport> transport;
    std::unique_ptr<Connection> connection;

    // Write queue; guarded by mu (appended to by shard worker threads,
    // drained by the loop thread).
    std::mutex mu;
    std::deque<std::string> writeq;
    size_t writeq_bytes = 0;
    size_t head_offset = 0;  // Consumed prefix of writeq.front().
    bool want_write = false; // Write interest currently armed.
    bool overflowed = false; // Queue bound exceeded: shed on next reap.

    // Loop-thread-only state.
    bool stop_reading = false;  // Poisoned or EOF: no more OnData.
    bool draining = false;      // Close once the write queue empties.
  };

  void Run();
  void HandleReady(const ReadyEvent& ev);
  void HandleReadable(Conn* c);
  // Marks c draining (stop reading, close once the queue empties) and
  // disarms its read interest so the level-triggered poller goes quiet.
  void StartDraining(Conn* c);
  // Flushes the write queue; true if the queue drained. May close the
  // connection (fatal write error) — callers must re-look-up c after.
  bool HandleWritable(Conn* c);
  void QueueWrite(Conn* c, std::string bytes);
  // Best-effort bounded enqueue for telemetry chunks: refuses (returns
  // false) instead of shedding when the queue is past the telemetry
  // budget. Called from the exporter's drain thread.
  bool TryQueueWrite(Conn* c, std::string bytes);
  enum class CloseCause { kEof, kError, kSlow, kStop };
  void CloseConn(Conn* c, CloseCause cause);

  IngestService* const service_;
  std::unique_ptr<Poller> poller_;
  const EventLoopOptions options_;
  const size_t loop_index_;

  std::thread thread_;
  std::atomic<bool> stopping_{false};

  // Connections flagged for shedding by QueueWrite (worker threads);
  // closed by the loop thread at the next PollOnce.
  std::mutex shed_mu_;
  std::vector<uint64_t> pending_shed_;

  // Connection registry. The loop thread erases; AddConnection (accept
  // thread) inserts; metrics threads only read the atomic count.
  std::mutex conns_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<size_t> connection_count_{0};

  std::vector<uint8_t> read_buf_;
  std::vector<ReadyEvent> ready_;

  std::atomic<size_t> epollout_waiting_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> closed_slow_{0};
  std::atomic<uint64_t> closed_error_{0};
  std::atomic<uint64_t> epollout_stalls_{0};
};

}  // namespace server
}  // namespace impatience

#endif  // IMPATIENCE_SERVER_EVENT_LOOP_H_
