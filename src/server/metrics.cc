#include "server/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/cpu_features.h"

namespace impatience {
namespace server {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

// Emits one per-shard gauge/counter family: a line per shard.
template <typename Get>
void TextFamily(std::string* out, const ServerMetrics& m, const char* name,
                Get get) {
  for (const ShardMetrics& s : m.shards) {
    Appendf(out, "%s{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            static_cast<uint64_t>(get(s)));
  }
}

}  // namespace

std::string RenderMetricsText(const ServerMetrics& m) {
  std::string out;
  Appendf(&out, "impatience_connections_opened %" PRIu64 "\n",
          m.connections_opened);
  Appendf(&out, "impatience_connections_closed %" PRIu64 "\n",
          m.connections_closed);
  Appendf(&out, "impatience_frames_in %" PRIu64 "\n", m.frames_in);
  Appendf(&out, "impatience_frames_out %" PRIu64 "\n", m.frames_out);
  Appendf(&out, "impatience_bytes_in %" PRIu64 "\n", m.bytes_in);
  Appendf(&out, "impatience_bytes_out %" PRIu64 "\n", m.bytes_out);
  Appendf(&out, "impatience_decode_errors %" PRIu64 "\n", m.decode_errors);
  Appendf(&out, "impatience_shutting_down %d\n", m.shutting_down ? 1 : 0);
  Appendf(&out, "impatience_shards %zu\n", m.shards.size());
  Appendf(&out, "impatience_kernel_level %d\n",
          static_cast<int>(ActiveKernelLevel()));

  TextFamily(&out, m, "impatience_shard_queue_depth",
             [](const ShardMetrics& s) { return s.queue_depth; });
  TextFamily(&out, m, "impatience_shard_queue_capacity",
             [](const ShardMetrics& s) { return s.queue_capacity; });
  TextFamily(&out, m, "impatience_shard_frames_in",
             [](const ShardMetrics& s) { return s.frames_in; });
  TextFamily(&out, m, "impatience_shard_events_in",
             [](const ShardMetrics& s) { return s.events_in; });
  TextFamily(&out, m, "impatience_shard_punctuations_in",
             [](const ShardMetrics& s) { return s.punctuations_in; });
  TextFamily(&out, m, "impatience_shard_sessions",
             [](const ShardMetrics& s) { return s.sessions; });
  TextFamily(&out, m, "impatience_shard_blocked_pushes",
             [](const ShardMetrics& s) { return s.blocked_pushes; });
  TextFamily(&out, m, "impatience_shard_rejected_frames",
             [](const ShardMetrics& s) { return s.rejected_frames; });
  TextFamily(&out, m, "impatience_shard_rejected_events",
             [](const ShardMetrics& s) { return s.rejected_events; });
  TextFamily(&out, m, "impatience_shard_shed_frames",
             [](const ShardMetrics& s) { return s.shed_frames; });
  TextFamily(&out, m, "impatience_shard_shed_events",
             [](const ShardMetrics& s) { return s.shed_events; });
  TextFamily(&out, m, "impatience_shard_events_out",
             [](const ShardMetrics& s) { return s.events_out; });
  TextFamily(&out, m, "impatience_shard_dropped_late",
             [](const ShardMetrics& s) { return s.dropped_late; });
  TextFamily(&out, m, "impatience_shard_sorter_pushes",
             [](const ShardMetrics& s) { return s.sorter.pushes; });
  TextFamily(&out, m, "impatience_shard_sorter_srs_hits",
             [](const ShardMetrics& s) { return s.sorter.srs_hits; });
  TextFamily(&out, m, "impatience_shard_sorter_new_runs",
             [](const ShardMetrics& s) { return s.sorter.new_runs; });
  TextFamily(&out, m, "impatience_shard_sorter_removed_runs",
             [](const ShardMetrics& s) { return s.sorter.removed_runs; });
  TextFamily(&out, m, "impatience_shard_sorter_parallel_merges",
             [](const ShardMetrics& s) { return s.sorter.parallel_merges; });
  TextFamily(&out, m, "impatience_shard_sorter_elements_moved",
             [](const ShardMetrics& s) { return s.sorter.merge.elements_moved; });
  TextFamily(&out, m, "impatience_shard_sorter_disjoint_concats",
             [](const ShardMetrics& s) {
               return s.sorter.merge.disjoint_concats;
             });
  return out;
}

std::string RenderMetricsJson(const ServerMetrics& m) {
  std::string out;
  out += "{";
  Appendf(&out, "\"connections_opened\":%" PRIu64 ",", m.connections_opened);
  Appendf(&out, "\"connections_closed\":%" PRIu64 ",", m.connections_closed);
  Appendf(&out, "\"frames_in\":%" PRIu64 ",", m.frames_in);
  Appendf(&out, "\"frames_out\":%" PRIu64 ",", m.frames_out);
  Appendf(&out, "\"bytes_in\":%" PRIu64 ",", m.bytes_in);
  Appendf(&out, "\"bytes_out\":%" PRIu64 ",", m.bytes_out);
  Appendf(&out, "\"decode_errors\":%" PRIu64 ",", m.decode_errors);
  Appendf(&out, "\"shutting_down\":%s,",
          m.shutting_down ? "true" : "false");
  Appendf(&out, "\"kernel_level\":\"%s\",",
          KernelLevelName(ActiveKernelLevel()));
  out += "\"shards\":[";
  for (size_t i = 0; i < m.shards.size(); ++i) {
    const ShardMetrics& s = m.shards[i];
    if (i > 0) out += ",";
    out += "{";
    Appendf(&out, "\"shard\":%zu,", s.shard);
    Appendf(&out, "\"queue_depth\":%zu,", s.queue_depth);
    Appendf(&out, "\"queue_capacity\":%zu,", s.queue_capacity);
    Appendf(&out, "\"frames_in\":%" PRIu64 ",", s.frames_in);
    Appendf(&out, "\"events_in\":%" PRIu64 ",", s.events_in);
    Appendf(&out, "\"punctuations_in\":%" PRIu64 ",", s.punctuations_in);
    Appendf(&out, "\"sessions\":%" PRIu64 ",", s.sessions);
    Appendf(&out, "\"blocked_pushes\":%" PRIu64 ",", s.blocked_pushes);
    Appendf(&out, "\"rejected_frames\":%" PRIu64 ",", s.rejected_frames);
    Appendf(&out, "\"rejected_events\":%" PRIu64 ",", s.rejected_events);
    Appendf(&out, "\"shed_frames\":%" PRIu64 ",", s.shed_frames);
    Appendf(&out, "\"shed_events\":%" PRIu64 ",", s.shed_events);
    Appendf(&out, "\"events_out\":%" PRIu64 ",", s.events_out);
    Appendf(&out, "\"dropped_late\":%" PRIu64 ",", s.dropped_late);
    Appendf(&out, "\"sorter_pushes\":%" PRIu64 ",", s.sorter.pushes);
    Appendf(&out, "\"sorter_srs_hits\":%" PRIu64 ",", s.sorter.srs_hits);
    Appendf(&out, "\"sorter_new_runs\":%" PRIu64 ",", s.sorter.new_runs);
    Appendf(&out, "\"sorter_removed_runs\":%" PRIu64 ",",
            s.sorter.removed_runs);
    Appendf(&out, "\"sorter_parallel_merges\":%" PRIu64 ",",
            s.sorter.parallel_merges);
    Appendf(&out, "\"sorter_elements_moved\":%" PRIu64 ",",
            s.sorter.merge.elements_moved);
    Appendf(&out, "\"sorter_disjoint_concats\":%" PRIu64 "",
            s.sorter.merge.disjoint_concats);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace server
}  // namespace impatience
