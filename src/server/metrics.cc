#include "server/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/cpu_features.h"

namespace impatience {
namespace server {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

// Escapes `s` for embedding inside a JSON string literal: quotes,
// backslashes, and control characters (the characters RFC 8259 forbids
// raw inside strings).
void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          Appendf(out, "\\u%04x", c);
        } else {
          out->push_back(ch);
        }
    }
  }
}

// Escapes `s` for a Prometheus label value: backslash, double quote, and
// newline (the three characters the text exposition format escapes).
void AppendPromLabelEscaped(const std::string& s, std::string* out) {
  for (const char ch : s) {
    switch (ch) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(ch);
    }
  }
}

// Emits one per-shard gauge/counter family: a line per shard.
template <typename Get>
void TextFamily(std::string* out, const ServerMetrics& m, const char* name,
                Get get) {
  for (const ShardMetrics& s : m.shards) {
    Appendf(out, "%s{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            static_cast<uint64_t>(get(s)));
  }
}

// Emits one per-io-loop gauge/counter family: a line per event loop.
template <typename Get>
void TextLoopFamily(std::string* out, const ServerMetrics& m,
                    const char* name, Get get) {
  for (const IoLoopMetrics& l : m.transport.loops) {
    Appendf(out, "%s{loop=\"%zu\"} %" PRIu64 "\n", name, l.loop,
            static_cast<uint64_t>(get(l)));
  }
}

template <typename Get>
void PromLoopFamily(std::string* out, const ServerMetrics& m,
                    const char* name, const char* type, const char* help,
                    Get get) {
  Appendf(out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
  for (const IoLoopMetrics& l : m.transport.loops) {
    Appendf(out, "%s{loop=\"%zu\"} %" PRIu64 "\n", name, l.loop,
            static_cast<uint64_t>(get(l)));
  }
}

// The quantiles every latency family exposes, shared by all renderings.
struct QuantilePoint {
  const char* text_label;  // bare-text q="..." label
  const char* prom_label;  // Prometheus quantile="..." label
  double q;
};

constexpr QuantilePoint kQuantiles[] = {
    {"p50", "0.5", 0.50},
    {"p90", "0.9", 0.90},
    {"p99", "0.99", 0.99},
    {"p999", "0.999", 0.999},
};

// Bare-text rendering of one histogram family: quantile lines plus count
// and max per shard.
template <typename Get>
void TextHistogramFamily(std::string* out, const ServerMetrics& m,
                         const char* name, Get get) {
  for (const ShardMetrics& s : m.shards) {
    const HistogramSnapshot& h = get(s);
    for (const QuantilePoint& p : kQuantiles) {
      Appendf(out, "%s{shard=\"%zu\",q=\"%s\"} %" PRIu64 "\n", name, s.shard,
              p.text_label, h.ValueAtQuantile(p.q));
    }
    Appendf(out, "%s_count{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            h.count());
    Appendf(out, "%s_max{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            h.max());
  }
}

// JSON rendering of one histogram as an object value (no trailing comma).
void AppendJsonHistogram(std::string* out, const char* key,
                         const HistogramSnapshot& h) {
  Appendf(out, "\"%s\":{\"count\":%" PRIu64 ",", key, h.count());
  for (const QuantilePoint& p : kQuantiles) {
    Appendf(out, "\"%s\":%" PRIu64 ",", p.text_label, h.ValueAtQuantile(p.q));
  }
  Appendf(out, "\"max\":%" PRIu64 ",\"sum\":%" PRIu64 "}", h.max(), h.sum());
}

// Prometheus summary family: # HELP / # TYPE, then per shard the quantile
// series plus the _sum and _count conventions.
template <typename Get>
void PromSummaryFamily(std::string* out, const ServerMetrics& m,
                       const char* name, const char* help, Get get) {
  Appendf(out, "# HELP %s %s\n# TYPE %s summary\n", name, help, name);
  for (const ShardMetrics& s : m.shards) {
    const HistogramSnapshot& h = get(s);
    for (const QuantilePoint& p : kQuantiles) {
      Appendf(out, "%s{shard=\"%zu\",quantile=\"%s\"} %" PRIu64 "\n", name,
              s.shard, p.prom_label, h.ValueAtQuantile(p.q));
    }
    Appendf(out, "%s_sum{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            h.sum());
    Appendf(out, "%s_count{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            h.count());
  }
}

// Prometheus histogram family: cumulative le buckets plus +Inf, _sum, and
// _count. The le ladder is 2^k - 1 (k = 0, 2, ..., 40): each bound is the
// largest value of its log bucket, so every cumulative count is exact (see
// HistogramSnapshot::CountLessOrEqual). Emitted as a sibling of the
// summary family (suffix _hist) so both conventions stay scrapeable.
template <typename Get>
void PromBucketFamily(std::string* out, const ServerMetrics& m,
                      const char* name, const char* help, Get get) {
  Appendf(out, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name);
  for (const ShardMetrics& s : m.shards) {
    const HistogramSnapshot& h = get(s);
    for (int k = 0; k <= 40; k += 2) {
      const uint64_t le = (uint64_t{1} << k) - 1;
      Appendf(out, "%s_bucket{shard=\"%zu\",le=\"%" PRIu64 "\"} %" PRIu64 "\n",
              name, s.shard, le, h.CountLessOrEqual(le));
    }
    Appendf(out, "%s_bucket{shard=\"%zu\",le=\"+Inf\"} %" PRIu64 "\n", name,
            s.shard, h.count());
    Appendf(out, "%s_sum{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            h.sum());
    Appendf(out, "%s_count{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            h.count());
  }
}

template <typename Get>
void PromShardFamily(std::string* out, const ServerMetrics& m,
                     const char* name, const char* type, const char* help,
                     Get get) {
  Appendf(out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
  for (const ShardMetrics& s : m.shards) {
    Appendf(out, "%s{shard=\"%zu\"} %" PRIu64 "\n", name, s.shard,
            static_cast<uint64_t>(get(s)));
  }
}

void PromScalar(std::string* out, const char* name, const char* type,
                const char* help, uint64_t value) {
  Appendf(out, "# HELP %s %s\n# TYPE %s %s\n%s %" PRIu64 "\n", name, help,
          name, type, name, value);
}

}  // namespace

std::string RenderMetricsText(const ServerMetrics& m) {
  std::string out;
  Appendf(&out, "impatience_connections_opened %" PRIu64 "\n",
          m.connections_opened);
  Appendf(&out, "impatience_connections_closed %" PRIu64 "\n",
          m.connections_closed);
  Appendf(&out, "impatience_frames_in %" PRIu64 "\n", m.frames_in);
  Appendf(&out, "impatience_frames_out %" PRIu64 "\n", m.frames_out);
  Appendf(&out, "impatience_bytes_in %" PRIu64 "\n", m.bytes_in);
  Appendf(&out, "impatience_bytes_out %" PRIu64 "\n", m.bytes_out);
  Appendf(&out, "impatience_decode_errors %" PRIu64 "\n", m.decode_errors);
  Appendf(&out, "impatience_shutting_down %d\n", m.shutting_down ? 1 : 0);
  Appendf(&out, "impatience_shards %zu\n", m.shards.size());
  Appendf(&out, "impatience_kernel_level %d\n",
          static_cast<int>(ActiveKernelLevel()));
  Appendf(&out, "impatience_io_accepted %" PRIu64 "\n", m.transport.accepted);
  Appendf(&out, "impatience_io_accept_errors %" PRIu64 "\n",
          m.transport.accept_errors);
  Appendf(&out, "impatience_io_loops %zu\n", m.transport.loops.size());
  Appendf(&out, "impatience_telemetry_subscribers %" PRIu64 "\n",
          m.telemetry.subscribers);
  Appendf(&out, "impatience_telemetry_chunks_sent %" PRIu64 "\n",
          m.telemetry.chunks_sent);
  Appendf(&out, "impatience_telemetry_chunks_dropped %" PRIu64 "\n",
          m.telemetry.chunks_dropped);
  Appendf(&out, "impatience_telemetry_subscribers_shed %" PRIu64 "\n",
          m.telemetry.subscribers_shed);
  Appendf(&out, "impatience_telemetry_spans_exported %" PRIu64 "\n",
          m.telemetry.spans_exported);
  Appendf(&out, "impatience_telemetry_span_ring_drops %" PRIu64 "\n",
          m.telemetry.span_ring_drops);
  Appendf(&out, "impatience_telemetry_metrics_deltas %" PRIu64 "\n",
          m.telemetry.metrics_deltas);
  Appendf(&out, "impatience_telemetry_dump_chunks %" PRIu64 "\n",
          m.telemetry.dump_chunks);
  Appendf(&out, "impatience_telemetry_dump_truncated %" PRIu64 "\n",
          m.telemetry.dump_truncated);
  Appendf(&out, "impatience_results_subscribers %" PRIu64 "\n",
          m.results.subscribers);
  Appendf(&out, "impatience_results_chunks_built %" PRIu64 "\n",
          m.results.chunks_built);
  Appendf(&out, "impatience_results_chunks_sent %" PRIu64 "\n",
          m.results.chunks_sent);
  Appendf(&out, "impatience_results_chunks_dropped %" PRIu64 "\n",
          m.results.chunks_dropped);
  Appendf(&out, "impatience_results_records_streamed %" PRIu64 "\n",
          m.results.records_streamed);
  Appendf(&out, "impatience_results_records_dropped %" PRIu64 "\n",
          m.results.records_dropped);
  Appendf(&out, "impatience_results_subscribers_shed %" PRIu64 "\n",
          m.results.subscribers_shed);

  TextLoopFamily(&out, m, "impatience_io_loop_connections",
                 [](const IoLoopMetrics& l) { return l.connections; });
  TextLoopFamily(&out, m, "impatience_io_loop_epollout_waiting",
                 [](const IoLoopMetrics& l) { return l.epollout_waiting; });
  TextLoopFamily(&out, m, "impatience_io_loop_accepted",
                 [](const IoLoopMetrics& l) { return l.accepted; });
  TextLoopFamily(&out, m, "impatience_io_loop_closed",
                 [](const IoLoopMetrics& l) { return l.closed; });
  TextLoopFamily(&out, m, "impatience_io_loop_closed_slow",
                 [](const IoLoopMetrics& l) { return l.closed_slow; });
  TextLoopFamily(&out, m, "impatience_io_loop_closed_error",
                 [](const IoLoopMetrics& l) { return l.closed_error; });
  TextLoopFamily(&out, m, "impatience_io_loop_epollout_stalls",
                 [](const IoLoopMetrics& l) { return l.epollout_stalls; });

  TextFamily(&out, m, "impatience_shard_queue_depth",
             [](const ShardMetrics& s) { return s.queue_depth; });
  TextFamily(&out, m, "impatience_shard_queue_capacity",
             [](const ShardMetrics& s) { return s.queue_capacity; });
  TextFamily(&out, m, "impatience_shard_frames_in",
             [](const ShardMetrics& s) { return s.frames_in; });
  TextFamily(&out, m, "impatience_shard_events_in",
             [](const ShardMetrics& s) { return s.events_in; });
  TextFamily(&out, m, "impatience_shard_punctuations_in",
             [](const ShardMetrics& s) { return s.punctuations_in; });
  TextFamily(&out, m, "impatience_shard_sessions",
             [](const ShardMetrics& s) { return s.sessions; });
  TextFamily(&out, m, "impatience_shard_blocked_pushes",
             [](const ShardMetrics& s) { return s.blocked_pushes; });
  TextFamily(&out, m, "impatience_shard_rejected_frames",
             [](const ShardMetrics& s) { return s.rejected_frames; });
  TextFamily(&out, m, "impatience_shard_rejected_events",
             [](const ShardMetrics& s) { return s.rejected_events; });
  TextFamily(&out, m, "impatience_shard_shed_frames",
             [](const ShardMetrics& s) { return s.shed_frames; });
  TextFamily(&out, m, "impatience_shard_shed_events",
             [](const ShardMetrics& s) { return s.shed_events; });
  TextFamily(&out, m, "impatience_shard_events_out",
             [](const ShardMetrics& s) { return s.events_out; });
  TextFamily(&out, m, "impatience_shard_dropped_late",
             [](const ShardMetrics& s) { return s.dropped_late; });
  TextFamily(&out, m, "impatience_shard_sorter_pushes",
             [](const ShardMetrics& s) { return s.sorter.pushes; });
  TextFamily(&out, m, "impatience_shard_sorter_srs_hits",
             [](const ShardMetrics& s) { return s.sorter.srs_hits; });
  TextFamily(&out, m, "impatience_shard_sorter_new_runs",
             [](const ShardMetrics& s) { return s.sorter.new_runs; });
  TextFamily(&out, m, "impatience_shard_sorter_removed_runs",
             [](const ShardMetrics& s) { return s.sorter.removed_runs; });
  TextFamily(&out, m, "impatience_shard_sorter_parallel_merges",
             [](const ShardMetrics& s) { return s.sorter.parallel_merges; });
  TextFamily(&out, m, "impatience_shard_sorter_loser_tree_merges",
             [](const ShardMetrics& s) {
               return s.sorter.loser_tree_merges;
             });
  TextFamily(&out, m, "impatience_shard_sorter_elements_moved",
             [](const ShardMetrics& s) { return s.sorter.merge.elements_moved; });
  TextFamily(&out, m, "impatience_shard_sorter_disjoint_concats",
             [](const ShardMetrics& s) {
               return s.sorter.merge.disjoint_concats;
             });
  TextFamily(&out, m, "impatience_shard_memory_current_bytes",
             [](const ShardMetrics& s) { return s.memory_current_bytes; });
  TextFamily(&out, m, "impatience_shard_memory_peak_bytes",
             [](const ShardMetrics& s) { return s.memory_peak_bytes; });
  TextFamily(&out, m, "impatience_shard_runs_recovered",
             [](const ShardMetrics& s) { return s.runs_recovered; });
  TextFamily(&out, m, "impatience_shard_events_recovered",
             [](const ShardMetrics& s) { return s.events_recovered; });
  TextFamily(&out, m, "impatience_shard_sorter_runs_spilled",
             [](const ShardMetrics& s) { return s.sorter.runs_spilled; });
  TextFamily(&out, m, "impatience_shard_sorter_spill_bytes_written",
             [](const ShardMetrics& s) {
               return s.sorter.spill_bytes_written;
             });
  TextFamily(&out, m, "impatience_shard_sorter_spill_read_bytes",
             [](const ShardMetrics& s) { return s.sorter.spill_read_bytes; });
  TextFamily(&out, m, "impatience_shard_sorter_async_flushes",
             [](const ShardMetrics& s) { return s.sorter.async_flushes; });
  TextFamily(&out, m, "impatience_shard_sorter_readahead_hits",
             [](const ShardMetrics& s) { return s.sorter.readahead_hits; });
  TextFamily(&out, m, "impatience_shard_sorter_readahead_misses",
             [](const ShardMetrics& s) { return s.sorter.readahead_misses; });
  TextFamily(&out, m, "impatience_shard_sorter_idle_flushes",
             [](const ShardMetrics& s) { return s.sorter.idle_flushes; });
  TextFamily(&out, m, "impatience_shard_sorter_spill_compactions",
             [](const ShardMetrics& s) {
               return s.sorter.spill_compactions;
             });
  TextFamily(&out, m, "impatience_shard_sorter_flush_queue_bytes",
             [](const ShardMetrics& s) {
               return s.sorter.flush_queue_bytes;
             });

  TextHistogramFamily(&out, m, "impatience_shard_punct_to_emit_ns",
                      [](const ShardMetrics& s) -> const HistogramSnapshot& {
                        return s.sorter.punct_to_emit;
                      });
  TextHistogramFamily(&out, m, "impatience_shard_ingest_to_emit_ns",
                      [](const ShardMetrics& s) -> const HistogramSnapshot& {
                        return s.sorter.ingest_to_emit;
                      });
  TextHistogramFamily(&out, m, "impatience_shard_queue_wait_ns",
                      [](const ShardMetrics& s) -> const HistogramSnapshot& {
                        return s.queue_wait;
                      });
  TextHistogramFamily(&out, m, "impatience_shard_drain_stall_ns",
                      [](const ShardMetrics& s) -> const HistogramSnapshot& {
                        return s.drain_stall;
                      });
  TextHistogramFamily(&out, m, "impatience_shard_kway_fanin",
                      [](const ShardMetrics& s) -> const HistogramSnapshot& {
                        return s.sorter.kway_fanin;
                      });
  TextHistogramFamily(&out, m, "impatience_shard_spill_merge_fanin",
                      [](const ShardMetrics& s) -> const HistogramSnapshot& {
                        return s.sorter.spill_merge_fanin;
                      });
  TextFamily(&out, m, "impatience_shard_max_watermark_lag",
             [](const ShardMetrics& s) {
               return static_cast<uint64_t>(s.max_watermark_lag);
             });
  return out;
}

std::string RenderMetricsJson(const ServerMetrics& m) {
  std::string out;
  out += "{";
  Appendf(&out, "\"connections_opened\":%" PRIu64 ",", m.connections_opened);
  Appendf(&out, "\"connections_closed\":%" PRIu64 ",", m.connections_closed);
  Appendf(&out, "\"frames_in\":%" PRIu64 ",", m.frames_in);
  Appendf(&out, "\"frames_out\":%" PRIu64 ",", m.frames_out);
  Appendf(&out, "\"bytes_in\":%" PRIu64 ",", m.bytes_in);
  Appendf(&out, "\"bytes_out\":%" PRIu64 ",", m.bytes_out);
  Appendf(&out, "\"decode_errors\":%" PRIu64 ",", m.decode_errors);
  Appendf(&out, "\"shutting_down\":%s,",
          m.shutting_down ? "true" : "false");
  out += "\"kernel_level\":\"";
  AppendJsonEscaped(KernelLevelName(ActiveKernelLevel()), &out);
  out += "\",";
  Appendf(&out, "\"io_accepted\":%" PRIu64 ",", m.transport.accepted);
  Appendf(&out, "\"io_accept_errors\":%" PRIu64 ",",
          m.transport.accept_errors);
  out += "\"io_loops\":[";
  for (size_t i = 0; i < m.transport.loops.size(); ++i) {
    const IoLoopMetrics& l = m.transport.loops[i];
    if (i > 0) out += ",";
    Appendf(&out,
            "{\"loop\":%zu,\"connections\":%zu,\"epollout_waiting\":%zu,"
            "\"accepted\":%" PRIu64 ",\"closed\":%" PRIu64
            ",\"closed_slow\":%" PRIu64 ",\"closed_error\":%" PRIu64
            ",\"epollout_stalls\":%" PRIu64 "}",
            l.loop, l.connections, l.epollout_waiting, l.accepted, l.closed,
            l.closed_slow, l.closed_error, l.epollout_stalls);
  }
  out += "],";
  Appendf(&out,
          "\"telemetry\":{\"subscribers\":%" PRIu64 ",\"chunks_sent\":%" PRIu64
          ",\"chunks_dropped\":%" PRIu64 ",\"subscribers_shed\":%" PRIu64
          ",\"spans_exported\":%" PRIu64 ",\"span_ring_drops\":%" PRIu64
          ",\"metrics_deltas\":%" PRIu64 ",\"dump_chunks\":%" PRIu64
          ",\"dump_truncated\":%" PRIu64 "},",
          m.telemetry.subscribers, m.telemetry.chunks_sent,
          m.telemetry.chunks_dropped, m.telemetry.subscribers_shed,
          m.telemetry.spans_exported, m.telemetry.span_ring_drops,
          m.telemetry.metrics_deltas, m.telemetry.dump_chunks,
          m.telemetry.dump_truncated);
  Appendf(&out,
          "\"results\":{\"subscribers\":%" PRIu64 ",\"chunks_built\":%" PRIu64
          ",\"chunks_sent\":%" PRIu64 ",\"chunks_dropped\":%" PRIu64
          ",\"records_streamed\":%" PRIu64 ",\"records_dropped\":%" PRIu64
          ",\"subscribers_shed\":%" PRIu64 "},",
          m.results.subscribers, m.results.chunks_built,
          m.results.chunks_sent, m.results.chunks_dropped,
          m.results.records_streamed, m.results.records_dropped,
          m.results.subscribers_shed);
  out += "\"shards\":[";
  for (size_t i = 0; i < m.shards.size(); ++i) {
    const ShardMetrics& s = m.shards[i];
    if (i > 0) out += ",";
    out += "{";
    Appendf(&out, "\"shard\":%zu,", s.shard);
    Appendf(&out, "\"queue_depth\":%zu,", s.queue_depth);
    Appendf(&out, "\"queue_capacity\":%zu,", s.queue_capacity);
    Appendf(&out, "\"frames_in\":%" PRIu64 ",", s.frames_in);
    Appendf(&out, "\"events_in\":%" PRIu64 ",", s.events_in);
    Appendf(&out, "\"punctuations_in\":%" PRIu64 ",", s.punctuations_in);
    Appendf(&out, "\"sessions\":%" PRIu64 ",", s.sessions);
    Appendf(&out, "\"blocked_pushes\":%" PRIu64 ",", s.blocked_pushes);
    Appendf(&out, "\"rejected_frames\":%" PRIu64 ",", s.rejected_frames);
    Appendf(&out, "\"rejected_events\":%" PRIu64 ",", s.rejected_events);
    Appendf(&out, "\"shed_frames\":%" PRIu64 ",", s.shed_frames);
    Appendf(&out, "\"shed_events\":%" PRIu64 ",", s.shed_events);
    Appendf(&out, "\"events_out\":%" PRIu64 ",", s.events_out);
    Appendf(&out, "\"dropped_late\":%" PRIu64 ",", s.dropped_late);
    Appendf(&out, "\"sorter_pushes\":%" PRIu64 ",", s.sorter.pushes);
    Appendf(&out, "\"sorter_srs_hits\":%" PRIu64 ",", s.sorter.srs_hits);
    Appendf(&out, "\"sorter_new_runs\":%" PRIu64 ",", s.sorter.new_runs);
    Appendf(&out, "\"sorter_removed_runs\":%" PRIu64 ",",
            s.sorter.removed_runs);
    Appendf(&out, "\"sorter_parallel_merges\":%" PRIu64 ",",
            s.sorter.parallel_merges);
    Appendf(&out, "\"sorter_loser_tree_merges\":%" PRIu64 ",",
            s.sorter.loser_tree_merges);
    Appendf(&out, "\"sorter_elements_moved\":%" PRIu64 ",",
            s.sorter.merge.elements_moved);
    Appendf(&out, "\"sorter_disjoint_concats\":%" PRIu64 ",",
            s.sorter.merge.disjoint_concats);
    Appendf(&out, "\"memory_current_bytes\":%" PRIu64 ",",
            s.memory_current_bytes);
    Appendf(&out, "\"memory_peak_bytes\":%" PRIu64 ",", s.memory_peak_bytes);
    Appendf(&out, "\"runs_recovered\":%" PRIu64 ",", s.runs_recovered);
    Appendf(&out, "\"events_recovered\":%" PRIu64 ",", s.events_recovered);
    Appendf(&out, "\"sorter_runs_spilled\":%" PRIu64 ",",
            s.sorter.runs_spilled);
    Appendf(&out, "\"sorter_spill_bytes_written\":%" PRIu64 ",",
            s.sorter.spill_bytes_written);
    Appendf(&out, "\"sorter_spill_read_bytes\":%" PRIu64 ",",
            s.sorter.spill_read_bytes);
    Appendf(&out, "\"sorter_async_flushes\":%" PRIu64 ",",
            s.sorter.async_flushes);
    Appendf(&out, "\"sorter_readahead_hits\":%" PRIu64 ",",
            s.sorter.readahead_hits);
    Appendf(&out, "\"sorter_readahead_misses\":%" PRIu64 ",",
            s.sorter.readahead_misses);
    Appendf(&out, "\"sorter_idle_flushes\":%" PRIu64 ",",
            s.sorter.idle_flushes);
    Appendf(&out, "\"sorter_spill_compactions\":%" PRIu64 ",",
            s.sorter.spill_compactions);
    Appendf(&out, "\"sorter_flush_queue_bytes\":%" PRIu64 ",",
            s.sorter.flush_queue_bytes);
    AppendJsonHistogram(&out, "punct_to_emit_ns", s.sorter.punct_to_emit);
    out += ",";
    AppendJsonHistogram(&out, "ingest_to_emit_ns", s.sorter.ingest_to_emit);
    out += ",";
    AppendJsonHistogram(&out, "queue_wait_ns", s.queue_wait);
    out += ",";
    AppendJsonHistogram(&out, "drain_stall_ns", s.drain_stall);
    out += ",";
    AppendJsonHistogram(&out, "kway_fanin", s.sorter.kway_fanin);
    out += ",";
    AppendJsonHistogram(&out, "spill_merge_fanin", s.sorter.spill_merge_fanin);
    out += ",";
    Appendf(&out, "\"max_watermark_lag\":%" PRId64 ",", s.max_watermark_lag);
    out += "\"watermarks\":[";
    for (size_t j = 0; j < s.watermarks.size(); ++j) {
      const SessionWatermark& w = s.watermarks[j];
      if (j > 0) out += ",";
      out += "{\"session\":\"";
      AppendJsonEscaped(w.label, &out);
      Appendf(&out,
              "\",\"session_id\":%" PRIu64 ",\"max_sync_time\":%" PRId64
              ",\"last_punctuation\":%" PRId64 ",\"lag\":%" PRId64 "}",
              w.session_id, static_cast<int64_t>(w.max_sync_time),
              static_cast<int64_t>(w.last_punctuation), w.lag);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string RenderMetricsPrometheus(const ServerMetrics& m) {
  std::string out;
  PromScalar(&out, "impatience_connections_opened", "counter",
             "Client connections accepted.", m.connections_opened);
  PromScalar(&out, "impatience_connections_closed", "counter",
             "Client connections closed.", m.connections_closed);
  PromScalar(&out, "impatience_frames_in", "counter",
             "Frames decoded from clients.", m.frames_in);
  PromScalar(&out, "impatience_frames_out", "counter",
             "Frames sent to clients.", m.frames_out);
  PromScalar(&out, "impatience_bytes_in", "counter",
             "Bytes received from clients.", m.bytes_in);
  PromScalar(&out, "impatience_bytes_out", "counter",
             "Bytes sent to clients.", m.bytes_out);
  PromScalar(&out, "impatience_decode_errors", "counter",
             "Connections poisoned by undecodable bytes.", m.decode_errors);
  PromScalar(&out, "impatience_shutting_down", "gauge",
             "1 while drain-and-flush shutdown is in progress.",
             m.shutting_down ? 1 : 0);
  PromScalar(&out, "impatience_shards", "gauge", "Number of shards.",
             m.shards.size());
  PromScalar(&out, "impatience_kernel_level", "gauge",
             "Active SIMD kernel dispatch level.",
             static_cast<uint64_t>(ActiveKernelLevel()));
  PromScalar(&out, "impatience_io_accepted", "counter",
             "Sockets accepted by the TCP front end.",
             m.transport.accepted);
  PromScalar(&out, "impatience_io_accept_errors", "counter",
             "Transient accept() failures (EMFILE, aborts).",
             m.transport.accept_errors);
  PromScalar(&out, "impatience_io_loops", "gauge",
             "Number of epoll I/O event loops.", m.transport.loops.size());

  PromScalar(&out, "impatience_telemetry_subscribers", "gauge",
             "Live streaming telemetry subscriptions.",
             m.telemetry.subscribers);
  PromScalar(&out, "impatience_telemetry_chunks_sent", "counter",
             "Telemetry chunks accepted toward a subscriber.",
             m.telemetry.chunks_sent);
  PromScalar(&out, "impatience_telemetry_chunks_dropped", "counter",
             "Telemetry chunks dropped at a full write budget.",
             m.telemetry.chunks_dropped);
  PromScalar(&out, "impatience_telemetry_subscribers_shed", "counter",
             "Subscriptions removed after persistent stalling.",
             m.telemetry.subscribers_shed);
  PromScalar(&out, "impatience_telemetry_spans_exported", "counter",
             "Span records exported into live telemetry chunks.",
             m.telemetry.spans_exported);
  PromScalar(&out, "impatience_telemetry_span_ring_drops", "counter",
             "Span-ring overwrites observed while harvesting.",
             m.telemetry.span_ring_drops);
  PromScalar(&out, "impatience_telemetry_metrics_deltas", "counter",
             "Metrics-delta telemetry chunks built.",
             m.telemetry.metrics_deltas);
  PromScalar(&out, "impatience_telemetry_dump_chunks", "counter",
             "One-shot trace dump chunks delivered.",
             m.telemetry.dump_chunks);
  PromScalar(&out, "impatience_telemetry_dump_truncated", "counter",
             "Trace dumps that could not queue every chunk.",
             m.telemetry.dump_truncated);

  PromScalar(&out, "impatience_results_subscribers", "gauge",
             "Live result-stream subscriptions.", m.results.subscribers);
  PromScalar(&out, "impatience_results_chunks_built", "counter",
             "Result chunks sealed from pipeline output.",
             m.results.chunks_built);
  PromScalar(&out, "impatience_results_chunks_sent", "counter",
             "Result chunks accepted toward a subscriber.",
             m.results.chunks_sent);
  PromScalar(&out, "impatience_results_chunks_dropped", "counter",
             "Result chunks dropped at a full write budget.",
             m.results.chunks_dropped);
  PromScalar(&out, "impatience_results_records_streamed", "counter",
             "Records inside accepted result chunks.",
             m.results.records_streamed);
  PromScalar(&out, "impatience_results_records_dropped", "counter",
             "Records inside dropped result chunks.",
             m.results.records_dropped);
  PromScalar(&out, "impatience_results_subscribers_shed", "counter",
             "Result subscriptions removed after persistent stalling.",
             m.results.subscribers_shed);

  PromLoopFamily(&out, m, "impatience_io_loop_connections", "gauge",
                 "Connections currently owned by the event loop.",
                 [](const IoLoopMetrics& l) { return l.connections; });
  PromLoopFamily(&out, m, "impatience_io_loop_epollout_waiting", "gauge",
                 "Connections with write interest armed (queued replies a "
                 "slow peer has not drained).",
                 [](const IoLoopMetrics& l) { return l.epollout_waiting; });
  PromLoopFamily(&out, m, "impatience_io_loop_accepted", "counter",
                 "Connections ever assigned to the loop.",
                 [](const IoLoopMetrics& l) { return l.accepted; });
  PromLoopFamily(&out, m, "impatience_io_loop_closed", "counter",
                 "Connections closed, any cause.",
                 [](const IoLoopMetrics& l) { return l.closed; });
  PromLoopFamily(&out, m, "impatience_io_loop_closed_slow", "counter",
                 "Connections shed because the reply queue hit its bound.",
                 [](const IoLoopMetrics& l) { return l.closed_slow; });
  PromLoopFamily(&out, m, "impatience_io_loop_closed_error", "counter",
                 "Connections closed on read/write error or peer reset.",
                 [](const IoLoopMetrics& l) { return l.closed_error; });
  PromLoopFamily(&out, m, "impatience_io_loop_epollout_stalls", "counter",
                 "Writes that could not complete and armed EPOLLOUT.",
                 [](const IoLoopMetrics& l) { return l.epollout_stalls; });

  PromShardFamily(&out, m, "impatience_shard_queue_depth", "gauge",
                  "Frames waiting in the shard ingress queue.",
                  [](const ShardMetrics& s) { return s.queue_depth; });
  PromShardFamily(&out, m, "impatience_shard_queue_capacity", "gauge",
                  "Shard ingress queue capacity in frames.",
                  [](const ShardMetrics& s) { return s.queue_capacity; });
  PromShardFamily(&out, m, "impatience_shard_frames_in", "counter",
                  "Data frames accepted into the shard queue.",
                  [](const ShardMetrics& s) { return s.frames_in; });
  PromShardFamily(&out, m, "impatience_shard_events_in", "counter",
                  "Events inside accepted frames.",
                  [](const ShardMetrics& s) { return s.events_in; });
  PromShardFamily(&out, m, "impatience_shard_punctuations_in", "counter",
                  "Client punctuation frames.",
                  [](const ShardMetrics& s) { return s.punctuations_in; });
  PromShardFamily(&out, m, "impatience_shard_sessions", "gauge",
                  "Distinct sessions seen by the shard.",
                  [](const ShardMetrics& s) { return s.sessions; });
  PromShardFamily(&out, m, "impatience_shard_blocked_pushes", "counter",
                  "Enqueues that had to wait (block policy).",
                  [](const ShardMetrics& s) { return s.blocked_pushes; });
  PromShardFamily(&out, m, "impatience_shard_rejected_frames", "counter",
                  "Frames refused under the reject policy.",
                  [](const ShardMetrics& s) { return s.rejected_frames; });
  PromShardFamily(&out, m, "impatience_shard_rejected_events", "counter",
                  "Events inside refused frames.",
                  [](const ShardMetrics& s) { return s.rejected_events; });
  PromShardFamily(&out, m, "impatience_shard_shed_frames", "counter",
                  "Frames evicted under the shed policy.",
                  [](const ShardMetrics& s) { return s.shed_frames; });
  PromShardFamily(&out, m, "impatience_shard_shed_events", "counter",
                  "Events inside evicted frames.",
                  [](const ShardMetrics& s) { return s.shed_events; });
  PromShardFamily(&out, m, "impatience_shard_events_out", "counter",
                  "Rows emitted on the subscribed output stream.",
                  [](const ShardMetrics& s) { return s.events_out; });
  PromShardFamily(&out, m, "impatience_shard_dropped_late", "counter",
                  "Events dropped as too late (partition + sorters).",
                  [](const ShardMetrics& s) { return s.dropped_late; });
  PromShardFamily(&out, m, "impatience_shard_sorter_pushes", "counter",
                  "Elements accepted by the shard's Impatience sorters.",
                  [](const ShardMetrics& s) { return s.sorter.pushes; });
  PromShardFamily(&out, m, "impatience_shard_sorter_srs_hits", "counter",
                  "Insertions resolved by speculative run selection.",
                  [](const ShardMetrics& s) { return s.sorter.srs_hits; });
  PromShardFamily(&out, m, "impatience_shard_sorter_new_runs", "counter",
                  "Sorted runs created.",
                  [](const ShardMetrics& s) { return s.sorter.new_runs; });
  PromShardFamily(&out, m, "impatience_shard_sorter_removed_runs", "counter",
                  "Sorted runs removed after punctuations.",
                  [](const ShardMetrics& s) { return s.sorter.removed_runs; });
  PromShardFamily(
      &out, m, "impatience_shard_sorter_parallel_merges", "counter",
      "Punctuation merges executed on the thread pool.",
      [](const ShardMetrics& s) { return s.sorter.parallel_merges; });
  PromShardFamily(
      &out, m, "impatience_shard_sorter_loser_tree_merges", "counter",
      "Punctuation merges executed by the k-way loser tree.",
      [](const ShardMetrics& s) { return s.sorter.loser_tree_merges; });
  PromShardFamily(
      &out, m, "impatience_shard_sorter_elements_moved", "counter",
      "Elements moved by punctuation merges.",
      [](const ShardMetrics& s) { return s.sorter.merge.elements_moved; });
  PromShardFamily(&out, m, "impatience_shard_memory_current_bytes", "gauge",
                  "Bytes buffered across the shard pipeline right now.",
                  [](const ShardMetrics& s) { return s.memory_current_bytes; });
  PromShardFamily(&out, m, "impatience_shard_memory_peak_bytes", "gauge",
                  "High-water mark of shard pipeline buffering since the "
                  "last resetting scrape.",
                  [](const ShardMetrics& s) { return s.memory_peak_bytes; });
  PromShardFamily(&out, m, "impatience_shard_runs_recovered", "counter",
                  "Spilled runs replayed from disk at startup.",
                  [](const ShardMetrics& s) { return s.runs_recovered; });
  PromShardFamily(&out, m, "impatience_shard_events_recovered", "counter",
                  "Events replayed from recovered runs at startup.",
                  [](const ShardMetrics& s) { return s.events_recovered; });
  PromShardFamily(&out, m, "impatience_shard_sorter_runs_spilled", "counter",
                  "Sorter runs evicted to the disk spill tier.",
                  [](const ShardMetrics& s) { return s.sorter.runs_spilled; });
  PromShardFamily(&out, m, "impatience_shard_sorter_spill_bytes_written",
                  "counter", "Bytes written to spilled run files.",
                  [](const ShardMetrics& s) {
                    return s.sorter.spill_bytes_written;
                  });
  PromShardFamily(&out, m, "impatience_shard_sorter_spill_read_bytes",
                  "counter", "Bytes read back from spilled run files.",
                  [](const ShardMetrics& s) {
                    return s.sorter.spill_read_bytes;
                  });
  PromShardFamily(&out, m, "impatience_shard_sorter_async_flushes", "counter",
                  "Sealed blocks handed to the write-behind flusher pool.",
                  [](const ShardMetrics& s) { return s.sorter.async_flushes; });
  PromShardFamily(&out, m, "impatience_shard_sorter_readahead_hits", "counter",
                  "Merge-cursor block prefetches that were ready in time.",
                  [](const ShardMetrics& s) { return s.sorter.readahead_hits; });
  PromShardFamily(&out, m, "impatience_shard_sorter_readahead_misses",
                  "counter",
                  "Merge-cursor blocks loaded synchronously (prefetch late "
                  "or absent).",
                  [](const ShardMetrics& s) {
                    return s.sorter.readahead_misses;
                  });
  PromShardFamily(&out, m, "impatience_shard_sorter_idle_flushes", "counter",
                  "Idle-deadline flushes of quiescent tail blocks.",
                  [](const ShardMetrics& s) { return s.sorter.idle_flushes; });
  PromShardFamily(&out, m, "impatience_shard_sorter_spill_compactions",
                  "counter", "Spilled run files rewritten to reclaim disk.",
                  [](const ShardMetrics& s) {
                    return s.sorter.spill_compactions;
                  });
  PromShardFamily(&out, m, "impatience_shard_sorter_flush_queue_bytes",
                  "gauge",
                  "Bytes queued in the flusher pool at the last observation.",
                  [](const ShardMetrics& s) {
                    return s.sorter.flush_queue_bytes;
                  });

  PromSummaryFamily(&out, m, "impatience_shard_punct_to_emit_nanoseconds",
                    "Punctuation arrival to emit completion, per call.",
                    [](const ShardMetrics& s) -> const HistogramSnapshot& {
                      return s.sorter.punct_to_emit;
                    });
  PromSummaryFamily(&out, m, "impatience_shard_ingest_to_emit_nanoseconds",
                    "Oldest buffered push to emit, per emitting punctuation.",
                    [](const ShardMetrics& s) -> const HistogramSnapshot& {
                      return s.sorter.ingest_to_emit;
                    });
  PromSummaryFamily(&out, m, "impatience_shard_queue_wait_nanoseconds",
                    "Frame wait in the shard ingress queue.",
                    [](const ShardMetrics& s) -> const HistogramSnapshot& {
                      return s.queue_wait;
                    });
  PromSummaryFamily(&out, m, "impatience_shard_drain_stall_nanoseconds",
                    "Drain-loop stall applying one frame to the pipeline.",
                    [](const ShardMetrics& s) -> const HistogramSnapshot& {
                      return s.drain_stall;
                    });
  PromSummaryFamily(&out, m, "impatience_shard_kway_fanin",
                    "Head-run fan-in of each loser-tree punctuation merge.",
                    [](const ShardMetrics& s) -> const HistogramSnapshot& {
                      return s.sorter.kway_fanin;
                    });
  PromSummaryFamily(&out, m, "impatience_shard_spill_merge_fanin",
                    "Fan-in of punctuation merges touching spilled runs.",
                    [](const ShardMetrics& s) -> const HistogramSnapshot& {
                      return s.sorter.spill_merge_fanin;
                    });

  PromBucketFamily(&out, m, "impatience_shard_punct_to_emit_nanoseconds_hist",
                   "Punctuation arrival to emit completion, per call.",
                   [](const ShardMetrics& s) -> const HistogramSnapshot& {
                     return s.sorter.punct_to_emit;
                   });
  PromBucketFamily(&out, m, "impatience_shard_ingest_to_emit_nanoseconds_hist",
                   "Oldest buffered push to emit, per emitting punctuation.",
                   [](const ShardMetrics& s) -> const HistogramSnapshot& {
                     return s.sorter.ingest_to_emit;
                   });
  PromBucketFamily(&out, m, "impatience_shard_queue_wait_nanoseconds_hist",
                   "Frame wait in the shard ingress queue.",
                   [](const ShardMetrics& s) -> const HistogramSnapshot& {
                     return s.queue_wait;
                   });
  PromBucketFamily(&out, m, "impatience_shard_drain_stall_nanoseconds_hist",
                   "Drain-loop stall applying one frame to the pipeline.",
                   [](const ShardMetrics& s) -> const HistogramSnapshot& {
                     return s.drain_stall;
                   });
  PromBucketFamily(&out, m, "impatience_shard_kway_fanin_hist",
                   "Head-run fan-in of each loser-tree punctuation merge.",
                   [](const ShardMetrics& s) -> const HistogramSnapshot& {
                     return s.sorter.kway_fanin;
                   });
  PromBucketFamily(&out, m, "impatience_shard_spill_merge_fanin_hist",
                   "Fan-in of punctuation merges touching spilled runs.",
                   [](const ShardMetrics& s) -> const HistogramSnapshot& {
                     return s.sorter.spill_merge_fanin;
                   });

  Appendf(&out,
          "# HELP impatience_session_watermark_lag Event-time lag of a "
          "session: max sync time minus the shard's last punctuation.\n"
          "# TYPE impatience_session_watermark_lag gauge\n");
  for (const ShardMetrics& s : m.shards) {
    for (const SessionWatermark& w : s.watermarks) {
      Appendf(&out, "impatience_session_watermark_lag{shard=\"%zu\",", s.shard);
      out += "session=\"";
      AppendPromLabelEscaped(w.label, &out);
      Appendf(&out, "\"} %" PRId64 "\n", w.lag);
    }
  }
  PromShardFamily(&out, m, "impatience_shard_max_watermark_lag", "gauge",
                  "Largest per-session event-time watermark lag.",
                  [](const ShardMetrics& s) {
                    return static_cast<uint64_t>(s.max_watermark_lag);
                  });
  return out;
}

}  // namespace server
}  // namespace impatience
