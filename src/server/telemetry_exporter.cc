#include "server/telemetry_exporter.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "common/trace.h"

namespace impatience {
namespace server {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

size_t ClampChunkBytes(size_t v) {
  return std::min<size_t>(std::max<size_t>(v, 1024), 4u << 20);
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryOptions options,
                                     SnapshotFn snapshot)
    : options_([&options] {
        options.max_chunk_bytes = ClampChunkBytes(options.max_chunk_bytes);
        return options;
      }()),
      snapshot_(std::move(snapshot)) {
  const int span_ms = std::max(options_.span_interval_ms, 1);
  metrics_every_ = std::max<size_t>(
      1, static_cast<size_t>(std::max(options_.metrics_interval_ms, 1) /
                             span_ms));
  if (options_.start_thread) {
    thread_ = std::thread([this] { ThreadMain(); });
  }
}

TelemetryExporter::~TelemetryExporter() { Stop(); }

void TelemetryExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TelemetryExporter::ThreadMain() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(
                           std::max(options_.span_interval_ms, 1)),
                 [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

uint64_t TelemetryExporter::Subscribe(uint64_t session_id, uint8_t streams,
                                      TrySink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  Subscription sub;
  sub.id = next_id_++;
  sub.session_id = session_id;
  sub.streams = streams;
  sub.sink = std::move(sink);
  subs_.push_back(std::move(sub));
  return subs_.back().id;
}

void TelemetryExporter::Unsubscribe(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = subs_.begin(); it != subs_.end(); ++it) {
    if (it->id == id) {
      subs_.erase(it);
      return;
    }
  }
}

void TelemetryExporter::FanOutLocked(uint8_t stream,
                                     const std::string& body) {
  for (size_t i = 0; i < subs_.size();) {
    Subscription& sub = subs_[i];
    if ((sub.streams & stream) == 0) {
      ++i;
      continue;
    }
    Frame chunk;
    chunk.type = FrameType::kTelemetryChunk;
    chunk.session_id = sub.session_id;
    chunk.telemetry_streams = stream;
    chunk.telemetry_seq = sub.seq + 1;
    chunk.telemetry_dropped = sub.dropped;
    chunk.text = body;
    const std::vector<uint8_t> bytes = EncodeFrame(chunk);
    if (sub.sink(std::string(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size()))) {
      ++sub.seq;
      sub.consecutive_drops = 0;
      ++counters_.chunks_sent;
      ++i;
      continue;
    }
    ++sub.dropped;
    ++counters_.chunks_dropped;
    if (++sub.consecutive_drops >= options_.shed_after_drops) {
      // Persistently stalled: stop offering it chunks at all. The
      // connection itself stays up — it can resubscribe once it drains.
      ++counters_.subscribers_shed;
      subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

std::string TelemetryExporter::BuildMetricsDeltaLocked() {
  const std::vector<ShardMetrics> shards = snapshot_();
  uint64_t frames_in = 0;
  uint64_t events_in = 0;
  uint64_t events_out = 0;
  uint64_t punctuations_in = 0;
  uint64_t queue_depth = 0;
  uint64_t memory_current = 0;
  int64_t max_lag = 0;
  HistogramSnapshot queue_wait;  // Merged across shards (operator+=).
  for (const ShardMetrics& s : shards) {
    frames_in += s.frames_in;
    events_in += s.events_in;
    events_out += s.events_out;
    punctuations_in += s.punctuations_in;
    queue_depth += s.queue_depth;
    memory_current += s.memory_current_bytes;
    max_lag = std::max(max_lag, s.max_watermark_lag);
    queue_wait += s.queue_wait;
  }
  auto delta = [](uint64_t cur, uint64_t prev) {
    return cur >= prev ? cur - prev : 0;
  };
  const bool first = !have_prev_;
  std::string body;
  Appendf(&body, "{\"first\":%s,", first ? "true" : "false");
  Appendf(&body, "\"d_frames_in\":%" PRIu64 ",",
          first ? frames_in : delta(frames_in, prev_frames_in_));
  Appendf(&body, "\"d_events_in\":%" PRIu64 ",",
          first ? events_in : delta(events_in, prev_events_in_));
  Appendf(&body, "\"d_events_out\":%" PRIu64 ",",
          first ? events_out : delta(events_out, prev_events_out_));
  Appendf(&body, "\"d_punctuations_in\":%" PRIu64 ",",
          first ? punctuations_in
                : delta(punctuations_in, prev_punctuations_in_));
  Appendf(&body, "\"d_queue_wait_count\":%" PRIu64 ",",
          delta(queue_wait.count(), first ? 0 : prev_queue_wait_count_));
  Appendf(&body, "\"d_queue_wait_sum_ns\":%" PRIu64 ",",
          delta(queue_wait.sum(), first ? 0 : prev_queue_wait_sum_));
  Appendf(&body, "\"queue_wait_p99_ns\":%" PRIu64 ",", queue_wait.P99());
  Appendf(&body, "\"queue_depth\":%" PRIu64 ",", queue_depth);
  Appendf(&body, "\"memory_current_bytes\":%" PRIu64 ",", memory_current);
  Appendf(&body, "\"max_watermark_lag\":%" PRId64 ",", max_lag);
  Appendf(&body, "\"span_ring_drops\":%" PRIu64 ",",
          counters_.span_ring_drops);
  body += "\"shards\":[";
  prev_shard_events_in_.resize(shards.size(), 0);
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardMetrics& s = shards[i];
    if (i > 0) body += ",";
    Appendf(&body,
            "{\"shard\":%zu,\"d_events_in\":%" PRIu64
            ",\"queue_depth\":%zu,\"max_watermark_lag\":%" PRId64 "}",
            s.shard,
            first ? s.events_in : delta(s.events_in, prev_shard_events_in_[i]),
            s.queue_depth, s.max_watermark_lag);
    prev_shard_events_in_[i] = s.events_in;
  }
  body += "]}";

  prev_frames_in_ = frames_in;
  prev_events_in_ = events_in;
  prev_events_out_ = events_out;
  prev_punctuations_in_ = punctuations_in;
  prev_queue_wait_count_ = queue_wait.count();
  prev_queue_wait_sum_ = queue_wait.sum();
  have_prev_ = true;
  return body;
}

void TelemetryExporter::Tick(bool force_metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  ++ticks_;
  bool want_spans = false;
  bool want_metrics = false;
  for (const Subscription& sub : subs_) {
    if (sub.streams & kTelemetrySpans) want_spans = true;
    if (sub.streams & kTelemetryMetrics) want_metrics = true;
  }
  if (want_spans) {
    // Harvest only while someone is listening: an idle exporter leaves
    // the rings for the one-shot dump path.
    std::vector<std::string> bodies;
    trace::DrainStats stats;
    trace::HarvestChunks(options_.max_chunk_bytes, &bodies, &stats);
    counters_.spans_exported += stats.spans;
    counters_.span_ring_drops += stats.dropped;
    for (const std::string& body : bodies) {
      FanOutLocked(kTelemetrySpans, body);
    }
  }
  if (want_metrics && (force_metrics || ticks_ % metrics_every_ == 0)) {
    const std::string body = BuildMetricsDeltaLocked();
    ++counters_.metrics_deltas;
    FanOutLocked(kTelemetryMetrics, body);
  }
}

void TelemetryExporter::NoteDump(uint64_t chunks_sent,
                                 uint64_t chunks_dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.dump_chunks += chunks_sent;
  if (chunks_dropped > 0) ++counters_.dump_truncated;
}

TelemetryMetrics TelemetryExporter::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  TelemetryMetrics c = counters_;
  c.subscribers = subs_.size();
  return c;
}

}  // namespace server
}  // namespace impatience
