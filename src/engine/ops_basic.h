// Order-insensitive operators: selection, projection, window (paper §IV-A).
//
// These are exactly the operators that may run *before* the sorting
// operator under sort-as-needed execution: they process rows in arbitrary
// order without changing their semantics, and each one makes the deferred
// sort cheaper — Where reduces the row count, Project the row width, and
// Window the disorder.

#ifndef IMPATIENCE_ENGINE_OPS_BASIC_H_
#define IMPATIENCE_ENGINE_OPS_BASIC_H_

#include <array>
#include <cstdint>
#include <utility>

#include "common/check.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

// Selection: marks rows failing the predicate in the batch's filter bitmap
// (Trill-style; rows are not compacted). Pred is callable as
// bool(const EventBatch<W>&, size_t row).
template <int W, typename Pred>
class WhereOp : public Operator<W, W> {
 public:
  explicit WhereOp(Pred pred) : pred_(std::move(pred)) {}

  void OnBatch(const EventBatch<W>& batch) override {
    EventBatch<W> out = batch;
    for (size_t i = 0; i < out.size(); ++i) {
      if (!out.filtered.Test(i) && !pred_(out, i)) out.filtered.Set(i);
    }
    this->EmitBatch(out);
  }

  void OnPunctuation(Timestamp t) override { this->EmitPunctuation(t); }
  void OnFlush() override { this->EmitFlush(); }

 private:
  Pred pred_;
};

// Projection: keeps `WOut` payload columns of the input, chosen by
// `column_map` (output column c takes input column column_map[c]).
// Timestamps, key, hash, and the filter bitmap pass through.
template <int WIn, int WOut>
class ProjectOp : public Operator<WIn, WOut> {
 public:
  explicit ProjectOp(std::array<int, WOut> column_map)
      : column_map_(column_map) {
    for (int c : column_map_) IMPATIENCE_CHECK(c >= 0 && c < WIn);
  }

  void OnBatch(const EventBatch<WIn>& batch) override {
    EventBatch<WOut> out;
    out.sync_time = batch.sync_time;
    out.other_time = batch.other_time;
    out.key = batch.key;
    out.hash = batch.hash;
    for (int c = 0; c < WOut; ++c) {
      out.payload[c] = batch.payload[static_cast<size_t>(column_map_[c])];
    }
    out.filtered = batch.filtered;
    this->EmitBatch(out);
  }

  void OnPunctuation(Timestamp t) override { this->EmitPunctuation(t); }
  void OnFlush() override { this->EmitFlush(); }

 private:
  std::array<int, WOut> column_map_;
};

// Per-row payload transform with unchanged width; useful for rekeying
// (e.g. the paper's `Select(e => e.AdId)` which regroups by a payload
// field). Fn is callable as void(EventBatch<W>*, size_t row).
template <int W, typename Fn>
class MapOp : public Operator<W, W> {
 public:
  explicit MapOp(Fn fn) : fn_(std::move(fn)) {}

  void OnBatch(const EventBatch<W>& batch) override {
    EventBatch<W> out = batch;
    for (size_t i = 0; i < out.size(); ++i) {
      if (!out.filtered.Test(i)) fn_(&out, i);
    }
    this->EmitBatch(out);
  }

  void OnPunctuation(Timestamp t) override { this->EmitPunctuation(t); }
  void OnFlush() override { this->EmitFlush(); }

 private:
  Fn fn_;
};

// Window assignment by timestamp adjustment (paper §IV-A2): aligns
// sync_time down to a window-start boundary (multiples of `hop`) and sets
// other_time to window start + `size`. Tumbling windows are hop == size.
// Trill's key trick is that this is a stateless timestamp rewrite, so it
// can be pushed below the sort, where it *reduces* disorder: all events in
// one hop interval collapse onto one timestamp (Proposition 3.2).
template <int W>
class WindowOp : public Operator<W, W> {
 public:
  WindowOp(Timestamp size, Timestamp hop) : size_(size), hop_(hop) {
    IMPATIENCE_CHECK(size > 0 && hop > 0);
  }
  explicit WindowOp(Timestamp size) : WindowOp(size, size) {}

  void OnBatch(const EventBatch<W>& batch) override {
    EventBatch<W> out = batch;
    for (size_t i = 0; i < out.size(); ++i) {
      const Timestamp start = AlignDown(out.sync_time[i]);
      out.sync_time[i] = start;
      out.other_time[i] = start + size_;
    }
    this->EmitBatch(out);
  }

  void OnPunctuation(Timestamp t) override {
    // A promise about raw timestamps is weaker about aligned ones: events
    // with raw time > t can land in the window containing t. The strongest
    // claim after alignment is "no more windows starting at or before
    // AlignDown(t) - hop"... conservatively forward the aligned boundary
    // minus one so a window is only sealed once the *next* hop begins.
    this->EmitPunctuation(AlignDown(t) - 1);
  }

  void OnFlush() override { this->EmitFlush(); }

 private:
  Timestamp AlignDown(Timestamp t) const {
    Timestamp aligned = t - (t % hop_);
    if (t < 0 && (t % hop_) != 0) aligned -= hop_;  // Floor for negatives.
    return aligned;
  }

  Timestamp size_;
  Timestamp hop_;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_OPS_BASIC_H_
