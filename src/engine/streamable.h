// The fluent query API: sort-as-needed execution (paper §IV).
//
// A DisorderedStreamable wraps a stream that is NOT ordered by event time.
// It exposes only the order-insensitive operators — Where, Select/Project,
// Map, Window — so the type system enforces the paper's rule that
// order-sensitive operators cannot run before the sort. ToStreamable()
// inserts the sorting operator and yields a Streamable, which adds the
// order-sensitive operators (aggregation, top-k, pattern matching).
//
// A QueryPipeline owns the graph and the ingress:
//
//   QueryPipeline<4> q({.punctuation_period = 10000, .reorder_latency = 1s});
//   auto* sink = q.disordered()
//                    .Where([](const auto& b, size_t i) { ... })
//                    .Window(1 * kSecond)
//                    .ToStreamable()
//                    .GroupCount()
//                    .Collect();
//   q.Run(dataset.events);

#ifndef IMPATIENCE_ENGINE_STREAMABLE_H_
#define IMPATIENCE_ENGINE_STREAMABLE_H_

#include <array>
#include <memory>
#include <utility>

#include "common/memory_tracker.h"
#include "engine/batch.h"
#include "engine/ingress.h"
#include "engine/node.h"
#include "engine/ops_aggregate.h"
#include "engine/ops_basic.h"
#include "engine/ops_join.h"
#include "engine/ops_pattern.h"
#include "engine/ops_session.h"
#include "engine/ops_snapshot.h"
#include "engine/ops_sort.h"
#include "engine/ops_union.h"
#include "engine/sinks.h"
#include "sort/impatience_sorter.h"

namespace impatience {

// Shared state behind the streamable facades.
struct QueryContext {
  Graph graph;
  MemoryTracker* tracker = nullptr;
  size_t batch_size = kDefaultBatchSize;
};

template <int W>
class Streamable;

// A not-yet-ordered stream: order-insensitive operators only.
template <int W>
class DisorderedStreamable {
 public:
  DisorderedStreamable(std::shared_ptr<QueryContext> ctx, Emitter<W>* tail)
      : ctx_(std::move(ctx)), tail_(tail) {}

  // Selection (predicate over a batch row).
  template <typename Pred>
  DisorderedStreamable Where(Pred pred) {
    auto* op = ctx_->graph.Make<WhereOp<W, Pred>>(std::move(pred));
    tail_->SetDownstream(op);
    return DisorderedStreamable(ctx_, op);
  }

  // In-place payload/key rewrite.
  template <typename Fn>
  DisorderedStreamable Map(Fn fn) {
    auto* op = ctx_->graph.Make<MapOp<W, Fn>>(std::move(fn));
    tail_->SetDownstream(op);
    return DisorderedStreamable(ctx_, op);
  }

  // Projection to `V` payload columns.
  template <int V>
  DisorderedStreamable<V> Select(std::array<int, V> columns) {
    auto* op = ctx_->graph.Make<ProjectOp<W, V>>(columns);
    tail_->SetDownstream(op);
    return DisorderedStreamable<V>(ctx_, op);
  }

  // Window assignment by timestamp adjustment.
  DisorderedStreamable TumblingWindow(Timestamp size) {
    auto* op = ctx_->graph.Make<WindowOp<W>>(size);
    tail_->SetDownstream(op);
    return DisorderedStreamable(ctx_, op);
  }
  DisorderedStreamable HoppingWindow(Timestamp size, Timestamp hop) {
    auto* op = ctx_->graph.Make<WindowOp<W>>(size, hop);
    tail_->SetDownstream(op);
    return DisorderedStreamable(ctx_, op);
  }

  // Inserts the sorting operator: the disordered stream becomes ordered.
  Streamable<W> ToStreamable(ImpatienceConfig config = {});

  // Same, with a caller-supplied sorter (any IncrementalSorter).
  Streamable<W> ToStreamableWith(
      std::unique_ptr<IncrementalSorter<BasicEvent<W>>> sorter);

  std::shared_ptr<QueryContext> context() const { return ctx_; }
  Emitter<W>* tail() const { return tail_; }

 private:
  std::shared_ptr<QueryContext> ctx_;
  Emitter<W>* tail_;
};

// An event-time-ordered stream: all operators available.
template <int W>
class Streamable {
 public:
  Streamable(std::shared_ptr<QueryContext> ctx, Emitter<W>* tail)
      : ctx_(std::move(ctx)), tail_(tail) {}

  template <typename Pred>
  Streamable Where(Pred pred) {
    auto* op = ctx_->graph.Make<WhereOp<W, Pred>>(std::move(pred));
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  template <typename Fn>
  Streamable Map(Fn fn) {
    auto* op = ctx_->graph.Make<MapOp<W, Fn>>(std::move(fn));
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  template <int V>
  Streamable<V> Select(std::array<int, V> columns) {
    auto* op = ctx_->graph.Make<ProjectOp<W, V>>(columns);
    tail_->SetDownstream(op);
    return Streamable<V>(ctx_, op);
  }

  Streamable TumblingWindow(Timestamp size) {
    auto* op = ctx_->graph.Make<WindowOp<W>>(size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }
  Streamable HoppingWindow(Timestamp size, Timestamp hop) {
    auto* op = ctx_->graph.Make<WindowOp<W>>(size, hop);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // Per-(window, key) count; one result row per group per window.
  Streamable GroupCount() {
    auto* op = ctx_->graph.Make<GroupAggregateOp<W, CountAggregate>>(
        ctx_->batch_size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // Per-window total count (all rows collapse into group key 0).
  Streamable Count() {
    return Map([](EventBatch<W>* batch, size_t i) {
             batch->key[i] = 0;
             batch->hash[i] = HashKey(0);
           })
        .GroupCount();
  }

  // Per-(window, key) sum of payload column `Column`.
  template <int Column>
  Streamable GroupSum() {
    auto* op =
        ctx_->graph.Make<GroupAggregateOp<W, SumAggregate<Column>>>(
            ctx_->batch_size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // Per-group count over validity intervals (snapshot semantics): after a
  // HoppingWindow, this yields the per-hop sliding-window counts.
  Streamable SnapshotCount() {
    auto* op = ctx_->graph.Make<SnapshotCountOp<W>>(ctx_->batch_size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // Further per-(window, key) aggregates over payload column `Column`.
  template <int Column>
  Streamable GroupMin() {
    return Aggregate<MinAggregate<Column>>();
  }
  template <int Column>
  Streamable GroupMax() {
    return Aggregate<MaxAggregate<Column>>();
  }
  template <int Column>
  Streamable GroupAvg() {
    return Aggregate<AvgAggregate<Column>>();
  }
  template <int Column>
  Streamable GroupDistinctCount() {
    return Aggregate<DistinctCountAggregate<Column>>();
  }

  // Grouped aggregation with a caller-supplied aggregate policy (see
  // ops_aggregate.h for the policy shape).
  template <typename Agg>
  Streamable Aggregate() {
    auto* op =
        ctx_->graph.Make<GroupAggregateOp<W, Agg>>(ctx_->batch_size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // Combines partial aggregates with equal (window, key) — the framework's
  // merge step.
  Streamable CombinePartials() {
    auto* op = ctx_->graph.Make<CombinePartialsOp<W>>(ctx_->batch_size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // Keeps the k largest rows (by payload[0]) per window.
  Streamable TopK(size_t k) {
    auto* op = ctx_->graph.Make<TopKOp<W>>(k, ctx_->batch_size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // Splits the stream into two identical branches (e.g. the two sides of
  // a self-join). Each branch accepts exactly one continuation.
  std::pair<Streamable, Streamable> Fork() {
    auto* tee = ctx_->graph.Make<TeeOp<W>>();
    tail_->SetDownstream(tee);
    auto* a = ctx_->graph.Make<TeeBranch<W>>(tee);
    auto* b = ctx_->graph.Make<TeeBranch<W>>(tee);
    return {Streamable(ctx_, a), Streamable(ctx_, b)};
  }

  // Gap-based session windows per key: one summary event per session
  // (payload[0] = count, payload[1] = duration).
  Streamable SessionWindows(Timestamp gap) {
    auto* op = ctx_->graph.Make<SessionWindowOp<W>>(gap, ctx_->batch_size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // Temporal equi-join with another ordered stream (same context):
  // matches equal keys with overlapping validity intervals; `combine`
  // builds the result row from the (left, right) pair.
  template <typename CombineFn>
  Streamable Join(const Streamable& right, CombineFn combine) {
    IMPATIENCE_CHECK_MSG(ctx_ == right.ctx_,
                         "joined streams must share a QueryPipeline");
    auto* op = ctx_->graph.Make<JoinOp<W, CombineFn>>(
        std::move(combine), ctx_->tracker, ctx_->batch_size);
    tail_->SetDownstream(op->input(0));
    right.tail_->SetDownstream(op->input(1));
    return Streamable(ctx_, op);
  }

  // "A then B within window" per key.
  template <typename PredA, typename PredB>
  Streamable PatternMatch(PredA a, PredB b, Timestamp window) {
    auto* op = ctx_->graph.Make<PatternMatchOp<W, PredA, PredB>>(
        std::move(a), std::move(b), window, ctx_->batch_size);
    tail_->SetDownstream(op);
    return Streamable(ctx_, op);
  }

  // ---- Terminals -------------------------------------------------------

  // Attaches an externally owned sink.
  void Into(Sink<W>* sink) { tail_->SetDownstream(sink); }

  // Collects results into a graph-owned CollectSink.
  CollectSink<W>* Collect() {
    auto* sink = ctx_->graph.Make<CollectSink<W>>();
    tail_->SetDownstream(sink);
    return sink;
  }

  // Counts results into a graph-owned CountingSink.
  CountingSink<W>* ToCounting() {
    auto* sink = ctx_->graph.Make<CountingSink<W>>();
    tail_->SetDownstream(sink);
    return sink;
  }

  // Invokes `cb` per result row.
  template <typename Cb>
  void Subscribe(Cb cb) {
    auto* sink = ctx_->graph.Make<CallbackSink<W>>(std::move(cb));
    tail_->SetDownstream(sink);
  }

  std::shared_ptr<QueryContext> context() const { return ctx_; }
  Emitter<W>* tail() const { return tail_; }

 private:
  std::shared_ptr<QueryContext> ctx_;
  Emitter<W>* tail_;
};

template <int W>
Streamable<W> DisorderedStreamable<W>::ToStreamable(ImpatienceConfig config) {
  auto* op = ctx_->graph.Make<SortOp<W>>(config, ctx_->tracker);
  tail_->SetDownstream(op);
  return Streamable<W>(ctx_, op);
}

template <int W>
Streamable<W> DisorderedStreamable<W>::ToStreamableWith(
    std::unique_ptr<IncrementalSorter<BasicEvent<W>>> sorter) {
  auto* op = ctx_->graph.Make<SortOp<W>>(std::move(sorter), ctx_->tracker,
                                         ctx_->batch_size);
  tail_->SetDownstream(op);
  return Streamable<W>(ctx_, op);
}

// Owns one query: the context/graph plus the ingress that feeds it.
template <int W>
class QueryPipeline {
 public:
  explicit QueryPipeline(typename Ingress<W>::Options options,
                         MemoryTracker* tracker = nullptr)
      : ctx_(std::make_shared<QueryContext>()) {
    ctx_->tracker = tracker;
    ctx_->batch_size = options.batch_size;
    ingress_ = ctx_->graph.Make<Ingress<W>>(options);
  }

  // The raw (arrival-ordered) stream entering the engine.
  DisorderedStreamable<W> disordered() {
    return DisorderedStreamable<W>(ctx_, ingress_);
  }

  Ingress<W>& ingress() { return *ingress_; }

  // Streams a whole dataset through the pipeline and flushes.
  void Run(const std::vector<BasicEvent<W>>& events) {
    ingress_->PushAll(events);
    ingress_->Finish();
  }

  std::shared_ptr<QueryContext> context() const { return ctx_; }

 private:
  std::shared_ptr<QueryContext> ctx_;
  Ingress<W>* ingress_;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_STREAMABLE_H_
