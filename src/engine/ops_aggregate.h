// Windowed grouped aggregation over in-order streams.
//
// These operators assume their input is ordered by sync_time (the sorting
// operator guarantees this), so their state is one window deep: a hash map
// from group key to aggregate state for the current window, flushed the
// moment the stream moves past it. This is what makes the advanced
// Impatience framework memory-light — per-band PIQ operators reduce raw
// events to one row per (window, group) before anything is buffered for
// synchronization (paper §V-B).
//
// GroupAggregateOp applies an aggregate policy per (window, key).
// CombinePartialsOp merges partial aggregates that meet again after a
// union (the framework's "merge function"). TopKOp selects the k largest
// results per window.

#ifndef IMPATIENCE_ENGINE_OPS_AGGREGATE_H_
#define IMPATIENCE_ENGINE_OPS_AGGREGATE_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/event.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

// ---------------------------------------------------------------------------
// Aggregate policies. A policy defines per-group State plus Add/Value.

// COUNT(*) per group.
struct CountAggregate {
  using State = int64_t;
  static constexpr State Init() { return 0; }
  template <int W>
  static void Add(State* s, const EventBatch<W>& batch, size_t row) {
    (void)batch;
    (void)row;
    ++*s;
  }
  static int32_t Value(const State& s) {
    return static_cast<int32_t>(s);
  }
};

// SUM(payload[Column]) per group.
template <int Column>
struct SumAggregate {
  using State = int64_t;
  static constexpr State Init() { return 0; }
  template <int W>
  static void Add(State* s, const EventBatch<W>& batch, size_t row) {
    static_assert(Column >= 0 && Column < W);
    *s += batch.payload[Column][row];
  }
  static int32_t Value(const State& s) {
    return static_cast<int32_t>(s);
  }
};

// MIN(payload[Column]) per group.
template <int Column>
struct MinAggregate {
  using State = int64_t;
  static constexpr State Init() { return INT64_MAX; }
  template <int W>
  static void Add(State* s, const EventBatch<W>& batch, size_t row) {
    static_assert(Column >= 0 && Column < W);
    *s = std::min<int64_t>(*s, batch.payload[Column][row]);
  }
  static int32_t Value(const State& s) {
    return static_cast<int32_t>(s);
  }
};

// AVG(payload[Column]) per group, rounded toward zero.
template <int Column>
struct AvgAggregate {
  struct State {
    int64_t sum = 0;
    int64_t count = 0;
  };
  static State Init() { return {}; }
  template <int W>
  static void Add(State* s, const EventBatch<W>& batch, size_t row) {
    static_assert(Column >= 0 && Column < W);
    s->sum += batch.payload[Column][row];
    ++s->count;
  }
  static int32_t Value(const State& s) {
    return s.count == 0 ? 0 : static_cast<int32_t>(s.sum / s.count);
  }
};

// COUNT(DISTINCT payload[Column]) per group.
template <int Column>
struct DistinctCountAggregate {
  using State = std::unordered_set<int32_t>;
  static State Init() { return {}; }
  template <int W>
  static void Add(State* s, const EventBatch<W>& batch, size_t row) {
    static_assert(Column >= 0 && Column < W);
    s->insert(batch.payload[Column][row]);
  }
  static int32_t Value(const State& s) {
    return static_cast<int32_t>(s.size());
  }
};

// MAX(payload[Column]) per group.
template <int Column>
struct MaxAggregate {
  using State = int64_t;
  static constexpr State Init() { return INT64_MIN; }
  template <int W>
  static void Add(State* s, const EventBatch<W>& batch, size_t row) {
    static_assert(Column >= 0 && Column < W);
    *s = std::max<int64_t>(*s, batch.payload[Column][row]);
  }
  static int32_t Value(const State& s) {
    return static_cast<int32_t>(s);
  }
};

// ---------------------------------------------------------------------------

// Grouped aggregation keyed on the event's `key` field, one window at a
// time. Emits one event per (window, group): sync/other time = the window,
// key = the group, payload[0] = the aggregate value.
template <int W, typename Agg>
class GroupAggregateOp : public Operator<W, W> {
 public:
  explicit GroupAggregateOp(size_t batch_size = kDefaultBatchSize)
      : builder_(batch_size) {}

  void OnBatch(const EventBatch<W>& batch) override {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      const Timestamp t = batch.sync_time[i];
      IMPATIENCE_CHECK_MSG(t >= window_start_ || groups_.empty(),
                           "GroupAggregateOp requires an in-order input");
      if (!groups_.empty() && t > window_start_) FlushWindow();
      if (groups_.empty()) {
        window_start_ = t;
        window_end_ = batch.other_time[i];
      }
      auto [it, inserted] = groups_.try_emplace(batch.key[i], Agg::Init());
      Agg::template Add<W>(&it->second, batch, i);
    }
  }

  void OnPunctuation(Timestamp t) override {
    // No more events with sync_time <= t: the current window is complete
    // once its start is covered by the promise.
    if (!groups_.empty() && window_start_ <= t) FlushWindow();
    builder_.Flush(this->downstream());
    this->EmitPunctuation(t);
  }

  void OnFlush() override {
    if (!groups_.empty()) FlushWindow();
    builder_.Flush(this->downstream());
    this->EmitFlush();
  }

 private:
  void FlushWindow() {
    // Deterministic emission order: ascending group key.
    keys_.clear();
    keys_.reserve(groups_.size());
    for (const auto& [key, state] : groups_) keys_.push_back(key);
    std::sort(keys_.begin(), keys_.end());
    for (const int32_t key : keys_) {
      BasicEvent<W> e;
      e.sync_time = window_start_;
      e.other_time = window_end_;
      e.key = key;
      e.hash = HashKey(key);
      e.payload[0] = Agg::Value(groups_.at(key));
      builder_.Append(e, this->downstream());
    }
    groups_.clear();
  }

  Timestamp window_start_ = kMinTimestamp;
  Timestamp window_end_ = kMinTimestamp;
  std::unordered_map<int32_t, typename Agg::State> groups_;
  std::vector<int32_t> keys_;
  BatchBuilder<W> builder_;
};

// Merges partial aggregates: adjacent events with equal (sync_time, key)
// are combined by summing payload[0] (the natural merge for count/sum
// partials). Used as the framework's merge step after a union.
template <int W>
class CombinePartialsOp : public Operator<W, W> {
 public:
  explicit CombinePartialsOp(size_t batch_size = kDefaultBatchSize)
      : builder_(batch_size) {}

  void OnBatch(const EventBatch<W>& batch) override {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      const Timestamp t = batch.sync_time[i];
      IMPATIENCE_CHECK_MSG(t >= window_start_ || partials_.empty(),
                           "CombinePartialsOp requires an in-order input");
      if (!partials_.empty() && t > window_start_) FlushWindow();
      window_start_ = t;
      auto [it, inserted] = partials_.try_emplace(batch.key[i]);
      if (inserted) {
        it->second = batch.RowAt(i);
      } else {
        it->second.payload[0] += batch.payload[0][i];
      }
    }
  }

  void OnPunctuation(Timestamp t) override {
    if (!partials_.empty() && window_start_ <= t) FlushWindow();
    builder_.Flush(this->downstream());
    this->EmitPunctuation(t);
  }

  void OnFlush() override {
    if (!partials_.empty()) FlushWindow();
    builder_.Flush(this->downstream());
    this->EmitFlush();
  }

 private:
  void FlushWindow() {
    keys_.clear();
    keys_.reserve(partials_.size());
    for (const auto& [key, e] : partials_) keys_.push_back(key);
    std::sort(keys_.begin(), keys_.end());
    for (const int32_t key : keys_) {
      builder_.Append(partials_.at(key), this->downstream());
    }
    partials_.clear();
  }

  Timestamp window_start_ = kMinTimestamp;
  std::unordered_map<int32_t, BasicEvent<W>> partials_;
  std::vector<int32_t> keys_;
  BatchBuilder<W> builder_;
};

// Per-window top-k selection by payload[0] (descending; key ascending as a
// deterministic tiebreak). Pass the aggregate stream through this to get
// Q4-style "top 5 groups per window" results.
template <int W>
class TopKOp : public Operator<W, W> {
 public:
  explicit TopKOp(size_t k, size_t batch_size = kDefaultBatchSize)
      : k_(k), builder_(batch_size) {
    IMPATIENCE_CHECK(k > 0);
  }

  void OnBatch(const EventBatch<W>& batch) override {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      const Timestamp t = batch.sync_time[i];
      IMPATIENCE_CHECK_MSG(t >= window_start_ || rows_.empty(),
                           "TopKOp requires an in-order input");
      if (!rows_.empty() && t > window_start_) FlushWindow();
      window_start_ = t;
      rows_.push_back(batch.RowAt(i));
    }
  }

  void OnPunctuation(Timestamp t) override {
    if (!rows_.empty() && window_start_ <= t) FlushWindow();
    builder_.Flush(this->downstream());
    this->EmitPunctuation(t);
  }

  void OnFlush() override {
    if (!rows_.empty()) FlushWindow();
    builder_.Flush(this->downstream());
    this->EmitFlush();
  }

 private:
  void FlushWindow() {
    auto better = [](const BasicEvent<W>& a, const BasicEvent<W>& b) {
      if (a.payload[0] != b.payload[0]) return a.payload[0] > b.payload[0];
      return a.key < b.key;
    };
    const size_t take = std::min(k_, rows_.size());
    std::partial_sort(rows_.begin(),
                      rows_.begin() + static_cast<ptrdiff_t>(take),
                      rows_.end(), better);
    for (size_t i = 0; i < take; ++i) {
      builder_.Append(rows_[i], this->downstream());
    }
    rows_.clear();
  }

  size_t k_;
  Timestamp window_start_ = kMinTimestamp;
  std::vector<BasicEvent<W>> rows_;
  BatchBuilder<W> builder_;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_OPS_AGGREGATE_H_
