// Ingress: feeds an arrival-ordered event stream into a pipeline.
//
// Batches events columnar-style and injects punctuations the way the paper
// describes (§III-A): every `punctuation_period` events, a punctuation is
// emitted carrying (high watermark - reorder_latency). The reorder latency
// is therefore the single-stream knob trading latency against completeness;
// the Impatience framework replaces it with a whole set of latencies.

#ifndef IMPATIENCE_ENGINE_INGRESS_H_
#define IMPATIENCE_ENGINE_INGRESS_H_

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/event.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

template <int W>
class Ingress : public Emitter<W> {
 public:
  struct Options {
    // Events between consecutive punctuations.
    size_t punctuation_period = 10000;
    // Subtracted from the high watermark to form punctuation timestamps.
    Timestamp reorder_latency = 0;
    size_t batch_size = kDefaultBatchSize;
  };

  explicit Ingress(Options options) : options_(options) {
    IMPATIENCE_CHECK(options.punctuation_period > 0);
    IMPATIENCE_CHECK(options.batch_size > 0);
  }

  void SetDownstream(Sink<W>* downstream) override {
    IMPATIENCE_CHECK(downstream_ == nullptr);
    downstream_ = downstream;
  }

  // Pushes one event (arrival order = call order).
  void Push(const BasicEvent<W>& e) {
    IMPATIENCE_DCHECK(downstream_ != nullptr);
    if (pending_.empty()) pending_.Reserve(options_.batch_size);
    pending_.AppendEvent(e);
    high_watermark_ = std::max(high_watermark_, e.sync_time);
    ++since_punctuation_;
    if (pending_.size() >= options_.batch_size) FlushBatch();
    if (since_punctuation_ >= options_.punctuation_period) {
      since_punctuation_ = 0;
      const Timestamp p = high_watermark_ - options_.reorder_latency;
      if (p > last_punctuation_) {
        FlushBatch();
        downstream_->OnPunctuation(p);
        last_punctuation_ = p;
      }
    }
  }

  // Pushes a whole arrival-ordered stream.
  void PushAll(const std::vector<BasicEvent<W>>& events) {
    for (const BasicEvent<W>& e : events) Push(e);
  }

  // Ends the stream: remaining rows are batched out and the pipeline is
  // flushed (operators treat this as an infinite punctuation).
  void Finish() {
    FlushBatch();
    downstream_->OnFlush();
  }

  // Pushes any partially filled batch downstream without ending the
  // stream. Long-lived drivers (the server's shard workers) call this
  // after draining a burst so events do not sit in a half-filled batch
  // until the next burst arrives.
  void FlushPending() { FlushBatch(); }

  Timestamp high_watermark() const { return high_watermark_; }
  Timestamp last_punctuation() const { return last_punctuation_; }

 private:
  void FlushBatch() {
    if (pending_.empty()) return;
    pending_.SealFilter();
    downstream_->OnBatch(pending_);
    pending_.Clear();
  }

  Options options_;
  Sink<W>* downstream_ = nullptr;
  EventBatch<W> pending_;
  Timestamp high_watermark_ = kMinTimestamp;
  Timestamp last_punctuation_ = kMinTimestamp;
  size_t since_punctuation_ = 0;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_INGRESS_H_
