// The dataflow node model: push-based operators over columnar batches.
//
// A pipeline is a DAG of nodes. Data flows downstream through three calls:
//   OnBatch(batch)        — a batch of events;
//   OnPunctuation(t)      — promise that no event with sync_time <= t
//                           follows (§III-A);
//   OnFlush()             — end of stream (an implicit infinite
//                           punctuation precedes it).
//
// Nodes are single-threaded, mirroring the paper's single-thread
// evaluation; the Graph owns every node. The one sanctioned exception is
// band-parallel framework execution (framework/impatience_framework.h):
// each band's share-nothing subplan runs on a pool task between fork/join
// barriers, and every individual node is still only ever driven by one
// thread at a time.

#ifndef IMPATIENCE_ENGINE_NODE_H_
#define IMPATIENCE_ENGINE_NODE_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/timestamp.h"
#include "engine/batch.h"

namespace impatience {

// Type-erased base so one Graph can own nodes of any width.
class AnyNode {
 public:
  virtual ~AnyNode() = default;
};

// Receives a stream of batches with `W` payload columns.
template <int W>
class Sink : public virtual AnyNode {
 public:
  virtual void OnBatch(const EventBatch<W>& batch) = 0;
  virtual void OnPunctuation(Timestamp t) = 0;
  virtual void OnFlush() = 0;
};

// Produces a stream of batches with `W` payload columns.
template <int W>
class Emitter : public virtual AnyNode {
 public:
  // Must be called exactly once before data flows.
  virtual void SetDownstream(Sink<W>* downstream) = 0;
};

// Common base for 1-in/1-out operators: holds the downstream pointer and
// provides forwarding helpers. Subclasses implement the Sink<WIn> methods.
template <int WIn, int WOut>
class Operator : public Sink<WIn>, public Emitter<WOut> {
 public:
  void SetDownstream(Sink<WOut>* downstream) override {
    IMPATIENCE_CHECK_MSG(downstream_ == nullptr,
                         "downstream attached twice");
    downstream_ = downstream;
  }

 protected:
  Sink<WOut>* downstream() const {
    IMPATIENCE_DCHECK(downstream_ != nullptr);
    return downstream_;
  }

  void EmitBatch(const EventBatch<WOut>& batch) {
    if (!batch.empty()) downstream_->OnBatch(batch);
  }
  void EmitPunctuation(Timestamp t) { downstream_->OnPunctuation(t); }
  void EmitFlush() { downstream_->OnFlush(); }

 private:
  Sink<WOut>* downstream_ = nullptr;
};

// Owns the nodes of a pipeline DAG. The fluent Streamable API (see
// streamable.h) adds nodes as the query is composed; ownership stays here
// so intermediate Streamable values can be discarded freely.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // Transfers ownership of `node` to the graph and returns the raw pointer
  // for wiring.
  template <typename Node>
  Node* Own(std::unique_ptr<Node> node) {
    Node* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  template <typename Node, typename... Args>
  Node* Make(Args&&... args) {
    return Own(std::make_unique<Node>(std::forward<Args>(args)...));
  }

  size_t node_count() const { return nodes_.size(); }

 private:
  std::vector<std::unique_ptr<AnyNode>> nodes_;
};

// A buffering helper that accumulates rows and emits fixed-size batches
// downstream; used by operators whose output cardinality differs from
// their input (sort, aggregate, union).
template <int W>
class BatchBuilder {
 public:
  explicit BatchBuilder(size_t batch_size = kDefaultBatchSize)
      : batch_size_(batch_size) {}

  void Append(const BasicEvent<W>& e, Sink<W>* downstream) {
    if (pending_.empty()) pending_.Reserve(batch_size_);
    pending_.AppendEvent(e);
    if (pending_.size() >= batch_size_) Flush(downstream);
  }

  // Sends any buffered rows downstream. Call before forwarding a
  // punctuation so ordering with respect to control messages is preserved.
  void Flush(Sink<W>* downstream) {
    if (pending_.empty()) return;
    pending_.SealFilter();
    downstream->OnBatch(pending_);
    pending_.Clear();
  }

 private:
  size_t batch_size_;
  EventBatch<W> pending_;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_NODE_H_
