// Session windows: gap-based grouping of an in-order stream.
//
// Consecutive events of the same key belong to one session while the gap
// between them stays below `gap`; a session closes when the stream (or a
// punctuation) passes its last event by `gap`. One summary event is
// emitted per session: sync_time/other_time span the session, key is the
// group, payload[0] = event count, payload[1] = session duration (capped
// to int32). A common log-analytics primitive and a natural consumer of
// the sorting operator — it is meaningless on a disordered stream.
//
// Ordering: summaries carry the session *start* as sync_time, but a
// session only closes when its end is known; as in SnapshotCountOp,
// closed summaries pass through a release gate at the earliest
// still-open session start so the output stays in order, and forwarded
// punctuations are weakened to that gate.

#ifndef IMPATIENCE_ENGINE_OPS_SESSION_H_
#define IMPATIENCE_ENGINE_OPS_SESSION_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/event.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

template <int W>
class SessionWindowOp : public Operator<W, W> {
 public:
  explicit SessionWindowOp(Timestamp gap,
                           size_t batch_size = kDefaultBatchSize)
      : gap_(gap), builder_(batch_size) {
    IMPATIENCE_CHECK(gap > 0);
  }

  void OnBatch(const EventBatch<W>& batch) override {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      const Timestamp t = batch.sync_time[i];
      IMPATIENCE_CHECK_MSG(t >= frontier_,
                           "SessionWindowOp requires an in-order input");
      frontier_ = t;
      // An event at time t cannot extend sessions idle for >= gap.
      CloseSessionsGivenStreamAt(t);

      auto [it, inserted] = open_.try_emplace(batch.key[i]);
      Session& session = it->second;
      if (inserted) {
        session.start = t;
        session.last = t;
        session.count = 1;
      } else {
        session.last = t;
        ++session.count;
      }
    }
    Release();
  }

  void OnPunctuation(Timestamp t) override {
    // Future events are > t, so sessions idle since t + 1 - gap close.
    if (t == kMaxTimestamp) {
      CloseSessionsGivenStreamAt(kMaxTimestamp);
    } else {
      CloseSessionsGivenStreamAt(t + 1);
    }
    Release();
    builder_.Flush(this->downstream());
    // Open sessions will emit summaries at their start: weaken the
    // promise accordingly. (With no open sessions, future summaries start
    // strictly after t, so the full promise stands.)
    Timestamp out_punct = t;
    for (const auto& [key, session] : open_) {
      out_punct = std::min(out_punct, session.start - 1);
    }
    if (out_punct > forwarded_punct_) {
      this->EmitPunctuation(out_punct);
      forwarded_punct_ = out_punct;
    }
  }

  void OnFlush() override {
    CloseSessionsGivenStreamAt(kMaxTimestamp);
    Release();
    builder_.Flush(this->downstream());
    this->EmitFlush();
  }

  // Sessions currently open (for tests and memory introspection).
  size_t open_sessions() const { return open_.size(); }

 private:
  struct Session {
    Timestamp start = 0;
    Timestamp last = 0;
    int64_t count = 0;
  };

  // Closes every session that cannot be extended once the stream has
  // reached `t` (exclusive), i.e. whose last event is at least `gap`
  // behind.
  void CloseSessionsGivenStreamAt(Timestamp t) {
    for (auto it = open_.begin(); it != open_.end();) {
      const Session& session = it->second;
      const bool close =
          t == kMaxTimestamp || session.last <= t - gap_;
      if (!close) {
        ++it;
        continue;
      }
      BasicEvent<W> e;
      e.sync_time = session.start;
      e.other_time = session.last + 1;  // Half-open span.
      e.key = it->first;
      e.hash = HashKey(it->first);
      e.payload[0] = static_cast<int32_t>(session.count);
      e.payload[1 % W] = static_cast<int32_t>(
          std::min<Timestamp>(session.last - session.start, INT32_MAX));
      ready_.emplace(session.start, e);
      it = open_.erase(it);
    }
  }

  // Future summaries start at or after this timestamp.
  Timestamp ReleaseGate() const {
    Timestamp gate = frontier_ == kMinTimestamp ? kMaxTimestamp : frontier_;
    for (const auto& [key, session] : open_) {
      gate = std::min(gate, session.start);
    }
    return gate;
  }

  void Release() {
    const Timestamp gate = ReleaseGate();
    while (!ready_.empty() && ready_.begin()->first <= gate) {
      builder_.Append(ready_.begin()->second, this->downstream());
      ready_.erase(ready_.begin());
    }
  }

  Timestamp gap_;
  Timestamp frontier_ = kMinTimestamp;
  Timestamp forwarded_punct_ = kMinTimestamp;
  std::map<int32_t, Session> open_;
  std::multimap<Timestamp, BasicEvent<W>> ready_;
  BatchBuilder<W> builder_;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_OPS_SESSION_H_
