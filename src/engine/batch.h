// Columnar event batches — the engine's unit of data flow.
//
// Following Trill (paper §I-A, §VI-C), events move through the engine in
// columnar batches: one vector per field plus a filter bitmap. A selection
// operator only marks bits; downstream operators skip marked rows but still
// scan past them, which is why the paper's Figure 9(a) speedups are below
// the ideal 1/selectivity.

#ifndef IMPATIENCE_ENGINE_BATCH_H_
#define IMPATIENCE_ENGINE_BATCH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/check.h"
#include "common/event.h"
#include "common/timestamp.h"

namespace impatience {

// Default number of rows per batch.
inline constexpr size_t kDefaultBatchSize = 4096;

// A batch of events with `W` payload columns, stored column-major.
template <int W>
struct EventBatch {
  std::vector<Timestamp> sync_time;
  std::vector<Timestamp> other_time;
  std::vector<int32_t> key;
  std::vector<uint64_t> hash;
  std::array<std::vector<int32_t>, W> payload;
  // filtered.Test(i) == true means row i has been logically deleted.
  BitVector filtered;

  size_t size() const { return sync_time.size(); }
  bool empty() const { return sync_time.empty(); }

  void Reserve(size_t rows) {
    sync_time.reserve(rows);
    other_time.reserve(rows);
    key.reserve(rows);
    hash.reserve(rows);
    for (auto& col : payload) col.reserve(rows);
  }

  void Clear() {
    sync_time.clear();
    other_time.clear();
    key.clear();
    hash.clear();
    for (auto& col : payload) col.clear();
    filtered.Resize(0);
  }

  // Appends one event as a new unfiltered row. The filter bitmap must be
  // (re)sized by SealFilter() after the last append.
  void AppendEvent(const BasicEvent<W>& e) {
    sync_time.push_back(e.sync_time);
    other_time.push_back(e.other_time);
    key.push_back(e.key);
    hash.push_back(e.hash);
    for (int c = 0; c < W; ++c) payload[c].push_back(e.payload[c]);
  }

  // Sizes the filter bitmap to the current row count (all bits clear).
  void SealFilter() { filtered.Resize(size()); }

  // Materializes row `i` as an event struct.
  BasicEvent<W> RowAt(size_t i) const {
    IMPATIENCE_DCHECK(i < size());
    BasicEvent<W> e;
    e.sync_time = sync_time[i];
    e.other_time = other_time[i];
    e.key = key[i];
    e.hash = hash[i];
    for (int c = 0; c < W; ++c) e.payload[c] = payload[c][i];
    return e;
  }

  // Number of live (unfiltered) rows.
  size_t LiveCount() const { return size() - filtered.CountSet(); }

  // Approximate heap footprint, for memory accounting.
  size_t MemoryBytes() const {
    size_t bytes = (sync_time.capacity() + other_time.capacity()) *
                       sizeof(Timestamp) +
                   key.capacity() * sizeof(int32_t) +
                   hash.capacity() * sizeof(uint64_t) +
                   filtered.MemoryBytes();
    for (const auto& col : payload) bytes += col.capacity() * sizeof(int32_t);
    return bytes;
  }
};

// Builds a batch from a row span. All rows unfiltered.
template <int W>
EventBatch<W> MakeBatch(const std::vector<BasicEvent<W>>& events,
                        size_t begin, size_t end) {
  IMPATIENCE_DCHECK(begin <= end && end <= events.size());
  EventBatch<W> batch;
  batch.Reserve(end - begin);
  for (size_t i = begin; i < end; ++i) batch.AppendEvent(events[i]);
  batch.SealFilter();
  return batch;
}

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_BATCH_H_
