// Sequence-pattern detection over in-order streams (paper §V-C, query 2):
// "key did A, then B, within `window` time units".
//
// A match emits one event at the B occurrence. The operator keeps, per
// group key, the most recent A timestamp, and prunes entries that can no
// longer match whenever a punctuation passes.

#ifndef IMPATIENCE_ENGINE_OPS_PATTERN_H_
#define IMPATIENCE_ENGINE_OPS_PATTERN_H_

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/event.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

// PredA / PredB are callable as bool(const EventBatch<W>&, size_t row).
template <int W, typename PredA, typename PredB>
class PatternMatchOp : public Operator<W, W> {
 public:
  PatternMatchOp(PredA pred_a, PredB pred_b, Timestamp window,
                 size_t batch_size = kDefaultBatchSize)
      : pred_a_(std::move(pred_a)),
        pred_b_(std::move(pred_b)),
        window_(window),
        builder_(batch_size) {
    IMPATIENCE_CHECK(window > 0);
  }

  void OnBatch(const EventBatch<W>& batch) override {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      const Timestamp t = batch.sync_time[i];
      const int32_t key = batch.key[i];
      if (pred_b_(batch, i)) {
        const auto it = last_a_.find(key);
        if (it != last_a_.end() && t - it->second <= window_ &&
            t >= it->second) {
          BasicEvent<W> match = batch.RowAt(i);
          // payload[2] records the A->B gap for the consumer.
          match.payload[2 % W] = static_cast<int32_t>(t - it->second);
          builder_.Append(match, this->downstream());
          ++matches_;
        }
      }
      // B may itself be an A for a later B (e.g. X then X patterns).
      if (pred_a_(batch, i)) last_a_[key] = t;
    }
  }

  void OnPunctuation(Timestamp t) override {
    // Entries older than t - window can never match again: every future B
    // has sync_time > t.
    for (auto it = last_a_.begin(); it != last_a_.end();) {
      if (it->second + window_ < t) {
        it = last_a_.erase(it);
      } else {
        ++it;
      }
    }
    builder_.Flush(this->downstream());
    this->EmitPunctuation(t);
  }

  void OnFlush() override {
    builder_.Flush(this->downstream());
    last_a_.clear();
    this->EmitFlush();
  }

  // Total matches emitted so far.
  uint64_t matches() const { return matches_; }

 private:
  PredA pred_a_;
  PredB pred_b_;
  Timestamp window_;
  BatchBuilder<W> builder_;
  std::unordered_map<int32_t, Timestamp> last_a_;
  uint64_t matches_ = 0;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_OPS_PATTERN_H_
