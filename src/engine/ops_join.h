// Temporal equi-join of two in-order streams.
//
// Joins events with equal keys whose validity intervals
// [sync_time, other_time) overlap — Trill's join semantic, and the classic
// order-sensitive operator the paper's sort-based architecture exists to
// serve: both inputs must be in event-time order, which the sorting
// operator (or the Impatience framework) guarantees.
//
// Implementation: a symmetric hash join synchronized like UnionMergeOp.
// Events are processed in global sync_time order up to the joint
// watermark; each processed event probes the opposite side's per-key state
// for overlapping intervals and emits one result per match, with
// sync_time = the later start and other_time = the earlier end. Because
// events are processed in global order, results leave in order too.
// State is pruned as the joint watermark advances past interval ends.

#ifndef IMPATIENCE_ENGINE_OPS_JOIN_H_
#define IMPATIENCE_ENGINE_OPS_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/event.h"
#include "common/memory_tracker.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

// Combines a matching (left, right) pair into one result row.
// CombineFn is callable as BasicEvent<W>(const BasicEvent<W>& left,
// const BasicEvent<W>& right); the operator overwrites the result's
// sync_time/other_time with the intersection and key/hash with the join
// key.
template <int W, typename CombineFn>
class JoinOp : public Emitter<W> {
 public:
  explicit JoinOp(CombineFn combine, MemoryTracker* tracker = nullptr,
                  size_t batch_size = kDefaultBatchSize)
      : combine_(std::move(combine)),
        reservation_(tracker),
        builder_(batch_size),
        inputs_{InputPort(this, 0), InputPort(this, 1)} {}

  // The sink for input stream `i` (0 = left, 1 = right).
  Sink<W>* input(int i) {
    IMPATIENCE_CHECK(i == 0 || i == 1);
    return &inputs_[i];
  }

  void SetDownstream(Sink<W>* downstream) override {
    IMPATIENCE_CHECK(downstream_ == nullptr);
    downstream_ = downstream;
  }

  // Join results produced so far.
  uint64_t matches() const { return matches_; }

 private:
  struct Side {
    std::deque<BasicEvent<W>> pending;  // Not yet processed (in order).
    Timestamp watermark = kMinTimestamp;
    bool flushed = false;
    // Processed, still-joinable events by key.
    std::unordered_map<int32_t, std::vector<BasicEvent<W>>> open;
    size_t open_count = 0;

    Timestamp effective_watermark() const {
      return flushed ? kMaxTimestamp : watermark;
    }
  };

  class InputPort : public Sink<W> {
   public:
    InputPort(JoinOp* parent, int index) : parent_(parent), index_(index) {}
    void OnBatch(const EventBatch<W>& batch) override {
      parent_->HandleBatch(index_, batch);
    }
    void OnPunctuation(Timestamp t) override {
      parent_->HandlePunctuation(index_, t);
    }
    void OnFlush() override { parent_->HandleFlush(index_); }

   private:
    JoinOp* parent_;
    int index_;
  };

  void HandleBatch(int index, const EventBatch<W>& batch) {
    Side& side = sides_[index];
    IMPATIENCE_CHECK(!side.flushed);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      IMPATIENCE_DCHECK(side.pending.empty() ||
                        side.pending.back().sync_time <= batch.sync_time[i]);
      side.pending.push_back(batch.RowAt(i));
    }
    UpdateReservation();
  }

  void HandlePunctuation(int index, Timestamp t) {
    sides_[index].watermark = std::max(sides_[index].watermark, t);
    Process();
  }

  void HandleFlush(int index) {
    sides_[index].flushed = true;
    Process();
    if (sides_[0].flushed && sides_[1].flushed) {
      builder_.Flush(downstream_);
      downstream_->OnFlush();
    }
  }

  // Processes pending events from both sides in global sync order up to
  // the joint watermark, probing and updating the per-key state.
  void Process() {
    const Timestamp limit = std::min(sides_[0].effective_watermark(),
                                     sides_[1].effective_watermark());
    if (limit == kMinTimestamp) return;
    auto ready = [limit](const Side& s) {
      return !s.pending.empty() && s.pending.front().sync_time <= limit;
    };
    while (true) {
      const bool r0 = ready(sides_[0]);
      const bool r1 = ready(sides_[1]);
      if (!r0 && !r1) break;
      int pick = 0;
      if (r0 && r1) {
        pick = sides_[0].pending.front().sync_time <=
                       sides_[1].pending.front().sync_time
                   ? 0
                   : 1;
      } else if (r1) {
        pick = 1;
      }
      BasicEvent<W> e = sides_[pick].pending.front();
      sides_[pick].pending.pop_front();
      ProcessEvent(pick, e);
    }
    UpdateReservation();
    if (limit > emitted_watermark_ && limit != kMaxTimestamp) {
      builder_.Flush(downstream_);
      downstream_->OnPunctuation(limit);
      emitted_watermark_ = limit;
    }
  }

  void ProcessEvent(int index, const BasicEvent<W>& e) {
    if (e.other_time <= e.sync_time) return;  // Empty interval: no joins.
    Side& mine = sides_[index];
    Side& other = sides_[1 - index];

    // Probe the opposite side. Stored events started at or before e, so
    // overlap reduces to "still open when e starts".
    const auto it = other.open.find(e.key);
    if (it != other.open.end()) {
      std::vector<BasicEvent<W>>& candidates = it->second;
      size_t w = 0;
      for (size_t r = 0; r < candidates.size(); ++r) {
        const BasicEvent<W>& o = candidates[r];
        if (o.other_time <= e.sync_time) {
          --other.open_count;  // Expired: prune opportunistically.
          continue;
        }
        Emit(index == 0 ? e : o, index == 0 ? o : e);
        if (w != r) candidates[w] = candidates[r];
        ++w;
      }
      candidates.resize(w);
      if (candidates.empty()) other.open.erase(it);
    }

    mine.open[e.key].push_back(e);
    ++mine.open_count;
  }

  void Emit(const BasicEvent<W>& left, const BasicEvent<W>& right) {
    BasicEvent<W> result = combine_(left, right);
    result.sync_time = std::max(left.sync_time, right.sync_time);
    result.other_time = std::min(left.other_time, right.other_time);
    result.key = left.key;
    result.hash = left.hash;
    builder_.Append(result, downstream_);
    ++matches_;
  }

  void UpdateReservation() {
    reservation_.Update(
        (sides_[0].pending.size() + sides_[1].pending.size() +
         sides_[0].open_count + sides_[1].open_count) *
        sizeof(BasicEvent<W>));
  }

  CombineFn combine_;
  MemoryReservation reservation_;
  BatchBuilder<W> builder_;
  InputPort inputs_[2];
  Side sides_[2];
  Sink<W>* downstream_ = nullptr;
  Timestamp emitted_watermark_ = kMinTimestamp;
  uint64_t matches_ = 0;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_OPS_JOIN_H_
