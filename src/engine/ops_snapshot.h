// Snapshot (interval) aggregation — the Trill semantic underlying hopping
// windows.
//
// Each event contributes to the result over its validity interval
// [sync_time, other_time). A snapshot aggregate maintains, per group, the
// count of currently-valid events and emits one result event per maximal
// interval with a constant positive count. The paper's hopping-window
// example (§IV-A2) produces exactly such interval events; running them
// through SnapshotCountOp yields per-hop sliding-window counts.
//
// Ordering: a segment becomes *final* when its end boundary is reached,
// but it must be emitted in sync_time (start) order relative to other
// groups' segments. Finalized segments therefore pass through a small
// reorder stage gated by the minimum start among still-open segments, and
// the forwarded punctuation is weakened to that gate.

#ifndef IMPATIENCE_ENGINE_OPS_SNAPSHOT_H_
#define IMPATIENCE_ENGINE_OPS_SNAPSHOT_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/event.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

// Per-group COUNT over validity intervals. Emits one event per (group,
// maximal constant-count interval): sync_time/other_time delimit the
// interval, key is the group, payload[0] the count. Zero-count intervals
// emit nothing.
template <int W>
class SnapshotCountOp : public Operator<W, W> {
 public:
  explicit SnapshotCountOp(size_t batch_size = kDefaultBatchSize)
      : builder_(batch_size) {}

  void OnBatch(const EventBatch<W>& batch) override {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      const Timestamp start = batch.sync_time[i];
      const Timestamp end = batch.other_time[i];
      IMPATIENCE_CHECK_MSG(start >= frontier_,
                           "SnapshotCountOp requires an in-order input");
      // Boundaries before `start` are final now (in-order input).
      AdvanceTo(start);
      if (end <= start) continue;  // Empty validity interval.
      GroupState& gs = groups_[batch.key[i]];
      gs.deltas[start] += 1;
      gs.deltas[end] -= 1;
    }
  }

  void OnPunctuation(Timestamp t) override {
    // No event will start at or before t: boundaries <= t are final.
    if (t < kMaxTimestamp) {
      AdvanceTo(t + 1);
    } else {
      AdvanceTo(kMaxTimestamp);
    }
    // The strongest promise we can forward stops short of the earliest
    // still-open segment.
    const Timestamp gate = ReleaseGate();
    const Timestamp out_punct = std::min(t, gate - 1);
    if (out_punct > forwarded_punct_) {
      builder_.Flush(this->downstream());
      this->EmitPunctuation(out_punct);
      forwarded_punct_ = out_punct;
    }
  }

  void OnFlush() override {
    AdvanceTo(kMaxTimestamp);
    // Segments still open at the end of the stream close at infinity.
    for (auto& [key, gs] : groups_) {
      if (gs.running > 0) {
        ready_.emplace(gs.seg_start,
                       MakeResult(key, gs.seg_start, kMaxTimestamp,
                                  gs.running));
      }
    }
    groups_.clear();
    ReleaseReady(kMaxTimestamp);
    builder_.Flush(this->downstream());
    this->EmitFlush();
  }

 private:
  struct GroupState {
    // boundary -> count change at that instant (starts +1, ends -1).
    std::map<Timestamp, int64_t> deltas;
    // The in-progress segment: `running` valid events since `seg_start`
    // (meaningful only when running > 0).
    int64_t running = 0;
    Timestamp seg_start = kMinTimestamp;
  };

  static BasicEvent<W> MakeResult(int32_t key, Timestamp start,
                                  Timestamp end, int64_t count) {
    BasicEvent<W> e;
    e.sync_time = start;
    e.other_time = end;
    e.key = key;
    e.hash = HashKey(key);
    e.payload[0] = static_cast<int32_t>(count);
    return e;
  }

  // Finalizes all segments ending before `limit` and releases every
  // finalized segment that can no longer be preceded.
  void AdvanceTo(Timestamp limit) {
    if (limit <= frontier_) return;
    for (auto it = groups_.begin(); it != groups_.end();) {
      GroupState& gs = it->second;
      while (!gs.deltas.empty() && gs.deltas.begin()->first < limit) {
        const Timestamp boundary = gs.deltas.begin()->first;
        if (gs.running > 0 && boundary > gs.seg_start) {
          ready_.emplace(gs.seg_start, MakeResult(it->first, gs.seg_start,
                                                  boundary, gs.running));
        }
        gs.running += gs.deltas.begin()->second;
        gs.deltas.erase(gs.deltas.begin());
        gs.seg_start = boundary;
      }
      IMPATIENCE_DCHECK(gs.running >= 0);
      if (gs.deltas.empty() && gs.running == 0) {
        it = groups_.erase(it);
      } else {
        ++it;
      }
    }
    frontier_ = limit;
    ReleaseReady(ReleaseGate());
  }

  // Future segments start at or after this timestamp.
  Timestamp ReleaseGate() const {
    Timestamp gate = frontier_;
    for (const auto& [key, gs] : groups_) {
      if (gs.running > 0) gate = std::min(gate, gs.seg_start);
    }
    return gate;
  }

  void ReleaseReady(Timestamp gate) {
    while (!ready_.empty() && ready_.begin()->first <= gate) {
      builder_.Append(ready_.begin()->second, this->downstream());
      ready_.erase(ready_.begin());
    }
  }

  Timestamp frontier_ = kMinTimestamp;
  Timestamp forwarded_punct_ = kMinTimestamp;
  std::map<int32_t, GroupState> groups_;
  // Finalized segments waiting for the release gate, keyed by start.
  std::multimap<Timestamp, BasicEvent<W>> ready_;
  BatchBuilder<W> builder_;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_OPS_SNAPSHOT_H_
