// Union of two in-order streams (paper §V-A), plus a Tee splitter.
//
// UnionMergeOp merges two sorted streams into one sorted stream. It is the
// framework's synchronization point: an event from the fast input cannot be
// released until the slow input's punctuation proves nothing earlier is
// still coming, so the fast input's events are buffered meanwhile. The
// bytes buffered here are exactly the memory cost Figure 10(b)/(d)
// measures — large when raw events are buffered (basic framework), small
// when only partial aggregates are (advanced framework).

#ifndef IMPATIENCE_ENGINE_OPS_UNION_H_
#define IMPATIENCE_ENGINE_OPS_UNION_H_

#include <algorithm>
#include <deque>
#include <vector>

#include "common/check.h"
#include "common/event.h"
#include "common/memory_tracker.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

// Two-input synchronizing merge. Wire producers to input(0) and input(1).
template <int W>
class UnionMergeOp : public Emitter<W> {
 public:
  explicit UnionMergeOp(MemoryTracker* tracker = nullptr,
                        size_t batch_size = kDefaultBatchSize)
      : reservation_(tracker),
        builder_(batch_size),
        inputs_{InputPort(this, 0), InputPort(this, 1)} {}

  // The sink for input stream `i` (0 or 1).
  Sink<W>* input(int i) {
    IMPATIENCE_CHECK(i == 0 || i == 1);
    return &inputs_[i];
  }

  void SetDownstream(Sink<W>* downstream) override {
    IMPATIENCE_CHECK(downstream_ == nullptr);
    downstream_ = downstream;
  }

 private:
  struct Side {
    std::deque<BasicEvent<W>> buffer;
    Timestamp watermark = kMinTimestamp;
    bool flushed = false;

    Timestamp effective_watermark() const {
      return flushed ? kMaxTimestamp : watermark;
    }
  };

  // Adapter giving each input its own Sink identity.
  class InputPort : public Sink<W> {
   public:
    InputPort(UnionMergeOp* parent, int index)
        : parent_(parent), index_(index) {}
    void OnBatch(const EventBatch<W>& batch) override {
      parent_->HandleBatch(index_, batch);
    }
    void OnPunctuation(Timestamp t) override {
      parent_->HandlePunctuation(index_, t);
    }
    void OnFlush() override { parent_->HandleFlush(index_); }

   private:
    UnionMergeOp* parent_;
    int index_;
  };

  void HandleBatch(int index, const EventBatch<W>& batch) {
    Side& side = sides_[index];
    IMPATIENCE_CHECK(!side.flushed);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      IMPATIENCE_DCHECK(side.buffer.empty() ||
                        side.buffer.back().sync_time <= batch.sync_time[i]);
      side.buffer.push_back(batch.RowAt(i));
    }
    UpdateReservation();
  }

  void HandlePunctuation(int index, Timestamp t) {
    Side& side = sides_[index];
    side.watermark = std::max(side.watermark, t);
    Drain();
  }

  void HandleFlush(int index) {
    sides_[index].flushed = true;
    Drain();
    if (sides_[0].flushed && sides_[1].flushed) {
      builder_.Flush(downstream_);
      downstream_->OnFlush();
    }
  }

  // Emits every buffered event at or before min(watermarks), in merged
  // order, then forwards the joint punctuation.
  void Drain() {
    const Timestamp limit = std::min(sides_[0].effective_watermark(),
                                     sides_[1].effective_watermark());
    if (limit == kMinTimestamp) return;
    auto ready = [limit](const Side& s) {
      return !s.buffer.empty() && s.buffer.front().sync_time <= limit;
    };
    while (true) {
      const bool r0 = ready(sides_[0]);
      const bool r1 = ready(sides_[1]);
      if (!r0 && !r1) break;
      int pick = 0;
      if (r0 && r1) {
        // Ties go to input 0 (the lower-latency stream in the framework).
        pick = sides_[0].buffer.front().sync_time <=
                       sides_[1].buffer.front().sync_time
                   ? 0
                   : 1;
      } else if (r1) {
        pick = 1;
      }
      builder_.Append(sides_[pick].buffer.front(), downstream_);
      sides_[pick].buffer.pop_front();
    }
    UpdateReservation();
    if (limit > emitted_watermark_ && limit != kMaxTimestamp) {
      builder_.Flush(downstream_);
      downstream_->OnPunctuation(limit);
      emitted_watermark_ = limit;
    }
  }

  void UpdateReservation() {
    reservation_.Update((sides_[0].buffer.size() + sides_[1].buffer.size()) *
                        sizeof(BasicEvent<W>));
  }

  MemoryReservation reservation_;
  BatchBuilder<W> builder_;
  InputPort inputs_[2];
  Side sides_[2];
  Sink<W>* downstream_ = nullptr;
  Timestamp emitted_watermark_ = kMinTimestamp;
};

template <int W>
class TeeOp;

// Emitter facade for one branch of a TeeOp: SetDownstream attaches a new
// branch instead of replacing the single downstream, so each branch can be
// wired through the ordinary Emitter interface.
template <int W>
class TeeBranch : public Emitter<W> {
 public:
  explicit TeeBranch(TeeOp<W>* tee) : tee_(tee) {}
  void SetDownstream(Sink<W>* downstream) override;

 private:
  TeeOp<W>* tee_;
};

// Replicates a stream to several downstream sinks, in attachment order.
template <int W>
class TeeOp : public Sink<W>, public Emitter<W> {
 public:
  // Emitter interface: first attachment.
  void SetDownstream(Sink<W>* downstream) override {
    AddDownstream(downstream);
  }

  // Additional branches.
  void AddDownstream(Sink<W>* downstream) {
    IMPATIENCE_CHECK(downstream != nullptr);
    downstreams_.push_back(downstream);
  }

  void OnBatch(const EventBatch<W>& batch) override {
    for (Sink<W>* s : downstreams_) s->OnBatch(batch);
  }
  void OnPunctuation(Timestamp t) override {
    for (Sink<W>* s : downstreams_) s->OnPunctuation(t);
  }
  void OnFlush() override {
    for (Sink<W>* s : downstreams_) s->OnFlush();
  }

 private:
  std::vector<Sink<W>*> downstreams_;
};

template <int W>
void TeeBranch<W>::SetDownstream(Sink<W>* downstream) {
  tee_->AddDownstream(downstream);
}

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_OPS_UNION_H_
