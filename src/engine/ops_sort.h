// The sorting operator: the bridge from disordered to in-order streams.
//
// Consumes batches in arrival order, buffers live rows in an
// IncrementalSorter (Impatience sort by default), and on every punctuation
// emits the released events in sync_time order. All operators downstream of
// this node see an in-order stream and can be ordinary in-order operators —
// the heart of the paper's sort-based architecture.

#ifndef IMPATIENCE_ENGINE_OPS_SORT_H_
#define IMPATIENCE_ENGINE_OPS_SORT_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/event.h"
#include "common/memory_tracker.h"
#include "engine/batch.h"
#include "engine/node.h"
#include "sort/impatience_sorter.h"
#include "sort/sorter.h"

namespace impatience {

template <int W>
class SortOp : public Operator<W, W> {
 public:
  using Element = BasicEvent<W>;

  // Takes ownership of the sorter. `tracker` (optional) accounts the
  // sorter's buffered bytes.
  explicit SortOp(std::unique_ptr<IncrementalSorter<Element>> sorter,
                  MemoryTracker* tracker = nullptr,
                  size_t batch_size = kDefaultBatchSize)
      : sorter_(std::move(sorter)),
        reservation_(tracker),
        builder_(batch_size) {}

  // Convenience: an Impatience-sort operator.
  explicit SortOp(ImpatienceConfig config = {},
                  MemoryTracker* tracker = nullptr)
      : SortOp(std::make_unique<ImpatienceSorter<Element>>(config),
               tracker) {}

  void OnBatch(const EventBatch<W>& batch) override {
    // The selection bitmap is resolved here: filtered rows are dropped and
    // never buffered (but every bitmap bit is still inspected — the cost
    // the paper points out in §VI-C).
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      sorter_->Push(batch.RowAt(i));
    }
    reservation_.Update(sorter_->MemoryBytes());
  }

  void OnPunctuation(Timestamp t) override {
    released_.clear();
    sorter_->OnPunctuation(t, &released_);
    for (const Element& e : released_) {
      builder_.Append(e, this->downstream());
    }
    builder_.Flush(this->downstream());
    reservation_.Update(sorter_->MemoryBytes());
    this->EmitPunctuation(t);
  }

  void OnFlush() override {
    released_.clear();
    sorter_->Flush(&released_);
    for (const Element& e : released_) {
      builder_.Append(e, this->downstream());
    }
    builder_.Flush(this->downstream());
    reservation_.Update(sorter_->MemoryBytes());
    this->EmitPunctuation(kMaxTimestamp);
    this->EmitFlush();
  }

  // Events dropped for arriving at or before a past punctuation.
  uint64_t late_drops() const { return sorter_->late_drops(); }

  const IncrementalSorter<Element>& sorter() const { return *sorter_; }

  // Mutable access for maintenance that does not affect the stream —
  // counter snapshot-and-reset from the metrics path.
  IncrementalSorter<Element>* mutable_sorter() { return sorter_.get(); }

 private:
  std::unique_ptr<IncrementalSorter<Element>> sorter_;
  MemoryReservation reservation_;
  BatchBuilder<W> builder_;
  std::vector<Element> released_;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_OPS_SORT_H_
