// Terminal sinks: collect, count, callback.

#ifndef IMPATIENCE_ENGINE_SINKS_H_
#define IMPATIENCE_ENGINE_SINKS_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/event.h"
#include "engine/batch.h"
#include "engine/node.h"

namespace impatience {

// Gathers every live row (and the punctuation trail) into vectors; the
// workhorse sink for tests. Verifies that the stream it receives is
// in-order and consistent with its punctuations.
template <int W>
class CollectSink : public Sink<W> {
 public:
  void OnBatch(const EventBatch<W>& batch) override {
    IMPATIENCE_CHECK(!flushed_);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      const Timestamp t = batch.sync_time[i];
      IMPATIENCE_CHECK_MSG(events_.empty() || events_.back().sync_time <= t,
                           "sink received an out-of-order stream");
      IMPATIENCE_CHECK_MSG(t > watermark_ || watermark_ == kMinTimestamp,
                           "sink received an event behind the watermark");
      events_.push_back(batch.RowAt(i));
    }
  }

  void OnPunctuation(Timestamp t) override {
    IMPATIENCE_CHECK(!flushed_);
    IMPATIENCE_CHECK_MSG(t >= watermark_, "punctuation went backwards");
    watermark_ = t;
    punctuations_.push_back(t);
  }

  void OnFlush() override { flushed_ = true; }

  const std::vector<BasicEvent<W>>& events() const { return events_; }
  const std::vector<Timestamp>& punctuations() const {
    return punctuations_;
  }
  bool flushed() const { return flushed_; }

 private:
  std::vector<BasicEvent<W>> events_;
  std::vector<Timestamp> punctuations_;
  Timestamp watermark_ = kMinTimestamp;
  bool flushed_ = false;
};

// Counts rows without retaining them; used by throughput benchmarks so the
// sink cost is negligible.
template <int W>
class CountingSink : public Sink<W> {
 public:
  void OnBatch(const EventBatch<W>& batch) override {
    count_ += batch.LiveCount();
    ++batches_;
  }
  void OnPunctuation(Timestamp t) override {
    ++punctuations_;
    watermark_ = t;
  }
  void OnFlush() override { flushed_ = true; }

  uint64_t count() const { return count_; }
  uint64_t batches() const { return batches_; }
  uint64_t punctuations() const { return punctuations_; }
  Timestamp watermark() const { return watermark_; }
  bool flushed() const { return flushed_; }

 private:
  uint64_t count_ = 0;
  uint64_t batches_ = 0;
  uint64_t punctuations_ = 0;
  Timestamp watermark_ = kMinTimestamp;
  bool flushed_ = false;
};

// Measures result latency in event time: for every received row, the
// distance between a supplied clock — typically the ingress/partition high
// watermark — and the row's sync_time. On framework output stream i the
// mean lag is ≈ reorder_latencies[i] plus the punctuation cadence, which
// makes the latency column of the paper's Table II measurable rather than
// assumed.
template <int W>
class LatencySink : public Sink<W> {
 public:
  using Clock = std::function<Timestamp()>;

  explicit LatencySink(Clock clock) : clock_(std::move(clock)) {}

  void OnBatch(const EventBatch<W>& batch) override {
    const Timestamp now = clock_();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.filtered.Test(i)) continue;
      const Timestamp lag = now - batch.sync_time[i];
      ++count_;
      total_lag_ += lag;
      if (lag > max_lag_) max_lag_ = lag;
    }
  }
  void OnPunctuation(Timestamp) override {}
  void OnFlush() override { flushed_ = true; }

  uint64_t count() const { return count_; }
  Timestamp max_lag() const { return max_lag_; }
  double mean_lag() const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(total_lag_) /
                     static_cast<double>(count_);
  }
  bool flushed() const { return flushed_; }

 private:
  Clock clock_;
  uint64_t count_ = 0;
  int64_t total_lag_ = 0;
  Timestamp max_lag_ = kMinTimestamp;
  bool flushed_ = false;
};

// Invokes a callback per live row — the engine's Subscribe().
template <int W>
class CallbackSink : public Sink<W> {
 public:
  using Callback = std::function<void(const BasicEvent<W>&)>;

  explicit CallbackSink(Callback callback)
      : callback_(std::move(callback)) {}

  void OnBatch(const EventBatch<W>& batch) override {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!batch.filtered.Test(i)) callback_(batch.RowAt(i));
    }
  }
  void OnPunctuation(Timestamp) override {}
  void OnFlush() override {}

 private:
  Callback callback_;
};

}  // namespace impatience

#endif  // IMPATIENCE_ENGINE_SINKS_H_
