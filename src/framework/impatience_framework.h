// The Impatience framework (paper §V): multiple reorder latencies at once.
//
// Instead of one reorder latency, the user supplies an increasing set, e.g.
// {1 s, 1 min, 1 hour}. A partition operator routes each event by its
// lateness (high watermark at arrival minus event time) to the first band
// whose latency covers it; each band incrementally sorts its own slice; and
// a chain of synchronizing unions recombines the bands so that output
// stream i contains every event no later than latency i, in order, with
// latency i (Figure 6(a)).
//
// The advanced framework (Figure 6(b)) embeds user query logic:
//  * a PIQ (Partial Input Query) stage runs on each band's sorted slice —
//    each input event is processed exactly once (throughput), and
//  * a merge stage recombines partial results after each union — so the
//    unions buffer small intermediate results instead of raw events
//    (memory).
// Passing identity stages yields the basic framework.

#ifndef IMPATIENCE_FRAMEWORK_IMPATIENCE_FRAMEWORK_H_
#define IMPATIENCE_FRAMEWORK_IMPATIENCE_FRAMEWORK_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/event.h"
#include "common/histogram.h"
#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "engine/batch.h"
#include "engine/node.h"
#include "engine/ops_sort.h"
#include "engine/ops_union.h"
#include "engine/streamable.h"
#include "sort/impatience_sorter.h"

namespace impatience {

// Framework configuration.
struct FrameworkOptions {
  // Strictly increasing reorder latencies, one per output stream.
  std::vector<Timestamp> reorder_latencies;
  // Events between consecutive punctuation rounds at the partition.
  size_t punctuation_period = 10000;
  ImpatienceConfig sorter_config;
  // Run each band's subplan (sort + PIQ) as a pool task per punctuation
  // round. Bands are share-nothing up to the union chain; a staging
  // operator per band captures the subplan's output and replays it in
  // band order after the join, so the combined output is identical to
  // sequential execution.
  bool parallel_bands = false;
  // Pool for band tasks; nullptr means the process-global pool.
  ThreadPool* thread_pool = nullptr;
};

// Buffers every message a band's subplan emits during a parallel round so
// the single-threaded union chain can consume them after the fork/join
// barrier. One writer (the band task) fills it; Replay() drains it on the
// coordinating thread.
template <int W>
class BandStageOp : public Operator<W, W> {
 public:
  void OnBatch(const EventBatch<W>& batch) override {
    msgs_.push_back(Msg{MsgKind::kBatch, batch, kMinTimestamp});
  }
  void OnPunctuation(Timestamp t) override {
    msgs_.push_back(Msg{MsgKind::kPunctuation, {}, t});
  }
  void OnFlush() override {
    msgs_.push_back(Msg{MsgKind::kFlush, {}, kMinTimestamp});
  }

  // Forwards the buffered messages downstream in arrival order.
  void Replay() {
    TRACE_SPAN("framework.band_replay");
    for (Msg& m : msgs_) {
      switch (m.kind) {
        case MsgKind::kBatch:
          this->downstream()->OnBatch(m.batch);
          break;
        case MsgKind::kPunctuation:
          this->downstream()->OnPunctuation(m.t);
          break;
        case MsgKind::kFlush:
          this->downstream()->OnFlush();
          break;
      }
    }
    msgs_.clear();
  }

 private:
  enum class MsgKind { kBatch, kPunctuation, kFlush };
  struct Msg {
    MsgKind kind;
    EventBatch<W> batch;
    Timestamp t;
  };
  std::vector<Msg> msgs_;
};

// Routes events to latency bands and self-punctuates each band at
// (high watermark - band latency) every `punctuation_period` events.
// Upstream punctuations are absorbed: the partition is the authority on
// band-level progress.
template <int W>
class PartitionOp : public Sink<W> {
 public:
  PartitionOp(std::vector<Timestamp> latencies, size_t punctuation_period,
              size_t batch_size)
      : latencies_(std::move(latencies)),
        punctuation_period_(punctuation_period) {
    IMPATIENCE_CHECK(!latencies_.empty());
    for (size_t i = 1; i < latencies_.size(); ++i) {
      IMPATIENCE_CHECK_MSG(latencies_[i] > latencies_[i - 1],
                           "reorder latencies must be strictly increasing");
    }
    IMPATIENCE_CHECK(punctuation_period_ > 0);
    bands_.reserve(latencies_.size());
    for (size_t i = 0; i < latencies_.size(); ++i) {
      bands_.emplace_back(batch_size);
    }
  }

  // Wires band `i`'s output; must be called for every band before data
  // flows.
  void SetBandDownstream(size_t i, Sink<W>* sink) {
    IMPATIENCE_CHECK(i < bands_.size() && bands_[i].head == nullptr);
    bands_[i].head = sink;
  }

  void OnBatch(const EventBatch<W>& batch) override {
    for (size_t r = 0; r < batch.size(); ++r) {
      if (batch.filtered.Test(r)) continue;
      Route(batch.RowAt(r));
    }
  }

  // Upstream punctuations carry no band information; ignored (see class
  // comment).
  void OnPunctuation(Timestamp) override {}

  void OnFlush() override {
    if (parallel_) {
      TaskGroup group(pool_);
      for (Band& b : bands_) {
        Band* band = &b;
        group.Run([band] {
          band->DeliverPending();
          band->builder.Flush(band->head);
          band->head->OnFlush();
        });
      }
      group.Wait();
      for (BandStageOp<W>* stage : stages_) stage->Replay();
      return;
    }
    for (Band& band : bands_) {
      band.builder.Flush(band.head);
      band.head->OnFlush();
    }
  }

  // Switches to band-parallel execution: events are staged per band and
  // each punctuation round delivers, flushes, and punctuates every band as
  // one pool task, with `stages` (one per band, at the tail of each band's
  // subplan) replayed in band order after the join. Call after all
  // SetBandDownstream wiring and before any data flows.
  void EnableParallelBands(ThreadPool* pool,
                           std::vector<BandStageOp<W>*> stages) {
    IMPATIENCE_CHECK(stages.size() == bands_.size());
    pool_ = pool != nullptr ? pool : &ThreadPool::Global();
    stages_ = std::move(stages);
    parallel_ = true;
  }

  // Runs a punctuation round now, off the usual every-N-events cadence.
  // The server layer calls this when a client punctuation frame arrives,
  // so idle sessions still see results without waiting for the period to
  // fill. Safe at any point: band punctuations only advance.
  void ForcePunctuation() {
    since_punctuation_ = 0;
    PunctuateBands();
  }

  // Events later than the largest latency (discarded).
  uint64_t dropped() const { return dropped_; }
  // Events routed to each band.
  const std::vector<uint64_t>& band_counts() const { return band_counts_; }
  Timestamp high_watermark() const { return high_watermark_; }

  // Event-time punctuation frontier of band `i` (kMinTimestamp before the
  // first round). Band 0 — the tightest latency — is the stream's output
  // frontier; high_watermark() minus this is the event-time watermark lag
  // the server reports.
  Timestamp band_punctuation(size_t i) const {
    IMPATIENCE_CHECK(i < bands_.size());
    return bands_[i].last_punctuation;
  }

  // One sample per punctuation round: nanoseconds to deliver, sort, and
  // emit across every band (including ForcePunctuation rounds).
  const HistogramSnapshot& round_latency() const { return round_latency_; }

 private:
  struct Band {
    explicit Band(size_t batch_size) : builder(batch_size) {}
    BatchBuilder<W> builder;
    Sink<W>* head = nullptr;
    Timestamp last_punctuation = kMinTimestamp;
    // Events staged since the last punctuation round (parallel mode only).
    std::vector<BasicEvent<W>> pending;

    // Appends the staged events in arrival order. SortOp buffers until
    // punctuation, so deferring delivery to the round boundary is
    // invisible downstream.
    void DeliverPending() {
      for (const BasicEvent<W>& e : pending) builder.Append(e, head);
      pending.clear();
    }
  };

  void Route(const BasicEvent<W>& e) {
    if (band_counts_.empty()) band_counts_.resize(bands_.size(), 0);
    if (e.sync_time > high_watermark_) high_watermark_ = e.sync_time;
    const Timestamp lateness = high_watermark_ - e.sync_time;

    size_t band = bands_.size();
    for (size_t i = 0; i < latencies_.size(); ++i) {
      if (lateness <= latencies_[i]) {
        band = i;
        break;
      }
    }
    if (band == bands_.size()) {
      ++dropped_;  // Later than every latency the user asked for.
    } else if (parallel_) {
      bands_[band].pending.push_back(e);
      ++band_counts_[band];
    } else {
      bands_[band].builder.Append(e, bands_[band].head);
      ++band_counts_[band];
    }

    if (++since_punctuation_ >= punctuation_period_) {
      since_punctuation_ = 0;
      PunctuateBands();
    }
  }

  void PunctuateBands() {
    TRACE_SPAN("framework.punctuation_round");
    const uint64_t round_start_ns = Clock::Nanos();
    if (parallel_) {
      PunctuateBandsParallel();
    } else {
      for (size_t i = 0; i < bands_.size(); ++i) {
        const Timestamp p = high_watermark_ - latencies_[i];
        if (p > bands_[i].last_punctuation) {
          bands_[i].builder.Flush(bands_[i].head);
          bands_[i].head->OnPunctuation(p);
          bands_[i].last_punctuation = p;
        }
      }
    }
    round_latency_.Record(Clock::Nanos() - round_start_ns);
  }

  // One pool task per band: deliver the staged slice, then punctuate. The
  // tasks are share-nothing (disjoint Band state and subplan nodes; the
  // MemoryTracker is atomic); each band's output is captured by its stage
  // and replayed in band order after the join, so downstream sees exactly
  // the sequential message sequence.
  void PunctuateBandsParallel() {
    TaskGroup group(pool_);
    for (size_t i = 0; i < bands_.size(); ++i) {
      Band* band = &bands_[i];
      const Timestamp p = high_watermark_ - latencies_[i];
      group.Run([band, p] {
        TRACE_SPAN("framework.band_task");
        band->DeliverPending();
        if (p > band->last_punctuation) {
          band->builder.Flush(band->head);
          band->head->OnPunctuation(p);
          band->last_punctuation = p;
        }
      });
    }
    group.Wait();
    for (BandStageOp<W>* stage : stages_) stage->Replay();
  }

  std::vector<Timestamp> latencies_;
  size_t punctuation_period_;
  std::vector<Band> bands_;
  std::vector<uint64_t> band_counts_;
  Timestamp high_watermark_ = kMinTimestamp;
  size_t since_punctuation_ = 0;
  uint64_t dropped_ = 0;
  bool parallel_ = false;
  ThreadPool* pool_ = nullptr;
  std::vector<BandStageOp<W>*> stages_;
  HistogramSnapshot round_latency_;
};

// The sequence of output streams the framework produces. stream(i) carries
// all events no later than reorder_latencies[i], in order; subscribers
// attach further operators or sinks through the usual Streamable API.
template <int W>
class Streamables {
 public:
  Streamables(std::shared_ptr<QueryContext> ctx,
              std::vector<Emitter<W>*> tails, PartitionOp<W>* partition,
              std::vector<SortOp<W>*> sorts)
      : ctx_(std::move(ctx)),
        tails_(std::move(tails)),
        partition_(partition),
        sorts_(std::move(sorts)) {}

  size_t size() const { return tails_.size(); }

  Streamable<W> stream(size_t i) const {
    IMPATIENCE_CHECK(i < tails_.size());
    return Streamable<W>(ctx_, tails_[i]);
  }

  // Partition statistics (drops, per-band routing).
  const PartitionOp<W>& partition() const { return *partition_; }

  // Mutable partition access for the ingest path (ForcePunctuation).
  PartitionOp<W>* mutable_partition() { return partition_; }

  // Total events lost: too late for the largest latency, plus the rare
  // boundary events each band's sorter had to discard.
  uint64_t TotalDrops() const {
    uint64_t drops = partition_->dropped();
    for (const SortOp<W>* sort : sorts_) drops += sort->late_drops();
    return drops;
  }

  // Sums the Impatience counters across every band's sorter. Bands driven
  // by a substituted non-Impatience sorter contribute nothing.
  ImpatienceCounters AggregatedCounters() const {
    ImpatienceCounters total;
    for (const SortOp<W>* sort : sorts_) {
      const auto* impatience =
          dynamic_cast<const ImpatienceSorter<BasicEvent<W>>*>(
              &sort->sorter());
      if (impatience != nullptr) total += impatience->counters();
    }
    return total;
  }

  // Single-pass snapshot-and-reset: each band's counters are read and
  // zeroed in one touch, so no sample recorded between a separate read and
  // reset can be dropped. Long-lived pipelines (server metrics scrapes)
  // use this instead of AggregatedCounters() + ResetCounters(). Buffered
  // sorter state is untouched.
  ImpatienceCounters AggregatedCounters(bool reset) {
    ImpatienceCounters total;
    for (SortOp<W>* sort : sorts_) {
      auto* impatience = dynamic_cast<ImpatienceSorter<BasicEvent<W>>*>(
          sort->mutable_sorter());
      if (impatience == nullptr) continue;
      total += impatience->counters();
      if (reset) impatience->ResetCounters();
    }
    return total;
  }

  // Runs spill maintenance (governor spill targets, idle tail flushes,
  // run-file compaction) on every band's sorter. Called on the thread
  // that owns the pipeline when the spill governor's wakeup lands, or at
  // any other quiet point. Returns true if any band did work.
  bool PerformSpillMaintenance() {
    bool did = false;
    for (SortOp<W>* sort : sorts_) {
      auto* impatience = dynamic_cast<ImpatienceSorter<BasicEvent<W>>*>(
          sort->mutable_sorter());
      if (impatience != nullptr) did |= impatience->PerformSpillMaintenance();
    }
    return did;
  }

  // Zeroes every band's counters without reading them.
  void ResetCounters() {
    for (SortOp<W>* sort : sorts_) {
      auto* impatience = dynamic_cast<ImpatienceSorter<BasicEvent<W>>*>(
          sort->mutable_sorter());
      if (impatience != nullptr) impatience->ResetCounters();
    }
  }

 private:
  std::shared_ptr<QueryContext> ctx_;
  std::vector<Emitter<W>*> tails_;
  PartitionOp<W>* partition_;
  std::vector<SortOp<W>*> sorts_;
};

// A query stage: takes a band/merged stream, returns the transformed
// stream. Identity (nullptr) means pass-through.
template <int W>
using StageFn = std::function<Streamable<W>(Streamable<W>)>;

// Builds the framework DAG behind `source` and returns its output streams.
//
// `piq` runs once per band on the band's sorted slice; `merge` runs after
// each union. Pass {} for both to get the basic framework. The graph-owned
// nodes report buffering to the context's MemoryTracker.
template <int W>
Streamables<W> ToStreamables(const DisorderedStreamable<W>& source,
                             const FrameworkOptions& options,
                             StageFn<W> piq = {}, StageFn<W> merge = {}) {
  std::shared_ptr<QueryContext> ctx = source.context();
  Graph& graph = ctx->graph;
  const size_t k = options.reorder_latencies.size();
  IMPATIENCE_CHECK(k > 0);

  auto* partition = graph.Make<PartitionOp<W>>(
      options.reorder_latencies, options.punctuation_period,
      ctx->batch_size);
  source.tail()->SetDownstream(partition);

  auto apply = [&ctx](const StageFn<W>& fn, Emitter<W>* tail) {
    Streamable<W> s(ctx, tail);
    return fn ? fn(s) : s;
  };

  ThreadPool* pool = options.thread_pool != nullptr ? options.thread_pool
                                                    : &ThreadPool::Global();
  const bool parallel_bands =
      options.parallel_bands && k > 1 && pool->thread_count() > 1;

  // Per-band: sort, then PIQ; in parallel mode a staging operator caps
  // each band's subplan so the single-threaded union chain runs strictly
  // after the per-round fork/join barrier.
  std::vector<SortOp<W>*> sorts;
  std::vector<Emitter<W>*> piq_tails;
  std::vector<BandStageOp<W>*> stages;
  sorts.reserve(k);
  piq_tails.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    auto* sort = graph.Make<SortOp<W>>(options.sorter_config, ctx->tracker);
    partition->SetBandDownstream(i, sort);
    sorts.push_back(sort);
    Emitter<W>* tail = apply(piq, sort).tail();
    if (parallel_bands) {
      auto* stage = graph.Make<BandStageOp<W>>();
      tail->SetDownstream(stage);
      stages.push_back(stage);
      tail = stage;
    }
    piq_tails.push_back(tail);
  }
  if (parallel_bands) partition->EnableParallelBands(pool, std::move(stages));

  // Union chain with merge stages; tee every combined stream that both
  // feeds the next union and serves subscribers.
  std::vector<Emitter<W>*> outputs(k);
  Emitter<W>* combined = piq_tails[0];
  for (size_t i = 1; i < k; ++i) {
    auto* tee = graph.Make<TeeOp<W>>();
    combined->SetDownstream(tee);
    outputs[i - 1] = graph.Make<TeeBranch<W>>(tee);

    auto* u = graph.Make<UnionMergeOp<W>>(ctx->tracker, ctx->batch_size);
    tee->AddDownstream(u->input(0));
    piq_tails[i]->SetDownstream(u->input(1));
    combined = apply(merge, u).tail();
  }
  outputs[k - 1] = combined;

  return Streamables<W>(ctx, std::move(outputs), partition,
                        std::move(sorts));
}

}  // namespace impatience

#endif  // IMPATIENCE_FRAMEWORK_IMPATIENCE_FRAMEWORK_H_
