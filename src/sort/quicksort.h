// Quicksort baseline (Figure 7/8).
//
// Median-of-three partitioning with an insertion-sort cutoff for small
// ranges. As the paper notes (citing Brodal et al.), this scheme is itself
// somewhat adaptive to pre-existing order. A depth limit falls back to
// heapsort so adversarial inputs cannot trigger quadratic behaviour — the
// benchmarks never reach it, but a production sort must not have a
// quadratic cliff.

#ifndef IMPATIENCE_SORT_QUICKSORT_H_
#define IMPATIENCE_SORT_QUICKSORT_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <iterator>
#include <utility>

#include "sort/heapsort.h"

namespace impatience {
namespace quicksort_internal {

inline constexpr ptrdiff_t kInsertionCutoff = 24;

template <typename RandomIt, typename Less>
void InsertionSort(RandomIt first, RandomIt last, Less less) {
  for (RandomIt it = first + 1; it < last; ++it) {
    auto value = std::move(*it);
    RandomIt hole = it;
    while (hole != first && less(value, *(hole - 1))) {
      *hole = std::move(*(hole - 1));
      --hole;
    }
    *hole = std::move(value);
  }
}

// Places the median of {*a, *b, *c} into *b.
template <typename RandomIt, typename Less>
void MedianOfThreeToMid(RandomIt a, RandomIt b, RandomIt c, Less less) {
  if (less(*b, *a)) std::iter_swap(a, b);
  if (less(*c, *b)) {
    std::iter_swap(b, c);
    if (less(*b, *a)) std::iter_swap(a, b);
  }
}

template <typename RandomIt, typename Less>
void QuicksortImpl(RandomIt first, RandomIt last, Less less, int depth) {
  while (last - first > kInsertionCutoff) {
    if (depth == 0) {
      // Too many bad pivots in a row: guarantee O(n log n) with heapsort.
      Heapsort(first, last, less);
      return;
    }
    --depth;

    RandomIt mid = first + (last - first) / 2;
    MedianOfThreeToMid(first, mid, last - 1, less);
    // Hoare partition around the median-of-three pivot.
    auto pivot = *mid;
    RandomIt lo = first;
    RandomIt hi = last - 1;
    while (true) {
      while (less(*lo, pivot)) ++lo;
      while (less(pivot, *hi)) --hi;
      if (lo >= hi) break;
      std::iter_swap(lo, hi);
      ++lo;
      --hi;
    }
    // Recurse on the smaller side; loop on the larger (bounded stack).
    if (hi + 1 - first < last - (hi + 1)) {
      QuicksortImpl(first, hi + 1, less, depth);
      first = hi + 1;
    } else {
      QuicksortImpl(hi + 1, last, less, depth);
      last = hi + 1;
    }
  }
  if (last - first > 1) InsertionSort(first, last, less);
}

}  // namespace quicksort_internal

// Sorts [first, last) with quicksort (median-of-three, insertion cutoff,
// heapsort depth fallback). Not stable.
template <typename RandomIt, typename Less>
void Quicksort(RandomIt first, RandomIt last, Less less) {
  const ptrdiff_t n = last - first;
  if (n < 2) return;
  const int depth_limit =
      2 * (std::bit_width(static_cast<size_t>(n)));
  quicksort_internal::QuicksortImpl(first, last, less, depth_limit);
}

// Convenience overload using operator<.
template <typename RandomIt>
void Quicksort(RandomIt first, RandomIt last) {
  Quicksort(first, last, std::less<>());
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_QUICKSORT_H_
