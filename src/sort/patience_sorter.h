// Patience sort (paper §III-B) — the offline base algorithm.
//
// Partition phase: scan the input, appending each element to the first
// sorted run whose tail is <= the element (binary search over the strictly
// descending tails array), or opening a new run. Merge phase: merge the
// runs two at a time with binary merges.
//
// This class buffers without ever cleaning up runs — that is Impatience
// sort's addition — so its run count is monotonically non-decreasing
// (Figure 5's "Patience sort" curve). For the online experiments the paper
// wraps it (and the other offline algorithms) in IncrementalAdapter.

#ifndef IMPATIENCE_SORT_PATIENCE_SORTER_H_
#define IMPATIENCE_SORT_PATIENCE_SORTER_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cpu_features.h"
#include "common/event.h"
#include "common/thread_pool.h"
#include "common/timestamp.h"
#include "sort/merge.h"
#include "sort/partition.h"
#include "sort/run_select.h"

namespace impatience {

// Offline Patience sorter. Push everything, then SortInto() once.
template <typename T, typename TimeOf = SyncTimeOf>
class PatienceSorter {
 public:
  // `merge_policy` selects the run-merge order; kBalanced matches classic
  // Patience sort, kHuffman adds the paper's §III-E1 optimization.
  // `speculative_run_selection` enables the §III-E2 fast path.
  explicit PatienceSorter(MergePolicy merge_policy = MergePolicy::kBalanced,
                          bool speculative_run_selection = false)
      : merge_policy_(merge_policy),
        speculative_run_selection_(speculative_run_selection) {}

  PatienceSorter(const PatienceSorter&) = delete;
  PatienceSorter& operator=(const PatienceSorter&) = delete;

  // Partition-phase insertion of one element.
  void Push(const T& item) {
    const Timestamp t = time_of_(item);
    if (speculative_run_selection_ && last_run_ < runs_.size()) {
      const size_t r = last_run_;
      if (tails_[r] <= t && (r == 0 || t < tails_[r - 1])) {
        runs_[r].push_back(item);
        tails_[r] = t;
        return;
      }
    }
    const size_t lo = FindRunIndex(tails_, t, level_);
    if (lo == runs_.size()) {
      runs_.emplace_back();
      tails_.push_back(t);
    }
    runs_[lo].push_back(item);
    tails_[lo] = t;
    last_run_ = lo;
  }

  // Merge phase: appends all buffered elements to `out` in ascending
  // timestamp order and clears the sorter.
  void SortInto(std::vector<T>* out, MergeStats* stats = nullptr) {
    auto less = [this](const T& a, const T& b) {
      return time_of_(a) < time_of_(b);
    };
    MergeRunsInto(merge_policy_, &runs_, less, out, stats);
    runs_.clear();
    tails_.clear();
    last_run_ = 0;
  }

  // Number of sorted runs created so far (monotone non-decreasing).
  size_t run_count() const { return runs_.size(); }

  size_t buffered_count() const {
    size_t n = 0;
    for (const std::vector<T>& r : runs_) n += r.size();
    return n;
  }

  size_t MemoryBytes() const {
    // Full footprint: the tails array, the run element storage, AND the
    // run vector headers themselves — with many short runs the headers
    // are not noise, and MemoryTracker/server metrics report this number
    // as the sorter's real size.
    size_t bytes = tails_.capacity() * sizeof(Timestamp) +
                   runs_.capacity() * sizeof(std::vector<T>);
    for (const std::vector<T>& r : runs_) bytes += r.capacity() * sizeof(T);
    return bytes;
  }

 private:
  MergePolicy merge_policy_;
  bool speculative_run_selection_;
  TimeOf time_of_;
  const KernelLevel level_ = ActiveKernelLevel();

  std::vector<std::vector<T>> runs_;
  std::vector<Timestamp> tails_;
  size_t last_run_ = 0;
};

namespace patience_internal {

// The offline sort works on (timestamp, original index) pairs: runs are
// built and merged over these 16-byte keys and the full records are
// gathered once at the end. For the wide events a streaming engine sorts,
// this cuts merge-phase memory traffic by ~3x; and because the input is
// nearly sorted, the final gather is nearly sequential — one more way the
// algorithm profits from pre-existing order. KeyRef IS the kernel layer's
// SortKey, so the final pass can use the dispatched permutation-gather
// kernel directly.
using KeyRef = kernels::SortKey;

}  // namespace patience_internal

// Sorts `items` in place by timestamp with Patience sort.
//
// Unlike the streaming PatienceSorter above, the offline sort knows the
// whole input: it partitions (timestamp, index) keys into runs with a
// branch-free tails search, merges the key runs with the selected policy,
// and gathers the records once.
template <typename T, typename TimeOf = SyncTimeOf>
void PatienceSortVector(std::vector<T>* items,
                        MergePolicy merge_policy = MergePolicy::kBalanced,
                        bool speculative_run_selection = false,
                        ThreadPool* thread_pool = nullptr) {
  using patience_internal::KeyRef;
  const size_t n = items->size();
  if (n < 2) return;
  IMPATIENCE_CHECK(n < UINT32_MAX);
  TimeOf time_of;
  const KernelLevel level = ActiveKernelLevel();
  ThreadPool& pool =
      thread_pool != nullptr ? *thread_pool : ThreadPool::Global();

  // Extract the timestamp column once: pass 1 and the pass-2 scatter both
  // read timestamps only, and a packed column beats strided event loads.
  std::vector<Timestamp> times(n);
  {
    std::vector<T>& in = *items;
    ParallelFor(
        0, n, size_t{1} << 14,
        [&times, &in, &time_of](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) times[i] = time_of(in[i]);
        },
        &pool);
  }

  // Partition pass 1: assign each key a run (see sort/partition.h;
  // speculative parallel scan above the size gate, byte-identical to the
  // sequential scan). Nothing is copied yet, so a run's storage can be
  // sized exactly before the scatter.
  PartitionPass1 pass1;
  AssignRuns(times.data(), n, speculative_run_selection, level, &pool,
             &pass1);
  std::vector<uint32_t>& run_of = pass1.run_of;
  std::vector<size_t>& run_sizes = pass1.run_sizes;
  const size_t k = pass1.tails.size();
  if (k == 1) return;  // Single run: input was already sorted.

  // Partition pass 2: scatter keys into exactly-sized runs. Pass 1 fixed
  // every element's run AND its position within that run (arrival order),
  // so the scatter is a permutation with precomputable destinations: given
  // per-chunk, per-run element counts, an exclusive prefix sum over chunks
  // yields each chunk's write offset into every run, and chunks write
  // disjoint slots. The parallel path is gated on run count so the
  // chunk-local histograms stay small; output is byte-identical to the
  // sequential scatter.
  std::vector<std::vector<KeyRef>> runs(k);
  const size_t kScatterChunk = size_t{1} << 16;
  if (pool.thread_count() > 1 && n >= 2 * kScatterChunk &&
      k <= (size_t{1} << 15)) {
    ParallelFor(
        0, k, size_t{1},
        [&runs, &run_sizes](size_t lo, size_t hi) {
          for (size_t r = lo; r < hi; ++r) runs[r].resize(run_sizes[r]);
        },
        &pool);
    const size_t num_chunks = (n + kScatterChunk - 1) / kScatterChunk;
    std::vector<std::vector<uint32_t>> chunk_offsets(num_chunks);
    ParallelFor(
        0, num_chunks, size_t{1},
        [&chunk_offsets, &run_of, n, k, kScatterChunk](size_t clo,
                                                       size_t chi) {
          for (size_t c = clo; c < chi; ++c) {
            std::vector<uint32_t>& counts = chunk_offsets[c];
            counts.assign(k, 0);
            const size_t end = std::min(n, (c + 1) * kScatterChunk);
            for (size_t i = c * kScatterChunk; i < end; ++i) {
              ++counts[run_of[i]];
            }
          }
        },
        &pool);
    // Exclusive prefix over chunks: chunk_offsets[c][r] becomes the index
    // in runs[r] where chunk c's first element of run r belongs.
    std::vector<uint32_t> base(k, 0);
    for (size_t c = 0; c < num_chunks; ++c) {
      for (size_t r = 0; r < k; ++r) {
        const uint32_t count = chunk_offsets[c][r];
        chunk_offsets[c][r] = base[r];
        base[r] += count;
      }
    }
    ParallelFor(
        0, num_chunks, size_t{1},
        [&runs, &chunk_offsets, &run_of, &times, n, kScatterChunk](
            size_t clo, size_t chi) {
          for (size_t c = clo; c < chi; ++c) {
            std::vector<uint32_t>& offsets = chunk_offsets[c];
            const size_t end = std::min(n, (c + 1) * kScatterChunk);
            for (size_t i = c * kScatterChunk; i < end; ++i) {
              const uint32_t r = run_of[i];
              runs[r][offsets[r]++] =
                  KeyRef{times[i], static_cast<uint32_t>(i)};
            }
          }
        },
        &pool);
  } else {
    for (size_t r = 0; r < k; ++r) runs[r].reserve(run_sizes[r]);
    for (size_t i = 0; i < n; ++i) {
      runs[run_of[i]].push_back(KeyRef{times[i], static_cast<uint32_t>(i)});
    }
  }
  run_of.clear();
  run_of.shrink_to_fit();
  times.clear();
  times.shrink_to_fit();

  // Merge phase over keys. The Huffman order additionally admits the
  // parallel task-DAG merge (identical output; sequential on a 1-thread
  // pool or below the size thresholds).
  std::vector<KeyRef> order;
  order.reserve(n);
  auto key_less = [](const KeyRef& a, const KeyRef& b) {
    return a.time < b.time;
  };
  if (merge_policy == MergePolicy::kHuffman) {
    ParallelMergeOptions po;
    po.pool = &pool;
    ParallelMergeRunsInto(&runs, key_less, &order, nullptr, nullptr, po);
  } else {
    MergeRunsInto(merge_policy, &runs, key_less, &order);
  }

  // Gather the records in sorted order (near-sequential on nearly sorted
  // input). 8-byte trivially-copyable records route through the dispatched
  // permutation-gather kernel (AVX-512 hardware gather when available);
  // the permutation writes disjoint output chunks, so large gathers run on
  // the pool either way.
  std::vector<T> out;
  constexpr bool kKernelGather = sizeof(T) == 8 &&
                                 std::is_trivially_copyable_v<T> &&
                                 std::is_default_constructible_v<T>;
  if constexpr (std::is_default_constructible_v<T>) {
    if (pool.thread_count() > 1 && n >= (size_t{1} << 16)) {
      out.resize(n);
      std::vector<T>& in = *items;
      ParallelFor(
          0, n, size_t{1} << 14,
          [&out, &order, &in, level](size_t lo, size_t hi) {
            if constexpr (kKernelGather) {
              kernels::GatherByIndex(in.data(), order.data() + lo, hi - lo,
                                     out.data() + lo, level);
            } else {
              (void)level;
              for (size_t i = lo; i < hi; ++i) {
                out[i] = std::move(in[order[i].index]);
              }
            }
          },
          &pool);
      *items = std::move(out);
      return;
    }
  }
  if constexpr (kKernelGather) {
    out.resize(n);
    kernels::GatherByIndex(items->data(), order.data(), n, out.data(),
                           level);
  } else {
    out.reserve(n);
    for (const KeyRef& key : order) {
      out.push_back(std::move((*items)[key.index]));
    }
  }
  *items = std::move(out);
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_PATIENCE_SORTER_H_
