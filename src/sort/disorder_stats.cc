#include "sort/disorder_stats.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/cpu_features.h"
#include "sort/kernels.h"

namespace impatience {

namespace {

// Merge-counting step: counts cross inversions while merging two adjacent
// sorted halves of `buf` into `tmp`. Ties (equal values) are not
// inversions.
uint64_t MergeCount(std::vector<Timestamp>* buf, std::vector<Timestamp>* tmp,
                    size_t lo, size_t mid, size_t hi) {
  std::vector<Timestamp>& a = *buf;
  std::vector<Timestamp>& t = *tmp;
  uint64_t inversions = 0;
  size_t i = lo;
  size_t j = mid;
  size_t k = lo;
  while (i < mid && j < hi) {
    if (a[j] < a[i]) {
      // a[j] precedes all remaining left elements: mid - i inversions.
      inversions += mid - i;
      t[k++] = a[j++];
    } else {
      t[k++] = a[i++];
    }
  }
  while (i < mid) t[k++] = a[i++];
  while (j < hi) t[k++] = a[j++];
  std::copy(t.begin() + static_cast<ptrdiff_t>(lo),
            t.begin() + static_cast<ptrdiff_t>(hi),
            a.begin() + static_cast<ptrdiff_t>(lo));
  return inversions;
}

}  // namespace

uint64_t CountInversions(const std::vector<Timestamp>& values) {
  std::vector<Timestamp> buf = values;
  std::vector<Timestamp> tmp(buf.size());
  uint64_t inversions = 0;
  const size_t n = buf.size();
  // Bottom-up merge sort, counting cross inversions at each merge.
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, n);
      inversions += MergeCount(&buf, &tmp, lo, mid, hi);
    }
  }
  return inversions;
}

uint64_t MaxInversionDistance(const std::vector<Timestamp>& values) {
  const size_t n = values.size();
  if (n < 2) return 0;
  // prefix_max[i] = max(values[0..i]); non-decreasing, so the earliest
  // position whose prefix max exceeds values[j] is found by binary search.
  std::vector<Timestamp> prefix_max(n);
  prefix_max[0] = values[0];
  for (size_t i = 1; i < n; ++i) {
    prefix_max[i] = std::max(prefix_max[i - 1], values[i]);
  }
  uint64_t distance = 0;
  for (size_t j = 1; j < n; ++j) {
    if (prefix_max[j - 1] <= values[j]) continue;  // No inversion ends at j.
    // First i with prefix_max[i] > values[j]; values[i..] contains an
    // element > values[j] at position i itself (prefix max increased there).
    const auto it = std::upper_bound(prefix_max.begin(),
                                     prefix_max.begin() +
                                         static_cast<ptrdiff_t>(j),
                                     values[j]);
    const size_t i = static_cast<size_t>(it - prefix_max.begin());
    distance = std::max<uint64_t>(distance, j - i);
  }
  return distance;
}

uint64_t CountNaturalRuns(const std::vector<Timestamp>& values) {
  if (values.empty()) return 0;
  uint64_t runs = 1;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[i - 1]) ++runs;
  }
  return runs;
}

uint64_t CountInterleavedRuns(const std::vector<Timestamp>& values) {
  // Greedy run assignment with a tails array kept strictly descending:
  // place each element on the first (largest-tail) run whose tail is <= it,
  // else open a new run. This greedy is optimal for partitioning into the
  // fewest non-decreasing subsequences — the same placement rule Patience
  // sort uses, which is why Proposition 3.1's bound is tight.
  std::vector<Timestamp> tails;  // Strictly descending.
  const KernelLevel level = ActiveKernelLevel();
  for (const Timestamp v : values) {
    // First index with tails[i] <= v (tails descending).
    const size_t lo =
        kernels::FindFirstLEDesc(tails.data(), tails.size(), v, level);
    if (lo == tails.size()) {
      tails.push_back(v);
    } else {
      tails[lo] = v;
    }
  }
  return tails.size();
}

uint64_t LongestStrictlyDecreasingSubsequence(
    const std::vector<Timestamp>& values) {
  // Longest strictly decreasing subsequence == longest strictly increasing
  // subsequence of the negated sequence; classic patience/tails algorithm.
  std::vector<Timestamp> tails;  // tails[k] = smallest tail of an
                                 // increasing subsequence of length k+1.
  for (const Timestamp v : values) {
    const Timestamp x = -v;
    const auto it = std::lower_bound(tails.begin(), tails.end(), x);
    if (it == tails.end()) {
      tails.push_back(x);
    } else {
      *it = x;
    }
  }
  return tails.size();
}

DisorderStats ComputeDisorderStats(const std::vector<Timestamp>& values) {
  DisorderStats stats;
  stats.inversions = CountInversions(values);
  stats.distance = MaxInversionDistance(values);
  stats.runs = CountNaturalRuns(values);
  stats.interleaved = CountInterleavedRuns(values);
  return stats;
}

}  // namespace impatience
