// Heapsort baseline, offline and incremental (Figure 7/8).
//
// Heapsort is the one classic algorithm that is naturally incremental — a
// binary min-heap keyed on timestamp pops exactly the events a punctuation
// releases — which is why traditional SPEs used priority queues for
// reordering (§I-A, §III-A). It is, however, oblivious to pre-existing
// order and cache-hostile on large heaps, which is exactly the behaviour
// the paper's figures show.

#ifndef IMPATIENCE_SORT_HEAPSORT_H_
#define IMPATIENCE_SORT_HEAPSORT_H_

#include <cstddef>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/event.h"
#include "common/timestamp.h"
#include "sort/sorter.h"

namespace impatience {
namespace heapsort_internal {

// Sifts the element at `hole` down a max-heap of size `n` rooted at
// `first`.
template <typename RandomIt, typename Less>
void SiftDown(RandomIt first, ptrdiff_t hole, ptrdiff_t n, Less less) {
  auto value = std::move(*(first + hole));
  while (true) {
    ptrdiff_t child = 2 * hole + 1;
    if (child >= n) break;
    if (child + 1 < n && less(*(first + child), *(first + child + 1))) {
      ++child;
    }
    if (!less(value, *(first + child))) break;
    *(first + hole) = std::move(*(first + child));
    hole = child;
  }
  *(first + hole) = std::move(value);
}

}  // namespace heapsort_internal

// Sorts [first, last) with heapsort. Not stable.
template <typename RandomIt, typename Less>
void Heapsort(RandomIt first, RandomIt last, Less less) {
  const ptrdiff_t n = last - first;
  if (n < 2) return;
  for (ptrdiff_t i = n / 2 - 1; i >= 0; --i) {
    heapsort_internal::SiftDown(first, i, n, less);
  }
  for (ptrdiff_t i = n - 1; i > 0; --i) {
    std::iter_swap(first, first + i);
    heapsort_internal::SiftDown(first, 0, i, less);
  }
}

// Convenience overload using operator<.
template <typename RandomIt>
void Heapsort(RandomIt first, RandomIt last) {
  Heapsort(first, last, std::less<>());
}

// Incremental sorter backed by a binary min-heap on timestamps — the
// priority-queue reordering operator of traditional SPEs.
template <typename T, typename TimeOf = SyncTimeOf>
class HeapSorter : public IncrementalSorter<T, TimeOf> {
 public:
  HeapSorter() = default;
  HeapSorter(const HeapSorter&) = delete;
  HeapSorter& operator=(const HeapSorter&) = delete;

  void Push(const T& item) override {
    const Timestamp t = time_of_(item);
    if (t <= last_punctuation_) {
      ++late_drops_;
      return;
    }
    heap_.push_back(item);
    SiftUp(heap_.size() - 1);
  }

  void OnPunctuation(Timestamp t, std::vector<T>* out) override {
    IMPATIENCE_CHECK_MSG(t >= last_punctuation_,
                         "punctuations must be non-decreasing");
    last_punctuation_ = t;
    while (!heap_.empty() && time_of_(heap_.front()) <= t) {
      out->push_back(heap_.front());
      PopRoot();
    }
  }

  size_t buffered_count() const override { return heap_.size(); }

  size_t MemoryBytes() const override {
    return heap_.capacity() * sizeof(T);
  }

  uint64_t late_drops() const override { return late_drops_; }

  std::string name() const override { return "Heapsort"; }

 private:
  bool HeapLess(const T& a, const T& b) const {
    return time_of_(a) < time_of_(b);
  }

  void SiftUp(size_t i) {
    T value = std::move(heap_[i]);
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!HeapLess(value, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(value);
  }

  void PopRoot() {
    T value = std::move(heap_.back());
    heap_.pop_back();
    if (heap_.empty()) return;
    // Sift the former last element down from the root (min-heap).
    size_t hole = 0;
    const size_t n = heap_.size();
    while (true) {
      size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n && HeapLess(heap_[child + 1], heap_[child])) {
        ++child;
      }
      if (!HeapLess(heap_[child], value)) break;
      heap_[hole] = std::move(heap_[child]);
      hole = child;
    }
    heap_[hole] = std::move(value);
  }

  TimeOf time_of_;
  std::vector<T> heap_;
  Timestamp last_punctuation_ = kMinTimestamp;
  uint64_t late_drops_ = 0;
};

}  // namespace impatience

#endif  // IMPATIENCE_SORT_HEAPSORT_H_
