// The incremental sorting operator interface (paper §III-A).
//
// A sorting operator consumes a stream of events interleaved with
// punctuations. A punctuation with timestamp T promises that no further
// event with timestamp <= T will arrive; on receiving it, the sorter must
// emit every buffered event with timestamp <= T in ascending timestamp
// order. Events that nevertheless arrive at or before the last punctuation
// are "too late": they are counted and dropped, mirroring the
// buffer-and-sort contract the paper describes (§I-A).

#ifndef IMPATIENCE_SORT_SORTER_H_
#define IMPATIENCE_SORT_SORTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/histogram.h"
#include "common/timestamp.h"

namespace impatience {

// Interface for incremental (online) sorters.
//
// `T` is the element type; `TimeOf` extracts the ordering Timestamp from an
// element (SyncTimeOf for events, IdentityTimeOf for bare timestamps).
template <typename T, typename TimeOf = SyncTimeOf>
class IncrementalSorter {
 public:
  virtual ~IncrementalSorter() = default;

  // Buffers one element. Elements with timestamp <= the last punctuation
  // are dropped and counted in late_drops().
  virtual void Push(const T& item) = 0;

  // Handles a punctuation: appends to `out` every buffered element with
  // timestamp <= `t`, in ascending timestamp order. Punctuation timestamps
  // must be non-decreasing across calls.
  virtual void OnPunctuation(Timestamp t, std::vector<T>* out) = 0;

  // Convenience: the infinite punctuation, emitting everything buffered.
  void Flush(std::vector<T>* out) { OnPunctuation(kMaxTimestamp, out); }

  // Number of elements currently buffered.
  virtual size_t buffered_count() const = 0;

  // Approximate heap footprint of the buffered state, in bytes.
  virtual size_t MemoryBytes() const = 0;

  // Elements dropped because they arrived at or before a past punctuation.
  virtual uint64_t late_drops() const = 0;

  // Human-readable algorithm name, e.g. "Impatience".
  virtual std::string name() const = 0;

  // Latency observability (optional). punctuation_latency() holds one
  // sample per OnPunctuation call (nanoseconds from punctuation arrival to
  // emit completion); ingest_latency() one sample per emitting punctuation
  // (nanoseconds from the oldest buffered-since-last-emit push to emit).
  // Sorters without instrumentation return nullptr.
  virtual const HistogramSnapshot* punctuation_latency() const {
    return nullptr;
  }
  virtual const HistogramSnapshot* ingest_latency() const { return nullptr; }
};

}  // namespace impatience

#endif  // IMPATIENCE_SORT_SORTER_H_
