// Branchless / SIMD hot-path kernels with runtime dispatch.
//
// Every event the system ingests crosses exactly two inner loops: the
// tails search in the patience/impatience partition phase and the two-way
// merge at punctuation time. This header owns those loops (plus the
// punctuation-time run-boundary scans and the offline permutation gather)
// as standalone kernels, each in up to four implementations — portable
// scalar, SSE2, AVX2, AVX-512 — selected by a KernelLevel (see
// common/cpu_features.h).
//
// Contract: every level computes byte-identical results, including the
// order of equal timestamps. Searches return exact indices (the predicates
// are monotone, so the answer is unique); the merge kernels emit the same
// stable element order at every level. The equivalence property tests in
// tests/sort/kernels_test.cc force every level against scalar references.

#ifndef IMPATIENCE_SORT_KERNELS_H_
#define IMPATIENCE_SORT_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/cpu_features.h"
#include "common/event.h"
#include "common/timestamp.h"

#if defined(__x86_64__) || defined(__i386__)
#define IMPATIENCE_HAVE_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace impatience {
namespace kernels {

// ---------------------------------------------------------------------------
// Scalar building blocks (shared by every dispatch level).

// First index in [lo, lo+len) with data[i] <= t, where the range is
// strictly descending. Conditional-move loop: the compare result steers
// two selects instead of a branch, so the essentially random outcome of a
// binary-search probe never hits the branch predictor.
inline size_t BranchlessDescLE(const Timestamp* data, size_t lo, size_t len,
                               Timestamp t) {
  while (len > 0) {
    const size_t half = len >> 1;
    const bool gt = data[lo + half] > t;
    lo = gt ? lo + half + 1 : lo;
    len = gt ? len - half - 1 : half;
  }
  return lo;
}

// First index in [lo, lo+len) with data[i] > t, where the range is
// ascending (ties allowed) — the run-boundary cut. Same cmov shape.
inline size_t BranchlessAscGT(const Timestamp* data, size_t lo, size_t len,
                              Timestamp t) {
  while (len > 0) {
    const size_t half = len >> 1;
    const bool le = data[lo + half] <= t;
    lo = le ? lo + half + 1 : lo;
    len = le ? len - half - 1 : half;
  }
  return lo;
}

namespace detail {

// The run-size distribution on log data is heavily skewed toward the
// first few runs, so the tails search probes a short prefix linearly
// before the binary search. 16 covers the SIMD probe at every level.
inline constexpr size_t kTailsProbe = 16;

inline size_t FindFirstLEDescScalar(const Timestamp* data, size_t n,
                                    Timestamp t) {
  const size_t probe = n < kTailsProbe ? n : kTailsProbe;
  for (size_t i = 0; i < probe; ++i) {
    if (data[i] <= t) return i;
  }
  if (probe == n) return n;
  return BranchlessDescLE(data, kTailsProbe, n - kTailsProbe, t);
}

inline size_t UpperBoundAscGTScalar(const Timestamp* data, size_t lo,
                                    size_t hi, Timestamp t) {
  return BranchlessAscGT(data, lo, hi - lo, t);
}

inline size_t NextIndexLEScalar(const Timestamp* data, size_t begin,
                                size_t n, Timestamp t) {
  for (size_t i = begin; i < n; ++i) {
    if (data[i] <= t) return i;
  }
  return n;
}

#if IMPATIENCE_HAVE_X86_KERNELS

// Per-lane signed 64-bit a > b for SSE2, which has no pcmpgtq: compare
// high dwords signed, and where they tie, compare low dwords unsigned
// (bias by 2^31 to reuse the signed compare).
inline __m128i CmpGtI64Sse2(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi32(INT32_MIN);
  const __m128i gt32 = _mm_cmpgt_epi32(a, b);
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  const __m128i gtu32 =
      _mm_cmpgt_epi32(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias));
  const __m128i gt_hi = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128i eq_hi = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128i gtu_lo = _mm_shuffle_epi32(gtu32, _MM_SHUFFLE(2, 2, 0, 0));
  return _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gtu_lo));
}

// 2-bit mask, bit i set iff data[i] > t.
inline unsigned MaskGt2(const Timestamp* data, __m128i vt) {
  const __m128i v =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(data));
  return static_cast<unsigned>(
      _mm_movemask_pd(_mm_castsi128_pd(CmpGtI64Sse2(v, vt))));
}

inline size_t FindFirstLEDescSse2(const Timestamp* data, size_t n,
                                  Timestamp t) {
  const __m128i vt = _mm_set1_epi64x(t);
  const size_t vec = (n < kTailsProbe ? n : kTailsProbe) & ~size_t{1};
  for (size_t i = 0; i < vec; i += 2) {
    const unsigned gt = MaskGt2(data + i, vt);
    if (gt != 0x3u) return i + ((gt & 1u) != 0 ? 1 : 0);
  }
  if (n <= kTailsProbe) {
    // Ragged last element of a short tails array.
    for (size_t i = vec; i < n; ++i) {
      if (data[i] <= t) return i;
    }
    return n;
  }
  return BranchlessDescLE(data, kTailsProbe, n - kTailsProbe, t);
}

inline size_t UpperBoundAscGTSse2(const Timestamp* data, size_t lo,
                                  size_t hi, Timestamp t) {
  size_t len = hi - lo;
  while (len > 16) {
    const size_t half = len >> 1;
    const bool le = data[lo + half] <= t;
    lo = le ? lo + half + 1 : lo;
    len = le ? len - half - 1 : half;
  }
  // The range is sorted, so the elements <= t form a prefix: counting
  // them yields the first index with data[i] > t.
  const __m128i vt = _mm_set1_epi64x(t);
  size_t count = 0;
  size_t i = lo;
  for (; i + 2 <= lo + len; i += 2) {
    const unsigned gt = MaskGt2(data + i, vt);
    count += static_cast<size_t>(__builtin_popcount(~gt & 0x3u));
  }
  for (; i < lo + len; ++i) count += data[i] <= t ? 1 : 0;
  return lo + count;
}

inline size_t NextIndexLESse2(const Timestamp* data, size_t begin, size_t n,
                              Timestamp t) {
  const __m128i vt = _mm_set1_epi64x(t);
  size_t i = begin;
  for (; i + 2 <= n; i += 2) {
    const unsigned le = ~MaskGt2(data + i, vt) & 0x3u;
    if (le != 0) return i + static_cast<size_t>(__builtin_ctz(le));
  }
  for (; i < n; ++i) {
    if (data[i] <= t) return i;
  }
  return n;
}

// 4-bit mask, bit i set iff data[i] > t.
__attribute__((target("avx2"))) inline unsigned MaskGt4(
    const Timestamp* data, __m256i vt) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vt))));
}

__attribute__((target("avx2"))) inline size_t FindFirstLEDescAvx2(
    const Timestamp* data, size_t n, Timestamp t) {
  const __m256i vt = _mm256_set1_epi64x(t);
  const size_t vec = (n < kTailsProbe ? n : kTailsProbe) & ~size_t{3};
  for (size_t i = 0; i < vec; i += 4) {
    const unsigned gt = MaskGt4(data + i, vt);
    if (gt != 0xFu) {
      return i + static_cast<size_t>(__builtin_ctz(~gt & 0xFu));
    }
  }
  if (n <= kTailsProbe) {
    for (size_t i = vec; i < n; ++i) {
      if (data[i] <= t) return i;
    }
    return n;
  }
  return BranchlessDescLE(data, kTailsProbe, n - kTailsProbe, t);
}

__attribute__((target("avx2"))) inline size_t UpperBoundAscGTAvx2(
    const Timestamp* data, size_t lo, size_t hi, Timestamp t) {
  size_t len = hi - lo;
  while (len > 32) {
    const size_t half = len >> 1;
    const bool le = data[lo + half] <= t;
    lo = le ? lo + half + 1 : lo;
    len = le ? len - half - 1 : half;
  }
  const __m256i vt = _mm256_set1_epi64x(t);
  size_t count = 0;
  size_t i = lo;
  for (; i + 4 <= lo + len; i += 4) {
    const unsigned gt = MaskGt4(data + i, vt);
    count += static_cast<size_t>(__builtin_popcount(~gt & 0xFu));
  }
  for (; i < lo + len; ++i) count += data[i] <= t ? 1 : 0;
  return lo + count;
}

__attribute__((target("avx2"))) inline size_t NextIndexLEAvx2(
    const Timestamp* data, size_t begin, size_t n, Timestamp t) {
  const __m256i vt = _mm256_set1_epi64x(t);
  size_t i = begin;
  for (; i + 4 <= n; i += 4) {
    const unsigned le = ~MaskGt4(data + i, vt) & 0xFu;
    if (le != 0) return i + static_cast<size_t>(__builtin_ctz(le));
  }
  for (; i < n; ++i) {
    if (data[i] <= t) return i;
  }
  return n;
}

// 8-bit mask, bit i set iff data[i] > t. AVX-512 compares produce mask
// registers directly — no movemask round trip through a vector lane.
__attribute__((target("avx512f"))) inline unsigned MaskGt8(
    const Timestamp* data, __m512i vt) {
  const __m512i v = _mm512_loadu_si512(data);
  return static_cast<unsigned>(_mm512_cmpgt_epi64_mask(v, vt));
}

__attribute__((target("avx512f"))) inline size_t FindFirstLEDescAvx512(
    const Timestamp* data, size_t n, Timestamp t) {
  const __m512i vt = _mm512_set1_epi64(t);
  const size_t vec = (n < kTailsProbe ? n : kTailsProbe) & ~size_t{7};
  for (size_t i = 0; i < vec; i += 8) {
    const unsigned gt = MaskGt8(data + i, vt);
    if (gt != 0xFFu) {
      return i + static_cast<size_t>(__builtin_ctz(~gt & 0xFFu));
    }
  }
  if (n <= kTailsProbe) {
    for (size_t i = vec; i < n; ++i) {
      if (data[i] <= t) return i;
    }
    return n;
  }
  return BranchlessDescLE(data, kTailsProbe, n - kTailsProbe, t);
}

__attribute__((target("avx512f"))) inline size_t UpperBoundAscGTAvx512(
    const Timestamp* data, size_t lo, size_t hi, Timestamp t) {
  size_t len = hi - lo;
  while (len > 64) {
    const size_t half = len >> 1;
    const bool le = data[lo + half] <= t;
    lo = le ? lo + half + 1 : lo;
    len = le ? len - half - 1 : half;
  }
  const __m512i vt = _mm512_set1_epi64(t);
  size_t count = 0;
  size_t i = lo;
  for (; i + 8 <= lo + len; i += 8) {
    const unsigned gt = MaskGt8(data + i, vt);
    count += static_cast<size_t>(__builtin_popcount(~gt & 0xFFu));
  }
  for (; i < lo + len; ++i) count += data[i] <= t ? 1 : 0;
  return lo + count;
}

__attribute__((target("avx512f"))) inline size_t NextIndexLEAvx512(
    const Timestamp* data, size_t begin, size_t n, Timestamp t) {
  const __m512i vt = _mm512_set1_epi64(t);
  size_t i = begin;
  for (; i + 8 <= n; i += 8) {
    const unsigned le = ~MaskGt8(data + i, vt) & 0xFFu;
    if (le != 0) return i + static_cast<size_t>(__builtin_ctz(le));
  }
  for (; i < n; ++i) {
    if (data[i] <= t) return i;
  }
  return n;
}

#endif  // IMPATIENCE_HAVE_X86_KERNELS

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatched search kernels over the timestamp column.

// Partition search: first index in the strictly-descending `data[0, n)`
// with data[i] <= t, or n. This is the loop every insertion crosses.
inline size_t FindFirstLEDesc(const Timestamp* data, size_t n, Timestamp t,
                              KernelLevel level) {
#if IMPATIENCE_HAVE_X86_KERNELS
  if (level == KernelLevel::kAVX512) {
    return detail::FindFirstLEDescAvx512(data, n, t);
  }
  if (level == KernelLevel::kAVX2) {
    return detail::FindFirstLEDescAvx2(data, n, t);
  }
  if (level == KernelLevel::kSSE2) {
    return detail::FindFirstLEDescSse2(data, n, t);
  }
#else
  (void)level;
#endif
  return detail::FindFirstLEDescScalar(data, n, t);
}

// Run-boundary cut: first index in the ascending `data[lo, hi)` with
// data[i] > t, or hi. SIMD levels narrow by cmov binary search, then
// count the <= t prefix of the final block vector-wide.
inline size_t UpperBoundAscGT(const Timestamp* data, size_t lo, size_t hi,
                              Timestamp t, KernelLevel level) {
#if IMPATIENCE_HAVE_X86_KERNELS
  if (level == KernelLevel::kAVX512) {
    return detail::UpperBoundAscGTAvx512(data, lo, hi, t);
  }
  if (level == KernelLevel::kAVX2) {
    return detail::UpperBoundAscGTAvx2(data, lo, hi, t);
  }
  if (level == KernelLevel::kSSE2) {
    return detail::UpperBoundAscGTSse2(data, lo, hi, t);
  }
#else
  (void)level;
#endif
  return detail::UpperBoundAscGTScalar(data, lo, hi, t);
}

// Head-run scan: next index in [begin, n) with data[i] <= t, or n. The
// array is unsorted (per-run head times); punctuation handling walks the
// matching runs via repeated calls.
inline size_t NextIndexLE(const Timestamp* data, size_t begin, size_t n,
                          Timestamp t, KernelLevel level) {
#if IMPATIENCE_HAVE_X86_KERNELS
  if (level == KernelLevel::kAVX512) {
    return detail::NextIndexLEAvx512(data, begin, n, t);
  }
  if (level == KernelLevel::kAVX2) {
    return detail::NextIndexLEAvx2(data, begin, n, t);
  }
  if (level == KernelLevel::kSSE2) {
    return detail::NextIndexLESse2(data, begin, n, t);
  }
#else
  (void)level;
#endif
  return detail::NextIndexLEScalar(data, begin, n, t);
}

// Run-boundary cut over elements of any type: first index in
// [lo, hi) with time_of(data[i]) > t. Bare timestamp columns take the
// SIMD kernel; everything else takes the branchless scalar loop.
template <typename T, typename TimeOf>
inline size_t UpperBoundByTime(const T* data, size_t lo, size_t hi,
                               Timestamp t, TimeOf time_of,
                               KernelLevel level) {
  if constexpr (std::is_same_v<T, Timestamp> &&
                std::is_same_v<TimeOf, IdentityTimeOf>) {
    (void)time_of;
    return UpperBoundAscGT(data, lo, hi, t, level);
  } else {
    (void)level;
    size_t len = hi - lo;
    while (len > 0) {
      const size_t half = len >> 1;
      const bool le = time_of(data[lo + half]) <= t;
      lo = le ? lo + half + 1 : lo;
      len = le ? len - half - 1 : half;
    }
    return lo;
  }
}

// ---------------------------------------------------------------------------
// Offline permutation gather.

// The sort key the offline patience/impatience paths merge: a timestamp
// plus the record's original position. Lives here so the gather kernel can
// see its layout (16 bytes, index at byte offset 8).
struct SortKey {
  Timestamp time;
  uint32_t index;
};
static_assert(sizeof(SortKey) == 16, "gather kernel assumes 16-byte keys");

namespace detail {

template <typename T>
inline void GatherByIndexScalar(const T* in, const SortKey* keys, size_t n,
                                T* out) {
  for (size_t i = 0; i < n; ++i) out[i] = in[keys[i].index];
}

#if IMPATIENCE_HAVE_X86_KERNELS

// GCC's avx512fintrin.h seeds _mm512_i32gather_epi64's masked-out lanes
// with _mm512_undefined_epi32(), which -Wmaybe-uninitialized flags; the
// mask is all-ones here so no undefined lane survives.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Gathers 8 records per iteration: two 512-bit loads pull 8 SortKeys, a
// cross-register dword permute packs their index fields into one ymm, and
// a hardware gather fetches the records. Only valid for 8-byte records
// with indices below 2^31 (the gather's index lanes are signed 32-bit).
// Returns the number of records gathered (the largest multiple of 8 ≤ n);
// the caller finishes the ragged tail with typed scalar copies.
__attribute__((target("avx512f"))) inline size_t GatherByIndexAvx512(
    const void* in, const SortKey* keys, size_t n, void* out) {
  // Dword positions of the 8 index fields across two consecutive zmm
  // loads: each SortKey spans 4 dwords with the index in dword 2; lanes
  // 16+ select from the second register.
  const __m512i pick = _mm512_setr_epi32(2, 6, 10, 14, 18, 22, 26, 30, 0,
                                         0, 0, 0, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i k0 = _mm512_loadu_si512(keys + i);
    const __m512i k1 = _mm512_loadu_si512(keys + i + 4);
    const __m256i idx =
        _mm512_castsi512_si256(_mm512_permutex2var_epi32(k0, pick, k1));
    const __m512i v = _mm512_i32gather_epi64(idx, in, 8);
    _mm512_storeu_si512(static_cast<char*>(out) + i * 8, v);
  }
  return i;
}

#pragma GCC diagnostic pop

#endif  // IMPATIENCE_HAVE_X86_KERNELS

}  // namespace detail

// Permutation gather: out[i] = in[keys[i].index] for i in [0, n). The
// offline sorts' final pass — runs are built and merged over SortKeys and
// the records move exactly once, here. AVX-512 vectorizes the gather for
// 8-byte trivially-copyable records; other shapes take the scalar loop.
// `in` and `out` must not alias.
template <typename T>
inline void GatherByIndex(const T* in, const SortKey* keys, size_t n,
                          T* out, KernelLevel level) {
#if IMPATIENCE_HAVE_X86_KERNELS
  if constexpr (sizeof(T) == 8 && std::is_trivially_copyable_v<T>) {
    // Signed 32-bit index lanes: fall back when offsets could overflow.
    if (level == KernelLevel::kAVX512 &&
        n <= static_cast<size_t>(INT32_MAX)) {
      const size_t done = detail::GatherByIndexAvx512(in, keys, n, out);
      for (size_t i = done; i < n; ++i) out[i] = in[keys[i].index];
      return;
    }
  }
#else
  (void)level;
#endif
  detail::GatherByIndexScalar(in, keys, n, out);
}

// ---------------------------------------------------------------------------
// Two-way merge kernel.

// After this many consecutive wins by one side the merge switches to
// galloping (exponential search + bulk copy), as in Timsort;
// log-structured inputs produce long disjoint stretches where this
// approaches memcpy speed.
inline constexpr int kGallopThreshold = 7;

// First position in [first, last) with !less(*pos, key) (lower bound),
// found by exponential probing from `first` then binary search — O(log
// distance) instead of O(log n).
template <typename T, typename Less>
const T* GallopLowerBound(const T* first, const T* last, const T& key,
                          Less less) {
  size_t step = 1;
  const T* probe = first;
  while (probe + step <= last - 1 && less(*(probe + step), key)) {
    probe += step;
    step <<= 1;
  }
  const T* hi = (probe + step < last) ? probe + step + 1 : last;
  // Invariant: [first, probe] all < key (probe itself checked or == first).
  const T* lo = less(*probe, key) ? probe + 1 : probe;
  while (lo < hi) {
    const T* mid = lo + (hi - lo) / 2;
    if (less(*mid, key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First position in [first, last) with less(key, *pos) (upper bound).
template <typename T, typename Less>
const T* GallopUpperBound(const T* first, const T* last, const T& key,
                          Less less) {
  size_t step = 1;
  const T* probe = first;
  while (probe + step <= last - 1 && !less(key, *(probe + step))) {
    probe += step;
    step <<= 1;
  }
  const T* hi = (probe + step < last) ? probe + step + 1 : last;
  const T* lo = !less(key, *probe) ? probe + 1 : probe;
  while (lo < hi) {
    const T* mid = lo + (hi - lo) / 2;
    if (!less(key, *mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Relationship of two non-empty sorted ranges at merge time.
enum class MergeFastPath {
  kNone,      // The ranges overlap: run the select loop.
  kConcatAB,  // a.last <= b.first (ties keep a first): out = a ++ b.
  kConcatBA,  // b.last < a.first (strict):             out = b ++ a.
};

// Classifies whether a stable merge of [pa, ea) then [pb, eb) degenerates
// to concatenation. Exactly one compare per side; at low disorder the
// head runs released by a punctuation partition the timeline almost
// disjointly, making this the common case. Both ranges must be non-empty.
template <typename T, typename Less>
MergeFastPath ClassifyDisjoint(const T* pa, const T* ea, const T* pb,
                               const T* eb, Less less) {
  if (!less(*pb, *(ea - 1))) return MergeFastPath::kConcatAB;
  if (less(*(eb - 1), *pa)) return MergeFastPath::kConcatBA;
  return MergeFastPath::kNone;
}

// Merges the sorted ranges [pa, ea) and [pb, eb) into `out` (appended).
// Stable: on ties, elements of the `a` range precede elements of the `b`
// range. Disjoint ranges concatenate with two bulk copies; overlapping
// ranges run a branchless (cmov) select loop that switches to galloping
// bulk copies when one side wins repeatedly. Returns true when the
// disjoint fast path ran (for the disjoint_concats statistic).
template <typename T, typename Less>
bool MergeIntoVector(const T* pa, const T* ea, const T* pb, const T* eb,
                     Less less, std::vector<T>* out) {
  out->reserve(out->size() + static_cast<size_t>(ea - pa) +
               static_cast<size_t>(eb - pb));
  bool disjoint = false;
  if (pa != ea && pb != eb) {
    switch (ClassifyDisjoint(pa, ea, pb, eb, less)) {
      case MergeFastPath::kConcatAB:
        disjoint = true;
        break;
      case MergeFastPath::kConcatBA:
        out->insert(out->end(), pb, eb);
        out->insert(out->end(), pa, ea);
        return true;
      case MergeFastPath::kNone: {
        int streak_a = 0;
        int streak_b = 0;
        // Branch-light loop: the taken/not-taken pattern of a merge is
        // essentially random, so select the source with a conditional
        // move; on a long winning streak, gallop.
        while (pa != ea && pb != eb) {
          const bool take_b = less(*pb, *pa);
          const T* src = take_b ? pb : pa;
          out->push_back(*src);
          pb += take_b ? 1 : 0;
          pa += take_b ? 0 : 1;
          streak_b = take_b ? streak_b + 1 : 0;
          streak_a = take_b ? 0 : streak_a + 1;
          if (streak_b >= kGallopThreshold && pb != eb) {
            // Everything in b strictly below *pa comes next, in one block.
            const T* end = GallopLowerBound(pb, eb, *pa, less);
            out->insert(out->end(), pb, end);
            pb = end;
            streak_b = 0;
          } else if (streak_a >= kGallopThreshold && pa != ea) {
            // Everything in a at or below *pb comes next (ties prefer a).
            const T* end = GallopUpperBound(pa, ea, *pb, less);
            out->insert(out->end(), pa, end);
            pa = end;
            streak_a = 0;
          }
        }
        break;
      }
    }
  }
  out->insert(out->end(), pa, ea);
  out->insert(out->end(), pb, eb);
  return disjoint;
}

// Merges [pa, ea) and [pb, eb) into the pre-sized destination starting at
// `dst` (the caller guarantees room for both ranges). Element order is
// identical to MergeIntoVector; used by the parallel merge to let two
// tasks write disjoint halves of one output. Returns one past the last
// element written; sets *disjoint (if non-null) when the concat fast
// path ran.
template <typename T, typename Less>
T* MergeToPtr(const T* pa, const T* ea, const T* pb, const T* eb, Less less,
              T* dst, bool* disjoint = nullptr) {
  if (disjoint != nullptr) *disjoint = false;
  if (pa != ea && pb != eb) {
    switch (ClassifyDisjoint(pa, ea, pb, eb, less)) {
      case MergeFastPath::kConcatAB:
        if (disjoint != nullptr) *disjoint = true;
        break;
      case MergeFastPath::kConcatBA:
        if (disjoint != nullptr) *disjoint = true;
        dst = std::copy(pb, eb, dst);
        return std::copy(pa, ea, dst);
      case MergeFastPath::kNone: {
        int streak_a = 0;
        int streak_b = 0;
        while (pa != ea && pb != eb) {
          const bool take_b = less(*pb, *pa);
          const T* src = take_b ? pb : pa;
          *dst++ = *src;
          pb += take_b ? 1 : 0;
          pa += take_b ? 0 : 1;
          streak_b = take_b ? streak_b + 1 : 0;
          streak_a = take_b ? 0 : streak_a + 1;
          if (streak_b >= kGallopThreshold && pb != eb) {
            const T* end = GallopLowerBound(pb, eb, *pa, less);
            dst = std::copy(pb, end, dst);
            pb = end;
            streak_b = 0;
          } else if (streak_a >= kGallopThreshold && pa != ea) {
            const T* end = GallopUpperBound(pa, ea, *pb, less);
            dst = std::copy(pa, end, dst);
            pa = end;
            streak_a = 0;
          }
        }
        break;
      }
    }
  }
  dst = std::copy(pa, ea, dst);
  return std::copy(pb, eb, dst);
}

}  // namespace kernels
}  // namespace impatience

#endif  // IMPATIENCE_SORT_KERNELS_H_
