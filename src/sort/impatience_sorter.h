// Impatience sort (paper §III-D, §III-E) — the primary contribution.
//
// Impatience sort is Patience sort made incremental. The partition phase is
// unchanged: each arriving element is appended to the first sorted run
// whose tail is <= the element (binary search over the strictly-descending
// tails array), or starts a new run. On a punctuation with timestamp T, the
// merge phase cuts the prefix of each run containing elements <= T (the
// "head runs"), merges only those head runs, and emits the result; runs
// emptied by the cut are removed, which is how the structure recovers from
// bursts of severely late events (Figure 5).
//
// Two optimizations, both individually toggleable for the Figure 7
// ablation:
//   * Huffman merge (§III-E1): head runs are merged smallest-two-first.
//   * Speculative run selection (§III-E2): before the binary search, test
//     whether the element extends the run that received the previous
//     element; streams with long natural runs (AndroidLog) hit this path
//     almost always.

#ifndef IMPATIENCE_SORT_IMPATIENCE_SORTER_H_
#define IMPATIENCE_SORT_IMPATIENCE_SORTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/cpu_features.h"
#include "common/event.h"
#include "common/histogram.h"
#include "common/thread_pool.h"
#include "common/timestamp.h"
#include "common/trace.h"
#include "sort/kernels.h"
#include "sort/merge.h"
#include "sort/run_select.h"
#include "sort/sorter.h"
#include "storage/spill.h"
#include "storage/spill_governor.h"

namespace impatience {

// Tuning and ablation switches for ImpatienceSorter.
struct ImpatienceConfig {
  // Merge head runs smallest-two-first (§III-E1). kBalanced reproduces the
  // "Impt w/o HM" ablation; kHeap is a further baseline; kLoserTree runs
  // the byte-identical k-way tournament merge in a single output pass.
  MergePolicy merge_policy = MergePolicy::kHuffman;

  // Fast path that retries the run used by the previous insertion before
  // falling back to binary search (§III-E2).
  bool speculative_run_selection = true;

  // A run whose consumed prefix exceeds this fraction of its storage (and
  // at least kCompactMinBytes) is compacted to reclaim memory.
  double compact_fraction = 0.5;
  size_t compact_min_bytes = 4096;

  // Parallel punctuation merges (kHuffman policy only): when a punctuation
  // releases at least `parallel_merge_min_runs` head runs totalling at
  // least `parallel_merge_min_bytes`, the head runs are merged as a task
  // DAG on the thread pool (see ParallelMergeRunsInto). Output is
  // byte-identical to the sequential merge; with a 1-thread pool the
  // sequential path always runs.
  bool parallel_merge = true;
  size_t parallel_merge_min_runs = 4;
  size_t parallel_merge_min_bytes = size_t{1} << 20;
  ThreadPool* thread_pool = nullptr;  // nullptr = ThreadPool::Global()

  // External-memory spill tier (storage/spill.h): when a memory budget is
  // set (explicitly or via IMPATIENCE_MEMORY_BUDGET) and usage exceeds it,
  // cold runs move to disk-backed run files and stream back through the
  // cursor merge at punctuation time — byte-identical output, bounded
  // residency. Only engages for trivially-copyable element types.
  storage::SpillSettings spill;
};

// Counters exposed for tests, ablation benchmarks, and the server's
// metrics surface.
struct ImpatienceCounters {
  uint64_t pushes = 0;          // Elements accepted (excludes late drops).
  uint64_t srs_hits = 0;        // Insertions that skipped the binary search.
  uint64_t new_runs = 0;        // Runs created over the sorter's lifetime.
  uint64_t removed_runs = 0;    // Runs cleaned up after punctuations.
  uint64_t compactions = 0;     // Run storage compactions.
  uint64_t parallel_merges = 0;  // Punctuation merges run on the pool.
  uint64_t merge_tasks = 0;      // Pool tasks across all parallel merges.
  // Punctuation merges executed by the k-way loser tree (the kLoserTree
  // policy's multi-run path).
  uint64_t loser_tree_merges = 0;
  // Spill tier: runs moved to disk, bytes written to run files (blocks and
  // their headers), and bytes read back (cut-boundary loads and merge
  // cursor streams).
  uint64_t runs_spilled = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_read_bytes = 0;
  // Write-behind pipeline: blocks handed to the flusher pool instead of
  // being written on the sorter thread; merge-cursor prefetches that were
  // ready in time vs blocks loaded synchronously; idle-deadline tail
  // flushes and run-file compactions driven by the spill governor.
  uint64_t async_flushes = 0;
  uint64_t readahead_hits = 0;
  uint64_t readahead_misses = 0;
  uint64_t idle_flushes = 0;
  uint64_t spill_compactions = 0;
  // Bytes queued in the flusher pool at the last observation — a gauge
  // like kernel_level (the pool is shared, so aggregation takes the max,
  // not the sum).
  uint64_t flush_queue_bytes = 0;
  // Active kernel dispatch level (KernelLevel as an integer) — a gauge,
  // not an accumulator: the sorter stamps it at construction and after
  // every reset, and aggregation takes the max across shards.
  uint64_t kernel_level = 0;
  MergeStats merge;             // Merge work across all punctuations.
  // One sample per OnPunctuation call: nanoseconds from punctuation
  // arrival to emit completion (the sorter-side share of end-to-end
  // latency).
  HistogramSnapshot punct_to_emit;
  // One sample per emitting punctuation: nanoseconds from the oldest push
  // buffered since the previous emit to emit completion — how long data
  // waited inside the sorter.
  HistogramSnapshot ingest_to_emit;
  // One sample per loser-tree punctuation merge: the number of head runs
  // the tree merged (its fan-in). The distribution shows whether the
  // workload's disorder actually produces the wide merges the tree is
  // built for.
  HistogramSnapshot kway_fanin;
  // One sample per punctuation merge involving at least one spilled run:
  // the merge's fan-in (1 = a lone spilled run streamed straight out).
  HistogramSnapshot spill_merge_fanin;

  // Zeroes every counter. Long-lived servers snapshot-and-reset between
  // scrapes instead of reconstructing sorters.
  void Reset() { *this = ImpatienceCounters{}; }

  // Element-wise sum — aggregation across bands/shards for metrics.
  ImpatienceCounters& operator+=(const ImpatienceCounters& other) {
    pushes += other.pushes;
    srs_hits += other.srs_hits;
    new_runs += other.new_runs;
    removed_runs += other.removed_runs;
    compactions += other.compactions;
    parallel_merges += other.parallel_merges;
    merge_tasks += other.merge_tasks;
    loser_tree_merges += other.loser_tree_merges;
    runs_spilled += other.runs_spilled;
    spill_bytes_written += other.spill_bytes_written;
    spill_read_bytes += other.spill_read_bytes;
    async_flushes += other.async_flushes;
    readahead_hits += other.readahead_hits;
    readahead_misses += other.readahead_misses;
    idle_flushes += other.idle_flushes;
    spill_compactions += other.spill_compactions;
    flush_queue_bytes = std::max(flush_queue_bytes, other.flush_queue_bytes);
    kernel_level = std::max(kernel_level, other.kernel_level);
    merge.elements_moved += other.merge.elements_moved;
    merge.binary_merges += other.merge.binary_merges;
    merge.disjoint_concats += other.merge.disjoint_concats;
    punct_to_emit += other.punct_to_emit;
    ingest_to_emit += other.ingest_to_emit;
    kway_fanin += other.kway_fanin;
    spill_merge_fanin += other.spill_merge_fanin;
    return *this;
  }
};

// The incremental sorter. See the file comment for the algorithm.
template <typename T, typename TimeOf = SyncTimeOf>
class ImpatienceSorter : public IncrementalSorter<T, TimeOf> {
 public:
  explicit ImpatienceSorter(ImpatienceConfig config = {})
      : config_(config) {
    counters_.kernel_level = static_cast<uint64_t>(level_);
    if constexpr (std::is_trivially_copyable_v<T>) {
      spill_budget_ = config_.spill.memory_budget;
      if (spill_budget_ == 0 && config_.spill.use_env_default) {
        spill_budget_ = storage::MemoryBudgetFromEnv();
      }
      if (config_.spill.governor != nullptr) {
        // A governed sorter shares the global budget; its local trigger is
        // only the fallback for overrunning that budget single-handedly
        // between ticks.
        if (spill_budget_ == 0) {
          spill_budget_ = config_.spill.governor->memory_budget();
        }
        governor_client_ =
            config_.spill.governor->Register(config_.spill.governor_wakeup);
      }
      flusher_ = config_.spill.flusher;
      if (flusher_ == nullptr && config_.spill.use_env_default) {
        flusher_ = storage::FlusherFromEnv();
      }
      spill_block_records_ =
          std::max<size_t>(1, config_.spill.block_bytes / sizeof(T));
    }
  }

  ~ImpatienceSorter() override {
    // Spilled runs still hold flusher channels; they drain in the member
    // destructors after this body.
    if (governor_client_ != nullptr) {
      config_.spill.governor->Unregister(governor_client_);
    }
  }

  ImpatienceSorter(const ImpatienceSorter&) = delete;
  ImpatienceSorter& operator=(const ImpatienceSorter&) = delete;

  void Push(const T& item) override {
    const Timestamp t = time_of_(item);
    if (t <= last_punctuation_) {
      ++late_drops_;
      return;
    }
    ++counters_.pushes;
    ++buffered_;
    // Latency window: stamp the first push after an emit; every later push
    // in the window pays only this predictable branch.
    if (__builtin_expect(ingest_window_start_ns_ == 0, 0)) {
      ingest_window_start_ns_ = Clock::Nanos();
    }
    // Spill check every check_period pushes (one predictable compare when
    // no budget is configured).
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (__builtin_expect(spill_budget_ != 0, 0) &&
          ++spill_tick_ >= config_.spill.check_period) {
        spill_tick_ = 0;
        MaybeSpill();
      }
    }

    // Speculative run selection: the previous insertion's run is often the
    // right one again. The element belongs there iff it lies between that
    // run's tail and the tail of the run before it (tails are strictly
    // descending, so this certifies "first run whose tail <= t").
    if (config_.speculative_run_selection && last_run_ < runs_.size()) {
      const size_t r = last_run_;
      if (tails_[r] <= t && (r == 0 || t < tails_[r - 1])) {
        AppendToRun(r, item, t);
        ++counters_.srs_hits;
        return;
      }
    }

    // Search the strictly-descending tails array for the first run whose
    // tail is <= t (linear probe over the skew-heavy front, then
    // branch-free binary search).
    const size_t lo = FindRunIndex(tails_, t, level_);
    if (lo == runs_.size()) {
      // Smaller than every tail: start a new run.
      runs_.emplace_back();
      runs_.back().items.push_back(item);
      tails_.push_back(t);
      head_times_.push_back(t);
      ++counters_.new_runs;
      last_run_ = runs_.size() - 1;
      return;
    }
    AppendToRun(lo, item, t);
  }

  void OnPunctuation(Timestamp t, std::vector<T>* out) override {
    TRACE_SPAN("sorter.on_punctuation");
    const uint64_t punct_start_ns = Clock::Nanos();
    IMPATIENCE_CHECK_MSG(t >= last_punctuation_,
                         "punctuations must be non-decreasing");
    last_punctuation_ = t;

    // Cut the head run (elements <= t) off every sorted run. Each run is
    // internally sorted, so the cut point is found by binary search without
    // touching the elements in between (§III-D). The head_times_ array
    // lets runs with nothing to release be skipped with one contiguous
    // compare — at high punctuation frequency most runs release nothing,
    // and this fixed cost dominates.
    cut_runs_.clear();
    size_t emitted = 0;
    bool any_spilled = false;
    const size_t nruns = runs_.size();
    for (size_t r = kernels::NextIndexLE(head_times_.data(), 0, nruns, t,
                                         level_);
         r < nruns; r = kernels::NextIndexLE(head_times_.data(), r + 1,
                                             nruns, t, level_)) {
      Run& run = runs_[r];
      if constexpr (std::is_trivially_copyable_v<T>) {
        if (run.spilled != nullptr) {
          // Spilled run: count the releasing prefix from the block index
          // (at most one boundary-block read). The head advances after
          // the merge, once the cut range has been streamed out.
          Timestamp next_time = kMaxTimestamp;
          const size_t head = run.spilled->head();
          const size_t n = run.spilled->CutCountLE(
              t, time_of_, &next_time, &counters_.spill_read_bytes);
          IMPATIENCE_DCHECK(n > 0);
          cut_runs_.push_back(CutRange{r, head, head + n});
          emitted += n;
          head_times_[r] = next_time;
          any_spilled = true;
          continue;
        }
      }
      const size_t cut = UpperBoundByTime(run, t);
      IMPATIENCE_DCHECK(cut != run.head);
      cut_runs_.push_back(CutRange{r, run.head, cut});
      emitted += cut - run.head;
      run.head = cut;
      head_times_[r] = cut < run.items.size() ? time_of_(run.items[cut])
                                              : kMaxTimestamp;
    }
    buffered_ -= emitted;
    // Size the output once up front so neither the fast path nor the merge
    // reallocates mid-emit.
    out->reserve(out->size() + emitted);

    if (any_spilled) {
      if constexpr (std::is_trivially_copyable_v<T>) {
        MergeSpilledCuts(out);
      }
    } else if (cut_runs_.size() == 1) {
      // Fast path: one head run goes straight to the output.
      const CutRange& c = cut_runs_[0];
      const std::vector<T>& items = runs_[c.run].items;
      out->insert(out->end(),
                  items.begin() + static_cast<ptrdiff_t>(c.begin),
                  items.begin() + static_cast<ptrdiff_t>(c.end));
      counters_.merge.elements_moved += c.end - c.begin;
    } else if (!cut_runs_.empty()) {
      std::vector<std::vector<T>> heads;
      heads.reserve(cut_runs_.size());
      for (const CutRange& c : cut_runs_) {
        const std::vector<T>& items = runs_[c.run].items;
        std::vector<T> head = pool_.Acquire(c.end - c.begin);
        head.insert(head.end(),
                    items.begin() + static_cast<ptrdiff_t>(c.begin),
                    items.begin() + static_cast<ptrdiff_t>(c.end));
        heads.push_back(std::move(head));
      }
      auto less = [this](const T& a, const T& b) {
        return time_of_(a) < time_of_(b);
      };
      if (config_.parallel_merge &&
          config_.merge_policy == MergePolicy::kHuffman) {
        ParallelMergeOptions po;
        po.min_runs = config_.parallel_merge_min_runs;
        po.min_total_bytes = config_.parallel_merge_min_bytes;
        po.pool = config_.thread_pool;
        const size_t tasks = ParallelMergeRunsInto(
            &heads, less, out, &counters_.merge, &pool_, po);
        if (tasks > 0) {
          ++counters_.parallel_merges;
          counters_.merge_tasks += tasks;
        }
      } else {
        if (config_.merge_policy == MergePolicy::kLoserTree) {
          ++counters_.loser_tree_merges;
          counters_.kway_fanin.Record(heads.size());
        }
        MergeRunsInto(config_.merge_policy, &heads, less, out,
                      &counters_.merge, &pool_, &scratch_);
      }
    }

    if constexpr (std::is_trivially_copyable_v<T>) {
      // Durable mode flushes BEFORE the heads advance: an `advance` record
      // must never cover records whose blocks are still in the flusher
      // queue, or a crash between the two would lose data the manifest
      // claims was emitted. (Without sync_on_punctuation the ordering is
      // moot — nothing is durable by contract.)
      if (spill_budget_ != 0 && config_.spill.sync_on_punctuation) {
        for (Run& run : runs_) {
          if (run.spilled != nullptr) {
            counters_.spill_bytes_written +=
                run.spilled->FlushPending(time_of_, /*sync=*/true);
          }
        }
      }
      if (any_spilled) {
        // The cut ranges are out the door: advance the durable heads (the
        // manifest record a restart resumes from) before cleanup drops
        // emptied runs.
        for (const CutRange& c : cut_runs_) {
          Run& run = runs_[c.run];
          if (run.spilled != nullptr) run.spilled->AdvanceHead(c.end);
        }
      }
    }

    RemoveEmptyRunsAndCompact();
    // Keep some scratch for the next punctuation, but never let the pool
    // dominate the live buffer.
    pool_.Trim(std::max<size_t>(size_t{64} << 10,
                                buffered_ * sizeof(T) / 2));
    if constexpr (std::is_trivially_copyable_v<T>) {
      // Opportunistic end-of-punctuation budget check: merges and cuts
      // just churned buffers, so this is where usage peaks move.
      if (spill_budget_ != 0) MaybeSpill();
      // Ungoverned sorters compact half-consumed run files here (cursors
      // from this punctuation are gone); governed ones wait for the
      // governor's maintenance nudge.
      if (governor_client_ == nullptr && spill_budget_ != 0) {
        MaybeCompactDisk();
      }
      PublishToGovernor();
      if (flusher_ != nullptr) {
        counters_.flush_queue_bytes = flusher_->inflight_bytes();
      }
    }

    const uint64_t now_ns = Clock::Nanos();
    counters_.punct_to_emit.Record(now_ns - punct_start_ns);
    if (emitted > 0 && ingest_window_start_ns_ != 0) {
      counters_.ingest_to_emit.Record(now_ns >= ingest_window_start_ns_
                                          ? now_ns - ingest_window_start_ns_
                                          : 0);
      // Restart the window at the next push. Elements still buffered keep
      // their (older) true arrival times out of the next sample — the
      // reported lag is a lower bound for them.
      ingest_window_start_ns_ = 0;
    }
  }

  size_t buffered_count() const override { return buffered_; }

  size_t MemoryBytes() const override {
    // pool_.MemoryBytes() covers ping-pong merge buffers both pooled and
    // checked out; scratch_ covers the loser-tree nodes and cursors.
    size_t bytes = tails_.capacity() * sizeof(Timestamp) +
                   head_times_.capacity() * sizeof(Timestamp) +
                   runs_.capacity() * sizeof(Run) +
                   cut_runs_.capacity() * sizeof(CutRange) +
                   pool_.MemoryBytes() + scratch_.MemoryBytes();
    for (const Run& run : runs_) {
      bytes += run.items.capacity() * sizeof(T);
      if constexpr (std::is_trivially_copyable_v<T>) {
        if (run.spilled != nullptr) bytes += run.spilled->MemoryBytes();
      }
    }
    return bytes;
  }

  uint64_t late_drops() const override { return late_drops_; }

  std::string name() const override { return "Impatience"; }

  // Number of sorted runs currently maintained (Figure 5's metric).
  size_t run_count() const { return runs_.size(); }

  // Lifetime statistics for tests and ablations.
  const ImpatienceCounters& counters() const { return counters_; }

  // Zeroes the counters without touching the buffered runs — the sorter
  // keeps sorting; only the statistics window restarts. late_drops() is
  // part of the sorter contract (not a statistics counter) and survives.
  void ResetCounters() {
    counters_.Reset();
    counters_.kernel_level = static_cast<uint64_t>(level_);
  }

  // The last punctuation received (kMinTimestamp if none yet).
  Timestamp last_punctuation() const { return last_punctuation_; }

  // Consumes any outstanding governor requests: an assigned spill target,
  // an idle-deadline tail flush, a disk-compaction nudge. The server calls
  // this on the shard thread when the governor wakeup lands; calling it at
  // any other quiet point (or with no governor) is harmless. Returns true
  // if any maintenance work ran.
  bool PerformSpillMaintenance() {
    if constexpr (!std::is_trivially_copyable_v<T>) {
      return false;
    } else {
      if (spill_budget_ == 0 && governor_client_ == nullptr) return false;
      bool did = false;
      if (governor_client_ != nullptr &&
          governor_client_->TakeIdleFlush()) {
        // Push quiescent tail blocks to disk (and through the fsync when
        // the store is durable) — a session that stops sending must not
        // keep its last events RAM-only forever.
        for (Run& run : runs_) {
          if (run.spilled != nullptr && run.spilled->HasUnflushedTail()) {
            counters_.spill_bytes_written +=
                run.spilled->FlushPending(time_of_, /*sync=*/true);
            did = true;
          }
        }
        if (did) ++counters_.idle_flushes;
      }
      const uint64_t spilled_before = counters_.runs_spilled;
      MaybeSpill();  // Consumes the governor's spill target, if any.
      did |= counters_.runs_spilled != spilled_before;
      if (governor_client_ == nullptr ||
          governor_client_->TakeCompaction()) {
        did |= MaybeCompactDisk();
      }
      PublishToGovernor();
      if (flusher_ != nullptr) {
        counters_.flush_queue_bytes = flusher_->inflight_bytes();
      }
      return did;
    }
  }

  const HistogramSnapshot* punctuation_latency() const override {
    return &counters_.punct_to_emit;
  }
  const HistogramSnapshot* ingest_latency() const override {
    return &counters_.ingest_to_emit;
  }

 private:
  // One sorted run. Elements before `head` have already been emitted.
  // When `spilled` is set the elements live on disk instead of `items`
  // (which is then empty), and head/cut state lives in the SpilledRun.
  struct Run {
    std::vector<T> items;
    size_t head = 0;
    std::unique_ptr<storage::SpilledRun<T>> spilled;
    // Victim-choice recency at the last append (only maintained while a
    // spill budget is active): the private append sequence, or — under a
    // governor — its coarse tick, so coldness compares across sorters.
    uint64_t last_append = 0;

    size_t live_size() const { return items.size() - head; }
  };

  void AppendToRun(size_t r, const T& item, Timestamp t) {
    IMPATIENCE_DCHECK(tails_[r] <= t);
    Run& run = runs_[r];
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (spill_budget_ != 0) {
        if (governor_client_ != nullptr) {
          run.last_append = config_.spill.governor->now_tick();
          governor_client_->NoteAppend(run.last_append);
        } else {
          run.last_append = ++append_seq_;
        }
        if (run.spilled != nullptr) {
          counters_.spill_bytes_written +=
              run.spilled->Append(item, time_of_);
          tails_[r] = t;
          last_run_ = r;
          return;
        }
      }
    }
    run.items.push_back(item);
    tails_[r] = t;
    last_run_ = r;
  }

  // First index in [run.head, run.items.size()) with timestamp > t.
  size_t UpperBoundByTime(const Run& run, Timestamp t) const {
    return kernels::UpperBoundByTime(run.items.data(), run.head,
                                     run.items.size(), t, time_of_, level_);
  }

  // --- Spill tier (instantiated only for trivially-copyable T; every call
  // site sits behind `if constexpr`). ---

  // Streams the cut ranges (at least one of them spilled) through run
  // cursors into `out`. RAM cuts participate as zero-copy single-chunk
  // cursors — unlike the in-RAM path there is no staging copy into pool
  // buffers, because the cursor merge does not consume its inputs.
  // Byte-identical to the in-RAM merge of the same cuts (see
  // HuffmanCursorMergeInto).
  void MergeSpilledCuts(std::vector<T>* out) {
    std::vector<std::unique_ptr<RunCursor<T>>> owned;
    std::vector<RunCursor<T>*> cursors;
    owned.reserve(cut_runs_.size());
    cursors.reserve(cut_runs_.size());
    for (const CutRange& c : cut_runs_) {
      Run& run = runs_[c.run];
      if (run.spilled != nullptr) {
        owned.push_back(run.spilled->MakeCursor(
            c.begin, c.end, &counters_.spill_read_bytes,
            &counters_.readahead_hits, &counters_.readahead_misses));
      } else {
        const T* base = run.items.data();
        owned.push_back(std::make_unique<VectorRunCursor<T>>(
            base + c.begin, base + c.end));
      }
      cursors.push_back(owned.back().get());
    }
    counters_.spill_merge_fanin.Record(cursors.size());
    auto less = [this](const T& a, const T& b) {
      return time_of_(a) < time_of_(b);
    };
    HuffmanCursorMergeInto(&cursors, less, out, &counters_.merge);
  }

  // Enforces the byte budget: trims the buffer pool, then spills victim
  // runs coldest-first (least recently appended, ties to the larger run)
  // until the measured excess is covered or nothing spillable remains.
  // Governed sorters spill what the governor assigned (it ranked every
  // client's coldness globally); the local used>budget trigger survives
  // only as the fallback for a single sorter overrunning the whole shared
  // budget between ticks.
  void MaybeSpill() {
    const size_t own_before = MemoryBytes();
    size_t deficit = 0;
    if (governor_client_ != nullptr) {
      deficit = std::min(governor_client_->TakeSpillTarget(), own_before);
      if (spill_budget_ != 0 && own_before > spill_budget_) {
        deficit = std::max(deficit, own_before - spill_budget_);
      }
    } else {
      size_t used = own_before;
      if (config_.spill.tracker != nullptr) {
        used = std::max(used, config_.spill.tracker->current_bytes());
      }
      if (used > spill_budget_) deficit = used - spill_budget_;
    }
    if (deficit == 0) return;
    // Pooled merge buffers are pure cache — drop them before touching any
    // run.
    pool_.Trim(0);
    size_t own = MemoryBytes();
    while (own_before - own < deficit) {
      const size_t victim = PickVictim();
      if (victim == runs_.size()) break;
      if (!SpillRun(victim)) break;
      own = MemoryBytes();
    }
    PublishToGovernor();
  }

  // Coldest unspilled run with enough live bytes to be worth a file; if
  // none qualifies, the largest unspilled run; runs_.size() if nothing
  // spillable remains.
  size_t PickVictim() const {
    size_t best = runs_.size();
    uint64_t best_age = UINT64_MAX;
    size_t best_bytes = 0;
    size_t biggest = runs_.size();
    size_t biggest_bytes = 0;
    for (size_t i = 0; i < runs_.size(); ++i) {
      const Run& run = runs_[i];
      if (run.spilled != nullptr || run.items.empty()) continue;
      const size_t live_bytes = run.live_size() * sizeof(T);
      if (live_bytes > biggest_bytes) {
        biggest = i;
        biggest_bytes = live_bytes;
      }
      if (live_bytes < config_.spill.min_spill_bytes) continue;
      if (run.last_append < best_age ||
          (run.last_append == best_age && live_bytes > best_bytes)) {
        best = i;
        best_age = run.last_append;
        best_bytes = live_bytes;
      }
    }
    return best != runs_.size() ? best : biggest;
  }

  // Moves run `r`'s live suffix into a disk-backed SpilledRun and frees
  // its RAM storage. On store/file failure, disables spilling for this
  // sorter (data stays in RAM — never at risk) and returns false.
  bool SpillRun(size_t r) {
    storage::RunStore* store = EnsureStore();
    if (store == nullptr) {
      spill_budget_ = 0;
      return false;
    }
    Run& run = runs_[r];
    std::string error;
    std::unique_ptr<storage::SpilledRun<T>> spilled =
        storage::SpilledRun<T>::Create(store, spill_block_records_, flusher_,
                                       &counters_.async_flushes, &error);
    if (spilled == nullptr) {
      spill_budget_ = 0;
      return false;
    }
    counters_.spill_bytes_written += spilled->AppendRange(
        run.items.data() + run.head, run.items.size() - run.head, time_of_);
    counters_.spill_bytes_written +=
        spilled->FlushPending(time_of_, /*sync=*/false);
    // Free the RAM storage outright (a pool release would keep the bytes
    // resident, defeating the spill).
    std::vector<T>().swap(run.items);
    run.head = 0;
    run.spilled = std::move(spilled);
    ++counters_.runs_spilled;
    return true;
  }

  storage::RunStore* EnsureStore() {
    if (config_.spill.store != nullptr) return config_.spill.store;
    if (owned_store_ == nullptr) {
      std::string error;
      owned_store_ = storage::RunStore::CreateTemp(&error);
    }
    return owned_store_.get();
  }

  // A run file is worth rewriting once its fully-emitted prefix holds both
  // an absolute floor of bytes and a fraction of the whole file.
  bool CompactionWorthy(const storage::SpilledRun<T>& s) const {
    const uint64_t reclaim = s.ReclaimableDiskBytes();
    return reclaim >= config_.spill.compact_min_disk_bytes &&
           static_cast<double>(reclaim) >=
               config_.spill.compact_disk_fraction *
                   static_cast<double>(s.DiskBytes());
  }

  // Rewrites every qualifying run file's live suffix into a fresh file
  // (crash-atomic compact-swap). Only call between punctuations — live
  // cursors hold offsets into the old files. Returns true if any run was
  // compacted.
  bool MaybeCompactDisk() {
    bool did = false;
    for (Run& run : runs_) {
      if (run.spilled == nullptr || !CompactionWorthy(*run.spilled)) {
        continue;
      }
      if (run.spilled->CompactDisk(time_of_, &counters_.spill_read_bytes) >
          0) {
        ++counters_.spill_compactions;
        did = true;
      }
    }
    return did;
  }

  // Refreshes the governor's view of this sorter: resident bytes, age of
  // the coldest spillable run (UINT64_MAX = nothing to spill, ranks
  // last), whether a partial tail block sits unflushed, and whether any
  // run file is worth compacting.
  void PublishToGovernor() {
    if (governor_client_ == nullptr) return;
    uint64_t coldest = UINT64_MAX;
    bool pending_tail = false;
    bool wants_compaction = false;
    for (const Run& run : runs_) {
      if (run.spilled != nullptr) {
        if (run.spilled->HasUnflushedTail()) pending_tail = true;
        if (!wants_compaction && CompactionWorthy(*run.spilled)) {
          wants_compaction = true;
        }
        continue;
      }
      if (run.live_size() * sizeof(T) < config_.spill.min_spill_bytes) {
        continue;
      }
      coldest = std::min(coldest, run.last_append);
    }
    governor_client_->Publish(MemoryBytes(), coldest, pending_tail);
    governor_client_->AdvertiseCompaction(wants_compaction);
  }

  void RemoveEmptyRunsAndCompact() {
    size_t w = 0;
    for (size_t r = 0; r < runs_.size(); ++r) {
      Run& run = runs_[r];
      if constexpr (std::is_trivially_copyable_v<T>) {
        if (run.spilled != nullptr) {
          if (run.spilled->empty()) {
            // Fully consumed: delete the run file (manifest `delete` +
            // unlink) along with the run.
            run.spilled->Discard();
            ++counters_.removed_runs;
            continue;
          }
          // Spilled runs never compact — their consumed prefix costs no
          // RAM (index entries are pruned on head advance).
          if (w != r) {
            runs_[w] = std::move(runs_[r]);
            tails_[w] = tails_[r];
            head_times_[w] = head_times_[r];
          }
          ++w;
          continue;
        }
      }
      if (run.head == run.items.size()) {
        ++counters_.removed_runs;
        continue;  // Run fully emitted: drop it (§III-D "cleanup").
      }
      // Compact runs whose consumed prefix dominates their storage, so
      // memory usage tracks the live buffer rather than history. The live
      // suffix moves into a pool-acquired buffer and the old storage goes
      // back to the pool — erase + shrink_to_fit would instead free the
      // storage and force a fresh allocation on the next append.
      if (run.head > 0 &&
          run.head * sizeof(T) >= config_.compact_min_bytes &&
          static_cast<double>(run.head) >
              config_.compact_fraction *
                  static_cast<double>(run.items.size())) {
        std::vector<T> compacted = pool_.Acquire(run.live_size());
        compacted.insert(compacted.end(),
                         run.items.begin() +
                             static_cast<ptrdiff_t>(run.head),
                         run.items.end());
        pool_.Release(std::move(run.items));
        run.items = std::move(compacted);
        run.head = 0;
        ++counters_.compactions;
      }
      if (w != r) {
        runs_[w] = std::move(runs_[r]);
        tails_[w] = tails_[r];
        head_times_[w] = head_times_[r];
      }
      ++w;
    }
    runs_.resize(w);
    tails_.resize(w);
    head_times_.resize(w);
    // Run indices shifted; the speculation cache is no longer valid.
    last_run_ = runs_.size();
  }

  ImpatienceConfig config_;
  TimeOf time_of_;
  // Dispatch level resolved once per sorter; hot loops pass it through
  // instead of re-reading the process-wide cache.
  const KernelLevel level_ = ActiveKernelLevel();

  // Spill tier state. spill_budget_ is the resolved byte budget (0 =
  // disabled; config takes precedence over IMPATIENCE_MEMORY_BUDGET).
  // owned_store_ is the lazily-created temp-dir store used when no shared
  // store was configured; declared before runs_ so spilled runs (which
  // reference the store) are destroyed first.
  size_t spill_budget_ = 0;
  size_t spill_block_records_ = 1;
  size_t spill_tick_ = 0;
  uint64_t append_seq_ = 0;
  std::unique_ptr<storage::RunStore> owned_store_;
  // Write-behind pool (config, else $IMPATIENCE_SPILL_FLUSHER_THREADS) and
  // this sorter's governor mailbox; both nullptr on the synchronous path.
  storage::SpillFlusher* flusher_ = nullptr;
  storage::SpillGovernor::Client* governor_client_ = nullptr;

  std::vector<Run> runs_;
  std::vector<Timestamp> tails_;  // tails_[i] == time of runs_[i].items.back()
  // head_times_[i] == time of runs_[i]'s first live element (kMaxTimestamp
  // if the run is fully emitted); lets punctuations skip idle runs.
  std::vector<Timestamp> head_times_;
  // Scratch for OnPunctuation: the cut taken from each releasing run.
  struct CutRange {
    size_t run;
    size_t begin;
    size_t end;
  };
  std::vector<CutRange> cut_runs_;
  size_t last_run_ = 0;           // Run used by the previous insertion.
  size_t buffered_ = 0;
  // Wall-clock (ns) of the first push since the last emitting punctuation;
  // 0 when no window is open.
  uint64_t ingest_window_start_ns_ = 0;
  Timestamp last_punctuation_ = kMinTimestamp;
  uint64_t late_drops_ = 0;
  ImpatienceCounters counters_;
  MergeBufferPool<T> pool_;
  // Loser-tree state reused across punctuations (kLoserTree policy).
  LoserTreeScratch<T> scratch_;
};

}  // namespace impatience

#endif  // IMPATIENCE_SORT_IMPATIENCE_SORTER_H_
