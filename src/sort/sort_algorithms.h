// Uniform construction of the paper's sorting algorithms.
//
// Two catalogues are provided, matching the two halves of the evaluation:
//  * OfflineAlgorithm (Figure 7): sort a complete vector by timestamp —
//    Impatience (with/without its optimizations), Quicksort, Timsort,
//    Heapsort. "Impatience w/o HM&SRS" is identical to Patience sort.
//  * OnlineAlgorithm (Figure 8): incremental sorters honouring the
//    punctuation contract — Impatience natively, Heapsort natively (it is
//    a priority queue), and Patience/Quicksort/Timsort through
//    IncrementalAdapter as in §VI-B.

#ifndef IMPATIENCE_SORT_SORT_ALGORITHMS_H_
#define IMPATIENCE_SORT_SORT_ALGORITHMS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/event.h"
#include "sort/heapsort.h"
#include "sort/impatience_sorter.h"
#include "sort/incremental_adapter.h"
#include "sort/patience_sorter.h"
#include "sort/quicksort.h"
#include "sort/sorter.h"
#include "sort/timsort.h"

namespace impatience {

// ---------------------------------------------------------------------------
// Offline catalogue (Figure 7).

enum class OfflineAlgorithm {
  kImpatience,          // Patience partition + SRS + Huffman merge.
  kImpatienceNoHM,      // "Impt w/o HM": SRS, balanced merge order.
  kImpatienceNoHMNoSRS,  // "Impt w/o HM&SRS" == plain Patience sort.
  kQuicksort,
  kTimsort,
  kHeapsort,
};

inline const char* OfflineAlgorithmName(OfflineAlgorithm a) {
  switch (a) {
    case OfflineAlgorithm::kImpatience:
      return "Impatience";
    case OfflineAlgorithm::kImpatienceNoHM:
      return "Impt w/o HM";
    case OfflineAlgorithm::kImpatienceNoHMNoSRS:
      return "Impt w/o HM&SRS";
    case OfflineAlgorithm::kQuicksort:
      return "Quicksort";
    case OfflineAlgorithm::kTimsort:
      return "Timsort";
    case OfflineAlgorithm::kHeapsort:
      return "Heapsort";
  }
  return "?";
}

inline constexpr OfflineAlgorithm kAllOfflineAlgorithms[] = {
    OfflineAlgorithm::kImpatience,         OfflineAlgorithm::kImpatienceNoHM,
    OfflineAlgorithm::kImpatienceNoHMNoSRS, OfflineAlgorithm::kQuicksort,
    OfflineAlgorithm::kTimsort,            OfflineAlgorithm::kHeapsort,
};

// Sorts `items` in place by timestamp using the selected algorithm.
template <typename T, typename TimeOf = SyncTimeOf>
void OfflineSort(OfflineAlgorithm algorithm, std::vector<T>* items) {
  TimeOf time_of;
  auto less = [&time_of](const T& a, const T& b) {
    return time_of(a) < time_of(b);
  };
  switch (algorithm) {
    case OfflineAlgorithm::kImpatience:
      PatienceSortVector<T, TimeOf>(items, MergePolicy::kHuffman,
                                    /*speculative_run_selection=*/true);
      return;
    case OfflineAlgorithm::kImpatienceNoHM:
      PatienceSortVector<T, TimeOf>(items, MergePolicy::kBalanced,
                                    /*speculative_run_selection=*/true);
      return;
    case OfflineAlgorithm::kImpatienceNoHMNoSRS:
      PatienceSortVector<T, TimeOf>(items, MergePolicy::kBalanced,
                                    /*speculative_run_selection=*/false);
      return;
    case OfflineAlgorithm::kQuicksort:
      Quicksort(items->begin(), items->end(), less);
      return;
    case OfflineAlgorithm::kTimsort:
      Timsort(items->begin(), items->end(), less);
      return;
    case OfflineAlgorithm::kHeapsort:
      Heapsort(items->begin(), items->end(), less);
      return;
  }
  IMPATIENCE_CHECK(false);
}

// ---------------------------------------------------------------------------
// Online catalogue (Figure 8).

enum class OnlineAlgorithm {
  kImpatience,
  kPatience,  // via IncrementalAdapter
  kQuicksort,  // via IncrementalAdapter
  kTimsort,    // via IncrementalAdapter
  kHeapsort,   // natively incremental
};

inline const char* OnlineAlgorithmName(OnlineAlgorithm a) {
  switch (a) {
    case OnlineAlgorithm::kImpatience:
      return "Impatience";
    case OnlineAlgorithm::kPatience:
      return "Patience";
    case OnlineAlgorithm::kQuicksort:
      return "Quicksort";
    case OnlineAlgorithm::kTimsort:
      return "Timsort";
    case OnlineAlgorithm::kHeapsort:
      return "Heapsort";
  }
  return "?";
}

inline constexpr OnlineAlgorithm kAllOnlineAlgorithms[] = {
    OnlineAlgorithm::kImpatience, OnlineAlgorithm::kPatience,
    OnlineAlgorithm::kQuicksort,  OnlineAlgorithm::kTimsort,
    OnlineAlgorithm::kHeapsort,
};

namespace sort_internal {

// Generic functors adapting the offline sorts to IncrementalAdapter's
// SortFn policy (callable with (first, last, less)).
struct QuicksortFn {
  template <typename It, typename Less>
  void operator()(It first, It last, Less less) const {
    Quicksort(first, last, less);
  }
};

struct TimsortFn {
  template <typename It, typename Less>
  void operator()(It first, It last, Less less) const {
    Timsort(first, last, less);
  }
};

template <typename T, typename TimeOf>
struct PatienceSortFn {
  template <typename It, typename Less>
  void operator()(It first, It last, Less /*less*/) const {
    std::vector<T> buf(first, last);
    PatienceSortVector<T, TimeOf>(&buf, MergePolicy::kHuffman,
                                  /*speculative_run_selection=*/true);
    std::move(buf.begin(), buf.end(), first);
  }
};

}  // namespace sort_internal

// Creates an incremental sorter honouring the punctuation contract.
template <typename T, typename TimeOf = SyncTimeOf>
std::unique_ptr<IncrementalSorter<T, TimeOf>> MakeOnlineSorter(
    OnlineAlgorithm algorithm, ImpatienceConfig config = {}) {
  using sort_internal::PatienceSortFn;
  using sort_internal::QuicksortFn;
  using sort_internal::TimsortFn;
  switch (algorithm) {
    case OnlineAlgorithm::kImpatience:
      return std::make_unique<ImpatienceSorter<T, TimeOf>>(config);
    case OnlineAlgorithm::kPatience:
      return std::make_unique<
          IncrementalAdapter<T, PatienceSortFn<T, TimeOf>, TimeOf>>(
          PatienceSortFn<T, TimeOf>{}, "Patience");
    case OnlineAlgorithm::kQuicksort:
      return std::make_unique<IncrementalAdapter<T, QuicksortFn, TimeOf>>(
          QuicksortFn{}, "Quicksort");
    case OnlineAlgorithm::kTimsort:
      return std::make_unique<IncrementalAdapter<T, TimsortFn, TimeOf>>(
          TimsortFn{}, "Timsort");
    case OnlineAlgorithm::kHeapsort:
      return std::make_unique<HeapSorter<T, TimeOf>>();
  }
  IMPATIENCE_CHECK(false);
  return nullptr;
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_SORT_ALGORITHMS_H_
