// Patience partition pass 1: assigning every element a run.
//
// Pass 1 scans the timestamp column and gives each element the index of
// the first run whose tail is <= its timestamp (or a fresh run), leaving
// the actual data movement to the scatter in pass 2. This file holds the
// sequential scan and a speculative parallel version that is byte-identical
// to it.
//
// The parallel version splits the column into chunks and runs a *local*
// patience assignment per chunk (from an empty tails array) in parallel —
// pure speculation, since the real assignment depends on the global tails
// left by every earlier chunk. A sequential reconciliation pass then walks
// the chunks in order and validates each local result against the global
// tails G:
//
//   case B  — the chunk's maximum timestamp is below min(G): no element
//             can reach an existing run, so the local runs ARE the
//             sequential result, renumbered to start at |G|.
//   case A' — the chunk collapsed to a single local run (it is
//             non-decreasing): if the first element lands in run g and the
//             chunk's maximum stays below tail(g-1), every element lands
//             in g.
//   case C  — speculation failed: replay the chunk against G with the
//             exact sequential scan.
//
// Cases A'/B record a small per-chunk run renumbering; a final parallel
// pass rewrites the speculative run ids through it. Assignment depends
// only on timestamps and first-fit order — the speculative-run-selection
// fast path never changes the chosen run, only skips the search — so the
// result is byte-identical to the sequential scan at every thread count.

#ifndef IMPATIENCE_SORT_PARTITION_H_
#define IMPATIENCE_SORT_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "common/timestamp.h"
#include "common/trace.h"
#include "sort/kernels.h"

namespace impatience {

// Pass-1 output: the run id of every element, the final tails array
// (strictly descending), and the element count of every run.
struct PartitionPass1 {
  std::vector<uint32_t> run_of;
  std::vector<Timestamp> tails;
  std::vector<size_t> run_sizes;
};

namespace partition_internal {

// Chunk length for the speculative parallel scan. Large enough that a
// chunk amortizes its reconciliation, small enough to expose parallelism
// on mid-sized inputs.
inline constexpr size_t kPartitionChunk = size_t{1} << 15;

// Sequential first-fit scan of times[begin, end) against the global
// `tails`/`run_sizes`, writing final run ids. The exact reference
// semantics; also the case-C replay.
inline void ScanRange(const Timestamp* times, size_t begin, size_t end,
                      bool speculative_run_selection, KernelLevel level,
                      std::vector<Timestamp>* tails,
                      std::vector<size_t>* run_sizes, uint32_t* run_of,
                      size_t* last_run) {
  std::vector<Timestamp>& ts = *tails;
  std::vector<size_t>& sizes = *run_sizes;
  for (size_t i = begin; i < end; ++i) {
    const Timestamp t = times[i];
    if (speculative_run_selection && *last_run < ts.size()) {
      // §III-E2: the previous insertion's run is often right again. The
      // test certifies "first run whose tail <= t", so hitting it never
      // changes the assignment, only skips the search.
      const size_t r = *last_run;
      if (ts[r] <= t && (r == 0 || t < ts[r - 1])) {
        run_of[i] = static_cast<uint32_t>(r);
        ts[r] = t;
        ++sizes[r];
        continue;
      }
    }
    const size_t lo = kernels::FindFirstLEDesc(ts.data(), ts.size(), t,
                                               level);
    if (lo == ts.size()) {
      ts.push_back(t);
      sizes.push_back(0);
    }
    run_of[i] = static_cast<uint32_t>(lo);
    ts[lo] = t;
    ++sizes[lo];
    *last_run = lo;
  }
}

}  // namespace partition_internal

// Sequential pass 1 over the timestamp column.
inline void AssignRunsSequential(const Timestamp* times, size_t n,
                                 bool speculative_run_selection,
                                 KernelLevel level, PartitionPass1* out) {
  TRACE_SPAN("partition.pass1");
  out->run_of.resize(n);
  out->tails.clear();
  out->run_sizes.clear();
  size_t last_run = 0;
  partition_internal::ScanRange(times, 0, n, speculative_run_selection,
                                level, &out->tails, &out->run_sizes,
                                out->run_of.data(), &last_run);
}

// Parallel pass 1: speculative per-chunk assignment + sequential
// reconciliation (see the file comment). Byte-identical to
// AssignRunsSequential on the same column.
inline void AssignRunsParallel(const Timestamp* times, size_t n,
                               bool speculative_run_selection,
                               KernelLevel level, ThreadPool* pool,
                               PartitionPass1* out) {
  TRACE_SPAN("partition.pass1_parallel");
  using partition_internal::kPartitionChunk;
  out->run_of.resize(n);
  out->tails.clear();
  out->run_sizes.clear();
  uint32_t* run_of = out->run_of.data();

  const size_t num_chunks = (n + kPartitionChunk - 1) / kPartitionChunk;
  struct ChunkLocal {
    // Local patience state built from an empty tails array. tails[0] is
    // the chunk's maximum element (the max always lands in run 0 and
    // nothing larger follows it there).
    std::vector<Timestamp> tails;
    std::vector<size_t> sizes;
  };
  std::vector<ChunkLocal> locals(num_chunks);
  ParallelFor(
      0, num_chunks, size_t{1},
      [times, n, run_of, &locals, speculative_run_selection, level](
          size_t clo, size_t chi) {
        TRACE_SPAN("partition.chunk_scan");
        for (size_t c = clo; c < chi; ++c) {
          const size_t begin = c * kPartitionChunk;
          const size_t end = std::min(n, begin + kPartitionChunk);
          size_t last_run = 0;
          partition_internal::ScanRange(
              times, begin, end, speculative_run_selection, level,
              &locals[c].tails, &locals[c].sizes, run_of, &last_run);
        }
      },
      pool);

  // Reconciliation: sequential over chunks, so G is exactly the
  // sequential tails state at each chunk boundary (induction over chunks).
  std::vector<Timestamp>& G = out->tails;
  std::vector<size_t>& run_sizes = out->run_sizes;
  // remap[c][j] = global run id of the chunk's local run j; empty when the
  // chunk was replayed (case C wrote final ids directly).
  std::vector<std::vector<uint32_t>> remap(num_chunks);
  size_t last_run = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * kPartitionChunk;
    const size_t end = std::min(n, begin + kPartitionChunk);
    ChunkLocal& local = locals[c];
    const size_t m = local.tails.size();
    const Timestamp chunk_max = m > 0 ? local.tails[0] : kMinTimestamp;
    if (G.empty() || chunk_max < G.back()) {
      // Case B: every element is below every existing tail, so the whole
      // chunk replays onto fresh runs exactly as the local scan did.
      std::vector<uint32_t>& r = remap[c];
      r.resize(m);
      const size_t base = G.size();
      for (size_t j = 0; j < m; ++j) {
        r[j] = static_cast<uint32_t>(base + j);
      }
      G.insert(G.end(), local.tails.begin(), local.tails.end());
      run_sizes.insert(run_sizes.end(), local.sizes.begin(),
                       local.sizes.end());
      last_run = G.size() - 1;
      continue;
    }
    if (m == 1) {
      // Case A': the chunk is non-decreasing. If its first element lands
      // in an existing run g and its maximum stays below tail(g-1), every
      // element first-fits to g (runs before g keep tails above the whole
      // chunk; g's tail trails the chunk's own non-decreasing elements).
      const Timestamp first = times[begin];
      const size_t g =
          kernels::FindFirstLEDesc(G.data(), G.size(), first, level);
      if (g < G.size() && (g == 0 || chunk_max < G[g - 1])) {
        remap[c].assign(1, static_cast<uint32_t>(g));
        G[g] = chunk_max;
        run_sizes[g] += end - begin;
        last_run = g;
        continue;
      }
    }
    // Case C: speculation failed — replay this chunk sequentially.
    partition_internal::ScanRange(times, begin, end,
                                  speculative_run_selection, level, &G,
                                  &run_sizes, run_of, &last_run);
  }

  // Rewrite speculative local run ids through the per-chunk renumbering.
  ParallelFor(
      0, num_chunks, size_t{1},
      [n, run_of, &remap](size_t clo, size_t chi) {
        for (size_t c = clo; c < chi; ++c) {
          const std::vector<uint32_t>& r = remap[c];
          if (r.empty()) continue;  // Case C already wrote final ids.
          const size_t begin = c * kPartitionChunk;
          const size_t end = std::min(n, begin + kPartitionChunk);
          for (size_t i = begin; i < end; ++i) {
            run_of[i] = r[run_of[i]];
          }
        }
      },
      pool);
}

// Pass 1 over the timestamp column: parallel speculative scan when the
// pool has workers and the input is large enough to amortize
// reconciliation, sequential otherwise. Byte-identical either way.
inline void AssignRuns(const Timestamp* times, size_t n,
                       bool speculative_run_selection, KernelLevel level,
                       ThreadPool* pool, PartitionPass1* out) {
  using partition_internal::kPartitionChunk;
  if (pool != nullptr && pool->thread_count() > 1 &&
      n >= 2 * kPartitionChunk) {
    AssignRunsParallel(times, n, speculative_run_selection, level, pool,
                       out);
    return;
  }
  AssignRunsSequential(times, n, speculative_run_selection, level, out);
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_PARTITION_H_
