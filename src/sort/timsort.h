// Timsort — adaptive, stable merge sort (baseline in Figure 7/8).
//
// A faithful implementation of the algorithm used by CPython and the JDK:
// natural-run detection with descending-run reversal, binary insertion sort
// up to minrun, a run stack with the (corrected) merge invariants, and
// galloping merges with an adaptive gallop threshold. The paper compares
// Impatience sort against Timsort because both exploit pre-existing order;
// Timsort, however, cannot sort incrementally (it is wrapped by
// IncrementalAdapter for the online experiments).

#ifndef IMPATIENCE_SORT_TIMSORT_H_
#define IMPATIENCE_SORT_TIMSORT_H_

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

#include "common/check.h"

namespace impatience {
namespace timsort_internal {

inline constexpr ptrdiff_t kMinMerge = 64;
inline constexpr ptrdiff_t kMinGallop = 7;

// Computes minrun: n divided down to [kMinMerge/2, kMinMerge), rounding up
// whenever any bit is shifted out, so n/minrun is close to a power of two.
inline ptrdiff_t ComputeMinRun(ptrdiff_t n) {
  ptrdiff_t r = 0;
  while (n >= kMinMerge) {
    r |= (n & 1);
    n >>= 1;
  }
  return n + r;
}

// Sorts [first, last) assuming [first, sorted_end) is already sorted, by
// binary insertion.
template <typename RandomIt, typename Less>
void BinaryInsertionSort(RandomIt first, RandomIt last, RandomIt sorted_end,
                         Less less) {
  if (sorted_end == first) ++sorted_end;
  for (RandomIt it = sorted_end; it != last; ++it) {
    auto value = std::move(*it);
    RandomIt pos = std::upper_bound(first, it, value, less);
    std::move_backward(pos, it, it + 1);
    *pos = std::move(value);
  }
}

// Length of the natural run starting at `first`; a strictly descending run
// is reversed in place so the result is always ascending (stably: only
// strictly descending runs are reversed).
template <typename RandomIt, typename Less>
ptrdiff_t CountRunAndMakeAscending(RandomIt first, RandomIt last, Less less) {
  RandomIt it = first + 1;
  if (it == last) return 1;
  if (less(*it, *first)) {
    // Strictly descending.
    do {
      ++it;
    } while (it != last && less(*it, *(it - 1)));
    std::reverse(first, it);
  } else {
    // Ascending (non-decreasing).
    do {
      ++it;
    } while (it != last && !less(*it, *(it - 1)));
  }
  return it - first;
}

// Locates the insertion point for `key` in sorted [base, base+len): the
// number of elements that should precede key, with ties breaking LEFT of
// equal elements. Gallops from `hint` (0 <= hint < len).
template <typename T, typename RandomIt, typename Less>
ptrdiff_t GallopLeft(const T& key, RandomIt base, ptrdiff_t len,
                     ptrdiff_t hint, Less less) {
  IMPATIENCE_DCHECK(len > 0 && hint >= 0 && hint < len);
  ptrdiff_t last_ofs = 0;
  ptrdiff_t ofs = 1;
  if (less(*(base + hint), key)) {
    // Gallop right until base[hint+last_ofs] < key <= base[hint+ofs].
    const ptrdiff_t max_ofs = len - hint;
    while (ofs < max_ofs && less(*(base + hint + ofs), key)) {
      last_ofs = ofs;
      ofs = (ofs << 1) + 1;
      if (ofs <= 0) ofs = max_ofs;  // overflow
    }
    if (ofs > max_ofs) ofs = max_ofs;
    last_ofs += hint;
    ofs += hint;
  } else {
    // Gallop left until base[hint-ofs] < key <= base[hint-last_ofs].
    const ptrdiff_t max_ofs = hint + 1;
    while (ofs < max_ofs && !less(*(base + hint - ofs), key)) {
      last_ofs = ofs;
      ofs = (ofs << 1) + 1;
      if (ofs <= 0) ofs = max_ofs;
    }
    if (ofs > max_ofs) ofs = max_ofs;
    const ptrdiff_t tmp = last_ofs;
    last_ofs = hint - ofs;
    ofs = hint - tmp;
  }
  // Binary search in (last_ofs, ofs].
  ++last_ofs;
  while (last_ofs < ofs) {
    const ptrdiff_t m = last_ofs + ((ofs - last_ofs) >> 1);
    if (less(*(base + m), key)) {
      last_ofs = m + 1;
    } else {
      ofs = m;
    }
  }
  return ofs;
}

// Like GallopLeft but ties break RIGHT of equal elements.
template <typename T, typename RandomIt, typename Less>
ptrdiff_t GallopRight(const T& key, RandomIt base, ptrdiff_t len,
                      ptrdiff_t hint, Less less) {
  IMPATIENCE_DCHECK(len > 0 && hint >= 0 && hint < len);
  ptrdiff_t last_ofs = 0;
  ptrdiff_t ofs = 1;
  if (less(key, *(base + hint))) {
    // Gallop left until base[hint-ofs] <= key < base[hint-last_ofs].
    const ptrdiff_t max_ofs = hint + 1;
    while (ofs < max_ofs && less(key, *(base + hint - ofs))) {
      last_ofs = ofs;
      ofs = (ofs << 1) + 1;
      if (ofs <= 0) ofs = max_ofs;
    }
    if (ofs > max_ofs) ofs = max_ofs;
    const ptrdiff_t tmp = last_ofs;
    last_ofs = hint - ofs;
    ofs = hint - tmp;
  } else {
    // Gallop right until base[hint+last_ofs] <= key < base[hint+ofs].
    const ptrdiff_t max_ofs = len - hint;
    while (ofs < max_ofs && !less(key, *(base + hint + ofs))) {
      last_ofs = ofs;
      ofs = (ofs << 1) + 1;
      if (ofs <= 0) ofs = max_ofs;
    }
    if (ofs > max_ofs) ofs = max_ofs;
    last_ofs += hint;
    ofs += hint;
  }
  ++last_ofs;
  while (last_ofs < ofs) {
    const ptrdiff_t m = last_ofs + ((ofs - last_ofs) >> 1);
    if (less(key, *(base + m))) {
      ofs = m;
    } else {
      last_ofs = m + 1;
    }
  }
  return ofs;
}

// State shared across merges: the temp buffer and the adaptive gallop
// threshold.
template <typename T>
struct MergeState {
  std::vector<T> tmp;
  ptrdiff_t min_gallop = kMinGallop;
};

// Merges adjacent sorted ranges [base1, base1+len1) and [base2=base1+len1,
// base2+len2) where len1 <= len2, copying run 1 into the temp buffer.
// Preconditions (established by MergeAt): base1[0] > base2[0] after the
// prefix gallop, and the last element of run1 lands inside run2.
template <typename RandomIt, typename Less, typename T>
void MergeLo(RandomIt base1, ptrdiff_t len1, RandomIt base2, ptrdiff_t len2,
             Less less, MergeState<T>* state) {
  std::vector<T>& tmp = state->tmp;
  tmp.assign(std::make_move_iterator(base1),
             std::make_move_iterator(base1 + len1));
  auto cursor1 = tmp.begin();
  RandomIt cursor2 = base2;
  RandomIt dest = base1;

  // First element of run2 precedes run1 (guaranteed by the caller).
  *dest++ = std::move(*cursor2++);
  --len2;
  if (len2 == 0) {
    std::move(cursor1, cursor1 + len1, dest);
    return;
  }
  if (len1 == 1) {
    std::move(cursor2, cursor2 + len2, dest);
    *(dest + len2) = std::move(*cursor1);
    return;
  }

  ptrdiff_t min_gallop = state->min_gallop;
  while (true) {
    ptrdiff_t count1 = 0;  // Consecutive wins by run1.
    ptrdiff_t count2 = 0;  // Consecutive wins by run2.
    // One-pair-at-a-time mode.
    do {
      if (less(*cursor2, *cursor1)) {
        *dest++ = std::move(*cursor2++);
        ++count2;
        count1 = 0;
        if (--len2 == 0) goto epilogue;
      } else {
        *dest++ = std::move(*cursor1++);
        ++count1;
        count2 = 0;
        if (--len1 == 1) goto epilogue;
      }
    } while ((count1 | count2) < min_gallop);

    // Galloping mode: one run is winning consistently.
    do {
      count1 = GallopRight(*cursor2, cursor1, len1, 0, less);
      if (count1 != 0) {
        dest = std::move(cursor1, cursor1 + count1, dest);
        cursor1 += count1;
        len1 -= count1;
        if (len1 <= 1) goto epilogue;
      }
      *dest++ = std::move(*cursor2++);
      if (--len2 == 0) goto epilogue;

      count2 = GallopLeft(*cursor1, cursor2, len2, 0, less);
      if (count2 != 0) {
        dest = std::move(cursor2, cursor2 + count2, dest);
        cursor2 += count2;
        len2 -= count2;
        if (len2 == 0) goto epilogue;
      }
      *dest++ = std::move(*cursor1++);
      if (--len1 == 1) goto epilogue;
      --min_gallop;
    } while (count1 >= kMinGallop || count2 >= kMinGallop);
    if (min_gallop < 0) min_gallop = 0;
    min_gallop += 2;  // Penalize leaving gallop mode.
  }

epilogue:
  state->min_gallop = min_gallop < 1 ? 1 : min_gallop;
  if (len1 == 1) {
    IMPATIENCE_DCHECK(len2 > 0);
    dest = std::move(cursor2, cursor2 + len2, dest);
    *dest = std::move(*cursor1);
  } else {
    IMPATIENCE_DCHECK(len2 == 0);
    IMPATIENCE_DCHECK(len1 > 1);
    std::move(cursor1, cursor1 + len1, dest);
  }
}

// Mirror image of MergeLo for len1 >= len2: copies run 2 into the temp
// buffer and merges from the right.
template <typename RandomIt, typename Less, typename T>
void MergeHi(RandomIt base1, ptrdiff_t len1, RandomIt base2, ptrdiff_t len2,
             Less less, MergeState<T>* state) {
  std::vector<T>& tmp = state->tmp;
  tmp.assign(std::make_move_iterator(base2),
             std::make_move_iterator(base2 + len2));
  RandomIt cursor1 = base1 + (len1 - 1);
  auto cursor2 = tmp.begin() + (len2 - 1);
  RandomIt dest = base2 + (len2 - 1);

  // Last element of run1 follows run2 (guaranteed by the caller).
  *dest-- = std::move(*cursor1--);
  --len1;
  if (len1 == 0) {
    std::move(tmp.begin(), tmp.begin() + len2, dest - (len2 - 1));
    return;
  }
  if (len2 == 1) {
    dest -= len1;
    cursor1 -= len1;
    std::move_backward(cursor1 + 1, cursor1 + 1 + len1, dest + 1 + len1);
    *dest = std::move(*cursor2);
    return;
  }

  ptrdiff_t min_gallop = state->min_gallop;
  while (true) {
    ptrdiff_t count1 = 0;
    ptrdiff_t count2 = 0;
    do {
      if (less(*cursor2, *cursor1)) {
        *dest-- = std::move(*cursor1--);
        ++count1;
        count2 = 0;
        if (--len1 == 0) goto epilogue;
      } else {
        *dest-- = std::move(*cursor2--);
        ++count2;
        count1 = 0;
        if (--len2 == 1) goto epilogue;
      }
    } while ((count1 | count2) < min_gallop);

    do {
      count1 = len1 - GallopRight(*cursor2, base1, len1, len1 - 1, less);
      if (count1 != 0) {
        dest -= count1;
        cursor1 -= count1;
        std::move_backward(cursor1 + 1, cursor1 + 1 + count1,
                           dest + 1 + count1);
        len1 -= count1;
        if (len1 == 0) goto epilogue;
      }
      *dest-- = std::move(*cursor2--);
      if (--len2 == 1) goto epilogue;

      count2 = len2 - GallopLeft(*cursor1, tmp.begin(), len2, len2 - 1, less);
      if (count2 != 0) {
        dest -= count2;
        cursor2 -= count2;
        std::move_backward(cursor2 + 1, cursor2 + 1 + count2,
                           dest + 1 + count2);
        len2 -= count2;
        if (len2 <= 1) goto epilogue;
      }
      *dest-- = std::move(*cursor1--);
      if (--len1 == 0) goto epilogue;
      --min_gallop;
    } while (count1 >= kMinGallop || count2 >= kMinGallop);
    if (min_gallop < 0) min_gallop = 0;
    min_gallop += 2;
  }

epilogue:
  state->min_gallop = min_gallop < 1 ? 1 : min_gallop;
  if (len2 == 1) {
    IMPATIENCE_DCHECK(len1 > 0);
    dest -= len1;
    cursor1 -= len1;
    std::move_backward(cursor1 + 1, cursor1 + 1 + len1, dest + 1 + len1);
    *dest = std::move(*cursor2);
  } else {
    IMPATIENCE_DCHECK(len1 == 0);
    IMPATIENCE_DCHECK(len2 > 1);
    std::move(tmp.begin(), tmp.begin() + len2, dest - (len2 - 1));
  }
}

// The run stack plus the merge-invariant logic.
template <typename RandomIt, typename Less>
class TimsortDriver {
 public:
  using T = typename std::iterator_traits<RandomIt>::value_type;

  explicit TimsortDriver(Less less) : less_(less) {}

  void PushRun(RandomIt base, ptrdiff_t len) {
    runs_.push_back({base, len});
    MergeCollapse();
  }

  void ForceMerge() {
    while (runs_.size() > 1) {
      size_t n = runs_.size() - 2;
      if (n > 0 && runs_[n - 1].len < runs_[n + 1].len) --n;
      MergeAt(n);
    }
  }

 private:
  struct PendingRun {
    RandomIt base;
    ptrdiff_t len;
  };

  // Restores the invariants: for the topmost runs X, Y, Z (Z on top),
  // X > Y + Z and Y > Z — including the stricter 4-run check that fixes
  // the classic "timsort bug".
  void MergeCollapse() {
    while (runs_.size() > 1) {
      size_t n = runs_.size() - 2;
      if ((n > 0 && runs_[n - 1].len <= runs_[n].len + runs_[n + 1].len) ||
          (n > 1 &&
           runs_[n - 2].len <= runs_[n - 1].len + runs_[n].len)) {
        if (runs_[n - 1].len < runs_[n + 1].len) --n;
        MergeAt(n);
      } else if (runs_[n].len <= runs_[n + 1].len) {
        MergeAt(n);
      } else {
        break;
      }
    }
  }

  void MergeAt(size_t i) {
    IMPATIENCE_DCHECK(i + 1 < runs_.size());
    RandomIt base1 = runs_[i].base;
    ptrdiff_t len1 = runs_[i].len;
    RandomIt base2 = runs_[i + 1].base;
    ptrdiff_t len2 = runs_[i + 1].len;
    IMPATIENCE_DCHECK(base1 + len1 == base2);

    runs_[i].len = len1 + len2;
    if (i + 2 < runs_.size()) runs_[i + 1] = runs_[i + 2];
    runs_.pop_back();

    // Skip the prefix of run1 that already precedes run2, and the suffix of
    // run2 that already follows run1.
    const ptrdiff_t k = GallopRight(*base2, base1, len1, 0, less_);
    base1 += k;
    len1 -= k;
    if (len1 == 0) return;
    len2 = GallopLeft(*(base1 + (len1 - 1)), base2, len2, len2 - 1, less_);
    if (len2 == 0) return;

    if (len1 <= len2) {
      MergeLo(base1, len1, base2, len2, less_, &state_);
    } else {
      MergeHi(base1, len1, base2, len2, less_, &state_);
    }
  }

  Less less_;
  MergeState<T> state_;
  std::vector<PendingRun> runs_;
};

}  // namespace timsort_internal

// Sorts [first, last) stably with Timsort.
template <typename RandomIt, typename Less>
void Timsort(RandomIt first, RandomIt last, Less less) {
  using namespace timsort_internal;  // NOLINT(build/namespaces) — local impl.
  const ptrdiff_t n = last - first;
  if (n < 2) return;
  if (n < kMinMerge) {
    const ptrdiff_t run_len = CountRunAndMakeAscending(first, last, less);
    BinaryInsertionSort(first, last, first + run_len, less);
    return;
  }

  TimsortDriver<RandomIt, Less> driver(less);
  const ptrdiff_t min_run = ComputeMinRun(n);
  RandomIt cur = first;
  ptrdiff_t remaining = n;
  while (remaining > 0) {
    ptrdiff_t run_len = CountRunAndMakeAscending(cur, last, less);
    if (run_len < min_run) {
      const ptrdiff_t force = remaining < min_run ? remaining : min_run;
      BinaryInsertionSort(cur, cur + force, cur + run_len, less);
      run_len = force;
    }
    driver.PushRun(cur, run_len);
    cur += run_len;
    remaining -= run_len;
  }
  driver.ForceMerge();
}

// Convenience overload using operator<.
template <typename RandomIt>
void Timsort(RandomIt first, RandomIt last) {
  Timsort(first, last, std::less<>());
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_TIMSORT_H_
