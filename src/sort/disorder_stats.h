// Measures of disorder for a timestamp sequence (paper §II, Table I).
//
// Four classic measures from the adaptive-sorting literature quantify how
// far a stream is from sorted:
//  * inversions  — #pairs (i < j) with a[i] > a[j];
//  * distance    — max (j - i) over inversion pairs (how far the most
//                  delayed element must travel);
//  * runs        — number of maximal non-decreasing runs;
//  * interleaved — minimum number of sorted runs whose interleaving can
//                  produce the stream (equals the length of the longest
//                  strictly decreasing subsequence, by Dilworth's theorem).

#ifndef IMPATIENCE_SORT_DISORDER_STATS_H_
#define IMPATIENCE_SORT_DISORDER_STATS_H_

#include <cstdint>
#include <vector>

#include "common/timestamp.h"

namespace impatience {

// All four measures for one sequence.
struct DisorderStats {
  uint64_t inversions = 0;
  uint64_t distance = 0;
  uint64_t runs = 0;
  uint64_t interleaved = 0;
};

// Counts inversion pairs in O(n log n) (merge counting).
uint64_t CountInversions(const std::vector<Timestamp>& values);

// Maximum distance j - i over inversion pairs (0 if sorted). O(n log n).
uint64_t MaxInversionDistance(const std::vector<Timestamp>& values);

// Number of maximal non-decreasing runs (0 for an empty input, 1 for a
// sorted non-empty input). O(n).
uint64_t CountNaturalRuns(const std::vector<Timestamp>& values);

// Minimum number of sorted (non-decreasing) runs that interleave to the
// sequence, via the greedy tails structure Patience sort uses. O(n log k).
uint64_t CountInterleavedRuns(const std::vector<Timestamp>& values);

// Length of the longest strictly decreasing subsequence. By Dilworth's
// theorem this equals CountInterleavedRuns; exposed separately so tests can
// cross-check the two computations. O(n log n).
uint64_t LongestStrictlyDecreasingSubsequence(
    const std::vector<Timestamp>& values);

// Computes all four measures.
DisorderStats ComputeDisorderStats(const std::vector<Timestamp>& values);

}  // namespace impatience

#endif  // IMPATIENCE_SORT_DISORDER_STATS_H_
