// Merge kernels shared by the sorting algorithms.
//
// Patience/Impatience sort produce a set of sorted runs that must be merged
// into one sorted sequence. Following the paper (§III-B, §III-E1) we merge
// runs two at a time with binary merges rather than a k-way heap, and the
// order in which runs are merged matters: merging the two smallest runs
// first ("Huffman merge") minimizes the total number of element moves,
// exactly as in Huffman coding. Both the Huffman order and a balanced
// (non-Huffman) order are provided so the optimization can be ablated, plus
// a heap-based k-way merge as a further ablation baseline.
//
// Performance notes: merges are allocation-free in steady state — a
// MergeBufferPool recycles intermediate buffers (fresh allocations mean
// page faults on first touch, which dominate small merges) — and the final
// binary merge writes straight into the caller's output vector instead of
// producing one more intermediate.

#ifndef IMPATIENCE_SORT_MERGE_H_
#define IMPATIENCE_SORT_MERGE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "sort/kernels.h"

namespace impatience {

// Recycles merge buffers so repeated merges (one per punctuation, or a
// whole offline merge tree) do not thrash the allocator.
//
// Accounting: the pool tracks both the bytes it is holding (free list) and
// the bytes currently checked out via Acquire (outstanding), so
// MemoryBytes() covers the ping-pong buffers a merge is actively writing,
// not just the ones at rest. Release clamps against buffers the pool never
// handed out (merges return consumed input runs here so they recycle), and
// PeakBytes() keeps the high-water mark of free + outstanding for
// memory-bound assertions.
template <typename T>
class MergeBufferPool {
 public:
  // Returns an empty vector with at least `capacity` reserved.
  std::vector<T> Acquire(size_t capacity) {
    std::vector<T> buf;
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
      free_bytes_ -= buf.capacity() * sizeof(T);
      buf.clear();
    }
    buf.reserve(capacity);
    outstanding_bytes_ += buf.capacity() * sizeof(T);
    if (free_bytes_ + outstanding_bytes_ > peak_bytes_) {
      peak_bytes_ = free_bytes_ + outstanding_bytes_;
    }
    return buf;
  }

  void Release(std::vector<T>&& buf) {
    const size_t bytes = buf.capacity() * sizeof(T);
    outstanding_bytes_ -= std::min(outstanding_bytes_, bytes);
    if (bytes > 0) {
      free_bytes_ += bytes;
      if (free_bytes_ + outstanding_bytes_ > peak_bytes_) {
        peak_bytes_ = free_bytes_ + outstanding_bytes_;
      }
      free_.push_back(std::move(buf));
    }
  }

  // Bytes reserved across pooled and checked-out buffers.
  size_t MemoryBytes() const { return free_bytes_ + outstanding_bytes_; }

  // Bytes checked out via Acquire and not yet Released (zero once a merge
  // that pools its buffers has completed).
  size_t OutstandingBytes() const { return outstanding_bytes_; }

  // High-water mark of MemoryBytes() over the pool's lifetime.
  size_t PeakBytes() const { return peak_bytes_; }

  // Frees pooled buffers until at most `max_bytes` are retained, so a pool
  // sized by a burst does not hold that memory forever.
  void Trim(size_t max_bytes) {
    while (free_bytes_ > max_bytes && !free_.empty()) {
      free_bytes_ -= free_.back().capacity() * sizeof(T);
      free_.pop_back();
    }
  }

 private:
  std::vector<std::vector<T>> free_;
  size_t free_bytes_ = 0;
  size_t outstanding_bytes_ = 0;
  size_t peak_bytes_ = 0;
};

namespace merge_internal {

// The gallop machinery moved to sort/kernels.h with the two-way merge
// kernel; these aliases keep the historical names working.
using kernels::GallopLowerBound;
using kernels::GallopUpperBound;
using kernels::kGallopThreshold;

}  // namespace merge_internal

// Merges the sorted ranges [pa, ea) and [pb, eb) into `out` (appended).
// Stable: on ties, elements of the `a` range precede elements of the `b`
// range. Delegates to the kernel-layer merge: disjoint ranges concatenate
// with bulk copies, overlapping ranges run a branchless select loop that
// gallops when one side wins repeatedly. Returns true when the disjoint
// fast path ran.
template <typename T, typename Less>
bool BinaryMergeRangesInto(const T* pa, const T* ea, const T* pb,
                           const T* eb, Less less, std::vector<T>* out) {
  return kernels::MergeIntoVector(pa, ea, pb, eb, less, out);
}

// Vector-input convenience over BinaryMergeRangesInto.
template <typename T, typename Less>
bool BinaryMergeInto(const std::vector<T>& a, const std::vector<T>& b,
                     Less less, std::vector<T>* out) {
  return BinaryMergeRangesInto(a.data(), a.data() + a.size(), b.data(),
                               b.data() + b.size(), less, out);
}

// Merges [pa, ea) and [pb, eb) into the pre-sized destination starting at
// `dst` (the caller guarantees room for both ranges). Element order is
// identical to BinaryMergeRangesInto; used by the parallel merge to let two
// tasks write disjoint halves of one output. Returns one past the last
// element written; sets *disjoint (if non-null) when the concat fast path
// ran.
template <typename T, typename Less>
T* BinaryMergeToPtr(const T* pa, const T* ea, const T* pb, const T* eb,
                    Less less, T* dst, bool* disjoint = nullptr) {
  return kernels::MergeToPtr(pa, ea, pb, eb, less, dst, disjoint);
}

// Statistics describing the work a merge performed; used by ablation
// benchmarks to quantify the benefit of the Huffman order.
struct MergeStats {
  // Total elements moved across all merge steps (the quantity the Huffman
  // order minimizes). For the binary cascades this is the sum of both
  // input sizes per merge; for the k-way loser tree it is the actual move
  // count — each element once per ping-pong pass. ParallelMergeRunsInto
  // reports the plan-phase (binary-cascade) figure even when it executes
  // plan subtrees as k-way leaf tasks, so the Huffman cost model stays
  // comparable across execution strategies.
  uint64_t elements_moved = 0;
  // Number of merge steps: binary merges for the cascades, tree passes
  // for the k-way loser tree (one per fan-in group per pass).
  uint64_t binary_merges = 0;
  // Merge steps resolved by a disjoint-run fast path. For binary merges:
  // the two ranges did not overlap and concatenated as two bulk copies.
  // For k-way loser-tree passes: a run the tree emitted start-to-end in a
  // single bulk copy, i.e. it was disjoint from everything still
  // unmerged when it won (disjoint prefix runs each count once). Unlike
  // the fields above, this counter is execution-dependent: the parallel
  // merge splits the final merge in two and each half classifies
  // independently, a k-way pass can see disjointness a binary cascade
  // of the same runs would not (and vice versa), and the tree's adaptive
  // gallop may emit a disjoint run element-by-element when earlier short
  // chunks raised its gallop threshold — so the k-way figure is a lower
  // bound, and counts are only comparable within one merge strategy.
  uint64_t disjoint_concats = 0;
};

namespace merge_internal {

template <typename T>
void DropEmptyRuns(std::vector<std::vector<T>>* runs) {
  runs->erase(std::remove_if(runs->begin(), runs->end(),
                             [](const std::vector<T>& r) {
                               return r.empty();
                             }),
              runs->end());
}

}  // namespace merge_internal

// Merges `runs` (each sorted) into a single sorted sequence appended to
// `out`, merging the two smallest runs first (§III-E1). Consumes the run
// contents. `pool` (optional) recycles intermediate buffers.
template <typename T, typename Less>
void HuffmanMergeInto(std::vector<std::vector<T>>* runs, Less less,
                      std::vector<T>* out, MergeStats* stats = nullptr,
                      MergeBufferPool<T>* pool = nullptr) {
  TRACE_SPAN("merge.huffman");
  std::vector<std::vector<T>>& rs = *runs;
  merge_internal::DropEmptyRuns(&rs);
  if (rs.empty()) return;
  if (rs.size() == 1) {
    out->insert(out->end(), rs[0].begin(), rs[0].end());
    rs.clear();
    return;
  }
  MergeBufferPool<T> local_pool;
  if (pool == nullptr) pool = &local_pool;

  // Min-heap of run indices ordered by current run size.
  auto size_greater = [&rs](size_t a, size_t b) {
    return rs[a].size() > rs[b].size();
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(size_greater)>
      heap(size_greater);
  for (size_t i = 0; i < rs.size(); ++i) heap.push(i);

  while (true) {
    const size_t a = heap.top();
    heap.pop();
    const size_t b = heap.top();
    heap.pop();
    if (stats != nullptr) {
      stats->elements_moved += rs[a].size() + rs[b].size();
      ++stats->binary_merges;
    }
    if (heap.empty()) {
      // Final merge: write straight into the caller's output. The inputs
      // are consumed, so recycle them (and settle the pool's outstanding
      // accounting for intermediates acquired above).
      const bool disjoint = BinaryMergeInto(rs[a], rs[b], less, out);
      if (stats != nullptr && disjoint) ++stats->disjoint_concats;
      pool->Release(std::move(rs[a]));
      pool->Release(std::move(rs[b]));
      break;
    }
    std::vector<T> merged = pool->Acquire(rs[a].size() + rs[b].size());
    const bool disjoint = BinaryMergeInto(rs[a], rs[b], less, &merged);
    if (stats != nullptr && disjoint) ++stats->disjoint_concats;
    pool->Release(std::move(rs[a]));
    pool->Release(std::move(rs[b]));
    rs[a] = std::move(merged);
    heap.push(a);
  }
  rs.clear();
}

// ---------------------------------------------------------------------------
// k-way loser-tree merge.
//
// The Huffman cascade minimizes element moves but still writes and re-reads
// every intermediate result once per tree level. A tournament (loser) tree
// merges k runs in a single output pass with O(log k) comparisons per
// element: tree[1..k-1] stores the run that lost each match, tree[0] the
// overall winner, and emitting the winner replays only its leaf-to-root
// path. Keying the tree by (element, run rank) — where rank is the run's
// in-order position in the Huffman merge-plan tree — makes the output
// byte-identical to the pairwise HuffmanMergeInto cascade: two runs' ties
// resolve by which side of their lowest common ancestor they sit on, and
// the in-order traversal linearizes exactly those decisions.

// Fan-in cap per tree pass: beyond this the tree and the k run heads stop
// fitting in L1/L2 and comparisons start missing cache, so wider merges run
// as multiple passes over ping-pong buffers drawn from the MergeBufferPool
// (consecutive-rank grouping keeps each pass byte-identical).
inline constexpr size_t kLoserTreeMaxFanIn = 64;

// Reusable loser-tree state: the loser array, the winner bracket used to
// (re)build it, and the per-run cursors. Kept by the sorters across
// punctuations so steady-state merges allocate nothing; MemoryBytes() feeds
// the owners' memory accounting.
template <typename T>
struct LoserTreeScratch {
  std::vector<int32_t> tree;     // Losers; tree[0] holds the winner.
  std::vector<int32_t> winners;  // Winner bracket, build only.
  std::vector<const T*> begin;   // Original run starts (concat detection).
  std::vector<const T*> cur;     // Next unmerged element per run.
  std::vector<const T*> end;     // One past each run.

  size_t MemoryBytes() const {
    return (tree.capacity() + winners.capacity()) * sizeof(int32_t) +
           (begin.capacity() + cur.capacity() + end.capacity()) *
               sizeof(const T*);
  }
};

namespace merge_internal {

// In-order leaf ranks of the Huffman merge-plan tree. Replays the exact
// size heap HuffmanMergeInto drives (same comparator results, same
// push/pop sequence, so the same plan even through priority_queue tie
// behavior), then walks the plan tree left-to-right. Run i's elements
// precede run j's on cross-run ties iff (*rank)[i] < (*rank)[j] — the
// linearization of every stability decision the pairwise cascade makes.
// `sizes` is taken by value and consumed.
inline void ComputeHuffmanRanks(std::vector<size_t> sizes,
                                std::vector<uint32_t>* rank) {
  const size_t k = sizes.size();
  rank->resize(k);
  if (k <= 1) {
    if (k == 1) (*rank)[0] = 0;
    return;
  }
  // Child ids: [0, k) = input run, >= k = plan node id-k.
  struct PlanNode {
    int32_t left;
    int32_t right;
  };
  std::vector<PlanNode> plan;
  plan.reserve(k - 1);
  std::vector<int32_t> slot(k);
  for (size_t i = 0; i < k; ++i) slot[i] = static_cast<int32_t>(i);
  auto size_greater = [&sizes](size_t a, size_t b) {
    return sizes[a] > sizes[b];
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(size_greater)>
      heap(size_greater);
  for (size_t i = 0; i < k; ++i) heap.push(i);
  for (;;) {
    const size_t a = heap.top();
    heap.pop();
    const size_t b = heap.top();
    heap.pop();
    plan.push_back(PlanNode{slot[a], slot[b]});
    if (heap.empty()) break;
    sizes[a] += sizes[b];
    slot[a] = static_cast<int32_t>(k + plan.size() - 1);
    heap.push(a);
  }
  uint32_t next_rank = 0;
  std::vector<int32_t> stack;
  stack.push_back(static_cast<int32_t>(k + plan.size() - 1));
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    if (id < static_cast<int32_t>(k)) {
      (*rank)[id] = next_rank++;
      continue;
    }
    const PlanNode& nd = plan[id - static_cast<int32_t>(k)];
    stack.push_back(nd.right);  // Left child on top: visited first.
    stack.push_back(nd.left);
  }
}

// One loser-tree pass: merges the k rank-ordered runs `slots[0..k)` into
// `out` (appended). Cross-run ties resolve by slot order, so the caller
// must present runs in tie-break order (Huffman rank, or any order whose
// stability it wants). Does not consume the run vectors. Only
// `stats->disjoint_concats` is updated here (a run emitted start-to-end in
// one bulk copy was disjoint from everything then unmerged); callers
// account moves and pass counts themselves.
template <typename T, typename Less>
void LoserTreePass(std::vector<T>* const* slots, size_t k, Less less,
                   std::vector<T>* out, MergeStats* stats,
                   LoserTreeScratch<T>* scratch) {
  size_t total = 0;
  for (size_t i = 0; i < k; ++i) total += slots[i]->size();
  out->reserve(out->size() + total);
  if (k == 0) return;
  if (k == 1) {
    out->insert(out->end(), slots[0]->begin(), slots[0]->end());
    return;
  }
  LoserTreeScratch<T>& sc = *scratch;
  sc.begin.resize(k);
  sc.cur.resize(k);
  sc.end.resize(k);
  for (size_t i = 0; i < k; ++i) {
    sc.begin[i] = slots[i]->data();
    sc.cur[i] = sc.begin[i];
    sc.end[i] = sc.begin[i] + slots[i]->size();
  }
  // True when slot i's current element must be emitted before slot j's:
  // smaller element first, exhausted runs last, ties to the lower slot.
  auto beats = [&sc, &less](int32_t i, int32_t j) {
    if (sc.cur[j] == sc.end[j]) return sc.cur[i] != sc.end[i];
    if (sc.cur[i] == sc.end[i]) return false;
    if (less(*sc.cur[i], *sc.cur[j])) return true;
    if (less(*sc.cur[j], *sc.cur[i])) return false;
    return i < j;
  };
  // Build: winner bracket over the implicit tree with leaves at
  // [k, 2k); each internal node keeps its loser, promotes its winner.
  sc.tree.resize(k);
  sc.winners.resize(2 * k);
  for (size_t i = 0; i < k; ++i) {
    sc.winners[k + i] = static_cast<int32_t>(i);
  }
  for (size_t n = k - 1; n >= 1; --n) {
    const int32_t a = sc.winners[2 * n];
    const int32_t b = sc.winners[2 * n + 1];
    if (beats(a, b)) {
      sc.winners[n] = a;
      sc.tree[n] = b;
    } else {
      sc.winners[n] = b;
      sc.tree[n] = a;
    }
  }
  int32_t w = sc.winners[1];
  sc.tree[0] = w;
  // Adaptive main loop, timsort-style. The lean path emits one element
  // and replays the winner's leaf-to-root path — the textbook log2(k)
  // compares per element, which is all a finely interleaved input can
  // ever pay. A gallop attempt additionally walks the path for the
  // runner-up (the best run the winner defeated) and bulk-copies the
  // winner's entire lead over it in one chunk, which is how runs with
  // temporal locality — the punctuation-merge common case — move at
  // memcpy speed. `min_streak` prices the attempt: it starts optimistic
  // (gallop immediately, so a time-disjoint run is emitted start-to-end
  // in its first chunk), short chunks raise the bar until a run must win
  // that many single steps in a row to earn another attempt, and long
  // chunks lower it again.
  constexpr ptrdiff_t kGallopWin = 8;     // Chunk length that pays.
  constexpr int32_t kMaxMinStreak = 31;   // Attempt-rate floor, 1/31.
  int32_t min_streak = 0;
  int32_t streak = 0;
  while (sc.cur[w] != sc.end[w]) {
    if (streak < min_streak) {
      out->push_back(*sc.cur[w]);
      ++sc.cur[w];
      int32_t c = w;
      for (size_t t = (k + static_cast<size_t>(w)) >> 1; t >= 1; t >>= 1) {
        if (beats(sc.tree[t], c)) std::swap(sc.tree[t], c);
      }
      sc.tree[0] = c;
      streak = c == w ? streak + 1 : 0;
      w = c;
      continue;
    }
    // Runner-up: min over the losers stored on the winner's path.
    int32_t ru = -1;
    for (size_t t = (k + static_cast<size_t>(w)) >> 1; t >= 1; t >>= 1) {
      if (ru == -1 || beats(sc.tree[t], ru)) ru = sc.tree[t];
    }
    // Everything in the winner that precedes the runner-up's head is safe
    // to emit without touching the tree: gallop for the boundary and bulk
    // copy. Tie elements belong to whichever slot is lower.
    const T* p = sc.cur[w];
    const T* bound;
    if (ru == -1 || sc.cur[ru] == sc.end[ru]) {
      bound = sc.end[w];
    } else if (w < ru) {
      bound = GallopUpperBound(p, sc.end[w], *sc.cur[ru], less);
    } else {
      bound = GallopLowerBound(p, sc.end[w], *sc.cur[ru], less);
    }
    out->insert(out->end(), p, bound);
    if (stats != nullptr && p == sc.begin[w] && bound == sc.end[w]) {
      ++stats->disjoint_concats;
    }
    sc.cur[w] = bound;
    min_streak = bound - p >= kGallopWin
                     ? 0
                     : std::min(kMaxMinStreak, min_streak + 1);
    streak = 0;
    // Replay the winner's path: the advanced (or exhausted) run competes
    // with each stored loser on the way up.
    int32_t c = w;
    for (size_t t = (k + static_cast<size_t>(w)) >> 1; t >= 1; t >>= 1) {
      if (beats(sc.tree[t], c)) std::swap(sc.tree[t], c);
    }
    sc.tree[0] = c;
    w = c;
  }
}

}  // namespace merge_internal

// Merges `runs` (each sorted) into a single sorted sequence appended to
// `out` with loser-tree passes of fan-in <= kLoserTreeMaxFanIn. Output is
// byte-identical to HuffmanMergeInto on the same input: runs are arranged
// in Huffman-rank order first (see ComputeHuffmanRanks), and wider-than-
// one-tree merges group consecutive ranks per pass, which preserves every
// cross-run tie decision. Consumes the run contents. `pool` recycles the
// ping-pong buffers between passes; `scratch` recycles the tree state.
//
// MergeStats semantics differ from the binary cascades: elements_moved
// counts actual moves (each element once per pass — the quantity the tree
// is built to shrink), binary_merges counts tree passes, and
// disjoint_concats counts runs emitted whole in one bulk copy.
template <typename T, typename Less>
void LoserTreeMergeInto(std::vector<std::vector<T>>* runs, Less less,
                        std::vector<T>* out, MergeStats* stats = nullptr,
                        std::type_identity_t<MergeBufferPool<T>*> pool =
                            nullptr,
                        std::type_identity_t<LoserTreeScratch<T>*> scratch =
                            nullptr) {
  TRACE_SPAN("merge.loser_tree");
  std::vector<std::vector<T>>& rs = *runs;
  merge_internal::DropEmptyRuns(&rs);
  if (rs.empty()) return;
  if (rs.size() == 1) {
    out->insert(out->end(), rs[0].begin(), rs[0].end());
    rs.clear();
    return;
  }
  MergeBufferPool<T> local_pool;
  if (pool == nullptr) pool = &local_pool;
  LoserTreeScratch<T> local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;

  const size_t k = rs.size();
  std::vector<size_t> sizes(k);
  for (size_t i = 0; i < k; ++i) sizes[i] = rs[i].size();
  std::vector<uint32_t> rank;
  merge_internal::ComputeHuffmanRanks(std::move(sizes), &rank);
  std::vector<std::vector<T>> work(k);
  for (size_t i = 0; i < k; ++i) work[rank[i]] = std::move(rs[i]);
  rs.clear();

  std::vector<std::vector<T>*> slots;
  // Ping-pong: while more runs survive than one tree takes, merge groups
  // of consecutive ranks into pool buffers; the sources released here are
  // the buffers the next pass acquires.
  while (work.size() > kLoserTreeMaxFanIn) {
    std::vector<std::vector<T>> next;
    next.reserve((work.size() + kLoserTreeMaxFanIn - 1) /
                 kLoserTreeMaxFanIn);
    for (size_t lo = 0; lo < work.size(); lo += kLoserTreeMaxFanIn) {
      const size_t hi = std::min(work.size(), lo + kLoserTreeMaxFanIn);
      if (hi - lo == 1) {  // Ragged tail: carry the run, no copy.
        next.push_back(std::move(work[lo]));
        continue;
      }
      size_t group_total = 0;
      slots.clear();
      for (size_t i = lo; i < hi; ++i) {
        group_total += work[i].size();
        slots.push_back(&work[i]);
      }
      std::vector<T> merged = pool->Acquire(group_total);
      merge_internal::LoserTreePass(slots.data(), slots.size(), less,
                                    &merged, stats, scratch);
      if (stats != nullptr) {
        stats->elements_moved += group_total;
        ++stats->binary_merges;
      }
      for (size_t i = lo; i < hi; ++i) pool->Release(std::move(work[i]));
      next.push_back(std::move(merged));
    }
    work = std::move(next);
  }
  slots.clear();
  size_t total = 0;
  for (std::vector<T>& r : work) {
    total += r.size();
    slots.push_back(&r);
  }
  merge_internal::LoserTreePass(slots.data(), slots.size(), less, out,
                                stats, scratch);
  if (stats != nullptr) {
    stats->elements_moved += total;
    ++stats->binary_merges;
  }
  for (std::vector<T>& r : work) pool->Release(std::move(r));
}

// ---------------------------------------------------------------------------
// Run cursors: streaming merge over runs that may not live in RAM.
//
// The storage tier spills cold runs to disk; at punctuation time their
// released prefixes must merge with RAM-resident runs without staging the
// disk data contiguously. A RunCursor yields one sorted run as a sequence
// of sorted chunks (a RAM run is a single chunk; a spilled run is one
// chunk per on-disk block), and HuffmanCursorMergeInto merges k cursors
// with a loser tree keyed by (element, Huffman rank). The output is
// byte-identical to HuffmanMergeInto / LoserTreeMergeInto of the same runs
// in the same order: a k-way merge under a total tie order (lower rank
// wins ties) has exactly one valid output sequence, so neither the
// chunking nor the single-pass execution can change a byte.

template <typename T>
class RunCursor {
 public:
  virtual ~RunCursor() = default;
  // Exact number of elements the cursor yields across all chunks; drives
  // the Huffman rank computation and output reservation.
  virtual size_t total() const = 0;
  // Next chunk [first, second), or {nullptr, nullptr} once exhausted.
  // Pointers from the previous chunk are invalidated.
  virtual std::pair<const T*, const T*> NextChunk() = 0;
};

// A RAM-resident sorted range as a single chunk. Does not own the range.
template <typename T>
class VectorRunCursor final : public RunCursor<T> {
 public:
  VectorRunCursor(const T* begin, const T* end) : begin_(begin), end_(end) {}
  size_t total() const override {
    return static_cast<size_t>(end_ - begin_);
  }
  std::pair<const T*, const T*> NextChunk() override {
    if (done_ || begin_ == end_) return {nullptr, nullptr};
    done_ = true;
    return {begin_, end_};
  }

 private:
  const T* begin_;
  const T* end_;
  bool done_ = false;
};

namespace merge_internal {

// Single-pass k-way loser-tree merge over cursors presented in tie-break
// order (ties resolve to the lower slot). Unlike LoserTreePass there is no
// fan-in cap or ping-pong regrouping: a disk-backed merge is bandwidth-
// bound, and regrouping would re-stage spilled data. disjoint_concats is
// not tracked (chunk granularity hides whole-run copies).
template <typename T, typename Less>
void CursorLoserTreePass(RunCursor<T>* const* cursors, size_t k, Less less,
                         std::vector<T>* out) {
  std::vector<const T*> cur(k), end(k);
  auto refill = [&cursors, &cur, &end](size_t i) {
    for (;;) {
      const std::pair<const T*, const T*> c = cursors[i]->NextChunk();
      if (c.first == c.second) {
        if (c.first == nullptr) {
          cur[i] = end[i] = nullptr;
          return false;
        }
        continue;  // Skip empty chunks.
      }
      cur[i] = c.first;
      end[i] = c.second;
      return true;
    }
  };
  for (size_t i = 0; i < k; ++i) refill(i);
  // Exhausted runs (cur == nullptr) lose to everything; ties go to the
  // lower slot — the same total order as LoserTreePass.
  auto beats = [&cur, &less](int32_t i, int32_t j) {
    if (cur[j] == nullptr) return cur[i] != nullptr;
    if (cur[i] == nullptr) return false;
    if (less(*cur[i], *cur[j])) return true;
    if (less(*cur[j], *cur[i])) return false;
    return i < j;
  };
  std::vector<int32_t> tree(k);
  std::vector<int32_t> winners(2 * k);
  for (size_t i = 0; i < k; ++i) winners[k + i] = static_cast<int32_t>(i);
  for (size_t n = k - 1; n >= 1; --n) {
    const int32_t a = winners[2 * n];
    const int32_t b = winners[2 * n + 1];
    if (beats(a, b)) {
      winners[n] = a;
      tree[n] = b;
    } else {
      winners[n] = b;
      tree[n] = a;
    }
  }
  int32_t w = winners[1];
  tree[0] = w;
  while (cur[w] != nullptr) {
    // The runner-up (second-smallest head) always sits among the losers on
    // the winner's path; everything in the winner's current chunk that
    // precedes it is safe to emit in one bulk copy.
    int32_t ru = -1;
    for (size_t t = (k + static_cast<size_t>(w)) >> 1; t >= 1; t >>= 1) {
      if (ru == -1 || beats(tree[t], ru)) ru = tree[t];
    }
    const T* p = cur[w];
    const T* bound;
    if (ru == -1 || cur[ru] == nullptr) {
      bound = end[w];
    } else if (w < ru) {
      bound = GallopUpperBound(p, end[w], *cur[ru], less);
    } else {
      bound = GallopLowerBound(p, end[w], *cur[ru], less);
    }
    out->insert(out->end(), p, bound);
    cur[w] = bound;
    if (cur[w] == end[w]) refill(w);
    int32_t c = w;
    for (size_t t = (k + static_cast<size_t>(w)) >> 1; t >= 1; t >>= 1) {
      if (beats(tree[t], c)) std::swap(tree[t], c);
    }
    tree[0] = c;
    w = c;
  }
}

}  // namespace merge_internal

// Merges `cursors` (each a sorted run) into `out` (appended), byte-
// identical to HuffmanMergeInto / LoserTreeMergeInto of the same runs in
// the same order: cursors are arranged by Huffman rank over their exact
// totals, and cross-run ties resolve to the lower rank. Single streaming
// pass; peak transient memory is one chunk per cursor plus the tree.
//
// MergeStats: elements_moved counts each element once (single pass),
// binary_merges counts 1 per call, disjoint_concats is not tracked.
template <typename T, typename Less>
void HuffmanCursorMergeInto(std::vector<RunCursor<T>*>* cursors, Less less,
                            std::vector<T>* out,
                            MergeStats* stats = nullptr) {
  TRACE_SPAN("merge.cursor");
  std::vector<RunCursor<T>*>& cs = *cursors;
  cs.erase(std::remove_if(
               cs.begin(), cs.end(),
               [](RunCursor<T>* c) { return c->total() == 0; }),
           cs.end());
  if (cs.empty()) return;
  size_t total = 0;
  for (const RunCursor<T>* c : cs) total += c->total();
  out->reserve(out->size() + total);
  if (stats != nullptr) {
    stats->elements_moved += total;
    ++stats->binary_merges;
  }
  if (cs.size() == 1) {
    for (;;) {
      const std::pair<const T*, const T*> c = cs[0]->NextChunk();
      if (c.first == nullptr) break;
      out->insert(out->end(), c.first, c.second);
    }
    return;
  }
  const size_t k = cs.size();
  std::vector<size_t> sizes(k);
  for (size_t i = 0; i < k; ++i) sizes[i] = cs[i]->total();
  std::vector<uint32_t> rank;
  merge_internal::ComputeHuffmanRanks(std::move(sizes), &rank);
  std::vector<RunCursor<T>*> slots(k);
  for (size_t i = 0; i < k; ++i) slots[rank[i]] = cs[i];
  merge_internal::CursorLoserTreePass(slots.data(), k, less, out);
}

// ---------------------------------------------------------------------------
// Parallel Huffman merge.

// Per-worker buffer pool for parallel merges. MergeBufferPool is not
// thread-safe and must not be shared across workers without ownership
// handoff; instead every thread acquires from and releases into its own
// thread-local pool, capped so idle workers do not hoard scratch forever.
inline constexpr size_t kWorkerMergePoolMaxBytes = size_t{32} << 20;

template <typename T>
MergeBufferPool<T>& WorkerMergePool() {
  thread_local MergeBufferPool<T> pool;
  return pool;
}

// Per-worker loser-tree scratch for the parallel merge's k-way leaf
// tasks; a few hundred bytes per thread at the capped fan-in.
template <typename T>
LoserTreeScratch<T>& WorkerLoserTreeScratch() {
  thread_local LoserTreeScratch<T> scratch;
  return scratch;
}

// Tuning for ParallelMergeRunsInto.
struct ParallelMergeOptions {
  // Fall back to sequential HuffmanMergeInto when the run set is smaller
  // than either threshold (task overhead would dominate) or the pool is
  // serial.
  size_t min_total_bytes = size_t{1} << 20;
  size_t min_runs = 3;
  ThreadPool* pool = nullptr;  // nullptr = ThreadPool::Global()
  // Maximal plan subtrees whose fan-in fits this bound execute as one
  // k-way loser-tree leaf task instead of a binary cascade (clamped to
  // kLoserTreeMaxFanIn; values < 3 disable the collapse). Larger values
  // minimize memory traffic, smaller ones expose more task parallelism.
  size_t kway_leaf_fanin = kLoserTreeMaxFanIn;
};

// Merges `runs` smallest-two-first like HuffmanMergeInto, but executes the
// merge tree as a task DAG on the thread pool: the plan phase replays the
// exact size-heap HuffmanMergeInto would use (same pairs, same left/right
// roles, so the same stability decisions), maximal plan subtrees whose
// fan-in fits one loser tree collapse into single k-way leaf tasks (see
// ParallelMergeOptions::kway_leaf_fanin) that merge their input runs in
// one pass, every surviving interior merge starts as soon as its two
// inputs are ready, and the final binary merge is split at a
// GallopLowerBound midpoint so both halves of the output are written in
// parallel into the pre-sized destination. Output is byte-identical to
// HuffmanMergeInto on the same input, and MergeStats (bar the
// execution-dependent disjoint_concats) reports the plan-phase binary
// cascade regardless of how leaves execute.
//
// Consumes the run contents. `pool` recycles buffers on the sequential
// fallback only; parallel tasks use per-worker pools. Requires T
// default-constructible (the output is resized up front). Returns the
// number of pool tasks the merge used — 0 means the sequential fallback
// ran.
template <typename T, typename Less>
size_t ParallelMergeRunsInto(std::vector<std::vector<T>>* runs, Less less,
                             std::vector<T>* out,
                             MergeStats* stats = nullptr,
                             std::type_identity_t<MergeBufferPool<T>*> pool =
                                 nullptr,
                             const ParallelMergeOptions& options = {}) {
  static_assert(std::is_default_constructible_v<T>,
                "parallel merge resizes the output vector");
  std::vector<std::vector<T>>& rs = *runs;
  merge_internal::DropEmptyRuns(&rs);
  size_t total = 0;
  for (const std::vector<T>& r : rs) total += r.size();
  ThreadPool& tp =
      options.pool != nullptr ? *options.pool : ThreadPool::Global();
  const size_t min_runs = options.min_runs < 2 ? 2 : options.min_runs;
  if (tp.thread_count() < 2 || rs.size() < min_runs ||
      total * sizeof(T) < options.min_total_bytes) {
    HuffmanMergeInto(&rs, less, out, stats, pool);
    return 0;
  }

  // Plan: replay HuffmanMergeInto's heap over run sizes alone. slot[i]
  // tracks which merge result currently occupies heap slot i (mirroring
  // the sequential in-place rs[a] = merged).
  const size_t k = rs.size();
  struct Node {
    int32_t left = -1;   // Child id: [0, k) = input run, >= k = node id-k.
    int32_t right = -1;
    int32_t parent = -1;
    size_t size = 0;
    std::atomic<int> missing{0};  // Interior children not yet merged.
    std::vector<T> buf;
  };
  std::vector<Node> nodes(k - 1);
  std::vector<size_t> sizes(k);
  std::vector<int32_t> slot(k);
  for (size_t i = 0; i < k; ++i) {
    sizes[i] = rs[i].size();
    slot[i] = static_cast<int32_t>(i);
  }
  auto size_greater = [&sizes](size_t a, size_t b) {
    return sizes[a] > sizes[b];
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(size_greater)>
      heap(size_greater);
  for (size_t i = 0; i < k; ++i) heap.push(i);
  size_t next = 0;
  for (;;) {
    const size_t a = heap.top();
    heap.pop();
    const size_t b = heap.top();
    heap.pop();
    if (stats != nullptr) {
      stats->elements_moved += sizes[a] + sizes[b];
      ++stats->binary_merges;
    }
    Node& nd = nodes[next];
    nd.left = slot[a];
    nd.right = slot[b];
    nd.size = sizes[a] + sizes[b];
    if (nd.left >= static_cast<int32_t>(k)) {
      nodes[nd.left - k].parent = static_cast<int32_t>(next);
    }
    if (nd.right >= static_cast<int32_t>(k)) {
      nodes[nd.right - k].parent = static_cast<int32_t>(next);
    }
    if (heap.empty()) break;
    sizes[a] = nd.size;
    slot[a] = static_cast<int32_t>(k + next);
    ++next;
    heap.push(a);
  }
  const size_t final_node = next;  // == k - 2

  // Collapse maximal plan subtrees into k-way loser-tree leaf tasks: any
  // subtree (except the final node, whose split-merge path stays) whose
  // fan-in fits one tree merges its input runs in a single pass instead
  // of a binary cascade. The subtree's in-order leaf sequence doubles as
  // the loser tree's tie-break rank order, so the bytes written into the
  // subtree root's buffer are identical either way; the plan-phase
  // MergeStats above are already final and unaffected.
  const size_t leaf_cap =
      std::min(options.kway_leaf_fanin, kLoserTreeMaxFanIn);
  std::vector<uint32_t> fanin(k - 1);
  for (size_t j = 0; j + 1 < k; ++j) {
    const Node& nd = nodes[j];
    fanin[j] =
        (nd.left < static_cast<int32_t>(k)
             ? 1u
             : fanin[static_cast<size_t>(nd.left) - k]) +
        (nd.right < static_cast<int32_t>(k)
             ? 1u
             : fanin[static_cast<size_t>(nd.right) - k]);
  }
  enum : uint8_t { kBinaryNode = 0, kKwayRoot = 1, kAbsorbed = 2 };
  std::vector<uint8_t> role(k - 1, kBinaryNode);
  std::vector<std::vector<int32_t>> kway_leaves(k - 1);
  if (leaf_cap >= 3) {
    for (size_t j = 0; j + 1 < k; ++j) {
      if (j == final_node || fanin[j] < 3 || fanin[j] > leaf_cap) continue;
      const int32_t p = nodes[j].parent;
      if (static_cast<size_t>(p) != final_node &&
          fanin[static_cast<size_t>(p)] <= leaf_cap) {
        continue;  // An ancestor collapses this subtree instead.
      }
      role[j] = kKwayRoot;
      // In-order leaves (left subtree first = lower tie-break rank);
      // interior nodes underneath are absorbed and never execute.
      std::vector<int32_t>& leaves = kway_leaves[j];
      leaves.reserve(fanin[j]);
      std::vector<int32_t> stack;
      stack.push_back(nodes[j].right);
      stack.push_back(nodes[j].left);
      while (!stack.empty()) {
        const int32_t id = stack.back();
        stack.pop_back();
        if (id < static_cast<int32_t>(k)) {
          leaves.push_back(id);
          continue;
        }
        const size_t c = static_cast<size_t>(id) - k;
        role[c] = kAbsorbed;
        stack.push_back(nodes[c].right);
        stack.push_back(nodes[c].left);
      }
    }
  }
  // Initial ready set and final missing counters, fixed before any task
  // runs (the counters start changing the moment tasks do): k-way roots
  // depend on nothing, binary nodes wait on their interior children —
  // which are always k-way roots or surviving binary nodes, never
  // absorbed.
  std::vector<size_t> ready;
  size_t task_nodes = 0;
  for (size_t j = 0; j + 1 < k; ++j) {
    if (role[j] == kAbsorbed) continue;
    ++task_nodes;
    Node& nd = nodes[j];
    if (role[j] == kKwayRoot) {
      nd.missing.store(0, std::memory_order_relaxed);
      ready.push_back(j);
      continue;
    }
    const int missing = (nd.left >= static_cast<int32_t>(k) ? 1 : 0) +
                        (nd.right >= static_cast<int32_t>(k) ? 1 : 0);
    nd.missing.store(missing, std::memory_order_relaxed);
    if (missing == 0) ready.push_back(j);
  }

  auto child = [&rs, &nodes, k](int32_t id) -> std::vector<T>& {
    return id < static_cast<int32_t>(k)
               ? rs[id]
               : nodes[id - static_cast<int32_t>(k)].buf;
  };
  auto child_size = [&rs, &nodes, k](int32_t id) {
    return id < static_cast<int32_t>(k)
               ? rs[id].size()
               : nodes[id - static_cast<int32_t>(k)].size;
  };
  // Split the final merge in two whenever the left side has a midpoint to
  // pivot on (both thresholds already passed for the run set as a whole).
  const bool split_final = child_size(nodes[final_node].left) >= 2;

  const size_t out0 = out->size();
  out->resize(out0 + total);  // Pre-sized so halves can write in place.

  // Tasks record disjoint-concat fast paths here; folded into `stats`
  // after the group drains (the other MergeStats fields come from the
  // plan phase and are already exact).
  std::atomic<uint64_t> disjoint_concats{0};
  TaskGroup group(&tp);
  std::function<void(size_t)> exec_node = [&](size_t j) {
    TRACE_SPAN("merge.task");
    Node& nd = nodes[j];
    if (role[j] == kKwayRoot) {
      TRACE_SPAN("merge.kway_leaf");
      MergeBufferPool<T>& worker_pool = WorkerMergePool<T>();
      nd.buf = worker_pool.Acquire(nd.size);
      const std::vector<int32_t>& leaves = kway_leaves[j];
      std::vector<std::vector<T>*> slots;
      slots.reserve(leaves.size());
      for (const int32_t id : leaves) slots.push_back(&rs[id]);
      MergeStats pass_stats;
      merge_internal::LoserTreePass(slots.data(), slots.size(), less,
                                    &nd.buf, &pass_stats,
                                    &WorkerLoserTreeScratch<T>());
      disjoint_concats.fetch_add(pass_stats.disjoint_concats,
                                 std::memory_order_relaxed);
      for (const int32_t id : leaves) {
        worker_pool.Release(std::move(rs[id]));
      }
      worker_pool.Trim(kWorkerMergePoolMaxBytes);
      Node& parent = nodes[nd.parent];
      if (parent.missing.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const size_t p = static_cast<size_t>(nd.parent);
        group.Run([&exec_node, p] { exec_node(p); });
      }
      return;
    }
    std::vector<T>& a = child(nd.left);
    std::vector<T>& b = child(nd.right);
    if (j == final_node) {
      T* dst = out->data() + out0;
      const T* pa = a.data();
      const T* ea = pa + a.size();
      const T* pb = b.data();
      const T* eb = pb + b.size();
      if (split_final) {
        // Everything strictly below the left midpoint forms the first
        // half; ties sit at the boundary exactly as the stable sequential
        // merge would place them (left's equals first).
        const size_t ma = a.size() / 2;
        const T* bsplit = merge_internal::GallopLowerBound(pb, eb, pa[ma],
                                                           less);
        T* mid = dst + ma + static_cast<size_t>(bsplit - pb);
        group.Run([pa, ma, pb, bsplit, dst, &less, &disjoint_concats] {
          TRACE_SPAN("merge.final_half");
          bool disjoint = false;
          BinaryMergeToPtr(pa, pa + ma, pb, bsplit, less, dst, &disjoint);
          if (disjoint) {
            disjoint_concats.fetch_add(1, std::memory_order_relaxed);
          }
        });
        group.Run([pa, ma, ea, bsplit, eb, mid, &less, &disjoint_concats] {
          TRACE_SPAN("merge.final_half");
          bool disjoint = false;
          BinaryMergeToPtr(pa + ma, ea, bsplit, eb, less, mid, &disjoint);
          if (disjoint) {
            disjoint_concats.fetch_add(1, std::memory_order_relaxed);
          }
        });
      } else {
        bool disjoint = false;
        BinaryMergeToPtr(pa, ea, pb, eb, less, dst, &disjoint);
        if (disjoint) {
          disjoint_concats.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // The final inputs are freed by the caller (rs.clear() / ~nodes);
      // worker pools cannot recycle them because the split halves share
      // both vectors until the group drains.
      return;
    }
    MergeBufferPool<T>& worker_pool = WorkerMergePool<T>();
    nd.buf = worker_pool.Acquire(nd.size);
    if (BinaryMergeRangesInto(a.data(), a.data() + a.size(), b.data(),
                              b.data() + b.size(), less, &nd.buf)) {
      disjoint_concats.fetch_add(1, std::memory_order_relaxed);
    }
    worker_pool.Release(std::move(a));
    worker_pool.Release(std::move(b));
    worker_pool.Trim(kWorkerMergePoolMaxBytes);
    Node& parent = nodes[nd.parent];
    if (parent.missing.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const size_t p = static_cast<size_t>(nd.parent);
      group.Run([&exec_node, p] { exec_node(p); });
    }
  };
  for (const size_t j : ready) {
    group.Run([&exec_node, j] { exec_node(j); });
  }
  group.Wait();
  if (stats != nullptr) {
    stats->disjoint_concats +=
        disjoint_concats.load(std::memory_order_relaxed);
  }
  rs.clear();
  return task_nodes + (split_final ? 2 : 0);
}

// Merges `runs` pairwise in rounds (run 0 with run 1, run 2 with run 3,
// ...) regardless of size — the baseline order used by "Impatience w/o HM"
// in Figure 7. Consumes the run contents.
template <typename T, typename Less>
void BalancedMergeInto(std::vector<std::vector<T>>* runs, Less less,
                       std::vector<T>* out, MergeStats* stats = nullptr,
                       MergeBufferPool<T>* pool = nullptr) {
  std::vector<std::vector<T>>& rs = *runs;
  merge_internal::DropEmptyRuns(&rs);
  if (rs.empty()) return;
  MergeBufferPool<T> local_pool;
  if (pool == nullptr) pool = &local_pool;

  while (rs.size() > 2) {
    std::vector<std::vector<T>> next;
    next.reserve((rs.size() + 1) / 2);
    for (size_t i = 0; i + 1 < rs.size(); i += 2) {
      std::vector<T> merged = pool->Acquire(rs[i].size() + rs[i + 1].size());
      const bool disjoint = BinaryMergeInto(rs[i], rs[i + 1], less, &merged);
      if (stats != nullptr) {
        stats->elements_moved += merged.size();
        ++stats->binary_merges;
        if (disjoint) ++stats->disjoint_concats;
      }
      pool->Release(std::move(rs[i]));
      pool->Release(std::move(rs[i + 1]));
      next.push_back(std::move(merged));
    }
    if (rs.size() % 2 == 1) next.push_back(std::move(rs.back()));
    rs = std::move(next);
  }
  if (rs.size() == 2) {
    const bool disjoint = BinaryMergeInto(rs[0], rs[1], less, out);
    if (stats != nullptr) {
      stats->elements_moved += rs[0].size() + rs[1].size();
      ++stats->binary_merges;
      if (disjoint) ++stats->disjoint_concats;
    }
    pool->Release(std::move(rs[0]));
    pool->Release(std::move(rs[1]));
  } else {
    out->insert(out->end(), rs[0].begin(), rs[0].end());
    pool->Release(std::move(rs[0]));
  }
  rs.clear();
}

// k-way merge with a binary heap — the "traditional" approach the paper's
// reference [9] shows to be slower than binary merges on modern hardware.
// Kept as an ablation baseline. Consumes the run contents.
template <typename T, typename Less>
void HeapMergeInto(std::vector<std::vector<T>>* runs, Less less,
                   std::vector<T>* out, MergeStats* stats = nullptr,
                   MergeBufferPool<T>* pool = nullptr) {
  (void)pool;  // Single pass: no intermediate buffers.
  std::vector<std::vector<T>>& rs = *runs;
  size_t total = 0;
  for (const std::vector<T>& r : rs) total += r.size();
  out->reserve(out->size() + total);

  // Heap entries: (run index, position within run).
  struct Cursor {
    size_t run;
    size_t pos;
  };
  auto cursor_greater = [&rs, &less](const Cursor& a, const Cursor& b) {
    return less(rs[b.run][b.pos], rs[a.run][a.pos]);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cursor_greater)>
      heap(cursor_greater);
  for (size_t i = 0; i < rs.size(); ++i) {
    if (!rs[i].empty()) heap.push(Cursor{i, 0});
  }
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out->push_back(rs[c.run][c.pos]);
    if (stats != nullptr) ++stats->elements_moved;
    if (c.pos + 1 < rs[c.run].size()) heap.push(Cursor{c.run, c.pos + 1});
  }
  if (stats != nullptr) stats->binary_merges += rs.empty() ? 0 : 1;
  rs.clear();
}

// The merge-order strategies available to the sorters.
enum class MergePolicy {
  kHuffman,    // smallest-two-first binary cascade (§III-E1)
  kBalanced,   // pairwise rounds, size-oblivious
  kHeap,       // k-way heap merge
  kLoserTree,  // k-way loser tree, byte-identical to kHuffman
};

// Dispatches to one of the merge strategies above. `scratch` is used by
// kLoserTree only (tree state reuse across calls).
template <typename T, typename Less>
void MergeRunsInto(MergePolicy policy, std::vector<std::vector<T>>* runs,
                   Less less, std::vector<T>* out,
                   MergeStats* stats = nullptr,
                   std::type_identity_t<MergeBufferPool<T>*> pool = nullptr,
                   std::type_identity_t<LoserTreeScratch<T>*> scratch =
                       nullptr) {
  switch (policy) {
    case MergePolicy::kHuffman:
      HuffmanMergeInto(runs, less, out, stats, pool);
      return;
    case MergePolicy::kBalanced:
      BalancedMergeInto(runs, less, out, stats, pool);
      return;
    case MergePolicy::kHeap:
      HeapMergeInto(runs, less, out, stats, pool);
      return;
    case MergePolicy::kLoserTree:
      LoserTreeMergeInto(runs, less, out, stats, pool, scratch);
      return;
  }
  IMPATIENCE_CHECK(false);
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_MERGE_H_
