// Merge kernels shared by the sorting algorithms.
//
// Patience/Impatience sort produce a set of sorted runs that must be merged
// into one sorted sequence. Following the paper (§III-B, §III-E1) we merge
// runs two at a time with binary merges rather than a k-way heap, and the
// order in which runs are merged matters: merging the two smallest runs
// first ("Huffman merge") minimizes the total number of element moves,
// exactly as in Huffman coding. Both the Huffman order and a balanced
// (non-Huffman) order are provided so the optimization can be ablated, plus
// a heap-based k-way merge as a further ablation baseline.
//
// Performance notes: merges are allocation-free in steady state — a
// MergeBufferPool recycles intermediate buffers (fresh allocations mean
// page faults on first touch, which dominate small merges) — and the final
// binary merge writes straight into the caller's output vector instead of
// producing one more intermediate.

#ifndef IMPATIENCE_SORT_MERGE_H_
#define IMPATIENCE_SORT_MERGE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "sort/kernels.h"

namespace impatience {

// Recycles merge buffers so repeated merges (one per punctuation, or a
// whole offline merge tree) do not thrash the allocator.
template <typename T>
class MergeBufferPool {
 public:
  // Returns an empty vector with at least `capacity` reserved.
  std::vector<T> Acquire(size_t capacity) {
    if (!free_.empty()) {
      std::vector<T> buf = std::move(free_.back());
      free_.pop_back();
      buf.clear();
      buf.reserve(capacity);
      return buf;
    }
    std::vector<T> buf;
    buf.reserve(capacity);
    return buf;
  }

  void Release(std::vector<T>&& buf) {
    if (buf.capacity() > 0) free_.push_back(std::move(buf));
  }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const std::vector<T>& buf : free_) {
      bytes += buf.capacity() * sizeof(T);
    }
    return bytes;
  }

  // Frees pooled buffers until at most `max_bytes` are retained, so a pool
  // sized by a burst does not hold that memory forever.
  void Trim(size_t max_bytes) {
    size_t bytes = MemoryBytes();
    while (bytes > max_bytes && !free_.empty()) {
      bytes -= free_.back().capacity() * sizeof(T);
      free_.pop_back();
    }
  }

 private:
  std::vector<std::vector<T>> free_;
};

namespace merge_internal {

// The gallop machinery moved to sort/kernels.h with the two-way merge
// kernel; these aliases keep the historical names working.
using kernels::GallopLowerBound;
using kernels::GallopUpperBound;
using kernels::kGallopThreshold;

}  // namespace merge_internal

// Merges the sorted ranges [pa, ea) and [pb, eb) into `out` (appended).
// Stable: on ties, elements of the `a` range precede elements of the `b`
// range. Delegates to the kernel-layer merge: disjoint ranges concatenate
// with bulk copies, overlapping ranges run a branchless select loop that
// gallops when one side wins repeatedly. Returns true when the disjoint
// fast path ran.
template <typename T, typename Less>
bool BinaryMergeRangesInto(const T* pa, const T* ea, const T* pb,
                           const T* eb, Less less, std::vector<T>* out) {
  return kernels::MergeIntoVector(pa, ea, pb, eb, less, out);
}

// Vector-input convenience over BinaryMergeRangesInto.
template <typename T, typename Less>
bool BinaryMergeInto(const std::vector<T>& a, const std::vector<T>& b,
                     Less less, std::vector<T>* out) {
  return BinaryMergeRangesInto(a.data(), a.data() + a.size(), b.data(),
                               b.data() + b.size(), less, out);
}

// Merges [pa, ea) and [pb, eb) into the pre-sized destination starting at
// `dst` (the caller guarantees room for both ranges). Element order is
// identical to BinaryMergeRangesInto; used by the parallel merge to let two
// tasks write disjoint halves of one output. Returns one past the last
// element written; sets *disjoint (if non-null) when the concat fast path
// ran.
template <typename T, typename Less>
T* BinaryMergeToPtr(const T* pa, const T* ea, const T* pb, const T* eb,
                    Less less, T* dst, bool* disjoint = nullptr) {
  return kernels::MergeToPtr(pa, ea, pb, eb, less, dst, disjoint);
}

// Statistics describing the work a merge performed; used by ablation
// benchmarks to quantify the benefit of the Huffman order.
struct MergeStats {
  // Total elements moved across all binary merges (the quantity the
  // Huffman order minimizes).
  uint64_t elements_moved = 0;
  // Number of binary merges performed.
  uint64_t binary_merges = 0;
  // Binary merges resolved by the disjoint-run fast path (two bulk copies,
  // no select loop). Unlike the fields above, this depends on execution
  // strategy: the parallel merge splits the final merge in two, and each
  // half classifies independently, so the count may differ from the
  // sequential merge of the same runs.
  uint64_t disjoint_concats = 0;
};

namespace merge_internal {

template <typename T>
void DropEmptyRuns(std::vector<std::vector<T>>* runs) {
  runs->erase(std::remove_if(runs->begin(), runs->end(),
                             [](const std::vector<T>& r) {
                               return r.empty();
                             }),
              runs->end());
}

}  // namespace merge_internal

// Merges `runs` (each sorted) into a single sorted sequence appended to
// `out`, merging the two smallest runs first (§III-E1). Consumes the run
// contents. `pool` (optional) recycles intermediate buffers.
template <typename T, typename Less>
void HuffmanMergeInto(std::vector<std::vector<T>>* runs, Less less,
                      std::vector<T>* out, MergeStats* stats = nullptr,
                      MergeBufferPool<T>* pool = nullptr) {
  TRACE_SPAN("merge.huffman");
  std::vector<std::vector<T>>& rs = *runs;
  merge_internal::DropEmptyRuns(&rs);
  if (rs.empty()) return;
  if (rs.size() == 1) {
    out->insert(out->end(), rs[0].begin(), rs[0].end());
    rs.clear();
    return;
  }
  MergeBufferPool<T> local_pool;
  if (pool == nullptr) pool = &local_pool;

  // Min-heap of run indices ordered by current run size.
  auto size_greater = [&rs](size_t a, size_t b) {
    return rs[a].size() > rs[b].size();
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(size_greater)>
      heap(size_greater);
  for (size_t i = 0; i < rs.size(); ++i) heap.push(i);

  while (true) {
    const size_t a = heap.top();
    heap.pop();
    const size_t b = heap.top();
    heap.pop();
    if (stats != nullptr) {
      stats->elements_moved += rs[a].size() + rs[b].size();
      ++stats->binary_merges;
    }
    if (heap.empty()) {
      // Final merge: write straight into the caller's output.
      const bool disjoint = BinaryMergeInto(rs[a], rs[b], less, out);
      if (stats != nullptr && disjoint) ++stats->disjoint_concats;
      break;
    }
    std::vector<T> merged = pool->Acquire(rs[a].size() + rs[b].size());
    const bool disjoint = BinaryMergeInto(rs[a], rs[b], less, &merged);
    if (stats != nullptr && disjoint) ++stats->disjoint_concats;
    pool->Release(std::move(rs[a]));
    pool->Release(std::move(rs[b]));
    rs[a] = std::move(merged);
    heap.push(a);
  }
  rs.clear();
}

// ---------------------------------------------------------------------------
// Parallel Huffman merge.

// Per-worker buffer pool for parallel merges. MergeBufferPool is not
// thread-safe and must not be shared across workers without ownership
// handoff; instead every thread acquires from and releases into its own
// thread-local pool, capped so idle workers do not hoard scratch forever.
inline constexpr size_t kWorkerMergePoolMaxBytes = size_t{32} << 20;

template <typename T>
MergeBufferPool<T>& WorkerMergePool() {
  thread_local MergeBufferPool<T> pool;
  return pool;
}

// Tuning for ParallelMergeRunsInto.
struct ParallelMergeOptions {
  // Fall back to sequential HuffmanMergeInto when the run set is smaller
  // than either threshold (task overhead would dominate) or the pool is
  // serial.
  size_t min_total_bytes = size_t{1} << 20;
  size_t min_runs = 3;
  ThreadPool* pool = nullptr;  // nullptr = ThreadPool::Global()
};

// Merges `runs` smallest-two-first like HuffmanMergeInto, but executes the
// merge tree as a task DAG on the thread pool: the plan phase replays the
// exact size-heap HuffmanMergeInto would use (same pairs, same left/right
// roles, so the same stability decisions), leaf pairs then merge
// concurrently, every interior merge starts as soon as its two inputs are
// ready, and the final binary merge is split at a GallopLowerBound midpoint
// so both halves of the output are written in parallel into the pre-sized
// destination. Output and MergeStats are byte-identical to
// HuffmanMergeInto on the same input.
//
// Consumes the run contents. `pool` recycles buffers on the sequential
// fallback only; parallel tasks use per-worker pools. Requires T
// default-constructible (the output is resized up front). Returns the
// number of pool tasks the merge used — 0 means the sequential fallback
// ran.
template <typename T, typename Less>
size_t ParallelMergeRunsInto(std::vector<std::vector<T>>* runs, Less less,
                             std::vector<T>* out,
                             MergeStats* stats = nullptr,
                             std::type_identity_t<MergeBufferPool<T>*> pool =
                                 nullptr,
                             const ParallelMergeOptions& options = {}) {
  static_assert(std::is_default_constructible_v<T>,
                "parallel merge resizes the output vector");
  std::vector<std::vector<T>>& rs = *runs;
  merge_internal::DropEmptyRuns(&rs);
  size_t total = 0;
  for (const std::vector<T>& r : rs) total += r.size();
  ThreadPool& tp =
      options.pool != nullptr ? *options.pool : ThreadPool::Global();
  const size_t min_runs = options.min_runs < 2 ? 2 : options.min_runs;
  if (tp.thread_count() < 2 || rs.size() < min_runs ||
      total * sizeof(T) < options.min_total_bytes) {
    HuffmanMergeInto(&rs, less, out, stats, pool);
    return 0;
  }

  // Plan: replay HuffmanMergeInto's heap over run sizes alone. slot[i]
  // tracks which merge result currently occupies heap slot i (mirroring
  // the sequential in-place rs[a] = merged).
  const size_t k = rs.size();
  struct Node {
    int32_t left = -1;   // Child id: [0, k) = input run, >= k = node id-k.
    int32_t right = -1;
    int32_t parent = -1;
    size_t size = 0;
    std::atomic<int> missing{0};  // Interior children not yet merged.
    std::vector<T> buf;
  };
  std::vector<Node> nodes(k - 1);
  std::vector<size_t> sizes(k);
  std::vector<int32_t> slot(k);
  for (size_t i = 0; i < k; ++i) {
    sizes[i] = rs[i].size();
    slot[i] = static_cast<int32_t>(i);
  }
  auto size_greater = [&sizes](size_t a, size_t b) {
    return sizes[a] > sizes[b];
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(size_greater)>
      heap(size_greater);
  for (size_t i = 0; i < k; ++i) heap.push(i);
  // Nodes whose children are both input runs, collected at plan time: the
  // missing counters start changing the moment tasks run, so the initial
  // ready set cannot be read from them later.
  std::vector<size_t> ready;
  size_t next = 0;
  for (;;) {
    const size_t a = heap.top();
    heap.pop();
    const size_t b = heap.top();
    heap.pop();
    if (stats != nullptr) {
      stats->elements_moved += sizes[a] + sizes[b];
      ++stats->binary_merges;
    }
    Node& nd = nodes[next];
    nd.left = slot[a];
    nd.right = slot[b];
    nd.size = sizes[a] + sizes[b];
    int missing = 0;
    if (nd.left >= static_cast<int32_t>(k)) {
      nodes[nd.left - k].parent = static_cast<int32_t>(next);
      ++missing;
    }
    if (nd.right >= static_cast<int32_t>(k)) {
      nodes[nd.right - k].parent = static_cast<int32_t>(next);
      ++missing;
    }
    nd.missing.store(missing, std::memory_order_relaxed);
    if (missing == 0) ready.push_back(next);
    if (heap.empty()) break;
    sizes[a] = nd.size;
    slot[a] = static_cast<int32_t>(k + next);
    ++next;
    heap.push(a);
  }
  const size_t final_node = next;  // == k - 2

  auto child = [&rs, &nodes, k](int32_t id) -> std::vector<T>& {
    return id < static_cast<int32_t>(k)
               ? rs[id]
               : nodes[id - static_cast<int32_t>(k)].buf;
  };
  auto child_size = [&rs, &nodes, k](int32_t id) {
    return id < static_cast<int32_t>(k)
               ? rs[id].size()
               : nodes[id - static_cast<int32_t>(k)].size;
  };
  // Split the final merge in two whenever the left side has a midpoint to
  // pivot on (both thresholds already passed for the run set as a whole).
  const bool split_final = child_size(nodes[final_node].left) >= 2;

  const size_t out0 = out->size();
  out->resize(out0 + total);  // Pre-sized so halves can write in place.

  // Tasks record disjoint-concat fast paths here; folded into `stats`
  // after the group drains (the other MergeStats fields come from the
  // plan phase and are already exact).
  std::atomic<uint64_t> disjoint_concats{0};
  TaskGroup group(&tp);
  std::function<void(size_t)> exec_node = [&](size_t j) {
    TRACE_SPAN("merge.task");
    Node& nd = nodes[j];
    std::vector<T>& a = child(nd.left);
    std::vector<T>& b = child(nd.right);
    if (j == final_node) {
      T* dst = out->data() + out0;
      const T* pa = a.data();
      const T* ea = pa + a.size();
      const T* pb = b.data();
      const T* eb = pb + b.size();
      if (split_final) {
        // Everything strictly below the left midpoint forms the first
        // half; ties sit at the boundary exactly as the stable sequential
        // merge would place them (left's equals first).
        const size_t ma = a.size() / 2;
        const T* bsplit = merge_internal::GallopLowerBound(pb, eb, pa[ma],
                                                           less);
        T* mid = dst + ma + static_cast<size_t>(bsplit - pb);
        group.Run([pa, ma, pb, bsplit, dst, &less, &disjoint_concats] {
          TRACE_SPAN("merge.final_half");
          bool disjoint = false;
          BinaryMergeToPtr(pa, pa + ma, pb, bsplit, less, dst, &disjoint);
          if (disjoint) {
            disjoint_concats.fetch_add(1, std::memory_order_relaxed);
          }
        });
        group.Run([pa, ma, ea, bsplit, eb, mid, &less, &disjoint_concats] {
          TRACE_SPAN("merge.final_half");
          bool disjoint = false;
          BinaryMergeToPtr(pa + ma, ea, bsplit, eb, less, mid, &disjoint);
          if (disjoint) {
            disjoint_concats.fetch_add(1, std::memory_order_relaxed);
          }
        });
      } else {
        bool disjoint = false;
        BinaryMergeToPtr(pa, ea, pb, eb, less, dst, &disjoint);
        if (disjoint) {
          disjoint_concats.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // The final inputs are freed by the caller (rs.clear() / ~nodes),
      // matching the sequential merge, which does not pool them either.
      return;
    }
    MergeBufferPool<T>& worker_pool = WorkerMergePool<T>();
    nd.buf = worker_pool.Acquire(nd.size);
    if (BinaryMergeRangesInto(a.data(), a.data() + a.size(), b.data(),
                              b.data() + b.size(), less, &nd.buf)) {
      disjoint_concats.fetch_add(1, std::memory_order_relaxed);
    }
    worker_pool.Release(std::move(a));
    worker_pool.Release(std::move(b));
    worker_pool.Trim(kWorkerMergePoolMaxBytes);
    Node& parent = nodes[nd.parent];
    if (parent.missing.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const size_t p = static_cast<size_t>(nd.parent);
      group.Run([&exec_node, p] { exec_node(p); });
    }
  };
  for (const size_t j : ready) {
    group.Run([&exec_node, j] { exec_node(j); });
  }
  group.Wait();
  if (stats != nullptr) {
    stats->disjoint_concats +=
        disjoint_concats.load(std::memory_order_relaxed);
  }
  rs.clear();
  return (k - 1) + (split_final ? 2 : 0);
}

// Merges `runs` pairwise in rounds (run 0 with run 1, run 2 with run 3,
// ...) regardless of size — the baseline order used by "Impatience w/o HM"
// in Figure 7. Consumes the run contents.
template <typename T, typename Less>
void BalancedMergeInto(std::vector<std::vector<T>>* runs, Less less,
                       std::vector<T>* out, MergeStats* stats = nullptr,
                       MergeBufferPool<T>* pool = nullptr) {
  std::vector<std::vector<T>>& rs = *runs;
  merge_internal::DropEmptyRuns(&rs);
  if (rs.empty()) return;
  MergeBufferPool<T> local_pool;
  if (pool == nullptr) pool = &local_pool;

  while (rs.size() > 2) {
    std::vector<std::vector<T>> next;
    next.reserve((rs.size() + 1) / 2);
    for (size_t i = 0; i + 1 < rs.size(); i += 2) {
      std::vector<T> merged = pool->Acquire(rs[i].size() + rs[i + 1].size());
      const bool disjoint = BinaryMergeInto(rs[i], rs[i + 1], less, &merged);
      if (stats != nullptr) {
        stats->elements_moved += merged.size();
        ++stats->binary_merges;
        if (disjoint) ++stats->disjoint_concats;
      }
      pool->Release(std::move(rs[i]));
      pool->Release(std::move(rs[i + 1]));
      next.push_back(std::move(merged));
    }
    if (rs.size() % 2 == 1) next.push_back(std::move(rs.back()));
    rs = std::move(next);
  }
  if (rs.size() == 2) {
    const bool disjoint = BinaryMergeInto(rs[0], rs[1], less, out);
    if (stats != nullptr) {
      stats->elements_moved += rs[0].size() + rs[1].size();
      ++stats->binary_merges;
      if (disjoint) ++stats->disjoint_concats;
    }
  } else {
    out->insert(out->end(), rs[0].begin(), rs[0].end());
  }
  rs.clear();
}

// k-way merge with a binary heap — the "traditional" approach the paper's
// reference [9] shows to be slower than binary merges on modern hardware.
// Kept as an ablation baseline. Consumes the run contents.
template <typename T, typename Less>
void HeapMergeInto(std::vector<std::vector<T>>* runs, Less less,
                   std::vector<T>* out, MergeStats* stats = nullptr,
                   MergeBufferPool<T>* pool = nullptr) {
  (void)pool;  // Single pass: no intermediate buffers.
  std::vector<std::vector<T>>& rs = *runs;
  size_t total = 0;
  for (const std::vector<T>& r : rs) total += r.size();
  out->reserve(out->size() + total);

  // Heap entries: (run index, position within run).
  struct Cursor {
    size_t run;
    size_t pos;
  };
  auto cursor_greater = [&rs, &less](const Cursor& a, const Cursor& b) {
    return less(rs[b.run][b.pos], rs[a.run][a.pos]);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cursor_greater)>
      heap(cursor_greater);
  for (size_t i = 0; i < rs.size(); ++i) {
    if (!rs[i].empty()) heap.push(Cursor{i, 0});
  }
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out->push_back(rs[c.run][c.pos]);
    if (stats != nullptr) ++stats->elements_moved;
    if (c.pos + 1 < rs[c.run].size()) heap.push(Cursor{c.run, c.pos + 1});
  }
  if (stats != nullptr) stats->binary_merges += rs.empty() ? 0 : 1;
  rs.clear();
}

// The merge-order strategies available to the sorters.
enum class MergePolicy {
  kHuffman,   // smallest-two-first (§III-E1)
  kBalanced,  // pairwise rounds, size-oblivious
  kHeap,      // k-way heap merge
};

// Dispatches to one of the merge strategies above.
template <typename T, typename Less>
void MergeRunsInto(MergePolicy policy, std::vector<std::vector<T>>* runs,
                   Less less, std::vector<T>* out,
                   MergeStats* stats = nullptr,
                   MergeBufferPool<T>* pool = nullptr) {
  switch (policy) {
    case MergePolicy::kHuffman:
      HuffmanMergeInto(runs, less, out, stats, pool);
      return;
    case MergePolicy::kBalanced:
      BalancedMergeInto(runs, less, out, stats, pool);
      return;
    case MergePolicy::kHeap:
      HeapMergeInto(runs, less, out, stats, pool);
      return;
  }
  IMPATIENCE_CHECK(false);
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_MERGE_H_
