// Run selection for the Patience partition phase.
//
// The tails array is strictly descending and the run-size distribution on
// log data is heavily skewed toward the first few runs (the "front" runs
// absorb the near-in-order backbone of the stream). The search kernel
// (kernels::FindFirstLEDesc) therefore probes the first few tails — a
// predictable early-exit loop, vector-wide at the SIMD levels — before
// falling back to a branch-free binary search over the remainder.

#ifndef IMPATIENCE_SORT_RUN_SELECT_H_
#define IMPATIENCE_SORT_RUN_SELECT_H_

#include <cstddef>
#include <vector>

#include "common/cpu_features.h"
#include "common/timestamp.h"
#include "sort/kernels.h"

namespace impatience {

// Returns the first index i with tails[i] <= t, or tails.size() if no run
// can accept the element. `tails` must be strictly descending. Hot loops
// should cache ActiveKernelLevel() once and use this overload.
inline size_t FindRunIndex(const std::vector<Timestamp>& tails, Timestamp t,
                           KernelLevel level) {
  return kernels::FindFirstLEDesc(tails.data(), tails.size(), t, level);
}

// Convenience overload at the process-wide dispatch level.
inline size_t FindRunIndex(const std::vector<Timestamp>& tails,
                           Timestamp t) {
  return FindRunIndex(tails, t, ActiveKernelLevel());
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_RUN_SELECT_H_
