// Run selection for the Patience partition phase.
//
// The tails array is strictly descending and the run-size distribution on
// log data is heavily skewed toward the first few runs (the "front" runs
// absorb the near-in-order backbone of the stream). FindRunIndex therefore
// probes the first few tails linearly — a predictable early-exit loop —
// before falling back to a branch-free binary search over the remainder.

#ifndef IMPATIENCE_SORT_RUN_SELECT_H_
#define IMPATIENCE_SORT_RUN_SELECT_H_

#include <cstddef>
#include <vector>

#include "common/timestamp.h"

namespace impatience {

// Returns the first index i with tails[i] <= t, or tails.size() if no run
// can accept the element. `tails` must be strictly descending.
inline size_t FindRunIndex(const std::vector<Timestamp>& tails,
                           Timestamp t) {
  constexpr size_t kLinearProbe = 8;
  const size_t k = tails.size();
  const size_t linear_end = k < kLinearProbe ? k : kLinearProbe;
  for (size_t i = 0; i < linear_end; ++i) {
    if (tails[i] <= t) return i;
  }
  if (linear_end == k) return k;

  // Branch-free binary search over tails[kLinearProbe..k).
  const Timestamp* data = tails.data();
  size_t lo = kLinearProbe;
  size_t len = k - kLinearProbe;
  while (len > 0) {
    const size_t half = len >> 1;
    const bool gt = data[lo + half] > t;
    lo = gt ? lo + half + 1 : lo;
    len = gt ? len - half - 1 : half;
  }
  return lo;
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_RUN_SELECT_H_
