// Generic offline-to-incremental sorting adapter (paper §VI-B).
//
// The evaluation adapts Patience sort, Quicksort and Timsort to the
// punctuation contract with "a general solution": keep a sorted buffer and
// an unsorted buffer; new events go to the unsorted buffer; on a
// punctuation, sort the unsorted buffer with the wrapped algorithm, merge
// it into the sorted buffer, and emit the sorted-buffer prefix up to the
// punctuation timestamp. Each element is sorted once but may be rewritten
// by several merge phases — the cost that makes these baselines collapse at
// high punctuation frequency in Figure 8.

#ifndef IMPATIENCE_SORT_INCREMENTAL_ADAPTER_H_
#define IMPATIENCE_SORT_INCREMENTAL_ADAPTER_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/cpu_features.h"
#include "common/event.h"
#include "common/histogram.h"
#include "common/timestamp.h"
#include "common/trace.h"
#include "sort/kernels.h"
#include "sort/merge.h"
#include "sort/sorter.h"

namespace impatience {

// Wraps an offline sort (the SortFn policy) into an IncrementalSorter.
//
// SortFn must be callable as `void (std::vector<T>::iterator first,
// std::vector<T>::iterator last, Less less)` with Less comparing by
// timestamp.
template <typename T, typename SortFn, typename TimeOf = SyncTimeOf>
class IncrementalAdapter : public IncrementalSorter<T, TimeOf> {
 public:
  explicit IncrementalAdapter(SortFn sort_fn, std::string name)
      : sort_fn_(std::move(sort_fn)), name_(std::move(name)) {}

  IncrementalAdapter(const IncrementalAdapter&) = delete;
  IncrementalAdapter& operator=(const IncrementalAdapter&) = delete;

  void Push(const T& item) override {
    if (time_of_(item) <= last_punctuation_) {
      ++late_drops_;
      return;
    }
    unsorted_.push_back(item);
    if (__builtin_expect(ingest_window_start_ns_ == 0, 0)) {
      ingest_window_start_ns_ = Clock::Nanos();
    }
  }

  void OnPunctuation(Timestamp t, std::vector<T>* out) override {
    TRACE_SPAN("adapter.on_punctuation");
    const uint64_t punct_start_ns = Clock::Nanos();
    IMPATIENCE_CHECK_MSG(t >= last_punctuation_,
                         "punctuations must be non-decreasing");
    last_punctuation_ = t;
    auto less = [this](const T& a, const T& b) {
      return time_of_(a) < time_of_(b);
    };

    if (!unsorted_.empty()) {
      sort_fn_(unsorted_.begin(), unsorted_.end(), less);
      if (SortedSize() == 0) {
        sorted_ = std::move(unsorted_);
        head_ = 0;
      } else {
        // Merge the two sorted buffers into a pool buffer with the kernel
        // merge (same stable order as std::merge — ties keep the old
        // sorted buffer first); when the new batch lies entirely past the
        // buffered tail, the common case for a mostly-ordered stream, the
        // merge degenerates to two bulk copies. The retired sorted buffer
        // goes back to the pool, so steady-state punctuations ping-pong
        // between two allocations instead of growing a fresh vector each
        // time.
        std::vector<T> merged = pool_.Acquire(SortedSize() + unsorted_.size());
        kernels::MergeIntoVector(
            sorted_.data() + head_, sorted_.data() + sorted_.size(),
            unsorted_.data(), unsorted_.data() + unsorted_.size(), less,
            &merged);
        pool_.Release(std::move(sorted_));
        sorted_ = std::move(merged);
        head_ = 0;
      }
      unsorted_.clear();
    }

    // Emit the prefix of the sorted buffer at or before the punctuation
    // (branchless bound; vector-wide when T is a bare timestamp column).
    const size_t cut_index = kernels::UpperBoundByTime(
        sorted_.data(), head_, sorted_.size(), t, time_of_, level_);
    const auto begin = sorted_.begin() + static_cast<ptrdiff_t>(head_);
    const auto cut = sorted_.begin() + static_cast<ptrdiff_t>(cut_index);
    const size_t emitted = cut_index - head_;
    out->insert(out->end(), begin, cut);
    head_ = cut_index;
    // Reclaim the emitted prefix when it dominates the buffer.
    if (head_ > 0 && head_ * 2 >= sorted_.size()) {
      sorted_.erase(sorted_.begin(), sorted_.begin() +
                                         static_cast<ptrdiff_t>(head_));
      head_ = 0;
    }

    const uint64_t now_ns = Clock::Nanos();
    punct_to_emit_.Record(now_ns - punct_start_ns);
    if (emitted > 0 && ingest_window_start_ns_ != 0) {
      ingest_to_emit_.Record(now_ns >= ingest_window_start_ns_
                                 ? now_ns - ingest_window_start_ns_
                                 : 0);
      ingest_window_start_ns_ = 0;
    }
  }

  size_t buffered_count() const override {
    return SortedSize() + unsorted_.size();
  }

  size_t MemoryBytes() const override {
    // `sorted_` is a pool buffer held across punctuations (it stays
    // outstanding in the pool), so count it once via the vector itself and
    // add only the pool's cached free buffer — the ping-pong partner — on
    // top.
    return sorted_.capacity() * sizeof(T) + unsorted_.capacity() * sizeof(T) +
           (pool_.MemoryBytes() - pool_.OutstandingBytes());
  }

  uint64_t late_drops() const override { return late_drops_; }

  std::string name() const override { return name_; }

  const HistogramSnapshot* punctuation_latency() const override {
    return &punct_to_emit_;
  }
  const HistogramSnapshot* ingest_latency() const override {
    return &ingest_to_emit_;
  }

 private:
  size_t SortedSize() const { return sorted_.size() - head_; }

  SortFn sort_fn_;
  std::string name_;
  TimeOf time_of_;
  const KernelLevel level_ = ActiveKernelLevel();

  std::vector<T> sorted_;  // Sorted buffer; [0, head_) already emitted.
  size_t head_ = 0;
  std::vector<T> unsorted_;
  MergeBufferPool<T> pool_;  // Ping-pong partner for the punctuation merge.
  Timestamp last_punctuation_ = kMinTimestamp;
  uint64_t late_drops_ = 0;
  uint64_t ingest_window_start_ns_ = 0;
  HistogramSnapshot punct_to_emit_;
  HistogramSnapshot ingest_to_emit_;
};

// Deduces the SortFn type.
template <typename T, typename TimeOf = SyncTimeOf, typename SortFn>
auto MakeIncrementalAdapter(SortFn sort_fn, std::string name) {
  return IncrementalAdapter<T, SortFn, TimeOf>(std::move(sort_fn),
                                               std::move(name));
}

}  // namespace impatience

#endif  // IMPATIENCE_SORT_INCREMENTAL_ADAPTER_H_
