#include "storage/spill_flusher.h"

#include <cstdlib>

#include "common/trace.h"

namespace impatience {
namespace storage {

SpillFlusher::SpillFlusher(const Options& options) : options_(options) {
  const size_t n = options.threads < 1 ? 1 : options.threads;
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

SpillFlusher::~SpillFlusher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::shared_ptr<SpillFlusher::Channel> SpillFlusher::NewChannel() {
  return std::shared_ptr<Channel>(new Channel(this));
}

void SpillFlusher::Channel::Enqueue(std::function<bool()> fn,
                                    size_t bytes) {
  // The channel does not own the pool; pool_ outlives every channel user
  // by construction (runs are destroyed before their flusher).
  pool_->EnqueueOn(shared_from_this(), std::move(fn), bytes);
}

void SpillFlusher::EnqueueOn(const std::shared_ptr<Channel>& ch,
                             std::function<bool()> fn, size_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  const size_t cap = options_.max_inflight_bytes;
  bool waited = false;
  while (cap != 0 &&
         inflight_bytes_.load(std::memory_order_relaxed) + bytes > cap &&
         inflight_bytes_.load(std::memory_order_relaxed) > 0) {
    waited = true;
    space_cv_.wait(lock);
  }
  if (waited) backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
  inflight_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  TRACE_COUNTER("spill.flush_queue_bytes",
                inflight_bytes_.load(std::memory_order_relaxed));
  ch->jobs_.push_back(Channel::Job{std::move(fn), bytes});
  ++ch->pending_;
  if (!ch->scheduled_) {
    ch->scheduled_ = true;
    ready_.push_back(ch);
    work_cv_.notify_one();
  }
}

void SpillFlusher::Channel::Wait() {
  std::unique_lock<std::mutex> lock(pool_->mu_);
  done_cv_.wait(lock, [this]() { return pending_ == 0; });
}

void SpillFlusher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (ready_.empty()) {
      if (stop_) return;
      work_cv_.wait(lock);
      continue;
    }
    std::shared_ptr<Channel> ch = std::move(ready_.front());
    ready_.pop_front();
    // Drain this channel's queue in order. Producers may append while a
    // job runs unlocked; scheduled_ stays set, so the channel is never
    // concurrently drained by a second worker.
    while (!ch->jobs_.empty()) {
      Channel::Job job = std::move(ch->jobs_.front());
      ch->jobs_.pop_front();
      const bool skip = ch->failed_.load(std::memory_order_relaxed);
      bool ok = false;
      if (!skip) {
        lock.unlock();
        ok = job.fn();
        lock.lock();
      }
      jobs_run_.fetch_add(1, std::memory_order_relaxed);
      if (!skip && ok) {
        async_flushes_.fetch_add(1, std::memory_order_relaxed);
      } else if (!skip) {
        ch->failed_.store(true, std::memory_order_release);
      }
      inflight_bytes_.fetch_sub(job.bytes, std::memory_order_relaxed);
      TRACE_COUNTER("spill.flush_queue_bytes",
                    inflight_bytes_.load(std::memory_order_relaxed));
      space_cv_.notify_all();
      if (--ch->pending_ == 0) ch->done_cv_.notify_all();
    }
    ch->scheduled_ = false;
  }
}

SpillFlusher::Stats SpillFlusher::stats() const {
  Stats s;
  s.jobs_run = jobs_run_.load(std::memory_order_relaxed);
  s.async_flushes = async_flushes_.load(std::memory_order_relaxed);
  s.backpressure_waits =
      backpressure_waits_.load(std::memory_order_relaxed);
  s.inflight_bytes = inflight_bytes_.load(std::memory_order_relaxed);
  return s;
}

SpillFlusher* FlusherFromEnv() {
  static SpillFlusher* flusher = []() -> SpillFlusher* {
    const char* env = std::getenv("IMPATIENCE_SPILL_FLUSHER_THREADS");
    if (env == nullptr || *env == '\0') return nullptr;
    const long n = std::atol(env);
    if (n <= 0) return nullptr;
    SpillFlusher::Options options;
    options.threads = static_cast<size_t>(n);
    return new SpillFlusher(options);  // Leaked; see header.
  }();
  return flusher;
}

}  // namespace storage
}  // namespace impatience
