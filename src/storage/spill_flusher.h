// Write-behind flusher pool for the spill tier.
//
// A SpillFlusher owns a small set of dedicated I/O threads (dedicated, not
// borrowed from the compute ThreadPool — flusher jobs block on write(2)
// and fsync(2), which must never stall a work-stealing compute worker).
// Producers hand it closures through per-run Channels:
//
//   - Jobs on one Channel execute in FIFO order, one at a time. A run
//     file's blocks are only ever appended through its own channel, which
//     is the per-run-file ordering guarantee: concurrent flusher threads
//     may interleave *different* runs' writes but never reorder one run's.
//   - Each job declares a byte weight counted against the pool-wide
//     in-flight cap. Enqueue blocks while the cap is exceeded —
//     backpressure stalls the appender; nothing is ever dropped.
//   - Channel::Wait() is the durability barrier: it returns once every
//     job enqueued so far has finished, after which the caller may fsync
//     and advance the manifest knowing the covered blocks were written.
//
// A job returning false (a real I/O error, not a WriteFault kill) poisons
// its channel: later jobs on that channel are skipped, never run, so a
// torn append can't be followed by writes at wrong file offsets. The
// caller observes `failed()` and keeps the affected blocks in RAM.

#ifndef IMPATIENCE_STORAGE_SPILL_FLUSHER_H_
#define IMPATIENCE_STORAGE_SPILL_FLUSHER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace impatience {
namespace storage {

class SpillFlusher {
 public:
  struct Options {
    size_t threads = 1;  // Flusher threads; clamped to at least 1.
    // Pool-wide cap on bytes queued or being written. Enqueue blocks
    // while exceeded (a single oversized job is still admitted when the
    // pool is empty, so progress is always possible). 0 = unbounded.
    size_t max_inflight_bytes = 8u << 20;
  };

  struct Stats {
    uint64_t jobs_run = 0;            // Jobs executed (incl. skipped).
    uint64_t async_flushes = 0;       // Jobs completed successfully.
    uint64_t backpressure_waits = 0;  // Enqueues that blocked on the cap.
    uint64_t inflight_bytes = 0;      // Currently queued + running bytes.
  };

  // FIFO job lane; one per run file (or per read-ahead cursor).
  class Channel : public std::enable_shared_from_this<Channel> {
   public:
    // Queues `fn` after all previously enqueued jobs of this channel.
    // Blocks while the pool's in-flight cap is exceeded.
    void Enqueue(std::function<bool()> fn, size_t bytes);

    // Returns once every job enqueued before this call has finished
    // (run or skipped after a poison).
    void Wait();

    // True once any job on this channel returned false. Later jobs are
    // skipped; the channel stays poisoned for its lifetime.
    bool failed() const {
      return failed_.load(std::memory_order_acquire);
    }

   private:
    friend class SpillFlusher;
    explicit Channel(SpillFlusher* pool) : pool_(pool) {}

    struct Job {
      std::function<bool()> fn;
      size_t bytes;
    };

    SpillFlusher* pool_;
    std::deque<Job> jobs_;       // Guarded by pool_->mu_.
    size_t pending_ = 0;         // Queued + running jobs.
    bool scheduled_ = false;     // In ready_ or being drained by a worker.
    std::condition_variable done_cv_;
    std::atomic<bool> failed_{false};
  };

  explicit SpillFlusher(const Options& options);
  // Drains every queued job, then joins the threads.
  ~SpillFlusher();

  SpillFlusher(const SpillFlusher&) = delete;
  SpillFlusher& operator=(const SpillFlusher&) = delete;

  std::shared_ptr<Channel> NewChannel();

  size_t threads() const { return threads_.size(); }
  size_t max_inflight_bytes() const { return options_.max_inflight_bytes; }
  uint64_t inflight_bytes() const {
    return inflight_bytes_.load(std::memory_order_relaxed);
  }
  Stats stats() const;

 private:
  void WorkerLoop();
  void EnqueueOn(const std::shared_ptr<Channel>& ch,
                 std::function<bool()> fn, size_t bytes);

  const Options options_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // Workers wait for ready channels.
  std::condition_variable space_cv_;  // Producers wait for cap headroom.
  std::deque<std::shared_ptr<Channel>> ready_;
  bool stop_ = false;
  std::atomic<uint64_t> inflight_bytes_{0};
  std::atomic<uint64_t> jobs_run_{0};
  std::atomic<uint64_t> async_flushes_{0};
  std::atomic<uint64_t> backpressure_waits_{0};
  std::vector<std::thread> threads_;
};

// Process-wide flusher configured by $IMPATIENCE_SPILL_FLUSHER_THREADS
// (the CI forced-async-spill pass sets it). Returns nullptr when the
// variable is unset, empty, or 0. The pool is created on first use and
// intentionally leaked — runs owned by static-storage sorters may still
// flush during teardown.
SpillFlusher* FlusherFromEnv();

}  // namespace storage
}  // namespace impatience

#endif  // IMPATIENCE_STORAGE_SPILL_FLUSHER_H_
