// RunStore: a directory of spilled run files plus an append-only manifest.
//
// The store is the durability unit of the spill tier. Run files hold the
// data (storage/run_file.h); the manifest records the lifecycle of each
// run so a restart can tell which files are live, how much of each was
// emitted downstream, and where the torn tails start:
//
//   MANIFEST: fixed 32-byte CRC'd records, append-only
//     0   4  magic   0x4D525049 ("IPRM")
//     4   1  type    1=begin  2=commit  3=delete  4=advance
//                    5=begin-hidden  6=compact-swap
//     5   3  reserved 0
//     8   8  run_id
//     16  8  arg     begin: record_size · commit: records · advance: head
//                    begin-hidden: record_size · compact-swap: old run_id
//     24  4  crc32 of bytes [0, 24)
//     28  4  reserved 0
//
// Protocol: `begin` is appended (and fsync'd) before a run file's first
// block, `advance` after a punctuation emits a prefix downstream, `commit`
// when a run is sealed with a known record count, `delete` when a run has
// been fully consumed (its file is unlinked). Recovery replays the
// manifest, truncating its own torn tail at the first bad record, then
// scans each live run file and truncates it to its longest intact block
// prefix. The durable content of the store after a crash is exactly:
// for each begun-not-deleted run, records [head, intact_records) where
// head is the last intact `advance`. `advance` records are not fsync'd
// individually, so a crash can lose the newest advances — recovery then
// replays a suffix that was already emitted (at-least-once, never silent
// loss of durable data).
//
// Compaction uses the two staged types to rewrite a half-consumed run
// without ever exposing its live suffix twice. `begin-hidden` opens a
// staging run that recovery treats as dead (its file is unlinked on
// Recover); once the staging file holds the live suffix and is durable, a
// single fsync'd `compact-swap` record promotes it and deletes the old
// run in one atomic step. A crash strictly before the swap recovers the
// old run only; at or after it, the new run only.
//
// Thread safety: all manifest operations serialize on an internal mutex so
// concurrent band-merge tasks can share one store. Block appends to
// distinct run files need no store lock.

#ifndef IMPATIENCE_STORAGE_RUN_STORE_H_
#define IMPATIENCE_STORAGE_RUN_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/run_file.h"

namespace impatience {
namespace storage {

inline constexpr uint32_t kManifestMagic = 0x4D525049u;  // "IPRM"
inline constexpr size_t kManifestRecordBytes = 32;

struct RunStoreOptions {
  std::string dir;
  // fsync the manifest after begin/commit/delete (not advance) and run
  // files on Sync. Off trades durability for spill throughput.
  bool fsync = true;
  // Scripted crash injection shared by every file in the store (tests).
  WriteFault* write_fault = nullptr;
};

// One live run reconstructed by Recover().
struct RecoveredRun {
  uint64_t id = 0;
  std::string path;
  uint32_t record_size = 0;
  uint64_t records = 0;  // Intact records on disk after tail truncation.
  uint64_t head = 0;     // Durable emitted prefix (<= records).
  bool committed = false;
  uint64_t committed_records = 0;
};

struct RecoveryStats {
  size_t live_runs = 0;
  size_t torn_runs = 0;     // Run files cut back to an intact prefix.
  size_t missing_runs = 0;  // Begun in the manifest but file absent.
  uint64_t truncated_bytes = 0;
  bool manifest_truncated = false;
};

class RunStore {
 public:
  // Opens (creating if needed) the store directory and its manifest for
  // appending. When reusing a directory from a previous process, call
  // Recover() before the first BeginRun so run ids resume past the old
  // ones and torn tails are cut.
  static std::unique_ptr<RunStore> Open(const RunStoreOptions& options,
                                        std::string* error);
  // Creates a private store in a fresh temp directory (fsync off — pure
  // spill, no durability contract). The directory and all its files are
  // removed on destruction.
  static std::unique_ptr<RunStore> CreateTemp(std::string* error);
  ~RunStore();

  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;

  // Replays the manifest and scans every live run file; truncates torn
  // tails (manifest and run files) so subsequent appends are clean.
  bool Recover(std::vector<RecoveredRun>* runs, RecoveryStats* stats,
               std::string* error);

  // Allocates a run id, appends (and fsyncs) its `begin` record, and
  // creates the run file. Returns nullptr on error.
  std::unique_ptr<RunFileWriter> BeginRun(uint32_t record_size,
                                          uint64_t* run_id,
                                          std::string* error);
  // Begins a compaction staging run: invisible to Recover() until a
  // CommitCompaction promotes it (a crash before that unlinks the file).
  std::unique_ptr<RunFileWriter> BeginHiddenRun(uint32_t record_size,
                                                uint64_t* run_id,
                                                std::string* error);
  // Atomically (one fsync'd manifest record) promotes the hidden staging
  // run `new_id` to live and deletes `old_id`, unlinking its file. The
  // staging file must be fully written (and synced, when durability is
  // on) before this call.
  bool CommitCompaction(uint64_t new_id, uint64_t old_id,
                        std::string* error);
  bool CommitRun(uint64_t run_id, uint64_t records, std::string* error);
  // Records that records [0, head) of `run_id` were emitted downstream.
  bool AdvanceHead(uint64_t run_id, uint64_t head, std::string* error);
  // Appends the `delete` record and unlinks the run file.
  bool DeleteRun(uint64_t run_id, std::string* error);

  std::string RunPath(uint64_t run_id) const;
  const std::string& dir() const { return options_.dir; }
  bool fsync_enabled() const { return options_.fsync; }
  WriteFault* write_fault() const { return options_.write_fault; }

 private:
  explicit RunStore(RunStoreOptions options)
      : options_(std::move(options)) {}

  bool AppendManifest(uint8_t type, uint64_t run_id, uint64_t arg, bool sync,
                      std::string* error);
  std::unique_ptr<RunFileWriter> BeginRunWithType(uint8_t type,
                                                  uint32_t record_size,
                                                  uint64_t* run_id,
                                                  std::string* error);

  RunStoreOptions options_;
  bool owns_dir_ = false;  // CreateTemp: remove everything on destruction.
  std::mutex mu_;
  int manifest_fd_ = -1;
  uint64_t next_run_id_ = 1;
};

}  // namespace storage
}  // namespace impatience

#endif  // IMPATIENCE_STORAGE_RUN_STORE_H_
