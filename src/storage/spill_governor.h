// Shared-budget spill governor.
//
// PR 7 gave every sorter its own victim scan: when the memory signal
// crossed the budget, the sorter spilled its *locally* coldest run. With
// many shards sharing one budget that picks the wrong victim — a shard
// under light load spills its only warm run while a neighbor sits on a
// stone-cold session. The governor centralizes the choice: every sorter
// registers as a Client, publishes a cheap atomic summary (resident
// spillable bytes, age of its coldest candidate run, whether a partial
// tail block is sitting unflushed), and a background tick thread:
//
//   1. compares total usage (the shared MemoryTracker signal) to the
//      budget and, when over, assigns spill targets to the *globally*
//      coldest clients until the deficit is covered;
//   2. fires a time-based idle flush for clients whose pending tail
//      block has been quiet past the deadline, so a quiescent session's
//      last events still reach disk without waiting for a punctuation;
//   3. forwards compaction requests (a client advertising a run file
//      whose emitted prefix dominates its disk footprint) so run-file
//      rewrites happen on maintenance ticks, never on the ingest path.
//
// The governor never calls into a sorter: sorters are single-threaded.
// All requests land in per-client atomics that the owning thread
// consumes at its next check; the registered `wakeup` callback (e.g.
// "enqueue a maintenance frame on the shard queue") pokes threads that
// are parked waiting for input. Time is the governor's own coarse tick
// counter, comparable across clients — sorters stamp run coldness with
// `now_tick()` instead of their private append sequence.

#ifndef IMPATIENCE_STORAGE_SPILL_GOVERNOR_H_
#define IMPATIENCE_STORAGE_SPILL_GOVERNOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"

namespace impatience {
namespace storage {

class SpillGovernor {
 public:
  struct Options {
    // Shared byte budget across every client. 0 disables spill targeting
    // (the tick still drives idle flushes and compaction).
    size_t memory_budget = 0;
    // Residency signals summed for the authoritative total — typically
    // one MemoryTracker per shard. Empty: sum of client-published bytes.
    std::vector<MemoryTracker*> trackers;
    // Tick period. Budget overshoot between ticks is bounded by
    // ingest-rate x period; 2ms keeps that small without a hot loop.
    uint64_t tick_period_us = 2000;
    // Idle flush deadline: a pending tail block quiet for this many
    // ticks is flushed to disk.
    uint64_t idle_flush_ticks = 50;
  };

  // Per-sorter mailbox. The owning sorter thread publishes summaries and
  // consumes requests; the governor tick thread does the reverse. All
  // fields are relaxed atomics — requests are hints whose loss or delay
  // affects only *when* work happens, never what is computed.
  class Client {
   public:
    // -- Sorter side --------------------------------------------------
    void Publish(size_t resident_bytes, uint64_t coldest_tick,
                 bool has_pending_tail) {
      resident_bytes_.store(resident_bytes, std::memory_order_relaxed);
      coldest_tick_.store(coldest_tick, std::memory_order_relaxed);
      has_pending_tail_.store(has_pending_tail,
                              std::memory_order_relaxed);
    }
    void NoteAppend(uint64_t tick) {
      last_append_tick_.store(tick, std::memory_order_relaxed);
    }
    void AdvertiseCompaction(bool wants) {
      wants_compaction_.store(wants, std::memory_order_relaxed);
    }
    // Consumes the assigned spill target; 0 = no request outstanding.
    size_t TakeSpillTarget() {
      return spill_target_.exchange(0, std::memory_order_relaxed);
    }
    bool TakeIdleFlush() {
      return idle_flush_.exchange(false, std::memory_order_relaxed);
    }
    bool TakeCompaction() {
      return compact_.exchange(false, std::memory_order_relaxed);
    }

    // -- Governor side ------------------------------------------------
    size_t resident_bytes() const {
      return resident_bytes_.load(std::memory_order_relaxed);
    }
    uint64_t coldest_tick() const {
      return coldest_tick_.load(std::memory_order_relaxed);
    }

   private:
    friend class SpillGovernor;
    explicit Client(std::function<void()> wakeup)
        : wakeup_(std::move(wakeup)) {}

    std::function<void()> wakeup_;
    std::atomic<size_t> resident_bytes_{0};
    std::atomic<uint64_t> coldest_tick_{0};
    std::atomic<uint64_t> last_append_tick_{0};
    std::atomic<bool> has_pending_tail_{false};
    std::atomic<bool> wants_compaction_{false};
    std::atomic<size_t> spill_target_{0};
    std::atomic<bool> idle_flush_{false};
    std::atomic<bool> compact_{false};
  };

  explicit SpillGovernor(const Options& options);
  ~SpillGovernor();

  SpillGovernor(const SpillGovernor&) = delete;
  SpillGovernor& operator=(const SpillGovernor&) = delete;

  // Registers a client. `wakeup` is invoked from the tick thread (cheap,
  // non-blocking — e.g. push a maintenance frame; may be empty for
  // clients that poll). The pointer stays valid until Unregister.
  Client* Register(std::function<void()> wakeup);
  void Unregister(Client* client);

  // Joins the background tick thread; idempotent. Owners whose trackers
  // or wakeup targets die before the governor must call this first —
  // the governor object stays usable for Unregister afterwards.
  void StopTicking();

  // Coarse monotonic tick counter, comparable across clients.
  uint64_t now_tick() const {
    return tick_.load(std::memory_order_relaxed);
  }
  size_t memory_budget() const { return options_.memory_budget; }

  struct Stats {
    uint64_t ticks = 0;
    uint64_t spill_requests = 0;   // Targets assigned to clients.
    uint64_t idle_flushes = 0;     // Idle-deadline flushes requested.
    uint64_t compaction_nudges = 0;
  };
  Stats stats() const;

  // Test hook: runs one tick inline (the background thread also ticks;
  // calls serialize internally).
  void TickForTest() { Tick(); }

 private:
  void TickLoop();
  void Tick();

  const Options options_;
  std::atomic<uint64_t> tick_{1};  // 0 is "never appended".
  std::atomic<uint64_t> spill_requests_{0};
  std::atomic<uint64_t> idle_flushes_{0};
  std::atomic<uint64_t> compaction_nudges_{0};
  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::vector<std::unique_ptr<Client>> clients_;
  std::thread ticker_;
};

}  // namespace storage
}  // namespace impatience

#endif  // IMPATIENCE_STORAGE_SPILL_GOVERNOR_H_
