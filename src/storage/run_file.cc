#include "storage/run_file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>

#include "common/crc32.h"

namespace impatience {
namespace storage {

namespace {

void PutU32(uint32_t v, uint8_t* p) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void PutU64(uint64_t v, uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + strerror(errno);
}

}  // namespace

// A dead gate swallows the bytes; a gate whose budget is crossed applies a
// prefix and then goes dead — that is the torn write the recovery scan
// must detect. The budget is consumed with a CAS loop so concurrent
// writers (flusher threads plus the manifest writer) debit it exactly:
// at most one write crosses the boundary and is applied partially.
bool FaultedWrite(int fd, const uint8_t* data, size_t n, WriteFault* fault) {
  if (fault != nullptr) {
    if (fault->dead.load(std::memory_order_relaxed)) return true;
    int64_t budget = fault->budget.load(std::memory_order_relaxed);
    while (budget >= 0) {
      const size_t allowed = std::min<size_t>(n, static_cast<size_t>(budget));
      if (fault->budget.compare_exchange_weak(
              budget, budget - static_cast<int64_t>(allowed),
              std::memory_order_relaxed, std::memory_order_relaxed)) {
        if (allowed < n) fault->dead.store(true, std::memory_order_relaxed);
        n = allowed;
        break;
      }
      if (fault->dead.load(std::memory_order_relaxed)) return true;
    }
  }
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

namespace {

bool ReadExact(int fd, uint64_t offset, uint8_t* out, size_t n) {
  while (n > 0) {
    const ssize_t r = ::pread(fd, out, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // Short file.
    out += r;
    offset += static_cast<uint64_t>(r);
    n -= static_cast<size_t>(r);
  }
  return true;
}

uint64_t FileSizeOf(int fd) {
  struct stat st;
  if (fstat(fd, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

std::unique_ptr<RunFileWriter> RunFileWriter::Create(const std::string& path,
                                                     uint32_t record_size,
                                                     uint64_t run_id,
                                                     WriteFault* fault,
                                                     std::string* error) {
  // O_RDWR (not O_WRONLY): spill cursors pread blocks back from the same
  // descriptor while the run is still being appended to.
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    SetError(error, "open " + path);
    return nullptr;
  }
  uint8_t header[kRunFileHeaderBytes] = {0};
  PutU32(kRunFileMagic, header);
  PutU32(kRunFormatVersion, header + 4);
  PutU32(record_size, header + 8);
  PutU64(run_id, header + 16);
  PutU32(Crc32(header, 24), header + 24);
  if (!FaultedWrite(fd, header, sizeof(header), fault)) {
    SetError(error, "write header " + path);
    ::close(fd);
    return nullptr;
  }
  std::unique_ptr<RunFileWriter> writer(
      new RunFileWriter(fd, record_size, fault));
  writer->bytes_written_ = kRunFileHeaderBytes;
  return writer;
}

RunFileWriter::~RunFileWriter() {
  if (fd_ >= 0) ::close(fd_);
}

bool RunFileWriter::AppendBlock(const uint8_t* payload, uint32_t record_count,
                                std::string* error) {
  const size_t payload_len =
      static_cast<size_t>(record_count) * record_size_;
  frame_.resize(kRunBlockHeaderBytes + payload_len);
  PutU32(kRunBlockMagic, frame_.data());
  PutU32(record_count, frame_.data() + 4);
  PutU32(Crc32(payload, payload_len), frame_.data() + 8);
  PutU32(0, frame_.data() + 12);  // reserved
  memcpy(frame_.data() + kRunBlockHeaderBytes, payload, payload_len);
  // One write per block: a kill mid-write tears at most this block, never
  // an earlier one.
  if (!FaultedWrite(fd_, frame_.data(), frame_.size(), fault_)) {
    SetError(error, "write block");
    return false;
  }
  bytes_written_ += frame_.size();
  return true;
}

bool RunFileWriter::Sync(std::string* error) {
  if (fault_ != nullptr && fault_->is_dead()) return true;
  if (::fsync(fd_) != 0) {
    SetError(error, "fsync run file");
    return false;
  }
  return true;
}

BlockReadStatus ReadBlockAt(int fd, uint64_t offset, uint32_t record_size,
                            std::vector<uint8_t>* payload,
                            uint32_t* record_count, uint64_t* next_offset) {
  const uint64_t file_size = FileSizeOf(fd);
  if (offset >= file_size) return BlockReadStatus::kEof;
  if (file_size - offset < kRunBlockHeaderBytes) return BlockReadStatus::kTorn;
  uint8_t header[kRunBlockHeaderBytes];
  if (!ReadExact(fd, offset, header, sizeof(header))) {
    return BlockReadStatus::kTorn;
  }
  if (GetU32(header) != kRunBlockMagic) return BlockReadStatus::kTorn;
  const uint32_t count = GetU32(header + 4);
  const uint32_t expect_crc = GetU32(header + 8);
  if (count == 0) return BlockReadStatus::kTorn;
  const uint64_t payload_len = static_cast<uint64_t>(count) * record_size;
  if (payload_len > kMaxBlockPayloadBytes) return BlockReadStatus::kTorn;
  if (file_size - offset - kRunBlockHeaderBytes < payload_len) {
    return BlockReadStatus::kTorn;
  }
  payload->resize(payload_len);
  if (!ReadExact(fd, offset + kRunBlockHeaderBytes, payload->data(),
                 payload_len)) {
    return BlockReadStatus::kTorn;
  }
  if (Crc32(payload->data(), payload_len) != expect_crc) {
    return BlockReadStatus::kTorn;
  }
  *record_count = count;
  if (next_offset != nullptr) {
    *next_offset = offset + kRunBlockHeaderBytes + payload_len;
  }
  return BlockReadStatus::kOk;
}

std::unique_ptr<RunFileReader> RunFileReader::Open(const std::string& path,
                                                   std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, "open " + path);
    return nullptr;
  }
  uint8_t header[kRunFileHeaderBytes];
  if (!ReadExact(fd, 0, header, sizeof(header)) ||
      GetU32(header) != kRunFileMagic ||
      GetU32(header + 4) != kRunFormatVersion ||
      GetU32(header + 24) != Crc32(header, 24)) {
    if (error != nullptr) *error = "bad run file header: " + path;
    ::close(fd);
    return nullptr;
  }
  const uint32_t record_size = GetU32(header + 8);
  if (record_size == 0) {
    if (error != nullptr) *error = "zero record size: " + path;
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<RunFileReader>(
      new RunFileReader(fd, record_size, GetU64(header + 16)));
}

RunFileReader::~RunFileReader() {
  if (fd_ >= 0) ::close(fd_);
}

BlockReadStatus RunFileReader::NextBlock(std::vector<uint8_t>* payload,
                                         uint32_t* record_count) {
  uint64_t next = 0;
  const BlockReadStatus status =
      ReadBlockAt(fd_, offset_, record_size_, payload, record_count, &next);
  if (status == BlockReadStatus::kOk) offset_ = next;
  return status;
}

bool ScanRunFile(const std::string& path, bool truncate,
                 uint64_t* intact_records, uint64_t* intact_bytes,
                 uint32_t* record_size, uint64_t* run_id,
                 std::string* error) {
  *intact_records = 0;
  *intact_bytes = 0;
  std::unique_ptr<RunFileReader> reader = RunFileReader::Open(path, error);
  if (reader == nullptr) return false;
  if (record_size != nullptr) *record_size = reader->record_size();
  if (run_id != nullptr) *run_id = reader->run_id();
  std::vector<uint8_t> payload;
  uint32_t count = 0;
  while (reader->NextBlock(&payload, &count) == BlockReadStatus::kOk) {
    *intact_records += count;
  }
  *intact_bytes = reader->offset();
  reader.reset();  // Close the read fd before truncating.
  if (truncate) {
    if (::truncate(path.c_str(), static_cast<off_t>(*intact_bytes)) != 0) {
      SetError(error, "truncate " + path);
      return false;
    }
  }
  return true;
}

}  // namespace storage
}  // namespace impatience
