// Spill tier: typed view of run files for ImpatienceSorter.
//
// SpilledRun<T> is the disk-backed counterpart of an in-RAM run: elements
// append in sorted order, a head index tracks the emitted prefix, and the
// live suffix streams back at merge time through a RunCursor (sort/merge.h)
// so the k-way cursor merge treats disk and RAM runs uniformly. RAM cost
// per spilled run is bounded: one partial block of pending appends, a
// 32-byte index entry per on-disk block, and one block-sized load buffer —
// everything else lives in the RunStore's files.
//
// SpillSettings carries the policy knobs (budget, victim choice cadence,
// block size) into ImpatienceConfig; the victim scan itself lives in the
// sorter, which owns the run metadata the coldest-first choice needs.

#ifndef IMPATIENCE_STORAGE_SPILL_H_
#define IMPATIENCE_STORAGE_SPILL_H_

#include <stdlib.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/memory_tracker.h"
#include "common/timestamp.h"
#include "sort/merge.h"
#include "storage/run_store.h"

namespace impatience {
namespace storage {

// Parses a byte-size string: decimal digits with an optional k/m/g suffix
// (case-insensitive, power-of-two). Returns 0 on anything malformed.
inline size_t ParseByteSize(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = strtoull(s, &end, 10);
  if (end == s) return 0;
  size_t shift = 0;
  if (*end == 'k' || *end == 'K') {
    shift = 10;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    shift = 20;
    ++end;
  } else if (*end == 'g' || *end == 'G') {
    shift = 30;
    ++end;
  }
  if (*end != '\0') return 0;
  return static_cast<size_t>(v) << shift;
}

// IMPATIENCE_MEMORY_BUDGET, parsed once per process (the forced-spill CI
// pass sets it before the test binary starts). 0 = unset.
inline size_t MemoryBudgetFromEnv() {
  static const size_t budget = ParseByteSize(getenv("IMPATIENCE_MEMORY_BUDGET"));
  return budget;
}

// Spill policy configuration, embedded in ImpatienceConfig.
struct SpillSettings {
  // Shared store (the server wires one per shard). nullptr with a nonzero
  // budget makes the sorter lazily create a private temp-dir store at
  // first spill — how the forced-spill env pass runs every existing test
  // under spilling without any per-test setup.
  RunStore* store = nullptr;
  // Byte budget; spilling triggers when usage exceeds it. 0 defers to
  // IMPATIENCE_MEMORY_BUDGET (when use_env_default), else disables spill.
  size_t memory_budget = 0;
  // When set, the budget also gates on tracker->current_bytes() — the
  // pipeline-wide residency signal — not just this sorter's own bytes.
  MemoryTracker* tracker = nullptr;
  bool use_env_default = true;
  // Pushes between budget checks (checks scan all runs, so O(runs)).
  size_t check_period = 256;
  // Runs smaller than this stay in RAM unless nothing bigger exists —
  // spilling tiny runs buys no residency and costs a file.
  size_t min_spill_bytes = 4096;
  // Target payload bytes per on-disk block; bounds both the per-run
  // pending buffer and the read-back chunk size (the sorter derives
  // records-per-block as block_bytes / sizeof(T), at least 1).
  size_t block_bytes = 64 << 10;
  // Flush pending appends to disk (and fsync when the store fsyncs) at
  // every punctuation, making ingest durable at punctuation granularity.
  // Off by default: pure spill needs no durability.
  bool sync_on_punctuation = false;
};

// One run spilled to a RunStore file. Indices are 0-based over the spilled
// content; `head` is the emitted prefix, `size` the total appended.
// Not thread-safe (owned by one sorter).
template <typename T>
class SpilledRun {
 public:
  // Creates the backing run file. Returns nullptr on I/O failure (the
  // caller keeps the run in RAM).
  static std::unique_ptr<SpilledRun<T>> Create(RunStore* store,
                                               size_t block_records,
                                               std::string* error) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "spilled elements are raw-copied to disk");
    uint64_t id = 0;
    std::unique_ptr<RunFileWriter> writer =
        store->BeginRun(sizeof(T), &id, error);
    if (writer == nullptr) return nullptr;
    return std::unique_ptr<SpilledRun<T>>(
        new SpilledRun<T>(store, id, std::move(writer), block_records));
  }

  ~SpilledRun() {
    // The file is deleted explicitly via Discard() when the run empties;
    // on destruction with live content the file stays — it is the WAL a
    // restart recovers from.
    writer_.reset();
  }

  uint64_t id() const { return id_; }
  size_t size() const { return disk_records_ + pending_.size(); }
  size_t head() const { return head_; }
  bool empty() const { return head_ >= size(); }

  // Appends `n` elements (sorted, >= everything already appended). Returns
  // the number of bytes flushed to disk (full blocks only).
  template <typename TimeOf>
  uint64_t AppendRange(const T* items, size_t n, TimeOf time_of) {
    uint64_t flushed = 0;
    while (n > 0) {
      const size_t take = std::min(n, block_records_ - pending_.size());
      pending_.insert(pending_.end(), items, items + take);
      items += take;
      n -= take;
      if (pending_.size() == block_records_) {
        flushed += FlushPending(time_of, /*sync=*/false);
      }
    }
    return flushed;
  }

  template <typename TimeOf>
  uint64_t Append(const T& item, TimeOf time_of) {
    return AppendRange(&item, 1, time_of);
  }

  // Writes the pending partial block (if any) as its own block; with
  // `sync`, fsyncs the file so everything appended so far is durable.
  template <typename TimeOf>
  uint64_t FlushPending(TimeOf time_of, bool sync) {
    uint64_t flushed = 0;
    if (!pending_.empty()) {
      BlockRef ref;
      ref.offset = writer_->next_block_offset();
      ref.start_index = disk_records_;
      ref.count = static_cast<uint32_t>(pending_.size());
      ref.first_time = time_of(pending_.front());
      ref.last_time = time_of(pending_.back());
      std::string error;
      if (!writer_->AppendBlock(
              reinterpret_cast<const uint8_t*>(pending_.data()),
              ref.count, &error)) {
        // A failing spill device cannot lose data that is still in RAM:
        // keep the block pending and let the caller's memory accounting
        // carry it. (The write fault gate never reports failure.)
        return flushed;
      }
      flushed += kRunBlockHeaderBytes +
                 static_cast<uint64_t>(ref.count) * sizeof(T);
      blocks_.push_back(ref);
      disk_records_ += ref.count;
      pending_.clear();
    }
    if (sync) {
      std::string error;
      writer_->Sync(&error);
    }
    return flushed;
  }

  // Counts the live elements (index >= head) with time <= t and reports
  // the time of the first survivor (kMaxTimestamp when none). Requires at
  // least one live element with time <= t (the sorter only cuts runs whose
  // head time passed the punctuation). Reads back at most one block;
  // bytes read are added to *read_bytes.
  template <typename TimeOf>
  size_t CutCountLE(Timestamp t, TimeOf time_of, Timestamp* next_head_time,
                    uint64_t* read_bytes) {
    size_t count = 0;
    for (size_t b = FirstLiveBlock(); b < blocks_.size(); ++b) {
      const BlockRef& ref = blocks_[b];
      const size_t lo = std::max<uint64_t>(ref.start_index, head_);
      if (ref.last_time <= t) {
        count += ref.start_index + ref.count - lo;
        continue;
      }
      if (ref.first_time > t && lo == ref.start_index) {
        // Nothing in this block (or after) releases, and its first
        // element is the next head — no load needed.
        *next_head_time = ref.first_time;
        return count;
      }
      // Boundary block: load it and find the first element > t.
      LoadBlock(b, read_bytes);
      const size_t begin = lo - ref.start_index;
      size_t pos = begin, hi = ref.count;
      while (pos < hi) {
        const size_t mid = (pos + hi) / 2;
        if (time_of(load_buf_[mid]) <= t) {
          pos = mid + 1;
        } else {
          hi = mid;
        }
      }
      count += pos - begin;
      *next_head_time = time_of(load_buf_[pos]);  // pos < count here.
      return count;
    }
    // All disk blocks released; the boundary (if any) is in pending_.
    const size_t lo = std::max<uint64_t>(disk_records_, head_) -
                      disk_records_;
    size_t pos = lo, hi = pending_.size();
    while (pos < hi) {
      const size_t mid = (pos + hi) / 2;
      if (time_of(pending_[mid]) <= t) {
        pos = mid + 1;
      } else {
        hi = mid;
      }
    }
    count += pos - lo;
    *next_head_time =
        pos < pending_.size() ? time_of(pending_[pos]) : kMaxTimestamp;
    return count;
  }

  // Marks [0, new_head) emitted. Prunes index entries for fully-consumed
  // blocks and records the advance in the manifest (the durable head a
  // restart resumes from).
  void AdvanceHead(size_t new_head) {
    IMPATIENCE_DCHECK(new_head >= head_ && new_head <= size());
    head_ = new_head;
    const size_t drop = FirstLiveBlock();
    if (drop > 0) blocks_.erase(blocks_.begin(), blocks_.begin() + drop);
    store_->AdvanceHead(id_, head_, nullptr);
  }

  // Deletes the backing file (run fully consumed).
  void Discard() {
    writer_.reset();
    store_->DeleteRun(id_, nullptr);
  }

  // Streaming cursor over live elements [begin, end) (absolute indices).
  // The SpilledRun must outlive the cursor and not be appended to while
  // the cursor is live.
  std::unique_ptr<RunCursor<T>> MakeCursor(size_t begin, size_t end,
                                           uint64_t* read_bytes) {
    return std::unique_ptr<RunCursor<T>>(
        new Cursor(this, begin, end, read_bytes));
  }

  // RAM held by this spilled run: pending appends, block index, load
  // buffer.
  size_t MemoryBytes() const {
    return pending_.capacity() * sizeof(T) +
           blocks_.capacity() * sizeof(BlockRef) +
           load_buf_.capacity() * sizeof(T);
  }

  // Trims the load buffer (kept across punctuations otherwise).
  void TrimScratch() {
    load_buf_.clear();
    load_buf_.shrink_to_fit();
    load_offset_ = UINT64_MAX;
  }

 private:
  struct BlockRef {
    uint64_t offset = 0;       // File offset of the block header.
    uint64_t start_index = 0;  // Absolute index of the block's first record.
    uint32_t count = 0;
    Timestamp first_time = 0;
    Timestamp last_time = 0;
  };

  SpilledRun(RunStore* store, uint64_t id,
             std::unique_ptr<RunFileWriter> writer, size_t block_records)
      : store_(store),
        id_(id),
        writer_(std::move(writer)),
        block_records_(std::max<size_t>(1, block_records)) {}

  // Index of the first block with live records.
  size_t FirstLiveBlock() const {
    size_t b = 0;
    while (b < blocks_.size() &&
           blocks_[b].start_index + blocks_[b].count <= head_) {
      ++b;
    }
    return b;
  }

  // Loads block `b` into load_buf_. The write path already CRC'd the
  // bytes; a mismatch here means the device corrupted them underneath a
  // live process, which is a hard failure, not a recovery case. The cache
  // is keyed by file offset, not block index: AdvanceHead prunes consumed
  // entries from blocks_, so an index names different blocks over time.
  void LoadBlock(size_t b, uint64_t* read_bytes) {
    const BlockRef& ref = blocks_[b];
    if (load_offset_ == ref.offset) return;
    raw_buf_.clear();
    uint32_t count = 0;
    const BlockReadStatus status = ReadBlockAt(
        writer_->fd(), ref.offset, sizeof(T), &raw_buf_, &count, nullptr);
    IMPATIENCE_CHECK_MSG(
        status == BlockReadStatus::kOk && count == ref.count,
        "spilled block unreadable under a live writer");
    load_buf_.resize(count);
    memcpy(load_buf_.data(), raw_buf_.data(),
           static_cast<size_t>(count) * sizeof(T));
    if (read_bytes != nullptr) {
      *read_bytes += kRunBlockHeaderBytes +
                     static_cast<uint64_t>(count) * sizeof(T);
    }
    load_offset_ = ref.offset;
  }

  class Cursor final : public RunCursor<T> {
   public:
    Cursor(SpilledRun<T>* run, size_t begin, size_t end,
           uint64_t* read_bytes)
        : run_(run), pos_(begin), end_(end), read_bytes_(read_bytes) {}

    size_t total() const override { return end_ - pos0_init_; }

    std::pair<const T*, const T*> NextChunk() override {
      if (pos_ >= end_) return {nullptr, nullptr};
      // Disk part: one block per chunk through the run's load buffer.
      if (pos_ < run_->disk_records_) {
        const size_t b = BlockOf(pos_);
        const auto& ref = run_->blocks_[b];
        run_->LoadBlock(b, read_bytes_);
        const size_t lo = pos_ - ref.start_index;
        const size_t hi = std::min<uint64_t>(
            ref.count, end_ - ref.start_index);
        pos_ = ref.start_index + hi;
        return {run_->load_buf_.data() + lo, run_->load_buf_.data() + hi};
      }
      // RAM tail: the pending partial block, one final chunk.
      const size_t lo = pos_ - run_->disk_records_;
      const size_t hi = end_ - run_->disk_records_;
      pos_ = end_;
      return {run_->pending_.data() + lo, run_->pending_.data() + hi};
    }

   private:
    size_t BlockOf(size_t index) const {
      // Blocks are index-ordered; binary search by start_index.
      const auto& blocks = run_->blocks_;
      size_t lo = 0, hi = blocks.size();
      while (lo + 1 < hi) {
        const size_t mid = (lo + hi) / 2;
        if (blocks[mid].start_index <= index) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return lo;
    }

    SpilledRun<T>* run_;
    size_t pos_;
    const size_t pos0_init_ = pos_;
    size_t end_;
    uint64_t* read_bytes_;
  };

  RunStore* store_;
  uint64_t id_;
  std::unique_ptr<RunFileWriter> writer_;
  size_t block_records_;
  std::vector<BlockRef> blocks_;
  std::vector<T> pending_;
  uint64_t disk_records_ = 0;
  size_t head_ = 0;
  std::vector<uint8_t> raw_buf_;
  std::vector<T> load_buf_;
  // File offset of the block currently in load_buf_ (UINT64_MAX = none).
  uint64_t load_offset_ = UINT64_MAX;

  friend class Cursor;
};

// Replays a recovered run's durable, un-emitted records [head, records)
// through `fn(const T&)` in order. Returns false when the file cannot be
// read (already-truncated tails are not errors — the scan stops cleanly).
template <typename T, typename Fn>
bool ReplayRecoveredRun(const RecoveredRun& run, Fn fn, uint64_t* read_bytes,
                        std::string* error) {
  if (run.record_size != sizeof(T)) {
    if (error != nullptr) {
      *error = "record size mismatch replaying " + run.path;
    }
    return false;
  }
  std::unique_ptr<RunFileReader> reader = RunFileReader::Open(run.path, error);
  if (reader == nullptr) return false;
  std::vector<uint8_t> payload;
  uint32_t count = 0;
  uint64_t index = 0;
  T item;
  while (index < run.records &&
         reader->NextBlock(&payload, &count) == BlockReadStatus::kOk) {
    if (read_bytes != nullptr) {
      *read_bytes += kRunBlockHeaderBytes + payload.size();
    }
    for (uint32_t i = 0; i < count && index < run.records; ++i, ++index) {
      if (index < run.head) continue;  // Already emitted before the crash.
      memcpy(&item, payload.data() + static_cast<size_t>(i) * sizeof(T),
             sizeof(T));
      fn(item);
    }
  }
  return true;
}

}  // namespace storage
}  // namespace impatience

#endif  // IMPATIENCE_STORAGE_SPILL_H_
