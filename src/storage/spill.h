// Spill tier: typed view of run files for ImpatienceSorter.
//
// SpilledRun<T> is the disk-backed counterpart of an in-RAM run: elements
// append in sorted order, a head index tracks the emitted prefix, and the
// live suffix streams back at merge time through a RunCursor (sort/merge.h)
// so the k-way cursor merge treats disk and RAM runs uniformly. RAM cost
// per spilled run is bounded: one partial block of pending appends, a
// 32-byte index entry per on-disk block, and one block-sized load buffer —
// everything else lives in the RunStore's files.
//
// Write-behind: with a SpillFlusher wired in, sealed blocks are handed to
// the flusher pool through a per-run FIFO channel instead of being written
// inline on the sorter thread. A sealed block's payload stays in RAM (and
// in the memory accounting) until its write completes; until then every
// read path — the punctuation cut, the merge cursor — serves it from the
// in-flight copy, so the merge output is byte-identical whether a block
// is on disk, in flight, or pending. Without a flusher the run behaves
// exactly as the synchronous PR-7 tier.
//
// SpillSettings carries the policy knobs (budget, victim choice cadence,
// block size, flusher/governor wiring) into ImpatienceConfig; the victim
// scan itself lives in the sorter, which owns the run metadata the
// coldest-first choice needs.

#ifndef IMPATIENCE_STORAGE_SPILL_H_
#define IMPATIENCE_STORAGE_SPILL_H_

#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/memory_tracker.h"
#include "common/timestamp.h"
#include "sort/merge.h"
#include "storage/run_store.h"
#include "storage/spill_flusher.h"

namespace impatience {
namespace storage {

class SpillGovernor;  // storage/spill_governor.h

// Parses a byte-size string: decimal digits with an optional k/m/g suffix
// (case-insensitive, power-of-two). Returns 0 on anything malformed.
inline size_t ParseByteSize(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = strtoull(s, &end, 10);
  if (end == s) return 0;
  size_t shift = 0;
  if (*end == 'k' || *end == 'K') {
    shift = 10;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    shift = 20;
    ++end;
  } else if (*end == 'g' || *end == 'G') {
    shift = 30;
    ++end;
  }
  if (*end != '\0') return 0;
  return static_cast<size_t>(v) << shift;
}

// IMPATIENCE_MEMORY_BUDGET, parsed once per process (the forced-spill CI
// pass sets it before the test binary starts). 0 = unset.
inline size_t MemoryBudgetFromEnv() {
  static const size_t budget = ParseByteSize(getenv("IMPATIENCE_MEMORY_BUDGET"));
  return budget;
}

// Spill policy configuration, embedded in ImpatienceConfig.
struct SpillSettings {
  // Shared store (the server wires one per shard). nullptr with a nonzero
  // budget makes the sorter lazily create a private temp-dir store at
  // first spill — how the forced-spill env pass runs every existing test
  // under spilling without any per-test setup.
  RunStore* store = nullptr;
  // Byte budget; spilling triggers when usage exceeds it. 0 defers to
  // IMPATIENCE_MEMORY_BUDGET (when use_env_default), else disables spill.
  size_t memory_budget = 0;
  // When set, the budget also gates on tracker->current_bytes() — the
  // pipeline-wide residency signal — not just this sorter's own bytes.
  MemoryTracker* tracker = nullptr;
  bool use_env_default = true;
  // Pushes between budget checks (checks scan all runs, so O(runs)).
  size_t check_period = 256;
  // Runs smaller than this stay in RAM unless nothing bigger exists —
  // spilling tiny runs buys no residency and costs a file.
  size_t min_spill_bytes = 4096;
  // Target payload bytes per on-disk block; bounds both the per-run
  // pending buffer and the read-back chunk size (the sorter derives
  // records-per-block as block_bytes / sizeof(T), at least 1).
  size_t block_bytes = 64 << 10;
  // Flush pending appends to disk (and fsync when the store fsyncs) at
  // every punctuation, making ingest durable at punctuation granularity.
  // Off by default: pure spill needs no durability.
  bool sync_on_punctuation = false;
  // Write-behind flusher pool. Sealed blocks are enqueued to it and
  // written off the sorter thread; merge cursors prefetch through it.
  // nullptr keeps the synchronous path — unless use_env_default is set
  // and $IMPATIENCE_SPILL_FLUSHER_THREADS supplies a process-wide pool
  // (the forced-async CI pass).
  SpillFlusher* flusher = nullptr;
  // Shared-budget spill governor (storage/spill_governor.h). When set,
  // the sorter registers as a client and victim selection moves from
  // per-sorter to globally-coldest across every client sharing the
  // budget; the governor's tick also drives idle flushes and compaction.
  SpillGovernor* governor = nullptr;
  // Wakeup the sorter hands the governor at registration — invoked from
  // the tick thread when a request is posted, so it must be cheap and
  // non-blocking (the server enqueues a maintenance frame; standalone
  // sorters leave it empty and poll at their next push/punctuation).
  std::function<void()> governor_wakeup;
  // Disk compaction: rewrite a spilled run's file once the emitted-prefix
  // blocks hold at least this fraction of its on-disk bytes...
  double compact_disk_fraction = 0.5;
  // ...and at least this many bytes would be reclaimed.
  size_t compact_min_disk_bytes = 256 << 10;
};

// One run spilled to a RunStore file. Indices are 0-based over the spilled
// content; `head` is the emitted prefix, `size` the total appended.
// Not thread-safe (owned by one sorter); the flusher pool only ever
// touches sealed payload buffers and the completion counter.
template <typename T>
class SpilledRun {
 public:
  // Creates the backing run file. Returns nullptr on I/O failure (the
  // caller keeps the run in RAM). With a flusher, block writes go through
  // a per-run channel; otherwise they run inline. `async_flushes` (may be
  // nullptr) counts blocks handed to the pool.
  static std::unique_ptr<SpilledRun<T>> Create(RunStore* store,
                                               size_t block_records,
                                               SpillFlusher* flusher = nullptr,
                                               uint64_t* async_flushes = nullptr,
                                               std::string* error = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "spilled elements are raw-copied to disk");
    uint64_t id = 0;
    std::unique_ptr<RunFileWriter> writer =
        store->BeginRun(sizeof(T), &id, error);
    if (writer == nullptr) return nullptr;
    return std::unique_ptr<SpilledRun<T>>(new SpilledRun<T>(
        store, id, std::move(writer), block_records, flusher,
        async_flushes));
  }

  ~SpilledRun() {
    // The file is deleted explicitly via Discard() when the run empties;
    // on destruction with live content the file stays — it is the WAL a
    // restart recovers from. In-flight writes must land before the
    // writer (whose fd the jobs use) goes away.
    WaitWritesDone();
    writer_.reset();
  }

  uint64_t id() const { return id_; }
  size_t size() const { return disk_records_ + pending_.size(); }
  size_t head() const { return head_; }
  bool empty() const { return head_ >= size(); }

  // Appends `n` elements (sorted, >= everything already appended). Returns
  // the number of bytes handed to the disk tier (full blocks only).
  template <typename TimeOf>
  uint64_t AppendRange(const T* items, size_t n, TimeOf time_of) {
    uint64_t flushed = 0;
    while (n > 0) {
      const size_t take = std::min(n, block_records_ - pending_.size());
      pending_.insert(pending_.end(), items, items + take);
      items += take;
      n -= take;
      if (pending_.size() == block_records_) {
        flushed += FlushPending(time_of, /*sync=*/false);
      }
    }
    return flushed;
  }

  template <typename TimeOf>
  uint64_t Append(const T& item, TimeOf time_of) {
    return AppendRange(&item, 1, time_of);
  }

  // Seals the pending partial block (if any) and hands it to the disk
  // tier; with `sync`, waits for every in-flight block and fsyncs so
  // everything appended so far is durable.
  template <typename TimeOf>
  uint64_t FlushPending(TimeOf time_of, bool sync) {
    uint64_t flushed = 0;
    Harvest();
    if (!pending_.empty()) {
      BlockRef ref;
      ref.offset = next_offset_;
      ref.start_index = disk_records_;
      ref.count = static_cast<uint32_t>(pending_.size());
      ref.first_time = time_of(pending_.front());
      ref.last_time = time_of(pending_.back());
      flushed += channel_ == nullptr ? FlushPendingSync(ref)
                                     : SealPendingAsync(ref);
    }
    if (sync) {
      WaitWritesDone();
      if (!write_failed_) {
        std::string error;
        writer_->Sync(&error);
      }
    }
    return flushed;
  }

  // Blocks until every block handed to the flusher has been written (or
  // skipped after an I/O failure) and reclaims their RAM copies. No-op on
  // the synchronous path.
  void WaitWritesDone() {
    if (channel_ == nullptr) return;
    channel_->Wait();
    Harvest();
  }

  // Counts the live elements (index >= head) with time <= t and reports
  // the time of the first survivor (kMaxTimestamp when none). Requires at
  // least one live element with time <= t (the sorter only cuts runs whose
  // head time passed the punctuation). Reads back at most one block;
  // bytes read are added to *read_bytes.
  template <typename TimeOf>
  size_t CutCountLE(Timestamp t, TimeOf time_of, Timestamp* next_head_time,
                    uint64_t* read_bytes) {
    size_t count = 0;
    for (size_t b = FirstLiveBlock(); b < blocks_.size(); ++b) {
      const BlockRef& ref = blocks_[b];
      const size_t lo = std::max<uint64_t>(ref.start_index, head_);
      if (ref.last_time <= t) {
        count += ref.start_index + ref.count - lo;
        continue;
      }
      if (ref.first_time > t && lo == ref.start_index) {
        // Nothing in this block (or after) releases, and its first
        // element is the next head — no load needed.
        *next_head_time = ref.first_time;
        return count;
      }
      // Boundary block: load it and find the first element > t.
      LoadBlock(b, read_bytes);
      const size_t begin = lo - ref.start_index;
      size_t pos = begin, hi = ref.count;
      while (pos < hi) {
        const size_t mid = (pos + hi) / 2;
        if (time_of(load_buf_[mid]) <= t) {
          pos = mid + 1;
        } else {
          hi = mid;
        }
      }
      count += pos - begin;
      *next_head_time = time_of(load_buf_[pos]);  // pos < count here.
      return count;
    }
    // All disk blocks released; the boundary (if any) is in pending_.
    const size_t lo = std::max<uint64_t>(disk_records_, head_) -
                      disk_records_;
    size_t pos = lo, hi = pending_.size();
    while (pos < hi) {
      const size_t mid = (pos + hi) / 2;
      if (time_of(pending_[mid]) <= t) {
        pos = mid + 1;
      } else {
        hi = mid;
      }
    }
    count += pos - lo;
    *next_head_time =
        pos < pending_.size() ? time_of(pending_[pos]) : kMaxTimestamp;
    return count;
  }

  // Marks [0, new_head) emitted. Prunes index entries for fully-consumed
  // blocks and records the advance in the manifest (the durable head a
  // restart resumes from).
  void AdvanceHead(size_t new_head) {
    IMPATIENCE_DCHECK(new_head >= head_ && new_head <= size());
    head_ = new_head;
    const size_t drop = FirstLiveBlock();
    if (drop > 0) blocks_.erase(blocks_.begin(), blocks_.begin() + drop);
    store_->AdvanceHead(id_, head_ - base_index_, nullptr);
  }

  // Deletes the backing file (run fully consumed).
  void Discard() {
    WaitWritesDone();
    writer_.reset();
    store_->DeleteRun(id_, nullptr);
  }

  // Streaming cursor over live elements [begin, end) (absolute indices).
  // The SpilledRun must outlive the cursor and not be appended to while
  // the cursor is live. With a flusher, the cursor prefetches each next
  // block through the pool while the merge consumes the current one;
  // ra_hits/ra_misses (may be nullptr) count prefetches that were ready
  // in time vs blocks loaded synchronously.
  std::unique_ptr<RunCursor<T>> MakeCursor(size_t begin, size_t end,
                                           uint64_t* read_bytes,
                                           uint64_t* ra_hits = nullptr,
                                           uint64_t* ra_misses = nullptr) {
    return std::unique_ptr<RunCursor<T>>(
        new Cursor(this, begin, end, read_bytes, ra_hits, ra_misses));
  }

  // RAM held by this spilled run: pending appends, sealed blocks waiting
  // on the flusher, block index, load buffer.
  size_t MemoryBytes() const {
    return pending_.capacity() * sizeof(T) + inflight_bytes_ +
           spare_.capacity() * sizeof(T) +
           blocks_.capacity() * sizeof(BlockRef) +
           load_buf_.capacity() * sizeof(T);
  }

  // Trims the load buffer (kept across punctuations otherwise).
  void TrimScratch() {
    load_buf_.clear();
    load_buf_.shrink_to_fit();
    load_offset_ = UINT64_MAX;
    spare_.clear();
    spare_.shrink_to_fit();
  }

  // Total file bytes, including the emitted prefix not yet reclaimed.
  uint64_t DiskBytes() const { return next_offset_; }

  // True while a partial tail block sits in RAM with nothing scheduled to
  // write it — what the governor's idle-flush deadline watches for.
  bool HasUnflushedTail() const { return !pending_.empty(); }

  // File bytes occupied by fully-emitted blocks — what a CompactDisk
  // would reclaim.
  uint64_t ReclaimableDiskBytes() const {
    const uint64_t first_live =
        blocks_.empty() ? next_offset_ : blocks_.front().offset;
    return first_live - kRunFileHeaderBytes;
  }

  // Rewrites the live suffix into a fresh run file and atomically swaps
  // it in (manifest compact-swap record), reclaiming the disk held by the
  // emitted prefix. Waits for in-flight writes first. Returns the file
  // bytes reclaimed; 0 means skipped or failed (the run is untouched —
  // failure leaves the old file fully authoritative). Call between
  // punctuations only: live cursors hold offsets into the old file.
  template <typename TimeOf>
  uint64_t CompactDisk(TimeOf time_of, uint64_t* read_bytes) {
    WaitWritesDone();
    if (write_failed_ || ReclaimableDiskBytes() == 0) return 0;
    const uint64_t old_bytes = next_offset_;
    uint64_t new_id = 0;
    std::string error;
    std::unique_ptr<RunFileWriter> staging =
        store_->BeginHiddenRun(sizeof(T), &new_id, &error);
    if (staging == nullptr) return 0;
    // Stream the live blocks across. The boundary block may be partially
    // emitted; only its live tail is kept, so indices rebase to the new
    // file while staying absolute in blocks_ (via base_index_).
    std::vector<BlockRef> new_blocks;
    uint64_t new_offset = kRunFileHeaderBytes;
    const uint64_t new_base =
        blocks_.empty() ? disk_records_ : blocks_.front().start_index;
    for (const BlockRef& ref : blocks_) {
      LoadBlock(BlockIndexOf(ref), read_bytes);
      const size_t lo =
          std::max<uint64_t>(ref.start_index, head_) - ref.start_index;
      const uint32_t keep = ref.count - static_cast<uint32_t>(lo);
      if (keep == 0) continue;
      if (!staging->AppendBlock(
              reinterpret_cast<const uint8_t*>(load_buf_.data() + lo),
              keep, &error)) {
        store_->DeleteRun(new_id, nullptr);
        return 0;
      }
      BlockRef moved;
      moved.offset = new_offset;
      moved.start_index = ref.start_index + lo;
      moved.count = keep;
      moved.first_time = time_of(load_buf_[lo]);
      moved.last_time = ref.last_time;
      new_blocks.push_back(moved);
      new_offset += kRunBlockHeaderBytes +
                    static_cast<uint64_t>(keep) * sizeof(T);
    }
    if (store_->fsync_enabled() && !staging->Sync(&error)) {
      store_->DeleteRun(new_id, nullptr);
      return 0;
    }
    // The atomic step. After this record the staging file is the run.
    if (!store_->CommitCompaction(new_id, id_, &error)) {
      store_->DeleteRun(new_id, nullptr);
      return 0;
    }
    writer_ = std::move(staging);
    id_ = new_id;
    blocks_ = std::move(new_blocks);
    base_index_ = blocks_.empty() ? new_base : blocks_.front().start_index;
    next_offset_ = new_offset;
    load_offset_ = UINT64_MAX;  // Cached offsets belong to the old file.
    // Re-record the durable head in the new file's index space.
    store_->AdvanceHead(id_, head_ - base_index_, nullptr);
    return old_bytes - new_offset;
  }

 private:
  struct BlockRef {
    uint64_t offset = 0;       // File offset of the block header.
    uint64_t start_index = 0;  // Absolute index of the block's first record.
    uint32_t count = 0;
    Timestamp first_time = 0;
    Timestamp last_time = 0;
  };

  struct Inflight {
    BlockRef ref;
    std::shared_ptr<std::vector<T>> payload;
  };

  SpilledRun(RunStore* store, uint64_t id,
             std::unique_ptr<RunFileWriter> writer, size_t block_records,
             SpillFlusher* flusher, uint64_t* async_flushes)
      : store_(store),
        id_(id),
        writer_(std::move(writer)),
        block_records_(std::max<size_t>(1, block_records)),
        flusher_(flusher),
        async_flushes_(async_flushes),
        next_offset_(writer_->next_block_offset()) {
    if (flusher_ != nullptr) {
      channel_ = flusher_->NewChannel();
      written_blocks_ = std::make_shared<std::atomic<uint64_t>>(0);
    }
  }

  // Index of the first block with live records.
  size_t FirstLiveBlock() const {
    size_t b = 0;
    while (b < blocks_.size() &&
           blocks_[b].start_index + blocks_[b].count <= head_) {
      ++b;
    }
    return b;
  }

  size_t BlockIndexOf(const BlockRef& ref) const {
    return static_cast<size_t>(&ref - blocks_.data());
  }

  // Synchronous seal-and-write (no flusher). Failure keeps the block
  // pending: a failing spill device cannot lose data still in RAM.
  uint64_t FlushPendingSync(const BlockRef& ref) {
    std::string error;
    if (!writer_->AppendBlock(
            reinterpret_cast<const uint8_t*>(pending_.data()), ref.count,
            &error)) {
      return 0;  // (The write fault gate never reports failure.)
    }
    CommitSeal(ref);
    pending_.clear();
    return kRunBlockHeaderBytes +
           static_cast<uint64_t>(ref.count) * sizeof(T);
  }

  // Write-behind seal: the block enters the index immediately, its
  // payload moves to the in-flight queue (still RAM-accounted and
  // readable), and the write job goes to the per-run channel. After an
  // I/O failure the channel is poisoned — later blocks stay in RAM for
  // the rest of the run's life rather than risk appends at wrong offsets.
  uint64_t SealPendingAsync(const BlockRef& ref) {
    auto payload = std::make_shared<std::vector<T>>(std::move(pending_));
    pending_ = std::move(spare_);
    spare_ = std::vector<T>();
    pending_.clear();
    inflight_bytes_ += payload->size() * sizeof(T);
    inflight_.push_back(Inflight{ref, payload});
    CommitSeal(ref);
    if (!write_failed_) {
      if (async_flushes_ != nullptr) ++*async_flushes_;
      RunFileWriter* writer = writer_.get();
      std::shared_ptr<std::atomic<uint64_t>> written = written_blocks_;
      const uint32_t count = ref.count;
      channel_->Enqueue(
          [writer, payload, count, written]() {
            std::string error;
            if (!writer->AppendBlock(
                    reinterpret_cast<const uint8_t*>(payload->data()),
                    count, &error)) {
              return false;
            }
            written->fetch_add(1, std::memory_order_release);
            return true;
          },
          kRunBlockHeaderBytes +
              static_cast<uint64_t>(count) * sizeof(T));
    }
    return kRunBlockHeaderBytes +
           static_cast<uint64_t>(ref.count) * sizeof(T);
  }

  void CommitSeal(const BlockRef& ref) {
    blocks_.push_back(ref);
    disk_records_ += ref.count;
    next_offset_ +=
        kRunBlockHeaderBytes + static_cast<uint64_t>(ref.count) * sizeof(T);
  }

  // Reclaims RAM copies of blocks the flusher has confirmed written and
  // latches the channel's failure state.
  void Harvest() {
    if (channel_ == nullptr) return;
    const uint64_t done =
        written_blocks_->load(std::memory_order_acquire);
    while (harvested_blocks_ < done) {
      Inflight& f = inflight_.front();
      inflight_bytes_ -= f.payload->size() * sizeof(T);
      if (spare_.capacity() == 0 && f.payload.use_count() == 1) {
        // Recycle the block buffer: this plus pending_ is the double
        // buffer — steady-state appends allocate nothing.
        spare_ = std::move(*f.payload);
        spare_.clear();
      }
      inflight_.pop_front();
      ++harvested_blocks_;
    }
    if (channel_->failed()) write_failed_ = true;
  }

  // Serves `ref` from an in-flight RAM copy if its write has not been
  // confirmed yet. Only the sorter thread touches inflight_, so this is
  // race-free against the flusher (which reads payloads it co-owns).
  bool CopyFromInflight(const BlockRef& ref, std::vector<T>* out) {
    for (const Inflight& f : inflight_) {
      if (f.ref.offset == ref.offset) {
        out->assign(f.payload->begin(), f.payload->end());
        return true;
      }
    }
    return false;
  }

  // Loads block `b` into load_buf_. The write path already CRC'd the
  // bytes; a mismatch here means the device corrupted them underneath a
  // live process, which is a hard failure, not a recovery case. The cache
  // is keyed by file offset, not block index: AdvanceHead prunes consumed
  // entries from blocks_, so an index names different blocks over time.
  void LoadBlock(size_t b, uint64_t* read_bytes) {
    const BlockRef& ref = blocks_[b];
    if (load_offset_ == ref.offset) return;
    Harvest();
    if (CopyFromInflight(ref, &load_buf_)) {
      load_offset_ = ref.offset;
      return;  // Served from RAM; no disk read to account.
    }
    raw_buf_.clear();
    uint32_t count = 0;
    const BlockReadStatus status = ReadBlockAt(
        writer_->fd(), ref.offset, sizeof(T), &raw_buf_, &count, nullptr);
    IMPATIENCE_CHECK_MSG(
        status == BlockReadStatus::kOk && count == ref.count,
        "spilled block unreadable under a live writer");
    load_buf_.resize(count);
    memcpy(load_buf_.data(), raw_buf_.data(),
           static_cast<size_t>(count) * sizeof(T));
    if (read_bytes != nullptr) {
      *read_bytes += kRunBlockHeaderBytes +
                     static_cast<uint64_t>(count) * sizeof(T);
    }
    load_offset_ = ref.offset;
  }

  class Cursor final : public RunCursor<T> {
   public:
    Cursor(SpilledRun<T>* run, size_t begin, size_t end,
           uint64_t* read_bytes, uint64_t* ra_hits, uint64_t* ra_misses)
        : run_(run),
          pos_(begin),
          end_(end),
          read_bytes_(read_bytes),
          ra_hits_(ra_hits),
          ra_misses_(ra_misses) {
      if (run_->flusher_ != nullptr) {
        ra_channel_ = run_->flusher_->NewChannel();
      }
    }

    ~Cursor() override {
      // The prefetch job writes into slot buffers owned here.
      if (prefetch_pending_) ra_channel_->Wait();
    }

    size_t total() const override { return end_ - pos0_init_; }

    std::pair<const T*, const T*> NextChunk() override {
      if (pos_ >= end_) return {nullptr, nullptr};
      // Disk part: one block per chunk.
      if (pos_ < run_->disk_records_) {
        const size_t b = BlockOf(pos_);
        const auto& ref = run_->blocks_[b];
        const T* data = ra_channel_ != nullptr ? LoadReadAhead(b)
                                               : LoadShared(b);
        const size_t lo = pos_ - ref.start_index;
        const size_t hi = std::min<uint64_t>(
            ref.count, end_ - ref.start_index);
        pos_ = ref.start_index + hi;
        return {data + lo, data + hi};
      }
      // RAM tail: the pending partial block, one final chunk.
      const size_t lo = pos_ - run_->disk_records_;
      const size_t hi = end_ - run_->disk_records_;
      pos_ = end_;
      return {run_->pending_.data() + lo, run_->pending_.data() + hi};
    }

   private:
    // Synchronous path: share the run's load buffer (the punctuation cut
    // usually left the boundary block cached there already).
    const T* LoadShared(size_t b) {
      run_->LoadBlock(b, read_bytes_);
      return run_->load_buf_.data();
    }

    // Write-behind path: private ping-pong buffers. Consume block b from
    // the prefetch slot when the pool got to it in time (hit), fall back
    // to a synchronous load otherwise (miss), then kick off a prefetch of
    // the next block the merge will want.
    const T* LoadReadAhead(size_t b) {
      const auto& ref = run_->blocks_[b];
      bool served = false;
      run_->Harvest();
      if (run_->CopyFromInflight(ref, &buf_)) {
        served = true;  // Still in RAM — neither a disk hit nor a miss.
      } else if (prefetch_offset_ == ref.offset) {
        ra_channel_->Wait();
        prefetch_pending_ = false;
        if (slot_status_ == BlockReadStatus::kOk &&
            slot_count_ == ref.count) {
          buf_.resize(slot_count_);
          memcpy(buf_.data(), slot_raw_.data(),
                 static_cast<size_t>(slot_count_) * sizeof(T));
          if (read_bytes_ != nullptr) {
            *read_bytes_ += kRunBlockHeaderBytes +
                            static_cast<uint64_t>(slot_count_) * sizeof(T);
          }
          if (ra_hits_ != nullptr) ++*ra_hits_;
          served = true;
        }
      }
      if (!served) {
        LoadDirect(ref);
        if (ra_misses_ != nullptr) ++*ra_misses_;
      }
      prefetch_offset_ = UINT64_MAX;
      IssuePrefetch(b);
      return buf_.data();
    }

    void LoadDirect(const BlockRef& ref) {
      if (prefetch_pending_) {
        ra_channel_->Wait();  // The slot buffer is about to be reused.
        prefetch_pending_ = false;
      }
      slot_raw_.clear();
      uint32_t count = 0;
      const BlockReadStatus status =
          ReadBlockAt(run_->writer_->fd(), ref.offset, sizeof(T),
                      &slot_raw_, &count, nullptr);
      IMPATIENCE_CHECK_MSG(
          status == BlockReadStatus::kOk && count == ref.count,
          "spilled block unreadable under a live writer");
      buf_.resize(count);
      memcpy(buf_.data(), slot_raw_.data(),
             static_cast<size_t>(count) * sizeof(T));
      if (read_bytes_ != nullptr) {
        *read_bytes_ += kRunBlockHeaderBytes +
                        static_cast<uint64_t>(count) * sizeof(T);
      }
    }

    // Queues a read of the block after `b` if the merge will consume it
    // and it lives on disk (in-flight blocks are already in RAM).
    void IssuePrefetch(size_t b) {
      if (prefetch_pending_) {
        // A stale prefetch (its block got served from the in-flight
        // queue) still owns the slot buffer; let it land first.
        ra_channel_->Wait();
        prefetch_pending_ = false;
      }
      const size_t next = b + 1;
      if (next >= run_->blocks_.size()) return;
      const auto& ref = run_->blocks_[next];
      if (ref.start_index >= end_) return;
      for (const Inflight& f : run_->inflight_) {
        if (f.ref.offset == ref.offset) return;
      }
      prefetch_offset_ = ref.offset;
      prefetch_pending_ = true;
      const int fd = run_->writer_->fd();
      const uint64_t offset = ref.offset;
      ra_channel_->Enqueue(
          [this, fd, offset]() {
            slot_status_ = ReadBlockAt(fd, offset, sizeof(T), &slot_raw_,
                                       &slot_count_, nullptr);
            return true;  // Failure is resolved at consume time.
          },
          0);  // Reads don't count against the write in-flight cap.
    }

    size_t BlockOf(size_t index) const {
      // Blocks are index-ordered; binary search by start_index.
      const auto& blocks = run_->blocks_;
      size_t lo = 0, hi = blocks.size();
      while (lo + 1 < hi) {
        const size_t mid = (lo + hi) / 2;
        if (blocks[mid].start_index <= index) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return lo;
    }

    SpilledRun<T>* run_;
    size_t pos_;
    const size_t pos0_init_ = pos_;
    size_t end_;
    uint64_t* read_bytes_;
    uint64_t* ra_hits_;
    uint64_t* ra_misses_;
    std::shared_ptr<SpillFlusher::Channel> ra_channel_;
    std::vector<T> buf_;            // Block being consumed by the merge.
    std::vector<uint8_t> slot_raw_; // Prefetch landing buffer.
    uint32_t slot_count_ = 0;
    BlockReadStatus slot_status_ = BlockReadStatus::kEof;
    uint64_t prefetch_offset_ = UINT64_MAX;
    bool prefetch_pending_ = false;
  };

  RunStore* store_;
  uint64_t id_;
  std::unique_ptr<RunFileWriter> writer_;
  size_t block_records_;
  SpillFlusher* flusher_;
  uint64_t* async_flushes_;
  std::shared_ptr<SpillFlusher::Channel> channel_;
  std::vector<BlockRef> blocks_;
  std::vector<T> pending_;
  std::vector<T> spare_;  // Recycled block buffer (double buffering).
  std::deque<Inflight> inflight_;
  std::shared_ptr<std::atomic<uint64_t>> written_blocks_;
  uint64_t harvested_blocks_ = 0;
  size_t inflight_bytes_ = 0;
  bool write_failed_ = false;
  uint64_t disk_records_ = 0;
  size_t head_ = 0;
  // Absolute index of the file's first record (nonzero after CompactDisk
  // drops the emitted prefix; manifest heads are file-relative).
  uint64_t base_index_ = 0;
  uint64_t next_offset_ = 0;  // File offset of the next sealed block.
  std::vector<uint8_t> raw_buf_;
  std::vector<T> load_buf_;
  // File offset of the block currently in load_buf_ (UINT64_MAX = none).
  uint64_t load_offset_ = UINT64_MAX;

  friend class Cursor;
};

// Replays a recovered run's durable, un-emitted records [head, records)
// through `fn(const T&)` in order. Returns false when the file cannot be
// read (already-truncated tails are not errors — the scan stops cleanly).
template <typename T, typename Fn>
bool ReplayRecoveredRun(const RecoveredRun& run, Fn fn, uint64_t* read_bytes,
                        std::string* error) {
  if (run.record_size != sizeof(T)) {
    if (error != nullptr) {
      *error = "record size mismatch replaying " + run.path;
    }
    return false;
  }
  std::unique_ptr<RunFileReader> reader = RunFileReader::Open(run.path, error);
  if (reader == nullptr) return false;
  std::vector<uint8_t> payload;
  uint32_t count = 0;
  uint64_t index = 0;
  T item;
  while (index < run.records &&
         reader->NextBlock(&payload, &count) == BlockReadStatus::kOk) {
    if (read_bytes != nullptr) {
      *read_bytes += kRunBlockHeaderBytes + payload.size();
    }
    for (uint32_t i = 0; i < count && index < run.records; ++i, ++index) {
      if (index < run.head) continue;  // Already emitted before the crash.
      memcpy(&item, payload.data() + static_cast<size_t>(i) * sizeof(T),
             sizeof(T));
      fn(item);
    }
  }
  return true;
}

}  // namespace storage
}  // namespace impatience

#endif  // IMPATIENCE_STORAGE_SPILL_H_
