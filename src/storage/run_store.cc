#include "storage/run_store.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <stdlib.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <map>

#include "common/crc32.h"

namespace impatience {
namespace storage {

namespace {

enum ManifestType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kDelete = 3,
  kAdvance = 4,
  kBeginHidden = 5,  // Compaction staging run; dead until swapped in.
  kCompactSwap = 6,  // arg = old run id: promote run_id, delete arg.
};

void PutU32(uint32_t v, uint8_t* p) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void PutU64(uint64_t v, uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + strerror(errno);
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out->insert(out->end(), buf, buf + r);
  }
  ::close(fd);
  return true;
}

bool EnsureDir(const std::string& dir, std::string* error) {
  // mkdir -p: create each path component that is missing.
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    const std::string prefix = dir.substr(0, i);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      SetError(error, "mkdir " + prefix);
      return false;
    }
  }
  return true;
}

}  // namespace

std::unique_ptr<RunStore> RunStore::Open(const RunStoreOptions& options,
                                         std::string* error) {
  if (options.dir.empty()) {
    if (error != nullptr) *error = "RunStore: empty directory";
    return nullptr;
  }
  if (!EnsureDir(options.dir, error)) return nullptr;
  std::unique_ptr<RunStore> store(new RunStore(options));
  const std::string manifest = options.dir + "/MANIFEST";
  store->manifest_fd_ =
      ::open(manifest.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (store->manifest_fd_ < 0) {
    SetError(error, "open " + manifest);
    return nullptr;
  }
  return store;
}

std::unique_ptr<RunStore> RunStore::CreateTemp(std::string* error) {
  const char* base = getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/impatience-spill-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    SetError(error, "mkdtemp " + tmpl);
    return nullptr;
  }
  RunStoreOptions options;
  options.dir = buf.data();
  options.fsync = false;
  std::unique_ptr<RunStore> store = Open(options, error);
  if (store != nullptr) store->owns_dir_ = true;
  return store;
}

RunStore::~RunStore() {
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
  if (!owns_dir_) return;
  // Temp stores are pure spill: nothing in them outlives the process.
  DIR* d = ::opendir(options_.dir.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((options_.dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(options_.dir.c_str());
}

std::string RunStore::RunPath(uint64_t run_id) const {
  return options_.dir + "/run-" + std::to_string(run_id) + ".rf";
}

bool RunStore::AppendManifest(uint8_t type, uint64_t run_id, uint64_t arg,
                              bool sync, std::string* error) {
  uint8_t rec[kManifestRecordBytes] = {0};
  PutU32(kManifestMagic, rec);
  rec[4] = type;
  PutU64(run_id, rec + 8);
  PutU64(arg, rec + 16);
  PutU32(Crc32(rec, 24), rec + 24);
  if (!FaultedWrite(manifest_fd_, rec, sizeof(rec), options_.write_fault)) {
    SetError(error, "append manifest");
    return false;
  }
  if (sync && options_.fsync &&
      !(options_.write_fault != nullptr && options_.write_fault->is_dead())) {
    if (::fsync(manifest_fd_) != 0) {
      SetError(error, "fsync manifest");
      return false;
    }
  }
  return true;
}

std::unique_ptr<RunFileWriter> RunStore::BeginRunWithType(
    uint8_t type, uint32_t record_size, uint64_t* run_id,
    std::string* error) {
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_run_id_++;
    // Begin is durable before the run file exists, so a crash can leave a
    // begun run with no file — recovery treats that as an empty run.
    if (!AppendManifest(type, id, record_size, /*sync=*/true, error)) {
      return nullptr;
    }
  }
  std::unique_ptr<RunFileWriter> writer = RunFileWriter::Create(
      RunPath(id), record_size, id, options_.write_fault, error);
  if (writer != nullptr && run_id != nullptr) *run_id = id;
  return writer;
}

std::unique_ptr<RunFileWriter> RunStore::BeginRun(uint32_t record_size,
                                                  uint64_t* run_id,
                                                  std::string* error) {
  return BeginRunWithType(kBegin, record_size, run_id, error);
}

std::unique_ptr<RunFileWriter> RunStore::BeginHiddenRun(
    uint32_t record_size, uint64_t* run_id, std::string* error) {
  return BeginRunWithType(kBeginHidden, record_size, run_id, error);
}

bool RunStore::CommitCompaction(uint64_t new_id, uint64_t old_id,
                                std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The single atomic step: one intact record both promotes the staging
    // run and kills the old one, so no recovery can replay them twice.
    if (!AppendManifest(kCompactSwap, new_id, old_id, /*sync=*/true,
                        error)) {
      return false;
    }
  }
  if (::unlink(RunPath(old_id).c_str()) != 0 && errno != ENOENT) {
    SetError(error, "unlink " + RunPath(old_id));
    return false;
  }
  return true;
}

bool RunStore::CommitRun(uint64_t run_id, uint64_t records,
                         std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendManifest(kCommit, run_id, records, /*sync=*/true, error);
}

bool RunStore::AdvanceHead(uint64_t run_id, uint64_t head,
                           std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  // Not individually fsync'd: losing the newest advances only means
  // re-emitting an already-delivered suffix after recovery.
  return AppendManifest(kAdvance, run_id, head, /*sync=*/false, error);
}

bool RunStore::DeleteRun(uint64_t run_id, std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!AppendManifest(kDelete, run_id, 0, /*sync=*/true, error)) {
      return false;
    }
  }
  if (::unlink(RunPath(run_id).c_str()) != 0 && errno != ENOENT) {
    SetError(error, "unlink " + RunPath(run_id));
    return false;
  }
  return true;
}

bool RunStore::Recover(std::vector<RecoveredRun>* runs, RecoveryStats* stats,
                       std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  runs->clear();
  *stats = RecoveryStats{};

  const std::string manifest_path = options_.dir + "/MANIFEST";
  std::vector<uint8_t> bytes;
  if (!ReadWholeFile(manifest_path, &bytes)) {
    SetError(error, "read " + manifest_path);
    return false;
  }

  struct State {
    uint32_t record_size = 0;
    uint64_t head = 0;
    bool committed = false;
    uint64_t committed_records = 0;
    bool deleted = false;
    bool hidden = false;  // Compaction staging run, never swapped in.
  };
  std::map<uint64_t, State> live;  // Ordered: recovery replays in id order.
  uint64_t max_id = 0;
  size_t intact = 0;
  while (intact + kManifestRecordBytes <= bytes.size()) {
    const uint8_t* rec = bytes.data() + intact;
    if (GetU32(rec) != kManifestMagic ||
        GetU32(rec + 24) != Crc32(rec, 24)) {
      break;  // Torn tail starts here.
    }
    const uint8_t type = rec[4];
    const uint64_t id = GetU64(rec + 8);
    const uint64_t arg = GetU64(rec + 16);
    max_id = std::max(max_id, id);
    switch (type) {
      case kBegin:
        live[id].record_size = static_cast<uint32_t>(arg);
        break;
      case kCommit:
        live[id].committed = true;
        live[id].committed_records = arg;
        break;
      case kAdvance:
        live[id].head = std::max(live[id].head, arg);
        break;
      case kDelete:
        live.erase(id);
        break;
      case kBeginHidden:
        live[id].record_size = static_cast<uint32_t>(arg);
        live[id].hidden = true;
        break;
      case kCompactSwap:
        live[id].hidden = false;  // Promote the staging run...
        live.erase(arg);          // ...and retire the one it replaced.
        break;
      default:
        break;  // Unknown type from a newer version: ignore the record.
    }
    intact += kManifestRecordBytes;
  }
  if (intact < bytes.size()) {
    stats->manifest_truncated = true;
    stats->truncated_bytes += bytes.size() - intact;
    // Physically cut the torn tail so the reopened append fd writes clean
    // records after it.
    ::close(manifest_fd_);
    if (::truncate(manifest_path.c_str(), static_cast<off_t>(intact)) != 0) {
      SetError(error, "truncate " + manifest_path);
      return false;
    }
    manifest_fd_ =
        ::open(manifest_path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (manifest_fd_ < 0) {
      SetError(error, "reopen " + manifest_path);
      return false;
    }
  }
  next_run_id_ = max_id + 1;

  for (const auto& [id, state] : live) {
    if (state.hidden) {
      // A compaction that crashed before its swap record: the old run is
      // still live and authoritative, so the staging file is garbage.
      AppendManifest(kDelete, id, 0, /*sync=*/false, nullptr);
      ::unlink(RunPath(id).c_str());
      continue;
    }
    RecoveredRun run;
    run.id = id;
    run.path = RunPath(id);
    run.committed = state.committed;
    run.committed_records = state.committed_records;
    struct stat st;
    const uint64_t size_before =
        ::stat(run.path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                           : 0;
    uint64_t intact_bytes = 0;
    std::string scan_error;
    if (!ScanRunFile(run.path, /*truncate=*/true, &run.records,
                     &intact_bytes, &run.record_size, nullptr,
                     &scan_error)) {
      // Begun but never written (crash between manifest append and file
      // creation), or an unreadable header: nothing durable in this run.
      ++stats->missing_runs;
      continue;
    }
    if (run.record_size == 0) run.record_size = state.record_size;
    if (size_before > intact_bytes) {
      ++stats->torn_runs;
      stats->truncated_bytes += size_before - intact_bytes;
    }
    run.head = std::min(state.head, run.records);
    if (run.head >= run.records) {
      // Everything durable was already emitted downstream; the file is
      // dead weight. Drop it now so restarts converge.
      AppendManifest(kDelete, id, 0, /*sync=*/false, nullptr);
      ::unlink(run.path.c_str());
      continue;
    }
    ++stats->live_runs;
    runs->push_back(std::move(run));
  }
  return true;
}

}  // namespace storage
}  // namespace impatience
