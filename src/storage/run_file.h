// On-disk run-file format: CRC32-framed record blocks.
//
// A run file persists one sorted run as an append-only sequence of
// fixed-layout records, framed in blocks that each carry their own CRC —
// the same checksum discipline as the wire protocol (common/crc32), so a
// torn or flipped byte is detected at replay time, never silently sorted.
//
//   file header (32 bytes)
//     0   4  magic        0x46525049 ("IPRF", little-endian)
//     4   4  version      1
//     8   4  record_size  bytes per record
//     12  4  reserved     0
//     16  8  run_id
//     24  4  header_crc   CRC32 of bytes [0, 24)
//     28  4  reserved     0
//
//   block (16-byte header + payload), repeated to EOF
//     0   4  magic        0x4B425049 ("IPBK")
//     4   4  count        records in this block (> 0)
//     8   4  payload_crc  CRC32 of the payload bytes
//     12  4  reserved     0
//     16  ..., count * record_size payload bytes
//
// Header fields are encoded byte-by-byte little-endian; record payloads are
// raw host memory (memcpy of trivially-copyable element types). Run files
// are spill/WAL artifacts local to one host — they are not a portable
// interchange format, and record_size pins the layout a reader must match.
//
// Crash model: the file is append-only and a block is valid only if its
// header parses and its payload CRC matches. Recovery scans from the start
// and truncates at the first invalid byte — the longest intact prefix of
// blocks is exactly the durable content. WriteFault injects scripted
// mid-write kills for the fault-harness tests (writes stop reaching the
// file after a seeded byte budget, simulating process death).

#ifndef IMPATIENCE_STORAGE_RUN_FILE_H_
#define IMPATIENCE_STORAGE_RUN_FILE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace impatience {
namespace storage {

inline constexpr uint32_t kRunFileMagic = 0x46525049u;   // "IPRF"
inline constexpr uint32_t kRunBlockMagic = 0x4B425049u;  // "IPBK"
inline constexpr uint32_t kRunFormatVersion = 1;
inline constexpr size_t kRunFileHeaderBytes = 32;
inline constexpr size_t kRunBlockHeaderBytes = 16;
// Upper bound on one block's payload; a larger count in a header is treated
// as corruption (it would otherwise make recovery read unbounded garbage).
inline constexpr size_t kMaxBlockPayloadBytes = 8u << 20;

// Scripted crash injection for the storage fault tests: every write
// descends through this gate, and once `budget` bytes have been written the
// gate goes dead — the write that crosses the boundary is applied only
// partially (a torn block) and every later write (and fsync) silently
// vanishes, exactly as if the process had been killed at that byte.
// budget < 0 disables the fault (the default).
struct WriteFault {
  std::atomic<int64_t> budget{-1};
  std::atomic<bool> dead{false};

  void Arm(int64_t bytes) {
    budget.store(bytes, std::memory_order_relaxed);
    dead.store(false, std::memory_order_relaxed);
  }
  bool is_dead() const { return dead.load(std::memory_order_relaxed); }
};

// Appends CRC-framed blocks to one run file. Not thread-safe; one writer
// per run. The fd is opened read-write so block readers (spill cursors)
// can pread from the same descriptor while the run is still open.
class RunFileWriter {
 public:
  // Creates `path` (must not exist) and writes the file header.
  static std::unique_ptr<RunFileWriter> Create(const std::string& path,
                                               uint32_t record_size,
                                               uint64_t run_id,
                                               WriteFault* fault,
                                               std::string* error);
  ~RunFileWriter();

  RunFileWriter(const RunFileWriter&) = delete;
  RunFileWriter& operator=(const RunFileWriter&) = delete;

  // Appends one block of `record_count` records (payload length
  // record_count * record_size). Returns false on a real I/O error; a
  // WriteFault kill is not an error (the caller behaves as if the write
  // happened — the process it models would never observe the loss).
  bool AppendBlock(const uint8_t* payload, uint32_t record_count,
                   std::string* error);

  bool Sync(std::string* error);

  // Logical bytes appended (header + every block), independent of faults.
  uint64_t bytes_written() const { return bytes_written_; }
  // Logical file offset where the next block will start.
  uint64_t next_block_offset() const { return bytes_written_; }
  uint32_t record_size() const { return record_size_; }
  int fd() const { return fd_; }

 private:
  RunFileWriter(int fd, uint32_t record_size, WriteFault* fault)
      : fd_(fd), record_size_(record_size), fault_(fault) {}

  int fd_ = -1;
  uint32_t record_size_ = 0;
  uint64_t bytes_written_ = 0;
  WriteFault* fault_ = nullptr;
  std::vector<uint8_t> frame_;  // Reused header+payload staging buffer.
};

// Writes `n` bytes at the fd's current position through the fault gate
// (scripted crash injection; see WriteFault). Returns false only on a real
// I/O error. Shared by run files and the manifest so one armed fault cuts
// the whole store's write stream at a single byte position.
bool FaultedWrite(int fd, const uint8_t* data, size_t n, WriteFault* fault);

enum class BlockReadStatus : uint8_t {
  kOk = 0,
  kEof = 1,   // Clean end: no bytes at `offset`.
  kTorn = 2,  // Partial header/payload, bad magic, bad count, or bad CRC.
};

// Reads and validates the block starting at `offset`. On kOk, `payload`
// holds the block's record bytes, `record_count` its count, and
// `next_offset` the offset one past the block.
BlockReadStatus ReadBlockAt(int fd, uint64_t offset, uint32_t record_size,
                            std::vector<uint8_t>* payload,
                            uint32_t* record_count, uint64_t* next_offset);

// Sequential reader over a whole run file: validates the file header on
// Open, then yields blocks until EOF or the first torn block.
class RunFileReader {
 public:
  static std::unique_ptr<RunFileReader> Open(const std::string& path,
                                             std::string* error);
  ~RunFileReader();

  RunFileReader(const RunFileReader&) = delete;
  RunFileReader& operator=(const RunFileReader&) = delete;

  uint32_t record_size() const { return record_size_; }
  uint64_t run_id() const { return run_id_; }
  // Offset of the next unread block (== the intact prefix length once
  // NextBlock has returned kEof/kTorn).
  uint64_t offset() const { return offset_; }

  BlockReadStatus NextBlock(std::vector<uint8_t>* payload,
                            uint32_t* record_count);

 private:
  RunFileReader(int fd, uint32_t record_size, uint64_t run_id)
      : fd_(fd), record_size_(record_size), run_id_(run_id) {}

  int fd_ = -1;
  uint32_t record_size_ = 0;
  uint64_t run_id_ = 0;
  uint64_t offset_ = kRunFileHeaderBytes;
};

// Recovery scan: walks `path`'s blocks and reports the longest intact
// prefix. With `truncate`, the file is physically cut back to that prefix
// (torn tails removed, so later appends can never straddle garbage).
// Returns false only when the file cannot be opened or its file header is
// itself invalid (`intact_records` is 0 then).
bool ScanRunFile(const std::string& path, bool truncate,
                 uint64_t* intact_records, uint64_t* intact_bytes,
                 uint32_t* record_size, uint64_t* run_id,
                 std::string* error);

}  // namespace storage
}  // namespace impatience

#endif  // IMPATIENCE_STORAGE_RUN_FILE_H_
