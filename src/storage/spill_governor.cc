#include "storage/spill_governor.h"

#include <algorithm>
#include <chrono>

#include "common/trace.h"

namespace impatience {
namespace storage {

SpillGovernor::SpillGovernor(const Options& options) : options_(options) {
  ticker_ = std::thread([this]() { TickLoop(); });
}

SpillGovernor::~SpillGovernor() { StopTicking(); }

void SpillGovernor::StopTicking() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

SpillGovernor::Client* SpillGovernor::Register(
    std::function<void()> wakeup) {
  std::lock_guard<std::mutex> lock(mu_);
  clients_.push_back(
      std::unique_ptr<Client>(new Client(std::move(wakeup))));
  return clients_.back().get();
}

void SpillGovernor::Unregister(Client* client) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].get() == client) {
      clients_.erase(clients_.begin() + i);
      return;
    }
  }
}

void SpillGovernor::TickLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    stop_cv_.wait_for(
        lock, std::chrono::microseconds(options_.tick_period_us));
    if (stop_) return;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void SpillGovernor::Tick() {
  const uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  // The registry lock is held for the whole tick, wakeup callbacks
  // included: Unregister then cannot race a callback into a dying
  // client's sorter. Callbacks must therefore be non-blocking (the
  // server's is a TryPush onto the shard queue).
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Client*> clients;
  clients.reserve(clients_.size());
  for (const auto& c : clients_) clients.push_back(c.get());
  std::vector<Client*> wake;

  // 1. Shared-budget enforcement: assign spill targets to the globally
  //    coldest clients until the deficit is covered.
  if (options_.memory_budget > 0) {
    size_t total = 0;
    if (!options_.trackers.empty()) {
      for (const MemoryTracker* t : options_.trackers) {
        total += t->current_bytes();
      }
    } else {
      for (const Client* c : clients) total += c->resident_bytes();
    }
    TRACE_COUNTER("spill.governed_bytes", total);
    if (total > options_.memory_budget) {
      size_t deficit = total - options_.memory_budget;
      std::vector<Client*> ranked;
      for (Client* c : clients) {
        if (c->resident_bytes() > 0) ranked.push_back(c);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const Client* a, const Client* b) {
                  return a->coldest_tick() < b->coldest_tick();
                });
      for (Client* c : ranked) {
        if (deficit == 0) break;
        const size_t take = std::min(deficit, c->resident_bytes());
        // store (not add): an unconsumed target from the last tick means
        // the client has not run yet — re-asking is enough.
        c->spill_target_.store(take, std::memory_order_relaxed);
        spill_requests_.fetch_add(1, std::memory_order_relaxed);
        wake.push_back(c);
        deficit -= take;
      }
    }
  }

  // 2. Idle flush deadline: a pending tail block with no appends for
  //    idle_flush_ticks goes to disk now rather than at the next
  //    punctuation a quiet session may never see.
  for (Client* c : clients) {
    if (!c->has_pending_tail_.load(std::memory_order_relaxed)) continue;
    const uint64_t last = c->last_append_tick_.load(std::memory_order_relaxed);
    if (now - last < options_.idle_flush_ticks) continue;
    if (!c->idle_flush_.exchange(true, std::memory_order_relaxed)) {
      idle_flushes_.fetch_add(1, std::memory_order_relaxed);
      wake.push_back(c);
    }
  }

  // 3. Compaction nudges: run-file rewrites happen on maintenance ticks.
  for (Client* c : clients) {
    if (!c->wants_compaction_.load(std::memory_order_relaxed)) continue;
    if (!c->compact_.exchange(true, std::memory_order_relaxed)) {
      compaction_nudges_.fetch_add(1, std::memory_order_relaxed);
      wake.push_back(c);
    }
  }

  for (Client* c : wake) {
    if (c->wakeup_) c->wakeup_();
  }
}

SpillGovernor::Stats SpillGovernor::stats() const {
  Stats s;
  s.ticks = tick_.load(std::memory_order_relaxed) - 1;
  s.spill_requests = spill_requests_.load(std::memory_order_relaxed);
  s.idle_flushes = idle_flushes_.load(std::memory_order_relaxed);
  s.compaction_nudges = compaction_nudges_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace storage
}  // namespace impatience
