#include "workload/csv_reader.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string_view>

#include "common/check.h"

namespace impatience {

namespace {

// Splits one line into fields on `delimiter`. No quoting support — log
// exports with numeric fields do not need it; a quoted field simply fails
// the numeric parse and the row is counted bad.
void SplitLine(std::string_view line, char delimiter,
               std::vector<std::string_view>* fields) {
  fields->clear();
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields->push_back(line.substr(start));
      return;
    }
    fields->push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

// Parses a signed integer; returns false on any trailing garbage.
bool ParseInt(std::string_view field, int64_t* value) {
  if (field.empty()) return false;
  char buf[32];
  if (field.size() >= sizeof(buf)) return false;
  std::memcpy(buf, field.data(), field.size());
  buf[field.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + field.size()) return false;
  *value = v;
  return true;
}

bool FieldToInt(const std::vector<std::string_view>& fields, int column,
                int64_t* value) {
  if (column < 0) return true;  // Unmapped: leave default.
  if (static_cast<size_t>(column) >= fields.size()) return false;
  return ParseInt(fields[static_cast<size_t>(column)], value);
}

}  // namespace

CsvParseResult ParseCsvEvents(const std::string& text,
                              const CsvSchema& schema) {
  IMPATIENCE_CHECK_MSG(schema.sync_time_column >= 0,
                       "sync_time_column is required");
  CsvParseResult result;
  std::vector<std::string_view> fields;
  size_t line_start = 0;
  uint64_t line_number = 0;

  while (line_start <= text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    std::string_view line(text.data() + line_start, line_end - line_start);
    line_start = line_end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++line_number;

    const bool is_header = line_number == 1 && schema.has_header;
    if (is_header || line.empty()) continue;

    if (line.size() > schema.max_line_bytes) {
      ++result.rows_bad;
      if (result.first_bad_line == 0) result.first_bad_line = line_number;
      continue;
    }
    SplitLine(line, schema.delimiter, &fields);
    Event e;
    int64_t sync = 0;
    int64_t other = 0;
    int64_t key = 0;
    bool ok = FieldToInt(fields, schema.sync_time_column, &sync);
    other = sync;
    ok = ok && FieldToInt(fields, schema.other_time_column, &other);
    ok = ok && FieldToInt(fields, schema.key_column, &key);
    int64_t payload[4] = {0, 0, 0, 0};
    for (int c = 0; c < 4; ++c) {
      ok = ok && FieldToInt(fields, schema.payload_columns[c], &payload[c]);
    }
    if (!ok) {
      ++result.rows_bad;
      if (result.first_bad_line == 0) result.first_bad_line = line_number;
      continue;
    }
    e.sync_time = sync;
    e.other_time = schema.other_time_column < 0 ? sync : other;
    e.key = static_cast<int32_t>(key);
    e.hash = HashKey(e.key);
    for (int c = 0; c < 4; ++c) {
      e.payload[c] = static_cast<int32_t>(payload[c]);
    }
    result.events.push_back(e);
    ++result.rows_ok;
  }
  return result;
}

bool LoadCsvEvents(const std::string& path, const CsvSchema& schema,
                   CsvParseResult* result) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return false;
  *result = ParseCsvEvents(text, schema);
  return true;
}

}  // namespace impatience
