// Dataset (de)serialization.
//
// A small binary format for caching generated datasets on disk (the
// benchmark harness regenerates deterministic data by default, but the
// tools can persist streams for inspection), plus CSV export for plotting
// Figure 2-style event-time/processing-time scatter data.

#ifndef IMPATIENCE_WORKLOAD_IO_H_
#define IMPATIENCE_WORKLOAD_IO_H_

#include <string>

#include "workload/generators.h"

namespace impatience {

// Writes `dataset` to `path` in the native binary format.
// Returns false (and leaves a partial file) on IO failure.
bool SaveDatasetBinary(const Dataset& dataset, const std::string& path);

// Reads a dataset written by SaveDatasetBinary. Returns false on IO
// failure or a malformed file; `dataset` is unspecified in that case.
bool LoadDatasetBinary(const std::string& path, Dataset* dataset);

// Writes "seq,sync_time,key,ad_id" rows (with header) for plotting.
bool ExportDatasetCsv(const Dataset& dataset, const std::string& path);

}  // namespace impatience

#endif  // IMPATIENCE_WORKLOAD_IO_H_
