#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/random.h"

namespace impatience {

namespace {

// Fills the query-facing fields (key, hash, payload) of an event.
void FillPayload(Event* e, int32_t num_keys, int32_t num_ad_ids,
                 int32_t source_id, uint64_t seq, Rng* rng) {
  e->key = static_cast<int32_t>(rng->NextBelow(
      static_cast<uint64_t>(num_keys)));
  e->hash = HashKey(e->key);
  e->payload[0] = static_cast<int32_t>(rng->NextBelow(
      static_cast<uint64_t>(num_ad_ids)));
  e->payload[1] = source_id;
  e->payload[2] = static_cast<int32_t>(seq & 0x7fffffff);
  e->payload[3] = static_cast<int32_t>(rng->NextUint64() & 0x7fffffff);
}

// An event paired with its delivery (processing) time, used to establish
// arrival order before the metadata is dropped.
struct Pending {
  Timestamp delivery = 0;
  uint64_t tiebreak = 0;  // Preserves per-source order within a burst.
  Event event;
};

std::vector<Event> FinalizeArrivalOrder(std::vector<Pending>* pending) {
  std::stable_sort(pending->begin(), pending->end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.delivery != b.delivery) {
                       return a.delivery < b.delivery;
                     }
                     return a.tiebreak < b.tiebreak;
                   });
  std::vector<Event> events;
  events.reserve(pending->size());
  for (const Pending& p : *pending) events.push_back(p.event);
  pending->clear();
  pending->shrink_to_fit();
  return events;
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  Rng rng(config.seed);
  std::vector<Event> events;
  events.reserve(config.num_events);
  for (size_t i = 0; i < config.num_events; ++i) {
    Event e;
    Timestamp t = static_cast<Timestamp>(i);  // One event per millisecond.
    if (rng.NextBool(config.percent_disorder / 100.0)) {
      const double delay =
          std::abs(rng.NextGaussian(0.0, config.disorder_stddev));
      t -= static_cast<Timestamp>(delay);
      if (t < 0) t = 0;
    }
    e.sync_time = t;
    e.other_time = t;
    FillPayload(&e, config.num_keys, config.num_ad_ids, /*source_id=*/0, i,
                &rng);
    events.push_back(e);
  }
  return Dataset{"Synthetic", std::move(events)};
}

Dataset GenerateCloudLog(const CloudLogConfig& config) {
  IMPATIENCE_CHECK(config.num_servers > 0);
  Rng rng(config.seed);
  std::vector<Pending> pending;
  pending.reserve(config.num_events);

  // Per-server failure state: events generated while a server is failed are
  // buffered and flushed together when the failure ends.
  std::vector<Timestamp> fail_until(config.num_servers, kMinTimestamp);

  // Probability that a given event triggers a failure on its server, chosen
  // so failures arrive at config.failure_rate_per_ms per server per ms.
  const double per_server_gap_ms =
      config.mean_interarrival_ms * static_cast<double>(config.num_servers);
  const double failure_start_prob =
      config.failure_rate_per_ms * per_server_gap_ms;

  double clock_ms = 0.0;
  for (size_t i = 0; i < config.num_events; ++i) {
    clock_ms += rng.NextExponential(config.mean_interarrival_ms);
    const Timestamp t = static_cast<Timestamp>(clock_ms);
    const size_t server = rng.NextBelow(config.num_servers);

    Pending p;
    p.event.sync_time = t;
    p.event.other_time = t;
    FillPayload(&p.event, config.num_keys, config.num_ad_ids,
                static_cast<int32_t>(server), i, &rng);
    p.tiebreak = i;

    if (t >= fail_until[server] && rng.NextBool(failure_start_prob)) {
      // This event is the first casualty of a fresh failure.
      fail_until[server] =
          t + rng.NextInRange(config.failure_min_duration_ms,
                              config.failure_max_duration_ms);
    }
    if (t < fail_until[server]) {
      // Buffered during the outage; flushed when the server recovers.
      p.delivery = fail_until[server] +
                   static_cast<Timestamp>(
                       rng.NextExponential(config.network_delay_mean_ms));
    } else {
      p.delivery = t + static_cast<Timestamp>(
                           rng.NextExponential(config.network_delay_mean_ms));
    }
    pending.push_back(p);
  }
  return Dataset{"CloudLog", FinalizeArrivalOrder(&pending)};
}

Dataset GenerateAndroidLog(const AndroidLogConfig& config) {
  IMPATIENCE_CHECK(config.num_devices > 0);
  Rng rng(config.seed);
  std::vector<Pending> pending;
  pending.reserve(config.num_events);

  // Round-robin-ish event generation across devices keeps all devices
  // active over the same time span.
  struct DeviceState {
    double clock_ms = 0.0;        // Event-time clock.
    Timestamp next_upload = 0;    // When the current buffer will flush.
  };
  std::vector<DeviceState> devices(config.num_devices);
  for (size_t d = 0; d < config.num_devices; ++d) {
    // Stagger initial uploads so they do not synchronize.
    devices[d].next_upload = static_cast<Timestamp>(rng.NextExponential(
        static_cast<double>(config.upload_period_mean_ms)));
  }

  auto next_gap = [&rng, &config]() -> Timestamp {
    const bool long_gap = rng.NextBool(config.long_gap_probability);
    const double mean = long_gap
                            ? static_cast<double>(config.long_gap_mean_ms)
                            : static_cast<double>(config.upload_period_mean_ms);
    return static_cast<Timestamp>(rng.NextExponential(mean)) + 1;
  };

  for (size_t i = 0; i < config.num_events; ++i) {
    const size_t d = rng.NextBelow(config.num_devices);
    DeviceState& dev = devices[d];
    dev.clock_ms += rng.NextExponential(config.device_interarrival_ms);
    const Timestamp t = static_cast<Timestamp>(dev.clock_ms);
    // The event ships with the first upload at or after its event time.
    while (dev.next_upload < t) dev.next_upload += next_gap();

    Pending p;
    p.event.sync_time = t;
    p.event.other_time = t;
    FillPayload(&p.event, config.num_keys, config.num_ad_ids,
                static_cast<int32_t>(d), i, &rng);
    p.delivery = dev.next_upload;
    p.tiebreak = i;
    pending.push_back(p);
  }
  return Dataset{"AndroidLog", FinalizeArrivalOrder(&pending)};
}

std::vector<Timestamp> SyncTimes(const std::vector<Event>& events) {
  std::vector<Timestamp> times;
  times.reserve(events.size());
  for (const Event& e : events) times.push_back(e.sync_time);
  return times;
}

Timestamp MaxLateness(const std::vector<Event>& events) {
  Timestamp high_watermark = kMinTimestamp;
  Timestamp max_lateness = 0;
  for (const Event& e : events) {
    if (e.sync_time > high_watermark) {
      high_watermark = e.sync_time;
    } else {
      max_lateness = std::max(max_lateness, high_watermark - e.sync_time);
    }
  }
  return max_lateness;
}

double CompletenessAtLatency(const std::vector<Event>& events,
                             Timestamp latency) {
  if (events.empty()) return 1.0;
  Timestamp high_watermark = kMinTimestamp;
  size_t on_time = 0;
  for (const Event& e : events) {
    if (e.sync_time > high_watermark) high_watermark = e.sync_time;
    if (high_watermark - e.sync_time <= latency) ++on_time;
  }
  return static_cast<double>(on_time) / static_cast<double>(events.size());
}

}  // namespace impatience
