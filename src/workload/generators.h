// Workload generators (paper §II and §VI-A).
//
// The paper evaluates on two proprietary datasets and one synthetic
// generator. The synthetic generator is reimplemented exactly as described;
// the two real datasets are replaced by simulations of the processes that
// produced them (see DESIGN.md "Dataset substitutions"):
//
//  * CloudLog — distributed application servers stream events to a central
//    collector through jittery links; intermittent failures buffer a
//    server's output and flush it late in one burst. Shape: millions of
//    tiny natural runs, few hundred interleaved runs, burst displacements
//    of a large fraction of the stream ("well-ordered at coarse
//    granularity, chaotic at fine granularity").
//
//  * AndroidLog — phones record events locally and upload the whole buffer
//    when charging, hours (sometimes days) later. Shape: few thousand long
//    natural runs, astronomically many inversions ("well-ordered at fine
//    granularity, chaotic at coarse granularity").
//
// Events are returned in *arrival* order (processing time); sync_time holds
// the event time. All generators are deterministic given the seed.

#ifndef IMPATIENCE_WORKLOAD_GENERATORS_H_
#define IMPATIENCE_WORKLOAD_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/timestamp.h"

namespace impatience {

// A generated stream plus its identity, in arrival order.
struct Dataset {
  std::string name;
  std::vector<Event> events;
};

// ---------------------------------------------------------------------------
// Synthetic generator (paper §VI-A).
//
// Starts from a sorted stream with one event per millisecond and delays
// `percent_disorder`% of events by moving their timestamp backward by
// |N(0, disorder_stddev)| milliseconds.
struct SyntheticConfig {
  size_t num_events = 1000000;
  double percent_disorder = 30.0;  // p, in percent.
  double disorder_stddev = 64.0;   // d, in ms.
  int32_t num_keys = 100;          // Grouping key space.
  int32_t num_ad_ids = 1000;       // payload[0] value space.
  uint64_t seed = 42;
};

Dataset GenerateSynthetic(const SyntheticConfig& config);

// ---------------------------------------------------------------------------
// CloudLog simulation.
struct CloudLogConfig {
  size_t num_events = 1000000;
  size_t num_servers = 400;  // Distributed application servers.
  // Mean event-time gap between consecutive events across the whole fleet,
  // in ms (1.0 => ~1000 events/s aggregate).
  double mean_interarrival_ms = 1.0;
  // Per-event network delay: exponential with this mean, in ms. Scrambles
  // fine-grained order, creating the dataset's millions of tiny runs.
  double network_delay_mean_ms = 40.0;
  // Server failures: each server independently fails at this rate (per ms);
  // a failure buffers the server's events for a uniform duration in
  // [min, max] ms, after which they flush in one late burst.
  double failure_rate_per_ms = 0.00000003;
  Timestamp failure_min_duration_ms = 1 * kMinute;
  Timestamp failure_max_duration_ms = 20 * kMinute;
  int32_t num_keys = 100;
  int32_t num_ad_ids = 1000;
  uint64_t seed = 42;
};

Dataset GenerateCloudLog(const CloudLogConfig& config);

// ---------------------------------------------------------------------------
// AndroidLog simulation.
struct AndroidLogConfig {
  size_t num_events = 1000000;
  // Phones reporting in. Kept low so that the per-device event-time span
  // (num_events / num_devices * device_interarrival_ms) covers several
  // days — day-scale lateness cannot exist otherwise.
  size_t num_devices = 30;
  // Mean event-time gap between consecutive events on one device, ms.
  double device_interarrival_ms = 10000.0;
  // Time between uploads (charging sessions): exponential with this mean...
  Timestamp upload_period_mean_ms = 40 * kMinute;
  // ...except a heavy tail: with this probability an upload gap is drawn
  // with mean `long_gap_mean_ms` instead (phone in a drawer for days).
  double long_gap_probability = 0.004;
  Timestamp long_gap_mean_ms = 2 * kDay;
  int32_t num_keys = 100;
  int32_t num_ad_ids = 1000;
  uint64_t seed = 42;
};

Dataset GenerateAndroidLog(const AndroidLogConfig& config);

// ---------------------------------------------------------------------------
// Helpers.

// Extracts the sync_time column (the sequence the disorder measures and
// sorters consume).
std::vector<Timestamp> SyncTimes(const std::vector<Event>& events);

// Maximum lateness in the stream: max over events of
// (high watermark at arrival - event time). The smallest reorder latency
// with 100% completeness.
Timestamp MaxLateness(const std::vector<Event>& events);

// Fraction of events whose lateness is <= `latency` (the completeness a
// single-latency buffer-and-sort run at `latency` achieves). Returns 1.0
// for an empty stream.
double CompletenessAtLatency(const std::vector<Event>& events,
                             Timestamp latency);

}  // namespace impatience

#endif  // IMPATIENCE_WORKLOAD_GENERATORS_H_
