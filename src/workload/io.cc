#include "workload/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace impatience {

namespace {

// Binary layout: magic, version, name length + bytes, event count, events.
constexpr uint64_t kMagic = 0x494d5044534554ULL;  // "IMPDSET"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteAll(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

bool ReadAll(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

}  // namespace

bool SaveDatasetBinary(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  const uint64_t name_len = dataset.name.size();
  const uint64_t count = dataset.events.size();
  if (!WriteAll(f.get(), &kMagic, sizeof(kMagic))) return false;
  if (!WriteAll(f.get(), &kVersion, sizeof(kVersion))) return false;
  if (!WriteAll(f.get(), &name_len, sizeof(name_len))) return false;
  if (name_len > 0 &&
      !WriteAll(f.get(), dataset.name.data(), dataset.name.size())) {
    return false;
  }
  if (!WriteAll(f.get(), &count, sizeof(count))) return false;
  if (count > 0 && !WriteAll(f.get(), dataset.events.data(),
                             count * sizeof(Event))) {
    return false;
  }
  return std::fflush(f.get()) == 0;
}

bool LoadDatasetBinary(const std::string& path, Dataset* dataset) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t name_len = 0;
  uint64_t count = 0;
  if (!ReadAll(f.get(), &magic, sizeof(magic)) || magic != kMagic) {
    return false;
  }
  if (!ReadAll(f.get(), &version, sizeof(version)) || version != kVersion) {
    return false;
  }
  if (!ReadAll(f.get(), &name_len, sizeof(name_len))) return false;
  if (name_len > (1ULL << 20)) return false;  // Sanity bound on the name.
  dataset->name.resize(name_len);
  if (name_len > 0 && !ReadAll(f.get(), dataset->name.data(), name_len)) {
    return false;
  }
  if (!ReadAll(f.get(), &count, sizeof(count))) return false;
  if (count > (1ULL << 33)) return false;  // Sanity bound on event count.
  dataset->events.resize(count);
  if (count > 0 &&
      !ReadAll(f.get(), dataset->events.data(), count * sizeof(Event))) {
    return false;
  }
  return true;
}

bool ExportDatasetCsv(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return false;
  if (std::fprintf(f.get(), "seq,sync_time,key,ad_id\n") < 0) return false;
  for (size_t i = 0; i < dataset.events.size(); ++i) {
    const Event& e = dataset.events[i];
    if (std::fprintf(f.get(), "%zu,%lld,%d,%d\n", i,
                     static_cast<long long>(e.sync_time), e.key,
                     e.payload[0]) < 0) {
      return false;
    }
  }
  return std::fflush(f.get()) == 0;
}

}  // namespace impatience
