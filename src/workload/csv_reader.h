// CSV log ingestion: turn timestamped text logs into event streams.
//
// Downstream users rarely have events in this library's binary format;
// they have CSV-ish logs. CsvReader parses delimited rows into events with
// a configurable column mapping, preserving file order as arrival
// (processing) order — exactly what the sorting operator expects to
// consume. Rows that fail to parse are counted, not fatal.

#ifndef IMPATIENCE_WORKLOAD_CSV_READER_H_
#define IMPATIENCE_WORKLOAD_CSV_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/event.h"
#include "workload/generators.h"

namespace impatience {

// Column mapping for CSV ingestion. Columns are 0-based; -1 means "not
// present" (the field keeps its default / derived value).
struct CsvSchema {
  char delimiter = ',';
  bool has_header = true;
  int sync_time_column = 0;   // Required.
  int other_time_column = -1;  // Defaults to sync_time.
  int key_column = -1;         // Defaults to 0; hash derived from key.
  // payload_columns[i] fills payload[i]; -1 leaves it 0.
  int payload_columns[4] = {-1, -1, -1, -1};
  // Lines longer than this are counted bad without being split or parsed —
  // a bound on per-row work when fed corrupt or non-CSV input.
  size_t max_line_bytes = size_t{1} << 20;
};

// Outcome of a parse: the events plus per-row accounting.
struct CsvParseResult {
  std::vector<Event> events;
  uint64_t rows_ok = 0;
  uint64_t rows_bad = 0;  // Unparseable rows (arity / non-numeric / length).
  // 1-based line number of the first bad row (0 if every row parsed);
  // points operators at the corruption instead of just counting it.
  uint64_t first_bad_line = 0;
};

// Parses CSV text (entire buffer) into events.
CsvParseResult ParseCsvEvents(const std::string& text,
                              const CsvSchema& schema);

// Reads and parses a CSV file. Returns false on IO failure.
bool LoadCsvEvents(const std::string& path, const CsvSchema& schema,
                   CsvParseResult* result);

}  // namespace impatience

#endif  // IMPATIENCE_WORKLOAD_CSV_READER_H_
