#include "workload/csv_reader.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "workload/io.h"

namespace impatience {
namespace {

TEST(CsvReaderTest, ParsesBasicRows) {
  CsvSchema schema;
  schema.key_column = 1;
  schema.payload_columns[0] = 2;
  const std::string text =
      "ts,key,ad\n"
      "100,7,42\n"
      "90,3,17\n";
  const CsvParseResult result = ParseCsvEvents(text, schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.rows_bad, 0u);
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_EQ(result.events[0].sync_time, 100);
  EXPECT_EQ(result.events[0].other_time, 100);  // Defaults to sync.
  EXPECT_EQ(result.events[0].key, 7);
  EXPECT_EQ(result.events[0].hash, HashKey(7));
  EXPECT_EQ(result.events[0].payload[0], 42);
  EXPECT_EQ(result.events[1].sync_time, 90);  // File order preserved.
}

TEST(CsvReaderTest, NoHeaderMode) {
  CsvSchema schema;
  schema.has_header = false;
  const CsvParseResult result = ParseCsvEvents("5\n6\n", schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.events[0].sync_time, 5);
}

TEST(CsvReaderTest, CustomDelimiterAndOtherTime) {
  CsvSchema schema;
  schema.delimiter = '|';
  schema.has_header = false;
  schema.other_time_column = 1;
  const CsvParseResult result = ParseCsvEvents("10|20\n", schema);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].sync_time, 10);
  EXPECT_EQ(result.events[0].other_time, 20);
}

TEST(CsvReaderTest, BadRowsCountedNotFatal) {
  CsvSchema schema;
  schema.has_header = false;
  schema.key_column = 1;
  const std::string text =
      "100,1\n"
      "oops,2\n"       // Non-numeric sync.
      "300\n"          // Missing key column.
      "400,4\n";
  const CsvParseResult result = ParseCsvEvents(text, schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.rows_bad, 2u);
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_EQ(result.events[1].sync_time, 400);
}

TEST(CsvReaderTest, EmptyLinesAndCrLfTolerated) {
  CsvSchema schema;
  schema.has_header = false;
  const CsvParseResult result = ParseCsvEvents("1\r\n\n2\r\n", schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.rows_bad, 0u);
}

TEST(CsvReaderTest, NegativeTimestamps) {
  CsvSchema schema;
  schema.has_header = false;
  const CsvParseResult result = ParseCsvEvents("-50\n", schema);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].sync_time, -50);
}

TEST(CsvReaderTest, RoundTripThroughDatasetCsvExport) {
  // datagen's CSV export (seq,sync_time,key,ad_id) must be re-ingestable.
  SyntheticConfig config;
  config.num_events = 500;
  const Dataset original = GenerateSynthetic(config);
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(ExportDatasetCsv(original, path));

  CsvSchema schema;
  schema.sync_time_column = 1;
  schema.key_column = 2;
  schema.payload_columns[0] = 3;
  CsvParseResult result;
  ASSERT_TRUE(LoadCsvEvents(path, schema, &result));
  ASSERT_EQ(result.events.size(), original.events.size());
  EXPECT_EQ(result.rows_bad, 0u);
  for (size_t i = 0; i < result.events.size(); ++i) {
    EXPECT_EQ(result.events[i].sync_time, original.events[i].sync_time);
    EXPECT_EQ(result.events[i].key, original.events[i].key);
    EXPECT_EQ(result.events[i].payload[0], original.events[i].payload[0]);
  }
  std::remove(path.c_str());
}

TEST(CsvReaderTest, MissingFileFails) {
  CsvSchema schema;
  CsvParseResult result;
  EXPECT_FALSE(LoadCsvEvents("/nonexistent/file.csv", schema, &result));
}

}  // namespace
}  // namespace impatience
