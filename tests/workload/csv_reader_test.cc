#include "workload/csv_reader.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "tests/testing/corrupt_corpus.h"
#include "workload/io.h"

namespace impatience {
namespace {

TEST(CsvReaderTest, ParsesBasicRows) {
  CsvSchema schema;
  schema.key_column = 1;
  schema.payload_columns[0] = 2;
  const std::string text =
      "ts,key,ad\n"
      "100,7,42\n"
      "90,3,17\n";
  const CsvParseResult result = ParseCsvEvents(text, schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.rows_bad, 0u);
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_EQ(result.events[0].sync_time, 100);
  EXPECT_EQ(result.events[0].other_time, 100);  // Defaults to sync.
  EXPECT_EQ(result.events[0].key, 7);
  EXPECT_EQ(result.events[0].hash, HashKey(7));
  EXPECT_EQ(result.events[0].payload[0], 42);
  EXPECT_EQ(result.events[1].sync_time, 90);  // File order preserved.
}

TEST(CsvReaderTest, NoHeaderMode) {
  CsvSchema schema;
  schema.has_header = false;
  const CsvParseResult result = ParseCsvEvents("5\n6\n", schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.events[0].sync_time, 5);
}

TEST(CsvReaderTest, CustomDelimiterAndOtherTime) {
  CsvSchema schema;
  schema.delimiter = '|';
  schema.has_header = false;
  schema.other_time_column = 1;
  const CsvParseResult result = ParseCsvEvents("10|20\n", schema);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].sync_time, 10);
  EXPECT_EQ(result.events[0].other_time, 20);
}

TEST(CsvReaderTest, BadRowsCountedNotFatal) {
  CsvSchema schema;
  schema.has_header = false;
  schema.key_column = 1;
  const std::string text =
      "100,1\n"
      "oops,2\n"       // Non-numeric sync.
      "300\n"          // Missing key column.
      "400,4\n";
  const CsvParseResult result = ParseCsvEvents(text, schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.rows_bad, 2u);
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_EQ(result.events[1].sync_time, 400);
}

TEST(CsvReaderTest, EmptyLinesAndCrLfTolerated) {
  CsvSchema schema;
  schema.has_header = false;
  const CsvParseResult result = ParseCsvEvents("1\r\n\n2\r\n", schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.rows_bad, 0u);
}

TEST(CsvReaderTest, NegativeTimestamps) {
  CsvSchema schema;
  schema.has_header = false;
  const CsvParseResult result = ParseCsvEvents("-50\n", schema);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].sync_time, -50);
}

TEST(CsvReaderTest, RoundTripThroughDatasetCsvExport) {
  // datagen's CSV export (seq,sync_time,key,ad_id) must be re-ingestable.
  SyntheticConfig config;
  config.num_events = 500;
  const Dataset original = GenerateSynthetic(config);
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(ExportDatasetCsv(original, path));

  CsvSchema schema;
  schema.sync_time_column = 1;
  schema.key_column = 2;
  schema.payload_columns[0] = 3;
  CsvParseResult result;
  ASSERT_TRUE(LoadCsvEvents(path, schema, &result));
  ASSERT_EQ(result.events.size(), original.events.size());
  EXPECT_EQ(result.rows_bad, 0u);
  for (size_t i = 0; i < result.events.size(); ++i) {
    EXPECT_EQ(result.events[i].sync_time, original.events[i].sync_time);
    EXPECT_EQ(result.events[i].key, original.events[i].key);
    EXPECT_EQ(result.events[i].payload[0], original.events[i].payload[0]);
  }
  std::remove(path.c_str());
}

TEST(CsvReaderTest, MissingFileFails) {
  CsvSchema schema;
  CsvParseResult result;
  EXPECT_FALSE(LoadCsvEvents("/nonexistent/file.csv", schema, &result));
}

TEST(CsvReaderTest, FirstBadLineReported) {
  CsvSchema schema;
  schema.key_column = 1;
  const std::string text =
      "ts,key\n"
      "100,1\n"
      "oops,2\n"  // Line 3 of the file: first corruption.
      "300\n"
      "400,4\n";
  const CsvParseResult result = ParseCsvEvents(text, schema);
  EXPECT_EQ(result.rows_bad, 2u);
  EXPECT_EQ(result.first_bad_line, 3u);

  const CsvParseResult clean = ParseCsvEvents("ts,key\n100,1\n", schema);
  EXPECT_EQ(clean.first_bad_line, 0u);
}

TEST(CsvReaderTest, OverlongLinesCountedBadWithoutParsing) {
  CsvSchema schema;
  schema.has_header = false;
  schema.max_line_bytes = 16;
  // The overlong line would parse fine if it were split; the length bound
  // rejects it first.
  const std::string long_row = "123456789," + std::string(32, '1') + "\n";
  const CsvParseResult result =
      ParseCsvEvents("5\n" + long_row + "7\n", schema);
  EXPECT_EQ(result.rows_ok, 2u);
  EXPECT_EQ(result.rows_bad, 1u);
  EXPECT_EQ(result.first_bad_line, 2u);
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_EQ(result.events[1].sync_time, 7);
}

TEST(CsvReaderTest, OversizedNumericFieldIsBadNotTruncated) {
  CsvSchema schema;
  schema.has_header = false;
  // 40 digits exceed ParseInt's fixed buffer; the row must be rejected,
  // never silently truncated to a smaller number.
  const CsvParseResult result =
      ParseCsvEvents(std::string(40, '9') + "\n10\n", schema);
  EXPECT_EQ(result.rows_ok, 1u);
  EXPECT_EQ(result.rows_bad, 1u);
  EXPECT_EQ(result.first_bad_line, 1u);
}

// Fuzz-style sweep over the shared corruption corpus: every truncation and
// every single-byte flip of a valid file must parse without crashing, with
// consistent accounting, and any row the parser accepts must carry a
// numeric timestamp it actually read.
TEST(CsvReaderTest, CorruptionCorpusNeverCrashesAndAlwaysAccounts) {
  CsvSchema schema;
  schema.key_column = 1;
  schema.payload_columns[0] = 2;
  const std::string valid =
      "ts,key,ad\n"
      "100,7,42\n"
      "250,3,17\n"
      "261,1,99\n"
      "400,2,5\n";
  const auto bytes = testing::BytesOf(valid);

  auto check = [&schema](const std::string& text) {
    const CsvParseResult result = ParseCsvEvents(text, schema);
    // Accounting: every counted-ok row produced exactly one event.
    ASSERT_EQ(result.events.size(), result.rows_ok);
    ASSERT_LE(result.rows_ok, 4u);
    if (result.rows_bad > 0) {
      EXPECT_GT(result.first_bad_line, 0u);
    } else {
      EXPECT_EQ(result.first_bad_line, 0u);
    }
    for (const Event& e : result.events) {
      EXPECT_EQ(e.hash, HashKey(e.key));  // Derived fields stay coupled.
    }
  };

  for (const auto& variant : testing::TruncationsOf(bytes)) {
    check(testing::TextOf(variant));
  }
  for (const auto& variant : testing::ByteFlipsOf(bytes)) {
    check(testing::TextOf(variant));
  }
}

}  // namespace
}  // namespace impatience
