// Workload generators: determinism, payload validity, and — most
// importantly — that the simulated datasets reproduce the *shape* of the
// paper's Table I / Table II statistics (see DESIGN.md "Dataset
// substitutions").

#include "workload/generators.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sort/disorder_stats.h"

namespace impatience {
namespace {

constexpr size_t kN = 200000;  // Enough events for stable statistics.

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig config;
  config.num_events = 10000;
  const Dataset a = GenerateSynthetic(config);
  const Dataset b = GenerateSynthetic(config);
  EXPECT_EQ(a.events, b.events);
  config.seed = 43;
  const Dataset c = GenerateSynthetic(config);
  EXPECT_NE(a.events, c.events);
}

TEST(SyntheticTest, DisorderFractionMatchesP) {
  SyntheticConfig config;
  config.num_events = kN;
  config.percent_disorder = 30.0;
  config.disorder_stddev = 64.0;
  const Dataset d = GenerateSynthetic(config);
  // An event is displaced iff sync_time != its sequence position; a
  // Gaussian delay rounds to 0 sometimes, so slightly fewer than p%.
  size_t displaced = 0;
  for (size_t i = 0; i < d.events.size(); ++i) {
    if (d.events[i].sync_time != static_cast<Timestamp>(i)) ++displaced;
  }
  const double fraction = static_cast<double>(displaced) / kN;
  EXPECT_GT(fraction, 0.25);
  EXPECT_LT(fraction, 0.31);
}

TEST(SyntheticTest, ZeroDisorderIsSorted) {
  SyntheticConfig config;
  config.num_events = 5000;
  config.percent_disorder = 0.0;
  const Dataset d = GenerateSynthetic(config);
  const auto times = SyncTimes(d.events);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(SyntheticTest, DisplacementScalesWithStddev) {
  SyntheticConfig config;
  config.num_events = kN;
  config.percent_disorder = 30.0;
  config.disorder_stddev = 4.0;
  const Timestamp small_d = MaxLateness(GenerateSynthetic(config).events);
  config.disorder_stddev = 1024.0;
  const Timestamp large_d = MaxLateness(GenerateSynthetic(config).events);
  EXPECT_LT(small_d, 100);
  EXPECT_GT(large_d, 1000);
}

TEST(SyntheticTest, PayloadsWithinConfiguredSpaces) {
  SyntheticConfig config;
  config.num_events = 20000;
  config.num_keys = 7;
  config.num_ad_ids = 13;
  const Dataset d = GenerateSynthetic(config);
  for (const Event& e : d.events) {
    EXPECT_GE(e.key, 0);
    EXPECT_LT(e.key, 7);
    EXPECT_GE(e.payload[0], 0);
    EXPECT_LT(e.payload[0], 13);
    EXPECT_EQ(e.hash, HashKey(e.key));
  }
}

// --- CloudLog shape (paper Table I / Table II, CloudLog column) ---------

class CloudLogShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CloudLogConfig config;
    config.num_events = kN;
    dataset_ = new Dataset(GenerateCloudLog(config));
    stats_ = new DisorderStats(ComputeDisorderStats(SyncTimes(
        dataset_->events)));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete stats_;
    dataset_ = nullptr;
    stats_ = nullptr;
  }
  static Dataset* dataset_;
  static DisorderStats* stats_;
};

Dataset* CloudLogShapeTest::dataset_ = nullptr;
DisorderStats* CloudLogShapeTest::stats_ = nullptr;

TEST_F(CloudLogShapeTest, ChaoticAtFineGranularity) {
  // Paper: avg natural run length ~2.7 events. Accept 1.5-20.
  const double avg_run =
      static_cast<double>(kN) / static_cast<double>(stats_->runs);
  EXPECT_GT(avg_run, 1.5);
  EXPECT_LT(avg_run, 20.0);
}

TEST_F(CloudLogShapeTest, WellOrderedAtCoarseGranularity) {
  // Few interleaved runs relative to natural runs (387 vs 7.3M in paper).
  EXPECT_LT(stats_->interleaved, stats_->runs / 20);
  EXPECT_LT(stats_->interleaved, 5000u);
}

TEST_F(CloudLogShapeTest, FailureBurstsDisplaceFarEvents) {
  // Paper: max displacement is a large fraction of the stream (13.6M/20M).
  EXPECT_GT(stats_->distance, kN / 20);
}

TEST_F(CloudLogShapeTest, CompletenessMatchesTableII) {
  // Table II: {1s} -> 98.1%, {1h} -> 100%.
  const double at_1s = CompletenessAtLatency(dataset_->events, kSecond);
  const double at_1h = CompletenessAtLatency(dataset_->events, kHour);
  EXPECT_GT(at_1s, 0.90);
  EXPECT_LT(at_1s, 0.999);
  EXPECT_EQ(at_1h, 1.0);
}

TEST_F(CloudLogShapeTest, DeterministicForSeed) {
  CloudLogConfig config;
  config.num_events = 5000;
  const Dataset a = GenerateCloudLog(config);
  const Dataset b = GenerateCloudLog(config);
  EXPECT_EQ(a.events, b.events);
  config.seed = 7;
  const Dataset c = GenerateCloudLog(config);
  EXPECT_NE(a.events, c.events);
}

TEST(AndroidLogTest, DeterministicForSeed) {
  AndroidLogConfig config;
  config.num_events = 5000;
  config.num_devices = 8;
  const Dataset a = GenerateAndroidLog(config);
  const Dataset b = GenerateAndroidLog(config);
  EXPECT_EQ(a.events, b.events);
  config.seed = 7;
  const Dataset c = GenerateAndroidLog(config);
  EXPECT_NE(a.events, c.events);
}

// --- AndroidLog shape ----------------------------------------------------

class AndroidLogShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AndroidLogConfig config;
    config.num_events = kN;
    // 200k events need fewer devices than the 1M default to keep the
    // per-device span at multiple days (see the config comment).
    config.num_devices = 8;
    dataset_ = new Dataset(GenerateAndroidLog(config));
    stats_ = new DisorderStats(ComputeDisorderStats(SyncTimes(
        dataset_->events)));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete stats_;
    dataset_ = nullptr;
    stats_ = nullptr;
  }
  static Dataset* dataset_;
  static DisorderStats* stats_;
};

Dataset* AndroidLogShapeTest::dataset_ = nullptr;
DisorderStats* AndroidLogShapeTest::stats_ = nullptr;

TEST_F(AndroidLogShapeTest, WellOrderedAtFineGranularity) {
  // Few, long natural runs (5560 runs over 20M in the paper, i.e. batches
  // of thousands). At 200k events expect runs in the hundreds-to-thousands.
  EXPECT_LT(stats_->runs, 20000u);
  const double avg_run =
      static_cast<double>(kN) / static_cast<double>(stats_->runs);
  EXPECT_GT(avg_run, 20.0);
}

TEST_F(AndroidLogShapeTest, ChaoticAtCoarseGranularity) {
  // Inversions dominated by whole-batch displacement: orders of magnitude
  // beyond n.
  EXPECT_GT(stats_->inversions, static_cast<uint64_t>(kN) * 100);
}

TEST_F(AndroidLogShapeTest, InterleavedBoundedByDevices) {
  // 8 devices were used to generate the shared dataset; a batch that jumps
  // past another batch of the same device can add a handful more.
  EXPECT_LE(stats_->interleaved, 8u * 4);
}

TEST_F(AndroidLogShapeTest, CompletenessMatchesTableII) {
  // Table II: {10m} -> 20.5%, {1d} -> 92.2%.
  const double at_10m =
      CompletenessAtLatency(dataset_->events, 10 * kMinute);
  const double at_1d = CompletenessAtLatency(dataset_->events, kDay);
  EXPECT_GT(at_10m, 0.05);
  EXPECT_LT(at_10m, 0.45);
  EXPECT_GT(at_1d, 0.80);
  EXPECT_LT(at_1d, 0.999);
}

TEST_F(AndroidLogShapeTest, BatchesArriveInternallyOrdered) {
  // Within an upload burst, one device's events are in event-time order:
  // consecutive events from the same device must be non-decreasing unless a
  // new batch started (time went backwards).
  size_t same_device_pairs = 0;
  size_t ordered_pairs = 0;
  const auto& events = dataset_->events;
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].payload[1] == events[i - 1].payload[1]) {
      ++same_device_pairs;
      if (events[i].sync_time >= events[i - 1].sync_time) ++ordered_pairs;
    }
  }
  ASSERT_GT(same_device_pairs, 0u);
  EXPECT_GT(static_cast<double>(ordered_pairs) /
                static_cast<double>(same_device_pairs),
            0.95);
}

// --- Helper functions ----------------------------------------------------

TEST(LatenessHelpersTest, MaxLatenessHandComputed) {
  std::vector<Event> events(4);
  events[0].sync_time = 10;
  events[1].sync_time = 20;
  events[2].sync_time = 5;   // 15 late.
  events[3].sync_time = 18;  // 2 late.
  EXPECT_EQ(MaxLateness(events), 15);
}

TEST(LatenessHelpersTest, CompletenessHandComputed) {
  std::vector<Event> events(4);
  events[0].sync_time = 10;
  events[1].sync_time = 20;
  events[2].sync_time = 5;   // 15 late.
  events[3].sync_time = 18;  // 2 late.
  EXPECT_DOUBLE_EQ(CompletenessAtLatency(events, 0), 0.5);
  EXPECT_DOUBLE_EQ(CompletenessAtLatency(events, 2), 0.75);
  EXPECT_DOUBLE_EQ(CompletenessAtLatency(events, 15), 1.0);
  EXPECT_DOUBLE_EQ(CompletenessAtLatency({}, 100), 1.0);
}

TEST(LatenessHelpersTest, SortedStreamIsComplete) {
  std::vector<Event> events(100);
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].sync_time = static_cast<Timestamp>(i);
  }
  EXPECT_EQ(MaxLateness(events), 0);
  EXPECT_DOUBLE_EQ(CompletenessAtLatency(events, 0), 1.0);
}

}  // namespace
}  // namespace impatience
