#include "workload/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace impatience {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DatasetIoTest, BinaryRoundTrip) {
  SyntheticConfig config;
  config.num_events = 5000;
  const Dataset original = GenerateSynthetic(config);

  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveDatasetBinary(original, path));
  Dataset loaded;
  ASSERT_TRUE(LoadDatasetBinary(path, &loaded));
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.events, original.events);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyDatasetRoundTrip) {
  Dataset empty{"empty", {}};
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveDatasetBinary(empty, path));
  Dataset loaded;
  ASSERT_TRUE(LoadDatasetBinary(path, &loaded));
  EXPECT_EQ(loaded.name, "empty");
  EXPECT_TRUE(loaded.events.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  Dataset loaded;
  EXPECT_FALSE(LoadDatasetBinary(TempPath("does_not_exist.bin"), &loaded));
}

TEST(DatasetIoTest, LoadRejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a dataset file at all", f);
  std::fclose(f);
  Dataset loaded;
  EXPECT_FALSE(LoadDatasetBinary(path, &loaded));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadRejectsTruncatedFile) {
  SyntheticConfig config;
  config.num_events = 1000;
  const Dataset original = GenerateSynthetic(config);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveDatasetBinary(original, path));

  // Truncate the file to half its size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  Dataset loaded;
  EXPECT_FALSE(LoadDatasetBinary(path, &loaded));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvExportHasHeaderAndRows) {
  SyntheticConfig config;
  config.num_events = 10;
  const Dataset d = GenerateSynthetic(config);
  const std::string path = TempPath("export.csv");
  ASSERT_TRUE(ExportDatasetCsv(d, path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "seq,sync_time,key,ad_id\n");
  size_t rows = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) ++rows;
  std::fclose(f);
  EXPECT_EQ(rows, 10u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace impatience
