// SpillFlusher pool contracts: per-channel FIFO execution (the per-run
// ordering guarantee), cross-channel concurrency, the Wait durability
// barrier, bounded in-flight bytes with blocking backpressure (including
// the single-oversized-job admission that keeps progress possible), and
// channel poisoning — one failed job skips everything later on that
// channel while other channels keep flowing.

#include "storage/spill_flusher.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace impatience {
namespace storage {
namespace {

TEST(SpillFlusherTest, SingleChannelRunsJobsInFifoOrder) {
  SpillFlusher::Options options;
  options.threads = 4;  // Many workers; one channel must still serialize.
  SpillFlusher flusher(options);
  auto channel = flusher.NewChannel();

  // Jobs on one channel run one at a time in enqueue order, so the vector
  // needs no lock — the pool's internal handoff orders the writes.
  std::vector<int> order;
  constexpr int kJobs = 200;
  for (int i = 0; i < kJobs; ++i) {
    channel->Enqueue(
        [&order, i]() {
          order.push_back(i);
          return true;
        },
        /*bytes=*/64);
  }
  channel->Wait();

  ASSERT_EQ(order.size(), static_cast<size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(order[i], i);
  EXPECT_FALSE(channel->failed());

  const SpillFlusher::Stats stats = flusher.stats();
  EXPECT_EQ(stats.jobs_run, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.async_flushes, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.inflight_bytes, 0u);  // Every byte was released.
}

TEST(SpillFlusherTest, ChannelsInterleaveButEachStaysOrdered) {
  SpillFlusher::Options options;
  options.threads = 3;
  SpillFlusher flusher(options);

  constexpr int kChannels = 4;
  constexpr int kJobsPer = 64;
  std::vector<std::shared_ptr<SpillFlusher::Channel>> channels;
  std::vector<std::vector<int>> orders(kChannels);
  for (int c = 0; c < kChannels; ++c) channels.push_back(flusher.NewChannel());
  for (int i = 0; i < kJobsPer; ++i) {
    for (int c = 0; c < kChannels; ++c) {
      channels[c]->Enqueue(
          [&orders, c, i]() {
            orders[c].push_back(i);
            return true;
          },
          /*bytes=*/16);
    }
  }
  for (auto& ch : channels) ch->Wait();

  for (int c = 0; c < kChannels; ++c) {
    ASSERT_EQ(orders[c].size(), static_cast<size_t>(kJobsPer)) << "ch " << c;
    for (int i = 0; i < kJobsPer; ++i) {
      ASSERT_EQ(orders[c][i], i) << "ch " << c;
    }
  }
}

TEST(SpillFlusherTest, WaitIsACompletionBarrier) {
  SpillFlusher::Options options;
  options.threads = 2;
  SpillFlusher flusher(options);
  auto channel = flusher.NewChannel();

  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    channel->Enqueue(
        [&done]() {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          done.fetch_add(1, std::memory_order_relaxed);
          return true;
        },
        /*bytes=*/8);
  }
  channel->Wait();
  EXPECT_EQ(done.load(), 32);
}

TEST(SpillFlusherTest, EnqueueBlocksWhileInflightCapExceeded) {
  SpillFlusher::Options options;
  options.threads = 1;
  options.max_inflight_bytes = 1000;
  SpillFlusher flusher(options);
  auto channel = flusher.NewChannel();

  // Job 1 parks on a gate while holding 800 in-flight bytes; enqueueing a
  // second 800-byte job must block until job 1 releases its bytes.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  channel->Enqueue(
      [&]() {
        std::unique_lock<std::mutex> lock(gate_mu);
        gate_cv.wait(lock, [&]() { return gate_open; });
        return true;
      },
      /*bytes=*/800);

  std::atomic<bool> second_enqueued{false};
  std::thread producer([&]() {
    channel->Enqueue([]() { return true; }, /*bytes=*/800);
    second_enqueued.store(true, std::memory_order_release);
  });

  // The producer must still be parked in Enqueue — the cap is exceeded
  // and the first job cannot finish until the gate opens.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_enqueued.load(std::memory_order_acquire));

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  producer.join();
  EXPECT_TRUE(second_enqueued.load());
  channel->Wait();

  EXPECT_GE(flusher.stats().backpressure_waits, 1u);
  EXPECT_EQ(flusher.stats().inflight_bytes, 0u);
}

TEST(SpillFlusherTest, OversizedJobIsAdmittedWhenPoolIsEmpty) {
  SpillFlusher::Options options;
  options.threads = 1;
  options.max_inflight_bytes = 16;  // Far smaller than the job below.
  SpillFlusher flusher(options);
  auto channel = flusher.NewChannel();

  // A single job larger than the whole cap must not deadlock: when
  // nothing is in flight the pool admits it so progress is always
  // possible (the block already exists; refusing it helps no one).
  std::atomic<bool> ran{false};
  channel->Enqueue(
      [&ran]() {
        ran.store(true, std::memory_order_release);
        return true;
      },
      /*bytes=*/1 << 20);
  channel->Wait();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(flusher.stats().inflight_bytes, 0u);
}

TEST(SpillFlusherTest, FailedJobPoisonsItsChannelOnly) {
  SpillFlusher::Options options;
  options.threads = 2;
  SpillFlusher flusher(options);
  auto poisoned = flusher.NewChannel();
  auto healthy = flusher.NewChannel();

  std::atomic<int> poisoned_ran{0};
  std::atomic<int> healthy_ran{0};
  poisoned->Enqueue(
      [&poisoned_ran]() {
        poisoned_ran.fetch_add(1);
        return true;
      },
      8);
  poisoned->Enqueue([]() { return false; }, 8);  // The I/O failure.
  for (int i = 0; i < 5; ++i) {
    // Enqueued after the failure: must be skipped, never run — a torn
    // append may not be followed by writes at wrong offsets.
    poisoned->Enqueue(
        [&poisoned_ran]() {
          poisoned_ran.fetch_add(1);
          return true;
        },
        8);
    healthy->Enqueue(
        [&healthy_ran]() {
          healthy_ran.fetch_add(1);
          return true;
        },
        8);
  }
  poisoned->Wait();  // Wait covers skipped jobs too.
  healthy->Wait();

  EXPECT_TRUE(poisoned->failed());
  EXPECT_FALSE(healthy->failed());
  EXPECT_EQ(poisoned_ran.load(), 1);  // Only the pre-failure job ran.
  EXPECT_EQ(healthy_ran.load(), 5);

  const SpillFlusher::Stats stats = flusher.stats();
  // jobs_run counts skipped jobs; async_flushes only successes: 1 run
  // pre-poison + 5 healthy = 6 successes of 12 total jobs.
  EXPECT_EQ(stats.jobs_run, 12u);
  EXPECT_EQ(stats.async_flushes, 6u);
  EXPECT_EQ(stats.inflight_bytes, 0u);  // Skipped bytes released too.
}

TEST(SpillFlusherTest, DestructorDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    SpillFlusher::Options options;
    options.threads = 2;
    SpillFlusher flusher(options);
    auto a = flusher.NewChannel();
    auto b = flusher.NewChannel();
    for (int i = 0; i < 50; ++i) {
      a->Enqueue(
          [&ran]() {
            ran.fetch_add(1);
            return true;
          },
          4);
      b->Enqueue(
          [&ran]() {
            ran.fetch_add(1);
            return true;
          },
          4);
    }
    // No Wait: the destructor must finish every queued job before joining
    // (spill blocks whose writes it carries are not optional).
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(SpillFlusherTest, ZeroThreadOptionStillGetsOneWorker) {
  SpillFlusher::Options options;
  options.threads = 0;  // Clamped to 1.
  SpillFlusher flusher(options);
  EXPECT_EQ(flusher.threads(), 1u);
  auto channel = flusher.NewChannel();
  std::atomic<bool> ran{false};
  channel->Enqueue(
      [&ran]() {
        ran.store(true);
        return true;
      },
      1);
  channel->Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace storage
}  // namespace impatience
