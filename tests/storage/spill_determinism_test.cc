// Spill determinism: an ImpatienceSorter with the disk tier engaged must
// emit byte-identical output to the pure in-RAM sorter — same elements,
// same order on every cross-run tie — under forced spilling (budget 1,
// checked every push), under a small budget, across adversarial disorder
// shapes, across merge policies, and across thread-pool sizes. Plus the
// acceptance property: a session whose run bytes exceed 8x the budget
// completes with the sorter's resident footprint bounded near the budget.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "sort/impatience_sorter.h"
#include "storage/spill_flusher.h"
#include "storage/spill_governor.h"

namespace impatience {
namespace {

// Timestamp plus a globally unique tag (as in loser_tree_test.cc): the
// sorter orders by `time` only, so the tag pins down the exact order a
// merge produced on ties — which is what byte-identity means.
struct Tagged {
  int64_t time;
  uint32_t tag;
  bool operator==(const Tagged&) const = default;
};

struct TaggedTimeOf {
  Timestamp operator()(const Tagged& e) const {
    return static_cast<Timestamp>(e.time);
  }
};

using SpillSorter = ImpatienceSorter<Tagged, TaggedTimeOf>;

// Streaming disorder families, the push-time counterparts of the run-shape
// corpus in loser_tree_test.cc.
enum class StreamShape {
  kRandom,    // Bounded random disorder window, heavy ties.
  kAllTies,   // One value repeated: order is pure tie-breaking.
  kSorted,    // Already in order: lone-run fast paths.
  kPlateaus,  // Long stretches of near-equal times.
  kSpikes,    // Mostly in order with occasional deep stragglers.
};

const char* StreamShapeName(StreamShape s) {
  switch (s) {
    case StreamShape::kRandom: return "random";
    case StreamShape::kAllTies: return "all_ties";
    case StreamShape::kSorted: return "sorted";
    case StreamShape::kPlateaus: return "plateaus";
    case StreamShape::kSpikes: return "spikes";
  }
  return "?";
}

const StreamShape kAllStreamShapes[] = {
    StreamShape::kRandom, StreamShape::kAllTies, StreamShape::kSorted,
    StreamShape::kPlateaus, StreamShape::kSpikes};

int64_t NextTime(StreamShape shape, Rng& rng, int64_t now) {
  switch (shape) {
    case StreamShape::kRandom:
      return now + static_cast<int64_t>(rng.NextBelow(64)) - 20;
    case StreamShape::kAllTies:
      return 1 << 20;  // Above every punctuation: nothing dropped late.
    case StreamShape::kSorted:
      return now;
    case StreamShape::kPlateaus:
      return (now / 100) * 100 + static_cast<int64_t>(rng.NextBelow(3));
    case StreamShape::kSpikes:
      return rng.NextBelow(10) == 0
                 ? now - static_cast<int64_t>(rng.NextBelow(25))
                 : now;
  }
  return now;
}

// Drives one sorter through the punctuation stress and returns everything
// it emitted. Identical (shape, seed) means an identical push/punctuation
// sequence, so outputs are directly comparable across configurations.
std::vector<Tagged> RunSession(SpillSorter* sorter, StreamShape shape,
                               uint64_t seed, size_t steps = 3000) {
  Rng rng(seed);
  int64_t now = 0;
  uint32_t tag = 0;
  std::vector<Tagged> out;
  for (size_t step = 0; step < steps; ++step) {
    sorter->Push(Tagged{NextTime(shape, rng, now), tag++});
    ++now;
    if (shape != StreamShape::kAllTies && rng.NextBelow(50) == 0) {
      sorter->OnPunctuation(now - 30, &out);
    }
  }
  sorter->Flush(&out);
  return out;
}

ImpatienceConfig InMemoryConfig() {
  ImpatienceConfig config;
  // Immune to the forced-spill CI pass: this arm is the in-RAM reference
  // even when IMPATIENCE_MEMORY_BUDGET is set in the environment.
  config.spill.use_env_default = false;
  return config;
}

// Budget 1, checked at every push, no minimum run size: every run that can
// move to disk does, immediately.
ImpatienceConfig ForcedSpillConfig() {
  ImpatienceConfig config = InMemoryConfig();
  config.spill.memory_budget = 1;
  config.spill.check_period = 1;
  config.spill.min_spill_bytes = 0;
  config.spill.block_bytes = 1024;  // Many blocks per run.
  return config;
}

ImpatienceConfig TinyBudgetConfig() {
  ImpatienceConfig config = InMemoryConfig();
  config.spill.memory_budget = 16 << 10;
  config.spill.check_period = 8;
  config.spill.block_bytes = 4096;
  return config;
}

// The headline contract: forced and tiny-budget spilling are
// byte-identical to the in-RAM sorter on every shape and seed, and the
// forced arm actually exercised the disk tier.
TEST(SpillDeterminismTest, ByteIdenticalAcrossBudgetsAndShapes) {
  for (const StreamShape shape : kAllStreamShapes) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      SpillSorter ram_sorter(InMemoryConfig());
      SpillSorter forced_sorter(ForcedSpillConfig());
      SpillSorter tiny_sorter(TinyBudgetConfig());

      const std::vector<Tagged> want =
          RunSession(&ram_sorter, shape, 100 + seed);
      const std::vector<Tagged> forced =
          RunSession(&forced_sorter, shape, 100 + seed);
      const std::vector<Tagged> tiny =
          RunSession(&tiny_sorter, shape, 100 + seed);

      ASSERT_EQ(forced, want)
          << StreamShapeName(shape) << " seed=" << seed << " (forced)";
      ASSERT_EQ(tiny, want)
          << StreamShapeName(shape) << " seed=" << seed << " (tiny)";
      EXPECT_EQ(ram_sorter.counters().runs_spilled, 0u);
      EXPECT_GT(forced_sorter.counters().runs_spilled, 0u)
          << StreamShapeName(shape) << " seed=" << seed;
      EXPECT_GT(forced_sorter.counters().spill_bytes_written, 0u);
      // Merges that touched spilled runs recorded their fan-in.
      EXPECT_GT(forced_sorter.counters().spill_merge_fanin.count(), 0u);
    }
  }
}

// Same contract under the kLoserTree merge policy — the cursor-based
// spill merge must compose with the k-way tournament path.
TEST(SpillDeterminismTest, ByteIdenticalUnderLoserTreePolicy) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    ImpatienceConfig ram = InMemoryConfig();
    ram.merge_policy = MergePolicy::kLoserTree;
    ImpatienceConfig forced = ForcedSpillConfig();
    forced.merge_policy = MergePolicy::kLoserTree;

    SpillSorter ram_sorter(ram);
    SpillSorter forced_sorter(forced);
    const std::vector<Tagged> want =
        RunSession(&ram_sorter, StreamShape::kRandom, 200 + seed);
    const std::vector<Tagged> got =
        RunSession(&forced_sorter, StreamShape::kRandom, 200 + seed);
    ASSERT_EQ(got, want) << "seed=" << seed;
    EXPECT_GT(forced_sorter.counters().runs_spilled, 0u);
  }
}

// Thread-pool invariance: the spilled output must not depend on the pool
// the parallel merge paths run on (1, 2, and 8 threads), mirroring the
// parallel-merge byte-identity test in loser_tree_test.cc.
TEST(SpillDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    SpillSorter ram_sorter(InMemoryConfig());
    const std::vector<Tagged> want =
        RunSession(&ram_sorter, StreamShape::kRandom, 300 + seed);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ThreadPool pool(threads);
      ImpatienceConfig config = ForcedSpillConfig();
      config.thread_pool = &pool;
      config.parallel_merge_min_runs = 2;
      config.parallel_merge_min_bytes = 0;
      SpillSorter sorter(config);
      const std::vector<Tagged> got =
          RunSession(&sorter, StreamShape::kRandom, 300 + seed);
      ASSERT_EQ(got, want) << "threads=" << threads << " seed=" << seed;
      EXPECT_GT(sorter.counters().runs_spilled, 0u);
    }
  }
}

// Write-behind invariance: the async spill pipeline must be byte-identical
// to the in-RAM sorter at 1, 2, and 8 flusher threads — block writes and
// merge read-ahead move off the sorter thread, but which bytes come back,
// and in what order, cannot change.
TEST(SpillDeterminismTest, ByteIdenticalAcrossFlusherThreadCounts) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    SpillSorter ram_sorter(InMemoryConfig());
    const std::vector<Tagged> want =
        RunSession(&ram_sorter, StreamShape::kRandom, 400 + seed);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      storage::SpillFlusher::Options fo;
      fo.threads = threads;
      storage::SpillFlusher flusher(fo);
      ImpatienceConfig config = ForcedSpillConfig();
      config.spill.flusher = &flusher;
      {
        // Scoped: runs hold flusher channels, so the sorter must go first.
        SpillSorter sorter(config);
        const std::vector<Tagged> got =
            RunSession(&sorter, StreamShape::kRandom, 400 + seed);
        ASSERT_EQ(got, want)
            << "flusher_threads=" << threads << " seed=" << seed;
        EXPECT_GT(sorter.counters().runs_spilled, 0u);
        // Blocks really went through the pool, not the inline path.
        EXPECT_GT(sorter.counters().async_flushes, 0u)
            << "flusher_threads=" << threads;
      }
      EXPECT_GT(flusher.stats().async_flushes, 0u);
      EXPECT_EQ(flusher.stats().inflight_bytes, 0u);
    }
  }
}

// A starved in-flight cap forces enqueue backpressure on nearly every
// sealed block — the sorter stalls instead of buffering unbounded RAM,
// and the output is still byte-identical.
TEST(SpillDeterminismTest, ByteIdenticalUnderFlusherBackpressure) {
  SpillSorter ram_sorter(InMemoryConfig());
  const std::vector<Tagged> want =
      RunSession(&ram_sorter, StreamShape::kRandom, 500);

  storage::SpillFlusher::Options fo;
  fo.threads = 1;
  fo.max_inflight_bytes = 64;  // Smaller than any sealed block.
  storage::SpillFlusher flusher(fo);
  ImpatienceConfig config = ForcedSpillConfig();
  config.spill.flusher = &flusher;
  {
    SpillSorter sorter(config);
    const std::vector<Tagged> got =
        RunSession(&sorter, StreamShape::kRandom, 500);
    ASSERT_EQ(got, want);
    EXPECT_GT(sorter.counters().async_flushes, 0u);
  }
  EXPECT_GT(flusher.stats().backpressure_waits, 0u);
}

// Full tentpole composition: a governor assigning spill targets from its
// asynchronous tick thread plus a flusher pool writing behind — when the
// spills happen shifts with timing, but the emitted bytes may not.
TEST(SpillDeterminismTest, ByteIdenticalUnderGovernorAndFlusher) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    SpillSorter ram_sorter(InMemoryConfig());

    storage::SpillGovernor::Options go;
    go.memory_budget = 16 << 10;
    go.tick_period_us = 500;  // Aggressive ticking during the session.
    storage::SpillGovernor governor(go);
    storage::SpillFlusher::Options fo;
    fo.threads = 2;
    storage::SpillFlusher flusher(fo);

    ImpatienceConfig config = InMemoryConfig();
    config.spill.check_period = 8;
    config.spill.min_spill_bytes = 0;
    config.spill.block_bytes = 1024;
    config.spill.governor = &governor;  // Budget comes from the governor.
    config.spill.flusher = &flusher;
    {
      // The sorter unregisters its governor client on destruction, so it
      // must not outlive the governor (scoped here to enforce that).
      SpillSorter sorter(config);
      Rng rng(600 + seed);
      int64_t now = 0;
      uint32_t tag = 0;
      std::vector<Tagged> got;
      for (size_t step = 0; step < 3000; ++step) {
        sorter.Push(
            Tagged{NextTime(StreamShape::kRandom, rng, now), tag++});
        ++now;
        // Standalone sorters poll the governor's mailbox between pushes
        // (the server does this via maintenance frames).
        if (step % 64 == 63) sorter.PerformSpillMaintenance();
        if (rng.NextBelow(50) == 0) sorter.OnPunctuation(now - 30, &got);
      }
      sorter.Flush(&got);
      // Replay the reference with the identical push/punctuation script.
      Rng ref_rng(600 + seed);
      now = 0;
      tag = 0;
      std::vector<Tagged> ref;
      for (size_t step = 0; step < 3000; ++step) {
        ram_sorter.Push(
            Tagged{NextTime(StreamShape::kRandom, ref_rng, now), tag++});
        ++now;
        if (ref_rng.NextBelow(50) == 0) {
          ram_sorter.OnPunctuation(now - 30, &ref);
        }
      }
      ram_sorter.Flush(&ref);
      ASSERT_EQ(got, ref) << "seed=" << seed;
      EXPECT_GT(sorter.counters().runs_spilled, 0u) << "seed=" << seed;
    }
  }
}

// Disk compaction rides maintenance: with the thresholds floored, every
// punctuation rewrites run files whose emitted prefix still occupies disk,
// and the rewritten files keep serving byte-identical merges.
TEST(SpillDeterminismTest, ByteIdenticalWithAggressiveDiskCompaction) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    SpillSorter ram_sorter(InMemoryConfig());
    const std::vector<Tagged> want =
        RunSession(&ram_sorter, StreamShape::kRandom, 700 + seed);

    ImpatienceConfig config = ForcedSpillConfig();
    config.spill.compact_min_disk_bytes = 1;  // Any reclaimable byte.
    config.spill.compact_disk_fraction = 0.0;
    SpillSorter sorter(config);
    const std::vector<Tagged> got =
        RunSession(&sorter, StreamShape::kRandom, 700 + seed);
    ASSERT_EQ(got, want) << "seed=" << seed;
    EXPECT_GT(sorter.counters().spill_compactions, 0u) << "seed=" << seed;
  }
}

// Acceptance: a session whose spilled bytes exceed 8x the budget completes
// byte-identical to the in-RAM path while the sorter's resident footprint
// stays bounded near the budget — external-memory behaviour, not just
// correctness. The slack term covers what the policy cannot shed: one
// pending partial block plus one load buffer per live spilled run, and the
// warm merge scratch the next punctuation reuses.
TEST(SpillAcceptanceTest, EightTimesBudgetSessionRunsBounded) {
  constexpr size_t kBudget = 64 << 10;
  constexpr size_t kBlock = 1024;
  constexpr size_t kSteps = 60000;  // 60k * 16 B = 960 KiB = 15x budget.

  ImpatienceConfig config = InMemoryConfig();
  config.spill.memory_budget = kBudget;
  config.spill.check_period = 1;  // Enforce the budget at every push.
  config.spill.min_spill_bytes = 0;
  config.spill.block_bytes = kBlock;

  SpillSorter sorter(config);
  SpillSorter ram_sorter(InMemoryConfig());

  Rng rng(7);
  int64_t now = 0;
  uint32_t tag = 0;
  std::vector<Tagged> out;
  std::vector<Tagged> want;
  size_t peak = 0;
  for (size_t step = 0; step < kSteps; ++step) {
    const Tagged e{now + static_cast<int64_t>(rng.NextBelow(64)) - 20,
                   tag++};
    sorter.Push(e);
    ram_sorter.Push(e);
    ++now;
    peak = std::max(peak, sorter.MemoryBytes());
    // Punctuate rarely: most of the session is buffered at once, so the
    // in-RAM arm really holds hundreds of KiB while the spilling arm must
    // not.
    if (step % 30000 == 29999) {
      sorter.OnPunctuation(now - 5000, &out);
      ram_sorter.OnPunctuation(now - 5000, &want);
    }
  }
  sorter.Flush(&out);
  ram_sorter.Flush(&want);

  ASSERT_EQ(out, want);
  ASSERT_EQ(out.size(), kSteps);  // Nothing dropped late in either arm.

  const ImpatienceCounters& counters = sorter.counters();
  EXPECT_GT(counters.runs_spilled, 0u);
  // The session moved more than 8x the budget through the disk tier.
  EXPECT_GT(counters.spill_bytes_written, 8 * kBudget);
  EXPECT_GT(counters.spill_read_bytes, 0u);
  EXPECT_GT(counters.spill_merge_fanin.count(), 0u);

  // Residency bound: the budget plus bounded per-run slack. The in-RAM arm
  // peaks at the full session size, so also require a real separation.
  EXPECT_LE(peak, kBudget + kBudget / 2) << "resident peak above budget";
  EXPECT_GE(ram_sorter.counters().pushes * sizeof(Tagged),
            8 * kBudget);  // The workload really was external-memory scale.
}

}  // namespace
}  // namespace impatience
