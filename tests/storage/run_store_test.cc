// Run-file and RunStore recovery properties: block round-trips, the
// longest-intact-prefix guarantee under the shared corruption corpus
// (every truncation and byte-flip of a valid file), manifest replay
// (begin/commit/advance/delete, torn tails), and scripted WriteFault kill
// points — after any crash, recovery must surface a prefix of what was
// appended, never an invented or reordered record.

#include "storage/run_store.h"

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/run_file.h"
#include "storage/spill.h"
#include "tests/testing/corrupt_corpus.h"

namespace impatience {
namespace storage {
namespace {

// A fresh directory under TMPDIR for each test; removed with its contents
// on destruction so repeated runs never see stale state.
class TempDir {
 public:
  TempDir() {
    const char* base = getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/rstest-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    path_ = mkdtemp(buf.data());
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> PayloadOf(const std::vector<int64_t>& values) {
  std::vector<uint8_t> payload(values.size() * sizeof(int64_t));
  std::memcpy(payload.data(), values.data(), payload.size());
  return payload;
}

// Writes `blocks` blocks of `per_block` consecutive int64 records starting
// at 0. Returns the file path.
std::string WriteRunFile(const TempDir& dir, size_t blocks, size_t per_block,
                         WriteFault* fault = nullptr) {
  const std::string path = dir.path() + "/run-test.rf";
  std::string error;
  auto writer =
      RunFileWriter::Create(path, sizeof(int64_t), /*run_id=*/9, fault,
                            &error);
  EXPECT_NE(writer, nullptr) << error;
  int64_t next = 0;
  for (size_t b = 0; b < blocks; ++b) {
    std::vector<int64_t> values;
    for (size_t i = 0; i < per_block; ++i) values.push_back(next++);
    EXPECT_TRUE(writer->AppendBlock(PayloadOf(values).data(),
                                    static_cast<uint32_t>(per_block),
                                    &error))
        << error;
  }
  return path;
}

// Reads every intact record back via the sequential reader.
std::vector<int64_t> ReadAllRecords(const std::string& path) {
  std::vector<int64_t> out;
  std::string error;
  auto reader = RunFileReader::Open(path, &error);
  if (reader == nullptr) return out;
  std::vector<uint8_t> payload;
  uint32_t count = 0;
  while (reader->NextBlock(&payload, &count) == BlockReadStatus::kOk) {
    const size_t have = out.size();
    out.resize(have + count);
    std::memcpy(out.data() + have, payload.data(),
                static_cast<size_t>(count) * sizeof(int64_t));
  }
  return out;
}

TEST(RunFileTest, BlockRoundTrip) {
  TempDir dir;
  const std::string path = WriteRunFile(dir, /*blocks=*/4, /*per_block=*/7);
  std::string error;
  auto reader = RunFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_EQ(reader->record_size(), sizeof(int64_t));
  EXPECT_EQ(reader->run_id(), 9u);
  const std::vector<int64_t> got = ReadAllRecords(path);
  ASSERT_EQ(got.size(), 28u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<int64_t>(i));
  }

  uint64_t records = 0, bytes = 0;
  uint32_t record_size = 0;
  uint64_t run_id = 0;
  ASSERT_TRUE(ScanRunFile(path, /*truncate=*/false, &records, &bytes,
                          &record_size, &run_id, &error))
      << error;
  EXPECT_EQ(records, 28u);
  EXPECT_EQ(record_size, sizeof(int64_t));
  EXPECT_EQ(run_id, 9u);
  EXPECT_EQ(bytes, kRunFileHeaderBytes +
                       4 * (kRunBlockHeaderBytes + 7 * sizeof(int64_t)));
}

// Every truncation of a valid run file must recover exactly the blocks
// that lie fully inside the cut — the longest intact prefix — and the
// recovered values must be the original prefix, element for element.
TEST(RunFileTest, TruncationsRecoverLongestIntactPrefix) {
  TempDir dir;
  const size_t kPerBlock = 5;
  const std::string path = WriteRunFile(dir, /*blocks=*/6, kPerBlock);
  const std::vector<uint8_t> golden = testing::FileBytesOf(path);
  ASSERT_FALSE(golden.empty());
  const size_t block_bytes = kRunBlockHeaderBytes + kPerBlock * sizeof(int64_t);

  const std::string victim = dir.path() + "/victim.rf";
  for (const auto& cut : testing::TruncationsOf(golden, /*step=*/3)) {
    ASSERT_TRUE(testing::WriteFileBytes(victim, cut));
    uint64_t records = 0, bytes = 0;
    uint32_t record_size = 0;
    std::string error;
    const bool ok = ScanRunFile(victim, /*truncate=*/true, &records, &bytes,
                                &record_size, nullptr, &error);
    if (cut.size() < kRunFileHeaderBytes) {
      // Not even a file header: nothing recoverable.
      EXPECT_FALSE(ok) << "cut=" << cut.size();
      continue;
    }
    ASSERT_TRUE(ok) << "cut=" << cut.size() << ": " << error;
    const uint64_t whole_blocks =
        (cut.size() - kRunFileHeaderBytes) / block_bytes;
    EXPECT_EQ(records, whole_blocks * kPerBlock) << "cut=" << cut.size();
    EXPECT_EQ(bytes, kRunFileHeaderBytes + whole_blocks * block_bytes);
    const std::vector<int64_t> got = ReadAllRecords(victim);
    ASSERT_EQ(got.size(), records);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<int64_t>(i)) << "cut=" << cut.size();
    }
  }
}

// Every single-byte flip: recovery must never crash, never invent records,
// and must stop at or before the flipped block. Flips inside a payload or
// a CRC'd header field cut the prefix there; flips in an unchecksummed
// reserved field may pass, but then the data must be untouched.
TEST(RunFileTest, ByteFlipsNeverYieldCorruptRecords) {
  TempDir dir;
  const size_t kPerBlock = 5;
  const std::string path = WriteRunFile(dir, /*blocks=*/4, kPerBlock);
  const std::vector<uint8_t> golden = testing::FileBytesOf(path);
  const size_t block_bytes = kRunBlockHeaderBytes + kPerBlock * sizeof(int64_t);

  const std::string victim = dir.path() + "/victim.rf";
  size_t at = 0;
  for (const auto& flipped : testing::ByteFlipsOf(golden, /*stride=*/2)) {
    const size_t offset = at;
    at += 2;
    ASSERT_TRUE(testing::WriteFileBytes(victim, flipped));
    uint64_t records = 0, bytes = 0;
    uint32_t record_size = 0;
    std::string error;
    const bool ok = ScanRunFile(victim, /*truncate=*/false, &records, &bytes,
                                &record_size, nullptr, &error);
    if (offset < kRunFileHeaderBytes) {
      // File-header damage: the scan either rejects the file outright or
      // (reserved bytes) sees it unharmed.
      if (!ok) continue;
    }
    ASSERT_TRUE(ok) << "offset=" << offset << ": " << error;
    const std::vector<int64_t> got = ReadAllRecords(victim);
    ASSERT_LE(got.size(), 20u);
    // Whatever survived must be the original prefix, bit for bit.
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<int64_t>(i)) << "offset=" << offset;
    }
    if (offset >= kRunFileHeaderBytes) {
      // The blocks strictly before the flipped one must all survive.
      const size_t flipped_block =
          (offset - kRunFileHeaderBytes) / block_bytes;
      EXPECT_GE(got.size(), flipped_block * kPerBlock)
          << "offset=" << offset;
    }
  }
}

TEST(RunStoreTest, ManifestRoundTripAndDelete) {
  TempDir dir;
  RunStoreOptions options;
  options.dir = dir.path() + "/store";
  options.fsync = false;  // Tests exercise logic, not the disk.
  std::string error;
  auto store = RunStore::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;

  // Two runs; the second is deleted.
  uint64_t id1 = 0, id2 = 0;
  auto w1 = store->BeginRun(sizeof(int64_t), &id1, &error);
  ASSERT_NE(w1, nullptr) << error;
  std::vector<int64_t> values = {1, 2, 3};
  ASSERT_TRUE(w1->AppendBlock(PayloadOf(values).data(), 3, &error));
  ASSERT_TRUE(store->CommitRun(id1, 3, &error));
  ASSERT_TRUE(store->AdvanceHead(id1, 1, &error));
  auto w2 = store->BeginRun(sizeof(int64_t), &id2, &error);
  ASSERT_NE(w2, nullptr) << error;
  ASSERT_TRUE(w2->AppendBlock(PayloadOf(values).data(), 3, &error));
  w1.reset();
  w2.reset();
  ASSERT_TRUE(store->DeleteRun(id2, &error));
  store.reset();

  // Reopen: only run 1 is live, with its durable head.
  store = RunStore::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  std::vector<RecoveredRun> runs;
  RecoveryStats stats;
  ASSERT_TRUE(store->Recover(&runs, &stats, &error)) << error;
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].id, id1);
  EXPECT_EQ(runs[0].records, 3u);
  EXPECT_EQ(runs[0].head, 1u);
  EXPECT_TRUE(runs[0].committed);
  EXPECT_EQ(stats.live_runs, 1u);
  EXPECT_EQ(stats.torn_runs, 0u);
  EXPECT_FALSE(stats.manifest_truncated);

  // Replay skips the emitted prefix.
  std::vector<int64_t> replayed;
  ASSERT_TRUE(ReplayRecoveredRun<int64_t>(
      runs[0], [&](const int64_t& v) { replayed.push_back(v); }, nullptr,
      &error))
      << error;
  EXPECT_EQ(replayed, (std::vector<int64_t>{2, 3}));

  // New run ids never collide with recovered ones.
  uint64_t id3 = 0;
  auto w3 = store->BeginRun(sizeof(int64_t), &id3, &error);
  ASSERT_NE(w3, nullptr);
  EXPECT_GT(id3, id2);
}

// A fully-advanced run is garbage-collected by recovery itself, and a
// second recovery converges (no live runs, no torn state).
TEST(RunStoreTest, FullyEmittedRunIsDroppedOnRecovery) {
  TempDir dir;
  RunStoreOptions options;
  options.dir = dir.path() + "/store";
  options.fsync = false;
  std::string error;
  auto store = RunStore::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  uint64_t id = 0;
  auto w = store->BeginRun(sizeof(int64_t), &id, &error);
  std::vector<int64_t> values = {4, 5};
  ASSERT_TRUE(w->AppendBlock(PayloadOf(values).data(), 2, &error));
  ASSERT_TRUE(store->AdvanceHead(id, 2, &error));
  w.reset();
  store.reset();

  store = RunStore::Open(options, &error);
  std::vector<RecoveredRun> runs;
  RecoveryStats stats;
  ASSERT_TRUE(store->Recover(&runs, &stats, &error)) << error;
  EXPECT_TRUE(runs.empty());
  ASSERT_TRUE(store->Recover(&runs, &stats, &error)) << error;
  EXPECT_TRUE(runs.empty());
  EXPECT_EQ(stats.live_runs, 0u);
}

// Torn manifest tails (any truncation) must be cut back to whole intact
// records, and every record before the cut must still apply.
TEST(RunStoreTest, TornManifestTailIsTruncated) {
  TempDir dir;
  RunStoreOptions options;
  options.dir = dir.path() + "/store";
  options.fsync = false;
  std::string error;
  auto store = RunStore::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  uint64_t id = 0;
  auto w = store->BeginRun(sizeof(int64_t), &id, &error);
  std::vector<int64_t> values = {7, 8, 9};
  ASSERT_TRUE(w->AppendBlock(PayloadOf(values).data(), 3, &error));
  ASSERT_TRUE(store->CommitRun(id, 3, &error));
  w.reset();
  store.reset();

  const std::string manifest = options.dir + "/MANIFEST";
  const std::vector<uint8_t> golden = testing::FileBytesOf(manifest);
  ASSERT_EQ(golden.size() % kManifestRecordBytes, 0u);

  for (const auto& cut : testing::TruncationsOf(golden, /*step=*/13)) {
    ASSERT_TRUE(testing::WriteFileBytes(manifest, cut));
    store = RunStore::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    std::vector<RecoveredRun> runs;
    RecoveryStats stats;
    ASSERT_TRUE(store->Recover(&runs, &stats, &error))
        << "cut=" << cut.size() << ": " << error;
    const size_t whole = cut.size() / kManifestRecordBytes;
    EXPECT_EQ(stats.manifest_truncated, cut.size() % kManifestRecordBytes != 0)
        << "cut=" << cut.size();
    if (whole == 0) {
      EXPECT_TRUE(runs.empty());
    } else {
      // The begin record survived: the run is live with every record the
      // (untouched) run file holds.
      ASSERT_EQ(runs.size(), 1u) << "cut=" << cut.size();
      EXPECT_EQ(runs[0].records, 3u);
    }
    store.reset();
    // Restore the full manifest for the next variant (recovery truncated
    // the file in place).
    ASSERT_TRUE(testing::WriteFileBytes(manifest, golden));
  }
}

// Scripted kill points: arm the fault at every byte boundary across a
// multi-block append sequence. Whatever the crash left behind, recovery
// yields a prefix of the appended records — nothing invented, nothing
// reordered, and at least the blocks fully written before the kill.
TEST(RunStoreTest, WriteFaultKillPointsRecoverPrefix) {
  const size_t kPerBlock = 4;
  const size_t kBlocks = 5;
  const size_t block_bytes = kRunBlockHeaderBytes + kPerBlock * sizeof(int64_t);
  const size_t total_bytes = kRunFileHeaderBytes + kBlocks * block_bytes;

  for (size_t kill = 0; kill <= total_bytes; kill += 7) {
    TempDir dir;
    WriteFault fault;
    fault.Arm(static_cast<int64_t>(kill));
    const std::string path = WriteRunFile(dir, kBlocks, kPerBlock, &fault);

    uint64_t records = 0, bytes = 0;
    uint32_t record_size = 0;
    std::string error;
    const bool ok = ScanRunFile(path, /*truncate=*/true, &records, &bytes,
                                &record_size, nullptr, &error);
    if (kill < kRunFileHeaderBytes) {
      EXPECT_FALSE(ok) << "kill=" << kill;
      continue;
    }
    ASSERT_TRUE(ok) << "kill=" << kill << ": " << error;
    // At least every block fully inside the budget is durable; the block
    // straddling the kill is torn away.
    const uint64_t full_blocks = (kill - kRunFileHeaderBytes) / block_bytes;
    EXPECT_EQ(records, full_blocks * kPerBlock) << "kill=" << kill;
    const std::vector<int64_t> got = ReadAllRecords(path);
    ASSERT_EQ(got.size(), records);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<int64_t>(i)) << "kill=" << kill;
    }
  }
}

// The same kill-point property with the write-behind pipeline: blocks are
// sealed on the producer thread but written by flusher-pool threads, and
// the fault gate's byte budget is consumed concurrently by manifest writes
// and block writes. Whatever instant the budget dies at, recovery must
// surface a contiguous prefix of the appended records — nothing invented,
// nothing reordered — and a second recovery must converge. (TSan owns the
// concurrency assertions; the sweep owns the crash-consistency ones.)
TEST(RunStoreTest, AsyncFlusherKillPointsRecoverPrefix) {
  constexpr size_t kPerBlock = 4;
  constexpr int64_t kRecords = 40;  // 10 blocks through the pool.
  const auto time_of = [](const int64_t& v) {
    return static_cast<Timestamp>(v);
  };

  for (size_t kill = 0; kill <= 700; kill += 23) {
    TempDir dir;
    WriteFault fault;
    fault.Arm(static_cast<int64_t>(kill));
    {
      RunStoreOptions options;
      options.dir = dir.path() + "/store";
      options.fsync = false;
      options.write_fault = &fault;
      std::string error;
      auto store = RunStore::Open(options, &error);
      ASSERT_NE(store, nullptr) << "kill=" << kill << ": " << error;

      SpillFlusher::Options fo;
      fo.threads = 2;
      SpillFlusher flusher(fo);
      uint64_t async_flushes = 0;
      auto run = SpilledRun<int64_t>::Create(store.get(), kPerBlock,
                                             &flusher, &async_flushes,
                                             &error);
      if (run != nullptr) {
        for (int64_t v = 0; v < kRecords; ++v) run->Append(v, time_of);
        run->FlushPending(time_of, /*sync=*/true);
        EXPECT_GT(async_flushes, 0u) << "kill=" << kill;
        // Destroy without reading: once the gate is dead, unwritten
        // blocks are only readable from their in-flight RAM copies, and
        // this models a process that never got to read them.
        run.reset();
      }
      store.reset();
    }

    // Restart: the fault gate is gone, the files are whatever the "crash"
    // left behind.
    RunStoreOptions options;
    options.dir = dir.path() + "/store";
    options.fsync = false;
    std::string error;
    auto store = RunStore::Open(options, &error);
    ASSERT_NE(store, nullptr) << error;
    std::vector<RecoveredRun> runs;
    RecoveryStats stats;
    ASSERT_TRUE(store->Recover(&runs, &stats, &error))
        << "kill=" << kill << ": " << error;
    ASSERT_LE(runs.size(), 1u) << "kill=" << kill;
    std::vector<int64_t> got;
    if (!runs.empty()) {
      ASSERT_TRUE(ReplayRecoveredRun<int64_t>(
          runs[0], [&](const int64_t& v) { got.push_back(v); }, nullptr,
          &error))
          << error;
    }
    ASSERT_LE(got.size(), static_cast<size_t>(kRecords));
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<int64_t>(i)) << "kill=" << kill;
    }
    ASSERT_TRUE(store->Recover(&runs, &stats, &error))
        << "kill=" << kill << " (second recovery): " << error;
  }
}

// The merge-facing read contract of the write-behind path: a cursor over
// a run whose blocks may be on disk, in flight, or still pending must
// return every element in order — the in-flight RAM copies serve reads
// until the pool confirms the write, so consumers never observe the
// asynchrony.
TEST(RunStoreTest, CursorServesInFlightAndDiskBlocksUniformly) {
  TempDir dir;
  RunStoreOptions options;
  options.dir = dir.path() + "/store";
  options.fsync = false;
  std::string error;
  auto store = RunStore::Open(options, &error);
  ASSERT_NE(store, nullptr) << error;
  const auto time_of = [](const int64_t& v) {
    return static_cast<Timestamp>(v);
  };

  SpillFlusher::Options fo;
  fo.threads = 1;
  SpillFlusher flusher(fo);
  uint64_t async_flushes = 0;
  auto run = SpilledRun<int64_t>::Create(store.get(), /*block_records=*/4,
                                         &flusher, &async_flushes, &error);
  ASSERT_NE(run, nullptr) << error;

  // Settle the first block on disk, then append more whose writes may
  // still be in flight (plus a partial pending tail) when the cursor
  // walks the run.
  for (int64_t v = 0; v < 4; ++v) run->Append(v, time_of);
  run->WaitWritesDone();
  for (int64_t v = 4; v < 18; ++v) run->Append(v, time_of);

  uint64_t read_bytes = 0, hits = 0, misses = 0;
  auto cursor = run->MakeCursor(0, run->size(), &read_bytes, &hits,
                                &misses);
  std::vector<int64_t> got;
  for (auto chunk = cursor->NextChunk(); chunk.first != nullptr;
       chunk = cursor->NextChunk()) {
    got.insert(got.end(), chunk.first, chunk.second);
  }
  ASSERT_EQ(got.size(), 18u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<int64_t>(i));
  }
  cursor.reset();
  run->Discard();
}

}  // namespace
}  // namespace storage
}  // namespace impatience
