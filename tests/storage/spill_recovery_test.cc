// Kill-and-restart recovery through the session shard manager: a manager
// running with a durable spill tier is abandoned mid-session (queues
// closed, workers stopped, pipelines NOT flushed — RAM state lost exactly
// as a kill would lose it), and a new manager on the same spill directory
// must replay precisely the durable run suffixes: every on-disk event not
// already delivered pre-crash is delivered after recovery + flush, no
// event twice, none invented. A second scenario tears the newest run
// file's tail before restart — recovery then yields the longest intact
// prefix, still without duplicates.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/timestamp.h"
#include "server/session_shard_manager.h"
#include "storage/run_store.h"
#include "storage/spill.h"

namespace impatience {
namespace server {
namespace {

class TempDir {
 public:
  TempDir() {
    const char* base = getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/recov-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    path_ = mkdtemp(buf.data());
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr size_t kShards = 2;
constexpr uint64_t kSessions = 4;
constexpr size_t kEventsPerFrame = 100;
constexpr size_t kFrames = 200;  // 20k events, ~960 KiB of Event payload.
constexpr Timestamp kLatency = 4000;

ShardManagerOptions DurableOptions(const std::string& spill_dir,
                                   size_t flusher_threads = 0) {
  ShardManagerOptions options;
  options.num_shards = kShards;
  options.queue_capacity = 64;
  options.backpressure = BackpressurePolicy::kBlock;  // Lossless submit.
  // One band: the sorter's emitted prefix is exactly what the result
  // callback saw, so advanced run heads never hide undelivered events
  // behind a buffering union.
  options.framework.reorder_latencies = {kLatency};
  options.framework.punctuation_period = 64;
  options.framework.sorter_config.spill.check_period = 16;
  options.framework.sorter_config.spill.block_bytes = 4096;
  options.spill_dir = spill_dir;
  options.memory_budget = 32 << 10;  // 16 KiB per shard: forces spilling.
  // >0 routes spill writes through a write-behind flusher pool — the
  // async arms of the kill-and-restart sweep.
  options.spill_flusher_threads = flusher_threads;
  return options;
}

// Events are identified by other_time, stamped with a globally unique
// sequence number at submission; sync_time advances in submission order so
// nothing is ever late pre-crash.
Event MakeEvent(Timestamp sync, uint64_t seq, int32_t key) {
  Event e;
  e.sync_time = sync;
  e.other_time = static_cast<Timestamp>(seq);
  e.key = key;
  e.hash = HashKey(key);
  return e;
}

// Thread-safe id collector for the result callback.
struct Collector {
  std::mutex mu;
  std::vector<uint64_t> ids;

  ResultFn Fn() {
    return [this](size_t, size_t, const Event& e) {
      std::lock_guard<std::mutex> lock(mu);
      ids.push_back(static_cast<uint64_t>(e.other_time));
    };
  }
  std::set<uint64_t> Ids() {
    std::lock_guard<std::mutex> lock(mu);
    return std::set<uint64_t>(ids.begin(), ids.end());
  }
  // Every delivery must be unique — duplicate ids are double emissions.
  void ExpectNoDuplicates(const char* label) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<uint64_t> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end())
        << label;
  }
};

// Submits the whole session stream: frames round-robin across sessions,
// globally increasing sync_time, unique sequence ids 0..N-1.
void SubmitAll(SessionShardManager* manager) {
  uint64_t seq = 0;
  for (size_t f = 0; f < kFrames; ++f) {
    Frame frame;
    frame.type = FrameType::kEvents;
    frame.session_id = 1 + (f % kSessions);
    for (size_t i = 0; i < kEventsPerFrame; ++i) {
      frame.events.push_back(
          MakeEvent(static_cast<Timestamp>(seq), seq,
                    static_cast<int32_t>(frame.session_id)));
      ++seq;
    }
    const QueuePush push = manager->Submit(std::move(frame)).push;
    ASSERT_TRUE(push == QueuePush::kOk || push == QueuePush::kBlocked);
  }
}

// Reads the durable event ids straight from the on-disk stores, the same
// way shard recovery will: manifest replay, torn-tail truncation, then the
// un-emitted suffix [head, records) of every live run.
std::set<uint64_t> DurableIds(const std::string& spill_dir) {
  std::set<uint64_t> ids;
  for (size_t shard = 0; shard < kShards; ++shard) {
    storage::RunStoreOptions options;
    options.dir = spill_dir + "/shard-" + std::to_string(shard);
    std::string error;
    std::unique_ptr<storage::RunStore> store =
        storage::RunStore::Open(options, &error);
    if (store == nullptr) continue;  // Shard never spilled.
    std::vector<storage::RecoveredRun> runs;
    storage::RecoveryStats stats;
    EXPECT_TRUE(store->Recover(&runs, &stats, &error)) << error;
    for (const storage::RecoveredRun& run : runs) {
      EXPECT_TRUE(storage::ReplayRecoveredRun<Event>(
          run,
          [&](const Event& e) {
            // Durable ids are unique: one event never lands in two runs.
            EXPECT_TRUE(
                ids.insert(static_cast<uint64_t>(e.other_time)).second)
                << "id " << e.other_time << " in two runs";
          },
          nullptr, &error))
          << error;
    }
  }
  return ids;
}

// Truncates the largest run file under the spill tree by `cut` bytes,
// simulating a write torn by the kill. Returns true if a file was cut.
bool TearLargestRunFile(const std::string& spill_dir, off_t cut) {
  std::string victim;
  off_t victim_size = 0;
  for (size_t shard = 0; shard < kShards; ++shard) {
    const std::string dir = spill_dir + "/shard-" + std::to_string(shard);
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) continue;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.rfind("run-", 0) != 0) continue;
      const std::string path = dir + "/" + name;
      struct stat st;
      if (::stat(path.c_str(), &st) == 0 && st.st_size > victim_size) {
        victim = path;
        victim_size = st.st_size;
      }
    }
    ::closedir(d);
  }
  if (victim.empty() || victim_size <= cut) return false;
  return ::truncate(victim.c_str(), victim_size - cut) == 0;
}

uint64_t SumRecovered(const std::vector<ShardMetrics>& shards,
                      uint64_t* runs_recovered) {
  uint64_t events = 0;
  *runs_recovered = 0;
  for (const ShardMetrics& m : shards) {
    events += m.events_recovered;
    *runs_recovered += m.runs_recovered;
  }
  return events;
}

void RunKillRestartScenario(bool tear_tail, size_t flusher_threads = 0) {
  TempDir dir;
  const std::string spill_dir = dir.path() + "/spill";

  // Phase 1: ingest under a tiny budget, then crash without flushing.
  Collector before;
  auto manager = std::make_unique<SessionShardManager>(
      DurableOptions(spill_dir, flusher_threads), before.Fn());
  SubmitAll(manager.get());
  uint64_t spilled = 0;
  for (const ShardMetrics& m : manager->SnapshotShards()) {
    spilled += m.sorter.runs_spilled;
  }
  ASSERT_GT(spilled, 0u) << "budget never forced a spill";
  manager->AbandonForTest();
  manager.reset();
  before.ExpectNoDuplicates("pre-crash emissions");
  const std::set<uint64_t> emitted = before.Ids();
  ASSERT_GT(emitted.size(), 0u);
  ASSERT_LT(emitted.size(), kFrames * kEventsPerFrame);

  if (tear_tail) {
    // The kill also tore the newest block: recovery must fall back to the
    // longest intact prefix of that file.
    ASSERT_TRUE(TearLargestRunFile(spill_dir, /*cut=*/5));
  }

  // The durable contract, computed independently of the shard manager.
  const std::set<uint64_t> durable = DurableIds(spill_dir);
  ASSERT_GT(durable.size(), 0u);
  for (const uint64_t id : durable) {
    EXPECT_EQ(emitted.count(id), 0u)
        << "id " << id << " both emitted pre-crash and still live on disk";
  }

  // Phase 2: restart on the same directory. Construction replays the
  // durable suffixes through the normal ingress path; Shutdown flushes.
  Collector after;
  auto restarted = std::make_unique<SessionShardManager>(
      DurableOptions(spill_dir, flusher_threads), after.Fn());
  restarted->Shutdown();
  uint64_t runs_recovered = 0;
  uint64_t events_recovered = 0;
  uint64_t dropped_late = 0;
  const std::vector<ShardMetrics> shards = restarted->SnapshotShards();
  events_recovered = SumRecovered(shards, &runs_recovered);
  for (const ShardMetrics& m : shards) dropped_late += m.dropped_late;
  restarted.reset();

  after.ExpectNoDuplicates("post-recovery emissions");
  const std::set<uint64_t> replayed = after.Ids();

  // Replay surfaced exactly the durable set: nothing lost, nothing
  // invented, and the per-shard counters agree.
  EXPECT_EQ(replayed, durable);
  EXPECT_GT(runs_recovered, 0u);
  EXPECT_EQ(events_recovered, durable.size());
  EXPECT_EQ(dropped_late, 0u);

  // No duplicates across the crash boundary, and every delivered id is a
  // submitted one.
  for (const uint64_t id : replayed) {
    EXPECT_EQ(emitted.count(id), 0u) << "id " << id << " delivered twice";
    EXPECT_LT(id, kFrames * kEventsPerFrame);
  }
  for (const uint64_t id : emitted) {
    EXPECT_LT(id, kFrames * kEventsPerFrame);
  }
}

TEST(SpillRecoveryTest, KillAndRestartReplaysDurableSuffixExactly) {
  RunKillRestartScenario(/*tear_tail=*/false);
}

TEST(SpillRecoveryTest, TornTailRecoversLongestIntactPrefix) {
  RunKillRestartScenario(/*tear_tail=*/true);
}

// The same two scenarios with the write-behind flusher pool carrying the
// spill writes: the crash boundary now cuts across flusher threads, the
// shared-budget governor, and maintenance frames, and recovery must still
// deliver exactly the durable suffix — no loss, no duplicates.
TEST(SpillRecoveryTest, KillAndRestartWithWriteBehindFlusherPool) {
  RunKillRestartScenario(/*tear_tail=*/false, /*flusher_threads=*/2);
}

TEST(SpillRecoveryTest, TornTailWithWriteBehindFlusherPool) {
  RunKillRestartScenario(/*tear_tail=*/true, /*flusher_threads=*/2);
}

// A clean shutdown leaves nothing to recover: the flush drains every
// spilled run and discards its file, so a restart finds an empty store.
TEST(SpillRecoveryTest, CleanShutdownLeavesNothingToRecover) {
  TempDir dir;
  const std::string spill_dir = dir.path() + "/spill";

  Collector first;
  auto manager = std::make_unique<SessionShardManager>(
      DurableOptions(spill_dir), first.Fn());
  SubmitAll(manager.get());
  manager->Shutdown();
  manager.reset();
  first.ExpectNoDuplicates("clean-run emissions");
  EXPECT_EQ(first.Ids().size(), kFrames * kEventsPerFrame);

  EXPECT_TRUE(DurableIds(spill_dir).empty());

  Collector second;
  auto restarted = std::make_unique<SessionShardManager>(
      DurableOptions(spill_dir), second.Fn());
  restarted->Shutdown();
  uint64_t runs_recovered = 0;
  const uint64_t events_recovered =
      SumRecovered(restarted->SnapshotShards(), &runs_recovered);
  restarted.reset();
  EXPECT_EQ(events_recovered, 0u);
  EXPECT_EQ(runs_recovered, 0u);
  EXPECT_TRUE(second.Ids().empty());
}

}  // namespace
}  // namespace server
}  // namespace impatience
