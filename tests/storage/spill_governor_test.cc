// SpillGovernor contracts: shared-budget enforcement assigns spill
// targets to the *globally* coldest clients until the deficit is covered
// (driven by tracker sums or client-published bytes), quiet pending tails
// trip the idle-flush deadline, compaction advertisements come back as
// nudges, and every request fires the client's wakeup. Tests drive ticks
// with TickForTest under an effectively-infinite tick period so the
// background thread stays out of the arithmetic.

#include "storage/spill_governor.h"

#include <atomic>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/memory_tracker.h"

namespace impatience {
namespace storage {
namespace {

SpillGovernor::Options QuietOptions() {
  SpillGovernor::Options options;
  // One hour: the background ticker never fires during a test; every
  // tick below is an explicit TickForTest().
  options.tick_period_us = 3600ull * 1000 * 1000;
  return options;
}

TEST(SpillGovernorTest, AssignsSpillTargetToGloballyColdestClient) {
  SpillGovernor::Options options = QuietOptions();
  options.memory_budget = 1000;
  SpillGovernor governor(options);

  std::atomic<int> woke_a{0};
  std::atomic<int> woke_b{0};
  SpillGovernor::Client* a = governor.Register([&]() { ++woke_a; });
  SpillGovernor::Client* b = governor.Register([&]() { ++woke_b; });

  // A is colder (older coldest run) and the two together exceed the
  // budget by 500 — the deficit lands entirely on A, which can cover it.
  a->Publish(/*resident_bytes=*/800, /*coldest_tick=*/5,
             /*has_pending_tail=*/false);
  b->Publish(/*resident_bytes=*/700, /*coldest_tick=*/10,
             /*has_pending_tail=*/false);
  governor.TickForTest();

  EXPECT_EQ(a->TakeSpillTarget(), 500u);
  EXPECT_EQ(b->TakeSpillTarget(), 0u);
  EXPECT_GE(woke_a.load(), 1);
  EXPECT_EQ(woke_b.load(), 0);
  EXPECT_GE(governor.stats().spill_requests, 1u);

  // A spilled down to 300: the total fits and no new target is assigned.
  a->Publish(300, 5, false);
  governor.TickForTest();
  EXPECT_EQ(a->TakeSpillTarget(), 0u);
  EXPECT_EQ(b->TakeSpillTarget(), 0u);

  governor.Unregister(a);
  governor.Unregister(b);
}

TEST(SpillGovernorTest, DeficitSpillsOverToSecondColdestClient) {
  SpillGovernor::Options options = QuietOptions();
  options.memory_budget = 100;
  SpillGovernor governor(options);

  SpillGovernor::Client* a = governor.Register({});
  SpillGovernor::Client* b = governor.Register({});

  // Deficit 500; the coldest (B, tick 2) holds only 200, so the rest is
  // asked of the next coldest.
  a->Publish(400, /*coldest_tick=*/7, false);
  b->Publish(200, /*coldest_tick=*/2, false);
  governor.TickForTest();

  EXPECT_EQ(b->TakeSpillTarget(), 200u);  // Everything it has.
  EXPECT_EQ(a->TakeSpillTarget(), 300u);  // The remainder.

  governor.Unregister(a);
  governor.Unregister(b);
}

TEST(SpillGovernorTest, TrackerSumIsTheAuthoritativeTotal) {
  MemoryTracker t1, t2;
  SpillGovernor::Options options = QuietOptions();
  options.memory_budget = 1000;
  options.trackers = {&t1, &t2};
  SpillGovernor governor(options);

  SpillGovernor::Client* client = governor.Register({});
  // The client publishes a modest summary, but the trackers (which see
  // the whole pipeline: adapters, unions, reorder buffers) are over
  // budget — the tracker sum must win.
  MemoryReservation r1(&t1), r2(&t2);
  r1.Update(900);
  r2.Update(600);
  client->Publish(/*resident_bytes=*/400, /*coldest_tick=*/1, false);
  governor.TickForTest();

  // Deficit 500, capped at what the client can actually shed (400).
  EXPECT_EQ(client->TakeSpillTarget(), 400u);

  // Trackers back under budget: no request even though the client still
  // publishes bytes.
  r1.Update(300);
  r2.Update(300);
  governor.TickForTest();
  EXPECT_EQ(client->TakeSpillTarget(), 0u);

  governor.Unregister(client);
}

TEST(SpillGovernorTest, ZeroBudgetNeverAssignsSpillTargets) {
  SpillGovernor governor(QuietOptions());  // memory_budget = 0.
  SpillGovernor::Client* client = governor.Register({});
  client->Publish(1 << 30, 1, false);
  governor.TickForTest();
  EXPECT_EQ(client->TakeSpillTarget(), 0u);
  EXPECT_EQ(governor.stats().spill_requests, 0u);
  governor.Unregister(client);
}

TEST(SpillGovernorTest, QuietPendingTailTripsIdleFlushDeadline) {
  SpillGovernor::Options options = QuietOptions();
  options.idle_flush_ticks = 3;
  SpillGovernor governor(options);

  std::atomic<int> woke{0};
  SpillGovernor::Client* client = governor.Register([&]() { ++woke; });
  client->Publish(100, 1, /*has_pending_tail=*/true);
  client->NoteAppend(governor.now_tick());

  // Two ticks in: still within the deadline, no request.
  governor.TickForTest();
  EXPECT_FALSE(client->TakeIdleFlush());
  governor.TickForTest();
  governor.TickForTest();

  // The tail has now been quiet past the deadline.
  EXPECT_TRUE(client->TakeIdleFlush());
  EXPECT_GE(woke.load(), 1);
  EXPECT_GE(governor.stats().idle_flushes, 1u);

  // The sorter flushed the tail and republished: no more requests.
  client->Publish(100, 1, /*has_pending_tail=*/false);
  governor.TickForTest();
  governor.TickForTest();
  governor.TickForTest();
  governor.TickForTest();
  EXPECT_FALSE(client->TakeIdleFlush());

  governor.Unregister(client);
}

TEST(SpillGovernorTest, FreshAppendsDeferTheIdleFlush) {
  SpillGovernor::Options options = QuietOptions();
  options.idle_flush_ticks = 3;
  SpillGovernor governor(options);
  SpillGovernor::Client* client = governor.Register({});
  client->Publish(100, 1, /*has_pending_tail=*/true);

  // Keep appending every tick: the deadline never elapses.
  for (int i = 0; i < 10; ++i) {
    client->NoteAppend(governor.now_tick());
    governor.TickForTest();
    EXPECT_FALSE(client->TakeIdleFlush()) << "tick " << i;
  }
  governor.Unregister(client);
}

TEST(SpillGovernorTest, CompactionAdvertisementComesBackAsNudge) {
  SpillGovernor governor(QuietOptions());
  std::atomic<int> woke{0};
  SpillGovernor::Client* client = governor.Register([&]() { ++woke; });

  governor.TickForTest();
  EXPECT_FALSE(client->TakeCompaction());  // Nothing advertised yet.

  client->AdvertiseCompaction(true);
  governor.TickForTest();
  EXPECT_TRUE(client->TakeCompaction());
  EXPECT_GE(woke.load(), 1);
  EXPECT_GE(governor.stats().compaction_nudges, 1u);

  client->AdvertiseCompaction(false);  // The rewrite happened.
  governor.TickForTest();
  EXPECT_FALSE(client->TakeCompaction());

  governor.Unregister(client);
}

TEST(SpillGovernorTest, TicksAdvanceTheSharedClock) {
  SpillGovernor governor(QuietOptions());
  const uint64_t before = governor.now_tick();
  EXPECT_GE(before, 1u);  // Tick 0 is reserved for "never appended".
  governor.TickForTest();
  governor.TickForTest();
  EXPECT_GE(governor.now_tick(), before + 2);
  EXPECT_GE(governor.stats().ticks, 2u);
}

TEST(SpillGovernorTest, UnregisteredClientGetsNoFurtherRequests) {
  SpillGovernor::Options options = QuietOptions();
  options.memory_budget = 10;
  SpillGovernor governor(options);
  SpillGovernor::Client* a = governor.Register({});
  a->Publish(1000, 1, true);
  governor.Unregister(a);
  // `a` is gone; the tick must not touch it (ASan would catch a write).
  governor.TickForTest();
  SUCCEED();
}

}  // namespace
}  // namespace storage
}  // namespace impatience
