// The speculative parallel partition pass 1 (sort/partition.h) must be
// byte-identical to the sequential scan: same run id per element, same
// tails array, same run sizes — at every thread count and with the
// speculative-run-selection fast path on or off. The input families are
// chosen to hit each reconciliation case: sorted input resolves chunks as
// whole-chunk run extensions (case A'), reversed input as fresh-run
// appends (case B), and random input forces the sequential replay
// fallback (case C).

#include "sort/partition.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "common/timestamp.h"
#include "tests/testing/sequences.h"

namespace impatience {
namespace {

namespace t = ::impatience::testing;

void ExpectIdenticalPass1(const std::vector<Timestamp>& times,
                          const std::string& label) {
  const KernelLevel level = ActiveKernelLevel();
  for (const bool srs : {false, true}) {
    PartitionPass1 want;
    AssignRunsSequential(times.data(), times.size(), srs, level, &want);
    for (const size_t threads : {size_t{2}, size_t{3}, size_t{8}}) {
      ThreadPool pool(threads);
      PartitionPass1 got;
      AssignRunsParallel(times.data(), times.size(), srs, level, &pool,
                         &got);
      ASSERT_EQ(got.tails, want.tails)
          << label << " srs=" << srs << " threads=" << threads;
      ASSERT_EQ(got.run_sizes, want.run_sizes)
          << label << " srs=" << srs << " threads=" << threads;
      ASSERT_EQ(got.run_of, want.run_of)
          << label << " srs=" << srs << " threads=" << threads;
    }
  }
}

// Inputs sized above, below, and exactly around the chunk boundary so
// ragged final chunks and single-chunk degenerate cases are covered.
constexpr size_t kChunk = size_t{1} << 15;

TEST(PartitionParallelTest, SortedInput) {
  // Every chunk is one non-decreasing local run extending global run 0:
  // the pure case-A' path.
  ExpectIdenticalPass1(t::SortedSequence(4 * kChunk + 17), "sorted");
}

TEST(PartitionParallelTest, ReversedInput) {
  // Every element opens a new run and every chunk's maximum is below the
  // global minimum tail: the pure case-B path.
  ExpectIdenticalPass1(t::ReversedSequence(3 * kChunk + 1), "reversed");
}

TEST(PartitionParallelTest, ConstantInput) {
  // All ties: one run, chunks extend it via case A' (tails non-strict at
  // equality is exactly the <= boundary worth pinning).
  ExpectIdenticalPass1(t::ConstantSequence(2 * kChunk + 5, 42), "constant");
}

TEST(PartitionParallelTest, RandomInput) {
  // Wide-range random disorder defeats both speculative cases: every
  // chunk replays sequentially (case C), which must still be exact.
  ExpectIdenticalPass1(t::RandomSequence(3 * kChunk, /*seed=*/91),
                       "random");
}

TEST(PartitionParallelTest, RandomTieHeavyInput) {
  // Narrow range forces equal timestamps across chunk boundaries.
  ExpectIdenticalPass1(
      t::RandomSequence(3 * kChunk, /*seed=*/93, /*max_value=*/64),
      "random_ties");
}

TEST(PartitionParallelTest, NearlySortedInput) {
  // The paper's workload shape: mostly case A' with case C where delayed
  // elements straddle a chunk boundary.
  ExpectIdenticalPass1(
      t::NearlySortedSequence(3 * kChunk, /*percent=*/5.0, /*stddev=*/256,
                              /*seed=*/95),
      "nearly_sorted");
}

TEST(PartitionParallelTest, InterleavedInput) {
  ExpectIdenticalPass1(t::InterleavedSequence(3 * kChunk, /*sources=*/8,
                                              /*seed=*/97),
                       "interleaved");
}

TEST(PartitionParallelTest, SmallAndRaggedInputs) {
  // Below one chunk the parallel path still runs when called directly;
  // exact chunk multiples exercise the no-ragged-tail edge.
  ExpectIdenticalPass1(t::RandomSequence(100, /*seed=*/99), "tiny");
  ExpectIdenticalPass1(t::RandomSequence(kChunk, /*seed=*/101),
                       "one_chunk");
  ExpectIdenticalPass1(t::RandomSequence(2 * kChunk, /*seed=*/103),
                       "two_chunks");
  ExpectIdenticalPass1(t::SortedSequence(0), "empty");
  ExpectIdenticalPass1(t::SortedSequence(1), "single");
}

TEST(PartitionParallelTest, AssignRunsGateFallsBackSequentially) {
  // Below the size gate AssignRuns must take the sequential path even with
  // a parallel pool — same result either way, but pin the dispatch
  // contract by checking the small-input result against the reference.
  const std::vector<Timestamp> times = t::RandomSequence(1000, /*seed=*/7);
  const KernelLevel level = ActiveKernelLevel();
  ThreadPool pool(4);
  PartitionPass1 want;
  AssignRunsSequential(times.data(), times.size(), true, level, &want);
  PartitionPass1 got;
  AssignRuns(times.data(), times.size(), true, level, &pool, &got);
  EXPECT_EQ(got.run_of, want.run_of);
  EXPECT_EQ(got.tails, want.tails);
  EXPECT_EQ(got.run_sizes, want.run_sizes);
}

}  // namespace
}  // namespace impatience
