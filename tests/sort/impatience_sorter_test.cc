// ImpatienceSorter semantics: the punctuation contract, run cleanup
// (Figure 5's behaviour), the SRS fast path, late-event handling, and
// memory accounting.

#include "sort/impatience_sorter.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/testing/sequences.h"

namespace impatience {
namespace {

using Sorter = ImpatienceSorter<Timestamp, IdentityTimeOf>;

TEST(ImpatienceSorterTest, PaperRunningExample) {
  // The stream from §III-A: 2 6 5 1 [2*] 4 3 [4*] 7 8 [inf*].
  Sorter sorter;
  std::vector<Timestamp> out;

  for (Timestamp t : {2, 6, 5, 1}) sorter.Push(t);
  sorter.OnPunctuation(2, &out);
  EXPECT_EQ(out, std::vector<Timestamp>({1, 2}));

  for (Timestamp t : {4, 3}) sorter.Push(t);
  out.clear();
  sorter.OnPunctuation(4, &out);
  EXPECT_EQ(out, std::vector<Timestamp>({3, 4}));
  // §III-D: after the second punctuation Impatience maintains 2 runs where
  // plain Patience would have 4.
  EXPECT_EQ(sorter.run_count(), 2u);

  for (Timestamp t : {7, 8}) sorter.Push(t);
  out.clear();
  sorter.Flush(&out);
  EXPECT_EQ(out, std::vector<Timestamp>({5, 6, 7, 8}));
  EXPECT_EQ(sorter.buffered_count(), 0u);
  EXPECT_EQ(sorter.run_count(), 0u);
}

TEST(ImpatienceSorterTest, EmitsOnlyUpToPunctuation) {
  Sorter sorter;
  for (Timestamp t : {10, 5, 20, 15, 1}) sorter.Push(t);
  std::vector<Timestamp> out;
  sorter.OnPunctuation(10, &out);
  EXPECT_EQ(out, std::vector<Timestamp>({1, 5, 10}));
  EXPECT_EQ(sorter.buffered_count(), 2u);
  out.clear();
  sorter.Flush(&out);
  EXPECT_EQ(out, std::vector<Timestamp>({15, 20}));
}

TEST(ImpatienceSorterTest, PunctuationWithNothingToEmit) {
  Sorter sorter;
  sorter.Push(100);
  std::vector<Timestamp> out;
  sorter.OnPunctuation(50, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(sorter.buffered_count(), 1u);
}

TEST(ImpatienceSorterTest, RepeatedEqualPunctuationsAreIdempotent) {
  Sorter sorter;
  sorter.Push(5);
  sorter.Push(10);
  std::vector<Timestamp> out;
  sorter.OnPunctuation(7, &out);
  EXPECT_EQ(out, std::vector<Timestamp>({5}));
  out.clear();
  sorter.OnPunctuation(7, &out);
  EXPECT_TRUE(out.empty());
}

TEST(ImpatienceSorterTest, DropsEventsAtOrBeforePunctuation) {
  Sorter sorter;
  sorter.Push(10);
  std::vector<Timestamp> out;
  sorter.OnPunctuation(10, &out);
  ASSERT_EQ(out.size(), 1u);

  sorter.Push(9);   // Before the punctuation: dropped.
  sorter.Push(10);  // At the punctuation: dropped.
  sorter.Push(11);  // After: accepted.
  EXPECT_EQ(sorter.late_drops(), 2u);
  EXPECT_EQ(sorter.buffered_count(), 1u);
  out.clear();
  sorter.Flush(&out);
  EXPECT_EQ(out, std::vector<Timestamp>({11}));
}

TEST(ImpatienceSorterTest, DuplicateTimestampsAllEmitted) {
  Sorter sorter;
  for (Timestamp t : {3, 3, 3, 1, 1, 2}) sorter.Push(t);
  std::vector<Timestamp> out;
  sorter.Flush(&out);
  EXPECT_EQ(out, std::vector<Timestamp>({1, 1, 2, 3, 3, 3}));
}

TEST(ImpatienceSorterTest, RunCleanupAfterBurstOfLateEvents) {
  // A burst of severely delayed events inflates the run count; punctuations
  // past the burst must clean the runs back up (the Figure 5 effect).
  Sorter sorter;
  Timestamp t = 1000;
  for (int i = 0; i < 100; ++i) sorter.Push(t + i);
  // Burst: strictly decreasing late events, each forcing a new run.
  for (int i = 0; i < 50; ++i) sorter.Push(500 - i * 2);
  const size_t runs_during_burst = sorter.run_count();
  EXPECT_GT(runs_during_burst, 40u);

  std::vector<Timestamp> out;
  sorter.OnPunctuation(999, &out);  // Clears the burst (all <= 500).
  EXPECT_EQ(out.size(), 50u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_LE(sorter.run_count(), 2u);  // Back to "healthy".
}

TEST(ImpatienceSorterTest, SpeculativeRunSelectionHitsOnSortedStream) {
  ImpatienceConfig config;
  config.speculative_run_selection = true;
  Sorter sorter(config);
  for (Timestamp t = 0; t < 1000; ++t) sorter.Push(t);
  // After the first insertion every element extends run 0 via SRS.
  EXPECT_EQ(sorter.counters().srs_hits, 999u);
  EXPECT_EQ(sorter.run_count(), 1u);
}

TEST(ImpatienceSorterTest, SrsDisabledStillCorrect) {
  ImpatienceConfig config;
  config.speculative_run_selection = false;
  Sorter sorter(config);
  auto input = testing::NearlySortedSequence(5000, 30, 64, /*seed=*/3);
  for (Timestamp t : input) sorter.Push(t);
  std::vector<Timestamp> out;
  sorter.Flush(&out);
  std::sort(input.begin(), input.end());
  EXPECT_EQ(out, input);
  EXPECT_EQ(sorter.counters().srs_hits, 0u);
}

TEST(ImpatienceSorterTest, TailsInvariantViaInterleavedBound) {
  // Proposition 3.1: on an interleaving of d sorted runs, Impatience sort
  // creates at most d runs.
  for (size_t d : {1u, 2u, 4u, 16u, 64u}) {
    Sorter sorter;
    auto input = testing::InterleavedSequence(20000, d, /*seed=*/d);
    for (Timestamp t : input) sorter.Push(t);
    EXPECT_LE(sorter.run_count(), d) << "d=" << d;
    std::vector<Timestamp> out;
    sorter.Flush(&out);
    std::sort(input.begin(), input.end());
    EXPECT_EQ(out, input);
  }
}

TEST(ImpatienceSorterTest, DistinctTimestampBound) {
  // Proposition 3.2: run count <= number of distinct timestamps.
  Sorter sorter;
  Rng rng(81);
  for (int i = 0; i < 10000; ++i) {
    sorter.Push(static_cast<Timestamp>(rng.NextBelow(5)));
  }
  EXPECT_LE(sorter.run_count(), 5u);
}

TEST(ImpatienceSorterTest, MemoryShrinksAfterEmission) {
  // This test pins in-RAM residency growth/shrink; a process-wide
  // IMPATIENCE_MEMORY_BUDGET would (correctly) cap `before`. The spill
  // tier's own residency bound is covered in tests/storage/.
  ImpatienceConfig config;
  config.spill.use_env_default = false;
  Sorter sorter(config);
  auto input = testing::NearlySortedSequence(100000, 30, 64, /*seed=*/5);
  for (Timestamp t : input) sorter.Push(t);
  const size_t before = sorter.MemoryBytes();
  EXPECT_GT(before, 100000 * sizeof(Timestamp) / 2);
  std::vector<Timestamp> out;
  sorter.Flush(&out);
  EXPECT_LT(sorter.MemoryBytes(), before / 10);
  EXPECT_EQ(sorter.buffered_count(), 0u);
}

TEST(ImpatienceSorterTest, IncrementalEqualsOfflineAcrossFrequencies) {
  // Sorting with punctuations every f events must equal one big sort.
  auto input = testing::NearlySortedSequence(30000, 30, 256, /*seed=*/7);
  std::vector<Timestamp> want = input;
  std::sort(want.begin(), want.end());

  for (size_t freq : {1u, 7u, 100u, 5000u, 100000u}) {
    Sorter sorter;
    std::vector<Timestamp> out;
    Timestamp high_watermark = kMinTimestamp;
    Timestamp last_punct = kMinTimestamp;
    size_t late = 0;
    for (size_t i = 0; i < input.size(); ++i) {
      if (input[i] <= last_punct) {
        ++late;  // The generator can produce genuinely too-late events.
      }
      sorter.Push(input[i]);
      high_watermark = std::max(high_watermark, input[i]);
      if ((i + 1) % freq == 0) {
        // Reorder latency 600 tolerates the d=256 delays in this input.
        const Timestamp p = high_watermark - 600;
        if (p > last_punct) {
          sorter.OnPunctuation(p, &out);
          last_punct = p;
        }
      }
    }
    sorter.Flush(&out);
    EXPECT_EQ(sorter.late_drops(), late);
    EXPECT_EQ(out.size(), want.size() - late);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end())) << "freq=" << freq;
    if (late == 0) {
      EXPECT_EQ(out, want) << "freq=" << freq;
    }
  }
}

TEST(ImpatienceSorterTest, CountersTrackWork) {
  Sorter sorter;
  for (Timestamp t : {5, 3, 8, 1}) sorter.Push(t);
  EXPECT_EQ(sorter.counters().pushes, 4u);
  EXPECT_EQ(sorter.counters().new_runs, 3u);  // 5 starts; 3 and 1 new runs.
  std::vector<Timestamp> out;
  sorter.Flush(&out);
  EXPECT_EQ(sorter.counters().removed_runs, 3u);
}

TEST(ImpatienceCountersTest, ResetZeroesEveryField) {
  ImpatienceCounters c;
  c.pushes = 1;
  c.srs_hits = 2;
  c.new_runs = 3;
  c.removed_runs = 4;
  c.compactions = 5;
  c.parallel_merges = 6;
  c.merge_tasks = 7;
  c.kernel_level = 2;
  c.merge.elements_moved = 8;
  c.merge.binary_merges = 9;
  c.merge.disjoint_concats = 10;
  c.Reset();
  EXPECT_EQ(c.pushes, 0u);
  EXPECT_EQ(c.srs_hits, 0u);
  EXPECT_EQ(c.new_runs, 0u);
  EXPECT_EQ(c.removed_runs, 0u);
  EXPECT_EQ(c.compactions, 0u);
  EXPECT_EQ(c.parallel_merges, 0u);
  EXPECT_EQ(c.merge_tasks, 0u);
  EXPECT_EQ(c.kernel_level, 0u);
  EXPECT_EQ(c.merge.elements_moved, 0u);
  EXPECT_EQ(c.merge.binary_merges, 0u);
  EXPECT_EQ(c.merge.disjoint_concats, 0u);
}

TEST(ImpatienceCountersTest, PlusEqualsSumsElementwise) {
  ImpatienceCounters a;
  a.pushes = 10;
  a.new_runs = 2;
  a.merge.elements_moved = 100;
  ImpatienceCounters b;
  b.pushes = 5;
  b.srs_hits = 7;
  b.merge.elements_moved = 50;
  b.merge.binary_merges = 3;
  b.merge.disjoint_concats = 2;
  a += b;
  EXPECT_EQ(a.pushes, 15u);
  EXPECT_EQ(a.srs_hits, 7u);
  EXPECT_EQ(a.new_runs, 2u);
  EXPECT_EQ(a.merge.elements_moved, 150u);
  EXPECT_EQ(a.merge.binary_merges, 3u);
  EXPECT_EQ(a.merge.disjoint_concats, 2u);
}

TEST(ImpatienceCountersTest, KernelLevelIsAGaugeNotASum) {
  // Aggregating shards must not add dispatch levels together; the merged
  // view reports the highest level seen.
  ImpatienceCounters a;
  a.kernel_level = 2;
  ImpatienceCounters b;
  b.kernel_level = 1;
  a += b;
  EXPECT_EQ(a.kernel_level, 2u);
  b += a;
  EXPECT_EQ(b.kernel_level, 2u);
}

TEST(ImpatienceSorterTest, StampsKernelLevelAtConstructionAndReset) {
  Sorter sorter;
  const uint64_t level = static_cast<uint64_t>(ActiveKernelLevel());
  EXPECT_EQ(sorter.counters().kernel_level, level);
  sorter.ResetCounters();
  EXPECT_EQ(sorter.counters().kernel_level, level);
}

TEST(ImpatienceSorterTest, ResetCountersRestartsStatisticsWindow) {
  Sorter sorter;
  for (Timestamp t : {5, 3, 8, 1}) sorter.Push(t);
  std::vector<Timestamp> out;
  sorter.OnPunctuation(5, &out);  // Emits and removes runs -> merge stats.
  EXPECT_GT(sorter.counters().pushes, 0u);
  EXPECT_GT(sorter.counters().new_runs, 0u);
  sorter.Push(2);  // Late: dropped, not counted as a push.
  ASSERT_EQ(sorter.late_drops(), 1u);

  sorter.ResetCounters();
  EXPECT_EQ(sorter.counters().pushes, 0u);
  EXPECT_EQ(sorter.counters().new_runs, 0u);
  EXPECT_EQ(sorter.counters().removed_runs, 0u);
  EXPECT_EQ(sorter.counters().merge.elements_moved, 0u);
  // late_drops() is contract state, not a statistics counter: it survives.
  EXPECT_EQ(sorter.late_drops(), 1u);

  // The sorter still works after a reset and counts only new work.
  for (Timestamp t : {9, 7}) sorter.Push(t);
  EXPECT_EQ(sorter.counters().pushes, 2u);
  out.clear();
  sorter.Flush(&out);
  EXPECT_EQ(out, std::vector<Timestamp>({7, 8, 9}));  // 8 buffered earlier.
}

TEST(ImpatienceSorterTest, EventsSortedBySyncTime) {
  ImpatienceSorter<Event> sorter;
  Rng rng(91);
  for (int i = 0; i < 1000; ++i) {
    Event e;
    e.sync_time = static_cast<Timestamp>(rng.NextBelow(10000));
    e.key = i;
    sorter.Push(e);
  }
  std::vector<Event> out;
  sorter.Flush(&out);
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].sync_time, out[i].sync_time);
  }
}

}  // namespace
}  // namespace impatience
