// Timsort-specific tests: stability, galloping paths, run-stack stress.

#include "sort/timsort.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/testing/sequences.h"

namespace impatience {
namespace {

TEST(TimsortTest, EmptyAndSingleton) {
  std::vector<int> v;
  Timsort(v.begin(), v.end());
  EXPECT_TRUE(v.empty());
  v = {5};
  Timsort(v.begin(), v.end());
  EXPECT_EQ(v, std::vector<int>({5}));
}

TEST(TimsortTest, IsStable) {
  // Pairs (key, original index); equal keys must keep input order.
  Rng rng(41);
  std::vector<std::pair<int, int>> v;
  for (int i = 0; i < 5000; ++i) {
    v.emplace_back(static_cast<int>(rng.NextBelow(20)), i);  // Many ties.
  }
  auto by_key = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::vector<std::pair<int, int>> want = v;
  std::stable_sort(want.begin(), want.end(), by_key);
  Timsort(v.begin(), v.end(), by_key);
  EXPECT_EQ(v, want);
}

TEST(TimsortTest, TriggersGallopingOnBlockInterleave) {
  // Two long sorted blocks whose merge makes one side win long streaks,
  // driving the merge into galloping mode.
  std::vector<int> v;
  for (int i = 0; i < 10000; ++i) v.push_back(i * 2);
  for (int i = 0; i < 10000; ++i) v.push_back(20000 + i);
  for (int i = 0; i < 100; ++i) v.push_back(i * 200);  // scattered back
  std::vector<int> want = v;
  std::sort(want.begin(), want.end());
  Timsort(v.begin(), v.end());
  EXPECT_EQ(v, want);
}

TEST(TimsortTest, DescendingRunsReversed) {
  std::vector<int> v;
  for (int block = 0; block < 50; ++block) {
    for (int i = 100; i > 0; --i) v.push_back(block * 1000 + i);
  }
  std::vector<int> want = v;
  std::sort(want.begin(), want.end());
  Timsort(v.begin(), v.end());
  EXPECT_EQ(v, want);
}

TEST(TimsortTest, ManyShortRunsStressRunStack) {
  Rng rng(43);
  std::vector<int> v;
  int base = 0;
  for (int run = 0; run < 3000; ++run) {
    const int len = 1 + static_cast<int>(rng.NextBelow(5));
    base += 100;
    for (int i = 0; i < len; ++i) v.push_back(base + i);
    base -= 50;  // Force run breaks.
  }
  std::vector<int> want = v;
  std::sort(want.begin(), want.end());
  Timsort(v.begin(), v.end());
  EXPECT_EQ(v, want);
}

TEST(TimsortTest, PowerOfTwoAndOffByOneSizes) {
  for (size_t n : {31u, 32u, 33u, 63u, 64u, 65u, 127u, 128u, 129u, 255u,
                   256u, 1023u, 1024u, 4095u, 4096u}) {
    auto v = testing::RandomSequence(n, /*seed=*/n);
    std::vector<Timestamp> want = v;
    std::sort(want.begin(), want.end());
    Timsort(v.begin(), v.end());
    EXPECT_EQ(v, want) << "n=" << n;
  }
}

TEST(TimsortTest, RandomizedAgainstStdStableSort) {
  Rng rng(47);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng.NextBelow(2000);
    std::vector<std::pair<int, int>> v;
    v.reserve(n);
    const int key_space = 1 + static_cast<int>(rng.NextBelow(100));
    for (size_t i = 0; i < n; ++i) {
      v.emplace_back(static_cast<int>(rng.NextBelow(key_space)),
                     static_cast<int>(i));
    }
    auto by_key = [](const auto& a, const auto& b) {
      return a.first < b.first;
    };
    std::vector<std::pair<int, int>> want = v;
    std::stable_sort(want.begin(), want.end(), by_key);
    Timsort(v.begin(), v.end(), by_key);
    ASSERT_EQ(v, want) << "round " << round;
  }
}

TEST(TimsortTest, MoveOnlyElements) {
  // Timsort must work with move-only types (unique_ptr-like).
  struct MoveOnly {
    explicit MoveOnly(int v) : value(v) {}
    MoveOnly(MoveOnly&&) = default;
    MoveOnly& operator=(MoveOnly&&) = default;
    MoveOnly(const MoveOnly&) = delete;
    MoveOnly& operator=(const MoveOnly&) = delete;
    int value;
  };
  Rng rng(53);
  std::vector<MoveOnly> v;
  for (int i = 0; i < 1000; ++i) {
    v.emplace_back(static_cast<int>(rng.NextBelow(100)));
  }
  Timsort(v.begin(), v.end(),
          [](const MoveOnly& a, const MoveOnly& b) {
            return a.value < b.value;
          });
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(v[i - 1].value, v[i].value);
  }
}

}  // namespace
}  // namespace impatience
